# Empty compiler generated dependencies file for bench_ablation_fault_model.
# This may be replaced when dependencies are built.
