file(REMOVE_RECURSE
  "../bench/bench_fig01_rdt_series"
  "../bench/bench_fig01_rdt_series.pdb"
  "CMakeFiles/bench_fig01_rdt_series.dir/fig01_rdt_series.cc.o"
  "CMakeFiles/bench_fig01_rdt_series.dir/fig01_rdt_series.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_rdt_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
