file(REMOVE_RECURSE
  "../bench/bench_table03_ecc"
  "../bench/bench_table03_ecc.pdb"
  "CMakeFiles/bench_table03_ecc.dir/table03_ecc.cc.o"
  "CMakeFiles/bench_table03_ecc.dir/table03_ecc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
