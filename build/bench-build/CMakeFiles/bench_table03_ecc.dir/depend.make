# Empty dependencies file for bench_table03_ecc.
# This may be replaced when dependencies are built.
