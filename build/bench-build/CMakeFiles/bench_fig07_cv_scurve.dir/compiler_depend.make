# Empty compiler generated dependencies file for bench_fig07_cv_scurve.
# This may be replaced when dependencies are built.
