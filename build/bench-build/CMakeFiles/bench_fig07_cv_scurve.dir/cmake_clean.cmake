file(REMOVE_RECURSE
  "../bench/bench_fig07_cv_scurve"
  "../bench/bench_fig07_cv_scurve.pdb"
  "CMakeFiles/bench_fig07_cv_scurve.dir/fig07_cv_scurve.cc.o"
  "CMakeFiles/bench_fig07_cv_scurve.dir/fig07_cv_scurve.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_cv_scurve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
