# Empty dependencies file for bench_appendix_test_time.
# This may be replaced when dependencies are built.
