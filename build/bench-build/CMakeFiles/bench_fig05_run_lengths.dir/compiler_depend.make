# Empty compiler generated dependencies file for bench_fig05_run_lengths.
# This may be replaced when dependencies are built.
