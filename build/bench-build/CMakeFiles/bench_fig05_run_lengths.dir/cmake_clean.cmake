file(REMOVE_RECURSE
  "../bench/bench_fig05_run_lengths"
  "../bench/bench_fig05_run_lengths.pdb"
  "CMakeFiles/bench_fig05_run_lengths.dir/fig05_run_lengths.cc.o"
  "CMakeFiles/bench_fig05_run_lengths.dir/fig05_run_lengths.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_run_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
