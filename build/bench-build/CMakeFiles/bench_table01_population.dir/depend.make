# Empty dependencies file for bench_table01_population.
# This may be replaced when dependencies are built.
