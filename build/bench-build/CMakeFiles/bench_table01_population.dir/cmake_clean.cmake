file(REMOVE_RECURSE
  "../bench/bench_table01_population"
  "../bench/bench_table01_population.pdb"
  "CMakeFiles/bench_table01_population.dir/table01_population.cc.o"
  "CMakeFiles/bench_table01_population.dir/table01_population.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table01_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
