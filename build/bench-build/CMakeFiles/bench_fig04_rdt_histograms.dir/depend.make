# Empty dependencies file for bench_fig04_rdt_histograms.
# This may be replaced when dependencies are built.
