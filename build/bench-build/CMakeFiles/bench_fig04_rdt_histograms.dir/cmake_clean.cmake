file(REMOVE_RECURSE
  "../bench/bench_fig04_rdt_histograms"
  "../bench/bench_fig04_rdt_histograms.pdb"
  "CMakeFiles/bench_fig04_rdt_histograms.dir/fig04_rdt_histograms.cc.o"
  "CMakeFiles/bench_fig04_rdt_histograms.dir/fig04_rdt_histograms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_rdt_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
