file(REMOVE_RECURSE
  "../bench/bench_fig13_true_anti_cell"
  "../bench/bench_fig13_true_anti_cell.pdb"
  "CMakeFiles/bench_fig13_true_anti_cell.dir/fig13_true_anti_cell.cc.o"
  "CMakeFiles/bench_fig13_true_anti_cell.dir/fig13_true_anti_cell.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_true_anti_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
