# Empty dependencies file for bench_fig13_true_anti_cell.
# This may be replaced when dependencies are built.
