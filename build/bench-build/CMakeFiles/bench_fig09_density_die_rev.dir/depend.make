# Empty dependencies file for bench_fig09_density_die_rev.
# This may be replaced when dependencies are built.
