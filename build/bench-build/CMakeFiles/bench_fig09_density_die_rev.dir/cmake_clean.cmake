file(REMOVE_RECURSE
  "../bench/bench_fig09_density_die_rev"
  "../bench/bench_fig09_density_die_rev.pdb"
  "CMakeFiles/bench_fig09_density_die_rev.dir/fig09_density_die_rev.cc.o"
  "CMakeFiles/bench_fig09_density_die_rev.dir/fig09_density_die_rev.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_density_die_rev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
