
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_temperature.cc" "bench-build/CMakeFiles/bench_fig12_temperature.dir/fig12_temperature.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig12_temperature.dir/fig12_temperature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/vrd_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vrd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/vrd_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bender/CMakeFiles/vrd_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/vrd/CMakeFiles/vrd_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vrd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/vrd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vrd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
