# Empty dependencies file for bench_fig12_temperature.
# This may be replaced when dependencies are built.
