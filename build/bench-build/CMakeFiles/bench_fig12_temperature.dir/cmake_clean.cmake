file(REMOVE_RECURSE
  "../bench/bench_fig12_temperature"
  "../bench/bench_fig12_temperature.pdb"
  "CMakeFiles/bench_fig12_temperature.dir/fig12_temperature.cc.o"
  "CMakeFiles/bench_fig12_temperature.dir/fig12_temperature.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
