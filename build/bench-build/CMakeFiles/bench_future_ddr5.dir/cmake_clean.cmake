file(REMOVE_RECURSE
  "../bench/bench_future_ddr5"
  "../bench/bench_future_ddr5.pdb"
  "CMakeFiles/bench_future_ddr5.dir/future_ddr5.cc.o"
  "CMakeFiles/bench_future_ddr5.dir/future_ddr5.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_ddr5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
