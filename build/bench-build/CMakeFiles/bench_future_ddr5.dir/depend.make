# Empty dependencies file for bench_future_ddr5.
# This may be replaced when dependencies are built.
