file(REMOVE_RECURSE
  "../bench/bench_spatial_variation"
  "../bench/bench_spatial_variation.pdb"
  "CMakeFiles/bench_spatial_variation.dir/spatial_variation.cc.o"
  "CMakeFiles/bench_spatial_variation.dir/spatial_variation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
