file(REMOVE_RECURSE
  "../bench/bench_fig10_data_pattern"
  "../bench/bench_fig10_data_pattern.pdb"
  "CMakeFiles/bench_fig10_data_pattern.dir/fig10_data_pattern.cc.o"
  "CMakeFiles/bench_fig10_data_pattern.dir/fig10_data_pattern.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_data_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
