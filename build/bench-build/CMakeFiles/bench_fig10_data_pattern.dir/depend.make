# Empty dependencies file for bench_fig10_data_pattern.
# This may be replaced when dependencies are built.
