file(REMOVE_RECURSE
  "../bench/bench_perf_throughput"
  "../bench/bench_perf_throughput.pdb"
  "CMakeFiles/bench_perf_throughput.dir/perf_throughput.cc.o"
  "CMakeFiles/bench_perf_throughput.dir/perf_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
