# Empty compiler generated dependencies file for bench_perf_throughput.
# This may be replaced when dependencies are built.
