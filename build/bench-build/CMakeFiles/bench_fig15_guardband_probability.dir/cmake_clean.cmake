file(REMOVE_RECURSE
  "../bench/bench_fig15_guardband_probability"
  "../bench/bench_fig15_guardband_probability.pdb"
  "CMakeFiles/bench_fig15_guardband_probability.dir/fig15_guardband_probability.cc.o"
  "CMakeFiles/bench_fig15_guardband_probability.dir/fig15_guardband_probability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_guardband_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
