# Empty compiler generated dependencies file for bench_fig15_guardband_probability.
# This may be replaced when dependencies are built.
