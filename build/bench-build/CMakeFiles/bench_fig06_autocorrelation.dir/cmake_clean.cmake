file(REMOVE_RECURSE
  "../bench/bench_fig06_autocorrelation"
  "../bench/bench_fig06_autocorrelation.pdb"
  "CMakeFiles/bench_fig06_autocorrelation.dir/fig06_autocorrelation.cc.o"
  "CMakeFiles/bench_fig06_autocorrelation.dir/fig06_autocorrelation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_autocorrelation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
