# Empty compiler generated dependencies file for bench_fig14_mitigation_overhead.
# This may be replaced when dependencies are built.
