file(REMOVE_RECURSE
  "../bench/bench_fig14_mitigation_overhead"
  "../bench/bench_fig14_mitigation_overhead.pdb"
  "CMakeFiles/bench_fig14_mitigation_overhead.dir/fig14_mitigation_overhead.cc.o"
  "CMakeFiles/bench_fig14_mitigation_overhead.dir/fig14_mitigation_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mitigation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
