file(REMOVE_RECURSE
  "../bench/bench_fig11_taggon"
  "../bench/bench_fig11_taggon.pdb"
  "CMakeFiles/bench_fig11_taggon.dir/fig11_taggon.cc.o"
  "CMakeFiles/bench_fig11_taggon.dir/fig11_taggon.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_taggon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
