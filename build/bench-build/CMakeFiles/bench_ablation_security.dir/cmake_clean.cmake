file(REMOVE_RECURSE
  "../bench/bench_ablation_security"
  "../bench/bench_ablation_security.pdb"
  "CMakeFiles/bench_ablation_security.dir/ablation_security.cc.o"
  "CMakeFiles/bench_ablation_security.dir/ablation_security.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
