file(REMOVE_RECURSE
  "../bench/bench_fig08_min_rdt_probability"
  "../bench/bench_fig08_min_rdt_probability.pdb"
  "CMakeFiles/bench_fig08_min_rdt_probability.dir/fig08_min_rdt_probability.cc.o"
  "CMakeFiles/bench_fig08_min_rdt_probability.dir/fig08_min_rdt_probability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_min_rdt_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
