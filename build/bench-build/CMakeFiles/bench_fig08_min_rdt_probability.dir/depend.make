# Empty dependencies file for bench_fig08_min_rdt_probability.
# This may be replaced when dependencies are built.
