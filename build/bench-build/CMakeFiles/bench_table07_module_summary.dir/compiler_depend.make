# Empty compiler generated dependencies file for bench_table07_module_summary.
# This may be replaced when dependencies are built.
