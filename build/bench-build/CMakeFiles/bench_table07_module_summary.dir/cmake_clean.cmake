file(REMOVE_RECURSE
  "../bench/bench_table07_module_summary"
  "../bench/bench_table07_module_summary.pdb"
  "CMakeFiles/bench_table07_module_summary.dir/table07_module_summary.cc.o"
  "CMakeFiles/bench_table07_module_summary.dir/table07_module_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_module_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
