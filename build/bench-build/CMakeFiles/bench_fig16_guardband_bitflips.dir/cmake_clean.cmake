file(REMOVE_RECURSE
  "../bench/bench_fig16_guardband_bitflips"
  "../bench/bench_fig16_guardband_bitflips.pdb"
  "CMakeFiles/bench_fig16_guardband_bitflips.dir/fig16_guardband_bitflips.cc.o"
  "CMakeFiles/bench_fig16_guardband_bitflips.dir/fig16_guardband_bitflips.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_guardband_bitflips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
