# Empty compiler generated dependencies file for bench_fig16_guardband_bitflips.
# This may be replaced when dependencies are built.
