file(REMOVE_RECURSE
  "../bench/bench_fig03_rdt_distribution"
  "../bench/bench_fig03_rdt_distribution.pdb"
  "CMakeFiles/bench_fig03_rdt_distribution.dir/fig03_rdt_distribution.cc.o"
  "CMakeFiles/bench_fig03_rdt_distribution.dir/fig03_rdt_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_rdt_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
