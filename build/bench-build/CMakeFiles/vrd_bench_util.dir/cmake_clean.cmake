file(REMOVE_RECURSE
  "CMakeFiles/vrd_bench_util.dir/common/bench_util.cc.o"
  "CMakeFiles/vrd_bench_util.dir/common/bench_util.cc.o.d"
  "libvrd_bench_util.a"
  "libvrd_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
