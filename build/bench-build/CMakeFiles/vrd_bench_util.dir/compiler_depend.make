# Empty compiler generated dependencies file for vrd_bench_util.
# This may be replaced when dependencies are built.
