file(REMOVE_RECURSE
  "libvrd_bench_util.a"
)
