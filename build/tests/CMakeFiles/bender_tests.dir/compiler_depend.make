# Empty compiler generated dependencies file for bender_tests.
# This may be replaced when dependencies are built.
