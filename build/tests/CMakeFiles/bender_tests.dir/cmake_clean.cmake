file(REMOVE_RECURSE
  "CMakeFiles/bender_tests.dir/bender/attack_patterns_test.cc.o"
  "CMakeFiles/bender_tests.dir/bender/attack_patterns_test.cc.o.d"
  "CMakeFiles/bender_tests.dir/bender/host_test.cc.o"
  "CMakeFiles/bender_tests.dir/bender/host_test.cc.o.d"
  "CMakeFiles/bender_tests.dir/bender/test_program_test.cc.o"
  "CMakeFiles/bender_tests.dir/bender/test_program_test.cc.o.d"
  "CMakeFiles/bender_tests.dir/bender/thermal_test.cc.o"
  "CMakeFiles/bender_tests.dir/bender/thermal_test.cc.o.d"
  "bender_tests"
  "bender_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bender_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
