file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/autocorrelation_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/autocorrelation_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/bootstrap_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/bootstrap_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/chi_square_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/chi_square_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/descriptive_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/descriptive_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/monte_carlo_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/monte_carlo_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/run_length_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/run_length_test.cc.o.d"
  "stats_tests"
  "stats_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
