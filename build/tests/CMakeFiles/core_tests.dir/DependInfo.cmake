
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/campaign_test.cc" "tests/CMakeFiles/core_tests.dir/core/campaign_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/campaign_test.cc.o.d"
  "/root/repo/tests/core/csv_export_test.cc" "tests/CMakeFiles/core_tests.dir/core/csv_export_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/csv_export_test.cc.o.d"
  "/root/repo/tests/core/guardband_test.cc" "tests/CMakeFiles/core_tests.dir/core/guardband_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/guardband_test.cc.o.d"
  "/root/repo/tests/core/min_rdt_mc_test.cc" "tests/CMakeFiles/core_tests.dir/core/min_rdt_mc_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/min_rdt_mc_test.cc.o.d"
  "/root/repo/tests/core/online_profiler_test.cc" "tests/CMakeFiles/core_tests.dir/core/online_profiler_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/online_profiler_test.cc.o.d"
  "/root/repo/tests/core/rdt_profiler_test.cc" "tests/CMakeFiles/core_tests.dir/core/rdt_profiler_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rdt_profiler_test.cc.o.d"
  "/root/repo/tests/core/security_eval_test.cc" "tests/CMakeFiles/core_tests.dir/core/security_eval_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/security_eval_test.cc.o.d"
  "/root/repo/tests/core/series_analysis_test.cc" "tests/CMakeFiles/core_tests.dir/core/series_analysis_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/series_analysis_test.cc.o.d"
  "/root/repo/tests/core/test_time_model_test.cc" "tests/CMakeFiles/core_tests.dir/core/test_time_model_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_time_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vrd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/vrd_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bender/CMakeFiles/vrd_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/vrd/CMakeFiles/vrd_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vrd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/vrd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vrd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
