file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/campaign_test.cc.o"
  "CMakeFiles/core_tests.dir/core/campaign_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/csv_export_test.cc.o"
  "CMakeFiles/core_tests.dir/core/csv_export_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/guardband_test.cc.o"
  "CMakeFiles/core_tests.dir/core/guardband_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/min_rdt_mc_test.cc.o"
  "CMakeFiles/core_tests.dir/core/min_rdt_mc_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/online_profiler_test.cc.o"
  "CMakeFiles/core_tests.dir/core/online_profiler_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/rdt_profiler_test.cc.o"
  "CMakeFiles/core_tests.dir/core/rdt_profiler_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/security_eval_test.cc.o"
  "CMakeFiles/core_tests.dir/core/security_eval_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/series_analysis_test.cc.o"
  "CMakeFiles/core_tests.dir/core/series_analysis_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/test_time_model_test.cc.o"
  "CMakeFiles/core_tests.dir/core/test_time_model_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
