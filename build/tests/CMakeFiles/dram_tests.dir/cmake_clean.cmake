file(REMOVE_RECURSE
  "CMakeFiles/dram_tests.dir/dram/bank_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/bank_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/device_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/device_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/device_timing_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/device_timing_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/organization_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/organization_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/prac_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/prac_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/refresh_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/refresh_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/retention_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/retention_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/row_mapping_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/row_mapping_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/timing_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/timing_test.cc.o.d"
  "CMakeFiles/dram_tests.dir/dram/types_test.cc.o"
  "CMakeFiles/dram_tests.dir/dram/types_test.cc.o.d"
  "dram_tests"
  "dram_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
