
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dram/bank_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/bank_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/bank_test.cc.o.d"
  "/root/repo/tests/dram/device_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/device_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/device_test.cc.o.d"
  "/root/repo/tests/dram/device_timing_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/device_timing_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/device_timing_test.cc.o.d"
  "/root/repo/tests/dram/organization_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/organization_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/organization_test.cc.o.d"
  "/root/repo/tests/dram/prac_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/prac_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/prac_test.cc.o.d"
  "/root/repo/tests/dram/refresh_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/refresh_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/refresh_test.cc.o.d"
  "/root/repo/tests/dram/retention_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/retention_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/retention_test.cc.o.d"
  "/root/repo/tests/dram/row_mapping_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/row_mapping_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/row_mapping_test.cc.o.d"
  "/root/repo/tests/dram/timing_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/timing_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/timing_test.cc.o.d"
  "/root/repo/tests/dram/types_test.cc" "tests/CMakeFiles/dram_tests.dir/dram/types_test.cc.o" "gcc" "tests/CMakeFiles/dram_tests.dir/dram/types_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vrd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/vrd_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bender/CMakeFiles/vrd_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/vrd/CMakeFiles/vrd_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vrd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/vrd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vrd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
