file(REMOVE_RECURSE
  "CMakeFiles/benchutil_tests.dir/benchutil/bench_util_test.cc.o"
  "CMakeFiles/benchutil_tests.dir/benchutil/bench_util_test.cc.o.d"
  "benchutil_tests"
  "benchutil_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchutil_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
