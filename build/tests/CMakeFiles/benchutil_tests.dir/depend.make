# Empty dependencies file for benchutil_tests.
# This may be replaced when dependencies are built.
