file(REMOVE_RECURSE
  "CMakeFiles/ecc_tests.dir/ecc/analysis_test.cc.o"
  "CMakeFiles/ecc_tests.dir/ecc/analysis_test.cc.o.d"
  "CMakeFiles/ecc_tests.dir/ecc/chipkill_test.cc.o"
  "CMakeFiles/ecc_tests.dir/ecc/chipkill_test.cc.o.d"
  "CMakeFiles/ecc_tests.dir/ecc/gf256_test.cc.o"
  "CMakeFiles/ecc_tests.dir/ecc/gf256_test.cc.o.d"
  "CMakeFiles/ecc_tests.dir/ecc/hamming_test.cc.o"
  "CMakeFiles/ecc_tests.dir/ecc/hamming_test.cc.o.d"
  "CMakeFiles/ecc_tests.dir/ecc/on_die_test.cc.o"
  "CMakeFiles/ecc_tests.dir/ecc/on_die_test.cc.o.d"
  "ecc_tests"
  "ecc_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
