file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/table_test.cc.o"
  "CMakeFiles/common_tests.dir/common/table_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/units_test.cc.o"
  "CMakeFiles/common_tests.dir/common/units_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
