# Empty compiler generated dependencies file for vrd_tests.
# This may be replaced when dependencies are built.
