file(REMOVE_RECURSE
  "CMakeFiles/vrd_tests.dir/vrd/catalog_property_test.cc.o"
  "CMakeFiles/vrd_tests.dir/vrd/catalog_property_test.cc.o.d"
  "CMakeFiles/vrd_tests.dir/vrd/chip_catalog_test.cc.o"
  "CMakeFiles/vrd_tests.dir/vrd/chip_catalog_test.cc.o.d"
  "CMakeFiles/vrd_tests.dir/vrd/trap_dynamics_test.cc.o"
  "CMakeFiles/vrd_tests.dir/vrd/trap_dynamics_test.cc.o.d"
  "CMakeFiles/vrd_tests.dir/vrd/trap_engine_test.cc.o"
  "CMakeFiles/vrd_tests.dir/vrd/trap_engine_test.cc.o.d"
  "vrd_tests"
  "vrd_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
