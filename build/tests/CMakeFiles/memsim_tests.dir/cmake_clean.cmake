file(REMOVE_RECURSE
  "CMakeFiles/memsim_tests.dir/memsim/mitigation_test.cc.o"
  "CMakeFiles/memsim_tests.dir/memsim/mitigation_test.cc.o.d"
  "CMakeFiles/memsim_tests.dir/memsim/system_test.cc.o"
  "CMakeFiles/memsim_tests.dir/memsim/system_test.cc.o.d"
  "CMakeFiles/memsim_tests.dir/memsim/workload_test.cc.o"
  "CMakeFiles/memsim_tests.dir/memsim/workload_test.cc.o.d"
  "memsim_tests"
  "memsim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
