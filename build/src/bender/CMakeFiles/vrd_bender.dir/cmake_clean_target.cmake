file(REMOVE_RECURSE
  "libvrd_bender.a"
)
