file(REMOVE_RECURSE
  "CMakeFiles/vrd_bender.dir/attack_patterns.cc.o"
  "CMakeFiles/vrd_bender.dir/attack_patterns.cc.o.d"
  "CMakeFiles/vrd_bender.dir/host.cc.o"
  "CMakeFiles/vrd_bender.dir/host.cc.o.d"
  "CMakeFiles/vrd_bender.dir/test_program.cc.o"
  "CMakeFiles/vrd_bender.dir/test_program.cc.o.d"
  "CMakeFiles/vrd_bender.dir/thermal.cc.o"
  "CMakeFiles/vrd_bender.dir/thermal.cc.o.d"
  "libvrd_bender.a"
  "libvrd_bender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_bender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
