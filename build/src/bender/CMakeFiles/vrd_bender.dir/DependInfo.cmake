
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bender/attack_patterns.cc" "src/bender/CMakeFiles/vrd_bender.dir/attack_patterns.cc.o" "gcc" "src/bender/CMakeFiles/vrd_bender.dir/attack_patterns.cc.o.d"
  "/root/repo/src/bender/host.cc" "src/bender/CMakeFiles/vrd_bender.dir/host.cc.o" "gcc" "src/bender/CMakeFiles/vrd_bender.dir/host.cc.o.d"
  "/root/repo/src/bender/test_program.cc" "src/bender/CMakeFiles/vrd_bender.dir/test_program.cc.o" "gcc" "src/bender/CMakeFiles/vrd_bender.dir/test_program.cc.o.d"
  "/root/repo/src/bender/thermal.cc" "src/bender/CMakeFiles/vrd_bender.dir/thermal.cc.o" "gcc" "src/bender/CMakeFiles/vrd_bender.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/vrd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/vrd_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
