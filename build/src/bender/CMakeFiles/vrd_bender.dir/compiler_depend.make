# Empty compiler generated dependencies file for vrd_bender.
# This may be replaced when dependencies are built.
