
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/bank.cc" "src/dram/CMakeFiles/vrd_dram.dir/bank.cc.o" "gcc" "src/dram/CMakeFiles/vrd_dram.dir/bank.cc.o.d"
  "/root/repo/src/dram/device.cc" "src/dram/CMakeFiles/vrd_dram.dir/device.cc.o" "gcc" "src/dram/CMakeFiles/vrd_dram.dir/device.cc.o.d"
  "/root/repo/src/dram/organization.cc" "src/dram/CMakeFiles/vrd_dram.dir/organization.cc.o" "gcc" "src/dram/CMakeFiles/vrd_dram.dir/organization.cc.o.d"
  "/root/repo/src/dram/retention.cc" "src/dram/CMakeFiles/vrd_dram.dir/retention.cc.o" "gcc" "src/dram/CMakeFiles/vrd_dram.dir/retention.cc.o.d"
  "/root/repo/src/dram/row_mapping.cc" "src/dram/CMakeFiles/vrd_dram.dir/row_mapping.cc.o" "gcc" "src/dram/CMakeFiles/vrd_dram.dir/row_mapping.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/dram/CMakeFiles/vrd_dram.dir/timing.cc.o" "gcc" "src/dram/CMakeFiles/vrd_dram.dir/timing.cc.o.d"
  "/root/repo/src/dram/types.cc" "src/dram/CMakeFiles/vrd_dram.dir/types.cc.o" "gcc" "src/dram/CMakeFiles/vrd_dram.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ecc/CMakeFiles/vrd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
