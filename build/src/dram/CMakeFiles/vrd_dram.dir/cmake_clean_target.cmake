file(REMOVE_RECURSE
  "libvrd_dram.a"
)
