# Empty compiler generated dependencies file for vrd_dram.
# This may be replaced when dependencies are built.
