file(REMOVE_RECURSE
  "CMakeFiles/vrd_dram.dir/bank.cc.o"
  "CMakeFiles/vrd_dram.dir/bank.cc.o.d"
  "CMakeFiles/vrd_dram.dir/device.cc.o"
  "CMakeFiles/vrd_dram.dir/device.cc.o.d"
  "CMakeFiles/vrd_dram.dir/organization.cc.o"
  "CMakeFiles/vrd_dram.dir/organization.cc.o.d"
  "CMakeFiles/vrd_dram.dir/retention.cc.o"
  "CMakeFiles/vrd_dram.dir/retention.cc.o.d"
  "CMakeFiles/vrd_dram.dir/row_mapping.cc.o"
  "CMakeFiles/vrd_dram.dir/row_mapping.cc.o.d"
  "CMakeFiles/vrd_dram.dir/timing.cc.o"
  "CMakeFiles/vrd_dram.dir/timing.cc.o.d"
  "CMakeFiles/vrd_dram.dir/types.cc.o"
  "CMakeFiles/vrd_dram.dir/types.cc.o.d"
  "libvrd_dram.a"
  "libvrd_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
