file(REMOVE_RECURSE
  "CMakeFiles/vrd_fault.dir/chip_catalog.cc.o"
  "CMakeFiles/vrd_fault.dir/chip_catalog.cc.o.d"
  "CMakeFiles/vrd_fault.dir/fault_profile.cc.o"
  "CMakeFiles/vrd_fault.dir/fault_profile.cc.o.d"
  "CMakeFiles/vrd_fault.dir/trap_engine.cc.o"
  "CMakeFiles/vrd_fault.dir/trap_engine.cc.o.d"
  "libvrd_fault.a"
  "libvrd_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
