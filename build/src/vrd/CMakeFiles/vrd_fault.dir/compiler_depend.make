# Empty compiler generated dependencies file for vrd_fault.
# This may be replaced when dependencies are built.
