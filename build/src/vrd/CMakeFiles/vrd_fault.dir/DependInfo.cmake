
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vrd/chip_catalog.cc" "src/vrd/CMakeFiles/vrd_fault.dir/chip_catalog.cc.o" "gcc" "src/vrd/CMakeFiles/vrd_fault.dir/chip_catalog.cc.o.d"
  "/root/repo/src/vrd/fault_profile.cc" "src/vrd/CMakeFiles/vrd_fault.dir/fault_profile.cc.o" "gcc" "src/vrd/CMakeFiles/vrd_fault.dir/fault_profile.cc.o.d"
  "/root/repo/src/vrd/trap_engine.cc" "src/vrd/CMakeFiles/vrd_fault.dir/trap_engine.cc.o" "gcc" "src/vrd/CMakeFiles/vrd_fault.dir/trap_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/vrd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/vrd_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
