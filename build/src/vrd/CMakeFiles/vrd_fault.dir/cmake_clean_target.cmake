file(REMOVE_RECURSE
  "libvrd_fault.a"
)
