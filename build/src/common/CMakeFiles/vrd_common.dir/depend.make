# Empty dependencies file for vrd_common.
# This may be replaced when dependencies are built.
