file(REMOVE_RECURSE
  "libvrd_common.a"
)
