file(REMOVE_RECURSE
  "CMakeFiles/vrd_common.dir/rng.cc.o"
  "CMakeFiles/vrd_common.dir/rng.cc.o.d"
  "CMakeFiles/vrd_common.dir/table.cc.o"
  "CMakeFiles/vrd_common.dir/table.cc.o.d"
  "libvrd_common.a"
  "libvrd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
