file(REMOVE_RECURSE
  "CMakeFiles/vrd_core.dir/campaign.cc.o"
  "CMakeFiles/vrd_core.dir/campaign.cc.o.d"
  "CMakeFiles/vrd_core.dir/csv_export.cc.o"
  "CMakeFiles/vrd_core.dir/csv_export.cc.o.d"
  "CMakeFiles/vrd_core.dir/guardband.cc.o"
  "CMakeFiles/vrd_core.dir/guardband.cc.o.d"
  "CMakeFiles/vrd_core.dir/min_rdt_mc.cc.o"
  "CMakeFiles/vrd_core.dir/min_rdt_mc.cc.o.d"
  "CMakeFiles/vrd_core.dir/online_profiler.cc.o"
  "CMakeFiles/vrd_core.dir/online_profiler.cc.o.d"
  "CMakeFiles/vrd_core.dir/rdt_profiler.cc.o"
  "CMakeFiles/vrd_core.dir/rdt_profiler.cc.o.d"
  "CMakeFiles/vrd_core.dir/security_eval.cc.o"
  "CMakeFiles/vrd_core.dir/security_eval.cc.o.d"
  "CMakeFiles/vrd_core.dir/series_analysis.cc.o"
  "CMakeFiles/vrd_core.dir/series_analysis.cc.o.d"
  "CMakeFiles/vrd_core.dir/test_time_model.cc.o"
  "CMakeFiles/vrd_core.dir/test_time_model.cc.o.d"
  "libvrd_core.a"
  "libvrd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
