# Empty compiler generated dependencies file for vrd_core.
# This may be replaced when dependencies are built.
