file(REMOVE_RECURSE
  "libvrd_core.a"
)
