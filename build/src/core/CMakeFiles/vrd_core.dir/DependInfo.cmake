
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/vrd_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/csv_export.cc" "src/core/CMakeFiles/vrd_core.dir/csv_export.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/csv_export.cc.o.d"
  "/root/repo/src/core/guardband.cc" "src/core/CMakeFiles/vrd_core.dir/guardband.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/guardband.cc.o.d"
  "/root/repo/src/core/min_rdt_mc.cc" "src/core/CMakeFiles/vrd_core.dir/min_rdt_mc.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/min_rdt_mc.cc.o.d"
  "/root/repo/src/core/online_profiler.cc" "src/core/CMakeFiles/vrd_core.dir/online_profiler.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/online_profiler.cc.o.d"
  "/root/repo/src/core/rdt_profiler.cc" "src/core/CMakeFiles/vrd_core.dir/rdt_profiler.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/rdt_profiler.cc.o.d"
  "/root/repo/src/core/security_eval.cc" "src/core/CMakeFiles/vrd_core.dir/security_eval.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/security_eval.cc.o.d"
  "/root/repo/src/core/series_analysis.cc" "src/core/CMakeFiles/vrd_core.dir/series_analysis.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/series_analysis.cc.o.d"
  "/root/repo/src/core/test_time_model.cc" "src/core/CMakeFiles/vrd_core.dir/test_time_model.cc.o" "gcc" "src/core/CMakeFiles/vrd_core.dir/test_time_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bender/CMakeFiles/vrd_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/vrd/CMakeFiles/vrd_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vrd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vrd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/vrd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
