# Empty compiler generated dependencies file for vrd_stats.
# This may be replaced when dependencies are built.
