file(REMOVE_RECURSE
  "CMakeFiles/vrd_stats.dir/autocorrelation.cc.o"
  "CMakeFiles/vrd_stats.dir/autocorrelation.cc.o.d"
  "CMakeFiles/vrd_stats.dir/bootstrap.cc.o"
  "CMakeFiles/vrd_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/vrd_stats.dir/chi_square.cc.o"
  "CMakeFiles/vrd_stats.dir/chi_square.cc.o.d"
  "CMakeFiles/vrd_stats.dir/descriptive.cc.o"
  "CMakeFiles/vrd_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/vrd_stats.dir/histogram.cc.o"
  "CMakeFiles/vrd_stats.dir/histogram.cc.o.d"
  "CMakeFiles/vrd_stats.dir/monte_carlo.cc.o"
  "CMakeFiles/vrd_stats.dir/monte_carlo.cc.o.d"
  "CMakeFiles/vrd_stats.dir/run_length.cc.o"
  "CMakeFiles/vrd_stats.dir/run_length.cc.o.d"
  "libvrd_stats.a"
  "libvrd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
