file(REMOVE_RECURSE
  "libvrd_stats.a"
)
