file(REMOVE_RECURSE
  "libvrd_ecc.a"
)
