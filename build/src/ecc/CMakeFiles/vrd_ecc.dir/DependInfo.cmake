
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/analysis.cc" "src/ecc/CMakeFiles/vrd_ecc.dir/analysis.cc.o" "gcc" "src/ecc/CMakeFiles/vrd_ecc.dir/analysis.cc.o.d"
  "/root/repo/src/ecc/chipkill.cc" "src/ecc/CMakeFiles/vrd_ecc.dir/chipkill.cc.o" "gcc" "src/ecc/CMakeFiles/vrd_ecc.dir/chipkill.cc.o.d"
  "/root/repo/src/ecc/gf256.cc" "src/ecc/CMakeFiles/vrd_ecc.dir/gf256.cc.o" "gcc" "src/ecc/CMakeFiles/vrd_ecc.dir/gf256.cc.o.d"
  "/root/repo/src/ecc/hamming.cc" "src/ecc/CMakeFiles/vrd_ecc.dir/hamming.cc.o" "gcc" "src/ecc/CMakeFiles/vrd_ecc.dir/hamming.cc.o.d"
  "/root/repo/src/ecc/on_die.cc" "src/ecc/CMakeFiles/vrd_ecc.dir/on_die.cc.o" "gcc" "src/ecc/CMakeFiles/vrd_ecc.dir/on_die.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
