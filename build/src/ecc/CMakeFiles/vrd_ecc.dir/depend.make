# Empty dependencies file for vrd_ecc.
# This may be replaced when dependencies are built.
