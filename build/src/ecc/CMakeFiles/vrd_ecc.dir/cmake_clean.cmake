file(REMOVE_RECURSE
  "CMakeFiles/vrd_ecc.dir/analysis.cc.o"
  "CMakeFiles/vrd_ecc.dir/analysis.cc.o.d"
  "CMakeFiles/vrd_ecc.dir/chipkill.cc.o"
  "CMakeFiles/vrd_ecc.dir/chipkill.cc.o.d"
  "CMakeFiles/vrd_ecc.dir/gf256.cc.o"
  "CMakeFiles/vrd_ecc.dir/gf256.cc.o.d"
  "CMakeFiles/vrd_ecc.dir/hamming.cc.o"
  "CMakeFiles/vrd_ecc.dir/hamming.cc.o.d"
  "CMakeFiles/vrd_ecc.dir/on_die.cc.o"
  "CMakeFiles/vrd_ecc.dir/on_die.cc.o.d"
  "libvrd_ecc.a"
  "libvrd_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
