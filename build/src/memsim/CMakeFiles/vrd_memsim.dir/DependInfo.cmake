
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/mitigation.cc" "src/memsim/CMakeFiles/vrd_memsim.dir/mitigation.cc.o" "gcc" "src/memsim/CMakeFiles/vrd_memsim.dir/mitigation.cc.o.d"
  "/root/repo/src/memsim/system.cc" "src/memsim/CMakeFiles/vrd_memsim.dir/system.cc.o" "gcc" "src/memsim/CMakeFiles/vrd_memsim.dir/system.cc.o.d"
  "/root/repo/src/memsim/workload.cc" "src/memsim/CMakeFiles/vrd_memsim.dir/workload.cc.o" "gcc" "src/memsim/CMakeFiles/vrd_memsim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/vrd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/vrd_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
