file(REMOVE_RECURSE
  "libvrd_memsim.a"
)
