# Empty dependencies file for vrd_memsim.
# This may be replaced when dependencies are built.
