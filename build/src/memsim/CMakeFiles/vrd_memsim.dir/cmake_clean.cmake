file(REMOVE_RECURSE
  "CMakeFiles/vrd_memsim.dir/mitigation.cc.o"
  "CMakeFiles/vrd_memsim.dir/mitigation.cc.o.d"
  "CMakeFiles/vrd_memsim.dir/system.cc.o"
  "CMakeFiles/vrd_memsim.dir/system.cc.o.d"
  "CMakeFiles/vrd_memsim.dir/workload.cc.o"
  "CMakeFiles/vrd_memsim.dir/workload.cc.o.d"
  "libvrd_memsim.a"
  "libvrd_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrd_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
