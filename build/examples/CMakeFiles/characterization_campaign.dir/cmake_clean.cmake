file(REMOVE_RECURSE
  "CMakeFiles/characterization_campaign.dir/characterization_campaign.cpp.o"
  "CMakeFiles/characterization_campaign.dir/characterization_campaign.cpp.o.d"
  "characterization_campaign"
  "characterization_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterization_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
