# Empty compiler generated dependencies file for characterization_campaign.
# This may be replaced when dependencies are built.
