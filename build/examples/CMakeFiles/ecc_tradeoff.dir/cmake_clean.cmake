file(REMOVE_RECURSE
  "CMakeFiles/ecc_tradeoff.dir/ecc_tradeoff.cpp.o"
  "CMakeFiles/ecc_tradeoff.dir/ecc_tradeoff.cpp.o.d"
  "ecc_tradeoff"
  "ecc_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
