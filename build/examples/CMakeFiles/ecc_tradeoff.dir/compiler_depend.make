# Empty compiler generated dependencies file for ecc_tradeoff.
# This may be replaced when dependencies are built.
