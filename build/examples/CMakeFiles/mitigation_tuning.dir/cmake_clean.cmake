file(REMOVE_RECURSE
  "CMakeFiles/mitigation_tuning.dir/mitigation_tuning.cpp.o"
  "CMakeFiles/mitigation_tuning.dir/mitigation_tuning.cpp.o.d"
  "mitigation_tuning"
  "mitigation_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
