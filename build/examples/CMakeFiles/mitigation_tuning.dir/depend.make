# Empty dependencies file for mitigation_tuning.
# This may be replaced when dependencies are built.
