# Empty compiler generated dependencies file for mitigation_tuning.
# This may be replaced when dependencies are built.
