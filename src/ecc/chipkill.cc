#include "ecc/chipkill.h"

#include "common/error.h"

namespace vrddram::ecc {

CodewordSsc ChipkillSsc::Encode(
    const std::array<std::uint8_t, 16>& data) const {
  const Gf256& gf = Gf256::Instance();
  CodewordSsc word;
  for (std::size_t i = 0; i < kDataSymbols; ++i) {
    word.symbols[i] = data[i];
  }
  // Solve for check symbols c16, c17 such that
  //   S0 = sum_i c_i           = 0
  //   S1 = sum_i c_i * alpha^i = 0
  std::uint8_t s0 = 0;
  std::uint8_t s1 = 0;
  for (std::size_t i = 0; i < kDataSymbols; ++i) {
    s0 = gf.Add(s0, data[i]);
    s1 = gf.Add(s1, gf.Mul(data[i], gf.Exp(static_cast<int>(i))));
  }
  // c16 + c17 = s0 ; c16*a^16 + c17*a^17 = s1
  // => c17 = (s1 + s0*a^16) / (a^16 + a^17), c16 = s0 + c17.
  const std::uint8_t a16 = gf.Exp(16);
  const std::uint8_t a17 = gf.Exp(17);
  const std::uint8_t denom = gf.Add(a16, a17);
  const std::uint8_t c17 =
      gf.Div(gf.Add(s1, gf.Mul(s0, a16)), denom);
  const std::uint8_t c16 = gf.Add(s0, c17);
  word.symbols[16] = c16;
  word.symbols[17] = c17;
  return word;
}

SscDecodeResult ChipkillSsc::Decode(const CodewordSsc& word) const {
  const Gf256& gf = Gf256::Instance();
  std::uint8_t s0 = 0;
  std::uint8_t s1 = 0;
  for (std::size_t i = 0; i < kTotalSymbols; ++i) {
    s0 = gf.Add(s0, word.symbols[i]);
    s1 = gf.Add(s1, gf.Mul(word.symbols[i], gf.Exp(static_cast<int>(i))));
  }

  SscDecodeResult result;
  auto copy_data = [&](const CodewordSsc& from) {
    for (std::size_t i = 0; i < kDataSymbols; ++i) {
      result.data[i] = from.symbols[i];
    }
  };

  if (s0 == 0 && s1 == 0) {
    result.status = DecodeStatus::kClean;
    copy_data(word);
    return result;
  }
  if (s0 != 0 && s1 != 0) {
    // Single error of value s0 at position log(S1/S0).
    const int position = gf.Log(gf.Div(s1, s0));
    if (position >= 0 &&
        position < static_cast<int>(kTotalSymbols)) {
      CodewordSsc fixed = word;
      fixed.symbols[static_cast<std::size_t>(position)] =
          gf.Add(fixed.symbols[static_cast<std::size_t>(position)], s0);
      result.status = DecodeStatus::kCorrected;
      copy_data(fixed);
      return result;
    }
  }
  // S0 == 0 xor S1 == 0, or a position outside the (shortened)
  // codeword: at least two symbols are in error.
  result.status = DecodeStatus::kDetected;
  copy_data(word);
  return result;
}

}  // namespace vrddram::ecc
