#include "ecc/analysis.h"

#include <cmath>

#include "common/error.h"

namespace vrddram::ecc {

double BinomialPmf(std::size_t n, std::size_t k, double p) {
  VRD_FATAL_IF(p < 0.0 || p > 1.0, "probability out of range");
  if (k > n) {
    return 0.0;
  }
  // Work in log space for numerical robustness.
  const double log_choose = std::lgamma(static_cast<double>(n) + 1.0) -
                            std::lgamma(static_cast<double>(k) + 1.0) -
                            std::lgamma(static_cast<double>(n - k) + 1.0);
  double log_p = 0.0;
  if (k > 0) {
    if (p == 0.0) {
      return 0.0;
    }
    log_p += static_cast<double>(k) * std::log(p);
  }
  if (n - k > 0) {
    if (p == 1.0) {
      return 0.0;
    }
    log_p += static_cast<double>(n - k) * std::log1p(-p);
  }
  return std::exp(log_choose + log_p);
}

double BinomialTail(std::size_t n, std::size_t k, double p) {
  if (k == 0) {
    return 1.0;
  }
  // P(X >= k) = 1 - sum_{j<k} pmf(j); the head is tiny terms summed in
  // increasing j, fine at these rates.
  double head = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    head += BinomialPmf(n, j, p);
  }
  return std::max(0.0, 1.0 - head);
}

std::string ToString(CodeKind kind) {
  switch (kind) {
    case CodeKind::kSec: return "SEC";
    case CodeKind::kSecded: return "SECDED";
    case CodeKind::kChipkill: return "Chipkill-like (SSC)";
  }
  throw PanicError("unknown code kind");
}

ErrorProbabilities AnalyzeCode(CodeKind kind, double ber) {
  ErrorProbabilities out;
  switch (kind) {
    case CodeKind::kSec: {
      const double ge2 = BinomialTail(72, 2, ber);
      out.uncorrectable = ge2;
      out.undetectable = ge2;  // no detection capability
      out.detectable_uncorrectable = -1.0;
      break;
    }
    case CodeKind::kSecded: {
      out.uncorrectable = BinomialTail(72, 2, ber);
      out.undetectable = BinomialTail(72, 3, ber);
      out.detectable_uncorrectable = BinomialPmf(72, 2, ber);
      break;
    }
    case CodeKind::kChipkill: {
      const double symbol_error = 1.0 - std::pow(1.0 - ber, 8.0);
      const double ge2 = BinomialTail(18, 2, symbol_error);
      out.uncorrectable = ge2;
      // Multi-symbol errors alias to valid single-symbol corrections
      // with high probability; the paper conservatively reports them
      // as undetectable.
      out.undetectable = ge2;
      out.detectable_uncorrectable = -1.0;
      break;
    }
  }
  return out;
}

}  // namespace vrddram::ecc
