#include "ecc/on_die.h"

#include <cstring>

#include "common/error.h"

namespace vrddram::ecc {

const Hamming72& OnDieSec::Codec() {
  static const Hamming72 codec;
  return codec;
}

std::vector<std::uint8_t> OnDieSec::EncodeParity(
    std::span<const std::uint8_t> data) {
  VRD_FATAL_IF(data.size() % 8 != 0,
               "on-die ECC rows must be multiples of 8 bytes");
  std::vector<std::uint8_t> parity(data.size() / 8);
  for (std::size_t word = 0; word < parity.size(); ++word) {
    std::uint64_t value = 0;
    std::memcpy(&value, data.data() + word * 8, 8);
    parity[word] = Codec().Encode(value).check;
  }
  return parity;
}

OnDieSec::DecodeStats OnDieSec::DecodeInPlace(
    std::span<std::uint8_t> data, std::span<const std::uint8_t> parity) {
  VRD_FATAL_IF(data.size() % 8 != 0,
               "on-die ECC rows must be multiples of 8 bytes");
  VRD_FATAL_IF(parity.size() != data.size() / 8,
               "parity length mismatch");
  DecodeStats stats;
  for (std::size_t word = 0; word < parity.size(); ++word) {
    Codeword72 codeword;
    std::memcpy(&codeword.data, data.data() + word * 8, 8);
    codeword.check = parity[word];
    // Full Hsiao decode for the internal error telemetry; the host
    // still only ever sees corrected-or-raw data (SEC semantics).
    const DecodeResult result = Codec().Decode(codeword);
    switch (result.status) {
      case DecodeStatus::kCorrected:
        if (result.data != codeword.data) {
          std::memcpy(data.data() + word * 8, &result.data, 8);
        }
        ++stats.corrected_words;
        break;
      case DecodeStatus::kDetected:
        ++stats.uncorrectable_words;  // data passed through unchanged
        break;
      default:
        break;
    }
  }
  return stats;
}

}  // namespace vrddram::ecc
