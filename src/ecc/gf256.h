/**
 * @file
 * GF(2^8) arithmetic (polynomial basis, primitive polynomial 0x11D)
 * used by the Chipkill-like single-symbol-correcting code.
 */
#ifndef VRDDRAM_ECC_GF256_H
#define VRDDRAM_ECC_GF256_H

#include <cstdint>

namespace vrddram::ecc {

class Gf256 {
 public:
  Gf256();

  std::uint8_t Add(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;
  }
  std::uint8_t Mul(std::uint8_t a, std::uint8_t b) const;
  std::uint8_t Div(std::uint8_t a, std::uint8_t b) const;
  std::uint8_t Inv(std::uint8_t a) const;
  /// alpha^power for the primitive element alpha = 0x02.
  std::uint8_t Exp(int power) const;
  /// Discrete log base alpha; a must be nonzero.
  int Log(std::uint8_t a) const;

  /// Singleton instance (tables built once).
  static const Gf256& Instance();

 private:
  std::uint8_t exp_[512];
  int log_[256];
};

}  // namespace vrddram::ecc

#endif  // VRDDRAM_ECC_GF256_H
