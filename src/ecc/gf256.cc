#include "ecc/gf256.h"

#include "common/error.h"

namespace vrddram::ecc {

Gf256::Gf256() {
  // Generate exp/log tables for alpha = 0x02 with the AES-style
  // primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
  unsigned value = 1;
  for (int i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(value);
    log_[value] = i;
    value <<= 1;
    if (value & 0x100u) {
      value ^= 0x11Du;
    }
  }
  for (int i = 255; i < 512; ++i) {
    exp_[i] = exp_[i - 255];
  }
  log_[0] = -1;
}

std::uint8_t Gf256::Mul(std::uint8_t a, std::uint8_t b) const {
  if (a == 0 || b == 0) {
    return 0;
  }
  return exp_[log_[a] + log_[b]];
}

std::uint8_t Gf256::Div(std::uint8_t a, std::uint8_t b) const {
  VRD_FATAL_IF(b == 0, "GF(256) division by zero");
  if (a == 0) {
    return 0;
  }
  return exp_[log_[a] - log_[b] + 255];
}

std::uint8_t Gf256::Inv(std::uint8_t a) const {
  VRD_FATAL_IF(a == 0, "GF(256) inverse of zero");
  return exp_[255 - log_[a]];
}

std::uint8_t Gf256::Exp(int power) const {
  int p = power % 255;
  if (p < 0) {
    p += 255;
  }
  return exp_[p];
}

int Gf256::Log(std::uint8_t a) const {
  VRD_FATAL_IF(a == 0, "GF(256) log of zero");
  return log_[a];
}

const Gf256& Gf256::Instance() {
  static const Gf256 instance;
  return instance;
}

}  // namespace vrddram::ecc
