/**
 * @file
 * Hamming-style (72,64) codes over one 64-bit data word: the SEC and
 * SECDED configurations of §6.4 / Table 3. The code is a Hsiao code:
 * all parity-check columns have odd weight, so any double-bit error
 * produces an even-weight syndrome and is detected (SECDED); the SEC
 * configuration decodes the same codeword but, lacking the double-error
 * rule, silently miscorrects double errors.
 */
#ifndef VRDDRAM_ECC_HAMMING_H
#define VRDDRAM_ECC_HAMMING_H

#include <array>
#include <cstdint>

namespace vrddram::ecc {

/// 72-bit codeword: 64 data bits + 8 check bits.
struct Codeword72 {
  std::uint64_t data = 0;
  std::uint8_t check = 0;

  bool GetBit(std::size_t position) const;
  void FlipBit(std::size_t position);
  friend bool operator==(const Codeword72&, const Codeword72&) = default;
};

enum class DecodeStatus : std::uint8_t {
  kClean,           ///< no error detected
  kCorrected,       ///< single error corrected
  kDetected,        ///< uncorrectable error detected (SECDED only)
  kMiscorrected,    ///< silently produced wrong data (known only to
                    ///< callers holding the reference data; decoders
                    ///< themselves report kCorrected)
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  std::uint64_t data = 0;
};

/**
 * Hsiao (72,64) codec. Decode() implements the SECDED rules;
 * DecodeSecOnly() implements a plain SEC decoder on the same code
 * (corrects whatever single-bit flip the syndrome points at, never
 * declares detection).
 */
class Hamming72 {
 public:
  Hamming72();

  Codeword72 Encode(std::uint64_t data) const;
  /// SECDED decode.
  DecodeResult Decode(const Codeword72& word) const;
  /// SEC-only decode (no double-error detection).
  DecodeResult DecodeSecOnly(const Codeword72& word) const;

  /// Parity-check column of a codeword bit position (tests).
  std::uint8_t ColumnOf(std::size_t position) const {
    return columns_[position];
  }

 private:
  std::uint8_t Syndrome(const Codeword72& word) const;

  /// columns_[0..63]: data bits; columns_[64..71]: check bits.
  std::array<std::uint8_t, 72> columns_{};
};

}  // namespace vrddram::ecc

#endif  // VRDDRAM_ECC_HAMMING_H
