#include "ecc/hamming.h"

#include <bit>

#include "common/error.h"

namespace vrddram::ecc {

bool Codeword72::GetBit(std::size_t position) const {
  VRD_ASSERT(position < 72);
  if (position < 64) {
    return (data >> position) & 1;
  }
  return (check >> (position - 64)) & 1;
}

void Codeword72::FlipBit(std::size_t position) {
  VRD_ASSERT(position < 72);
  if (position < 64) {
    data ^= (1ull << position);
  } else {
    check ^= static_cast<std::uint8_t>(1u << (position - 64));
  }
}

Hamming72::Hamming72() {
  // Hsiao construction: 64 distinct odd-weight columns of weight >= 3
  // for the data bits (all 56 weight-3 columns plus 8 weight-5
  // columns), and unit columns for the check bits.
  std::size_t next = 0;
  for (int weight : {3, 5}) {
    for (unsigned candidate = 0; candidate < 256 && next < 64;
         ++candidate) {
      if (std::popcount(candidate) == weight) {
        columns_[next++] = static_cast<std::uint8_t>(candidate);
      }
    }
  }
  VRD_ASSERT(next == 64);
  for (std::size_t i = 0; i < 8; ++i) {
    columns_[64 + i] = static_cast<std::uint8_t>(1u << i);
  }
}

Codeword72 Hamming72::Encode(std::uint64_t data) const {
  Codeword72 word;
  word.data = data;
  std::uint8_t check = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    if ((data >> i) & 1) {
      check ^= columns_[i];
    }
  }
  word.check = check;
  return word;
}

std::uint8_t Hamming72::Syndrome(const Codeword72& word) const {
  std::uint8_t syndrome = 0;
  for (std::size_t i = 0; i < 72; ++i) {
    if (word.GetBit(i)) {
      syndrome ^= columns_[i];
    }
  }
  return syndrome;
}

DecodeResult Hamming72::Decode(const Codeword72& word) const {
  const std::uint8_t syndrome = Syndrome(word);
  DecodeResult result;
  result.data = word.data;
  if (syndrome == 0) {
    result.status = DecodeStatus::kClean;
    return result;
  }
  for (std::size_t i = 0; i < 72; ++i) {
    if (columns_[i] == syndrome) {
      Codeword72 fixed = word;
      fixed.FlipBit(i);
      result.status = DecodeStatus::kCorrected;
      result.data = fixed.data;
      return result;
    }
  }
  // All columns are odd weight: a double error yields an even-weight
  // syndrome that matches no column; odd-weight non-column syndromes
  // (>= 3 errors) are likewise flagged.
  result.status = DecodeStatus::kDetected;
  return result;
}

DecodeResult Hamming72::DecodeSecOnly(const Codeword72& word) const {
  const std::uint8_t syndrome = Syndrome(word);
  DecodeResult result;
  result.data = word.data;
  if (syndrome == 0) {
    result.status = DecodeStatus::kClean;
    return result;
  }
  for (std::size_t i = 0; i < 72; ++i) {
    if (columns_[i] == syndrome) {
      Codeword72 fixed = word;
      fixed.FlipBit(i);
      result.status = DecodeStatus::kCorrected;
      result.data = fixed.data;
      return result;
    }
  }
  // A SEC decoder has no detection rule: an unmatched syndrome means
  // it silently passes the (corrupted) data through.
  result.status = DecodeStatus::kClean;
  return result;
}

}  // namespace vrddram::ecc
