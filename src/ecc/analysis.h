/**
 * @file
 * Analytic error-probability model behind Table 3: probabilities of
 * uncorrectable / undetectable / detectable-but-uncorrectable errors
 * for SEC, SECDED, and Chipkill-like SSC codes under an i.i.d. bit
 * error rate (the paper uses the worst empirically observed rate,
 * 7.6e-5, from 5 bitflips in a 64 Kibit row at a 10% guardband).
 */
#ifndef VRDDRAM_ECC_ANALYSIS_H
#define VRDDRAM_ECC_ANALYSIS_H

#include <cstddef>
#include <string>

namespace vrddram::ecc {

/// Binomial pmf: P(X == k) for X ~ Binomial(n, p).
double BinomialPmf(std::size_t n, std::size_t k, double p);

/// Binomial upper tail: P(X >= k).
double BinomialTail(std::size_t n, std::size_t k, double p);

enum class CodeKind : std::uint8_t {
  kSec,       ///< single error correction, 72-bit codeword
  kSecded,    ///< SEC + double error detection, 72-bit codeword
  kChipkill,  ///< single symbol correction, 18 x 8-bit symbols
};

std::string ToString(CodeKind kind);

/// One row of Table 3.
struct ErrorProbabilities {
  double uncorrectable = 0.0;
  double undetectable = 0.0;
  /// Negative when the category does not exist for the code ("N/A").
  double detectable_uncorrectable = -1.0;
};

/**
 * Analytic per-codeword probabilities at bit error rate `ber`,
 * matching the paper's model: SEC treats every >= 2-bit error as
 * silent corruption; SECDED detects 2-bit errors and is silently
 * beaten by >= 3; SSC fails silently once >= 2 of its 18 symbols are
 * hit (symbol error rate 1 - (1-ber)^8).
 */
ErrorProbabilities AnalyzeCode(CodeKind kind, double ber);

/// The worst bit error rate observed in the paper's §6.4 experiment:
/// 5 unique bitflips in a 64 Kibit (65,536-bit) row.
inline constexpr double kPaperWorstBer = 5.0 / 65536.0;  // ~7.6e-5

}  // namespace vrddram::ecc

#endif  // VRDDRAM_ECC_ANALYSIS_H
