/**
 * @file
 * On-die ECC in the HBM2 style: a SEC code over each 64-bit word of a
 * row, with the parity stored alongside the data (invisible to the
 * host). The device model computes parity at write time and decodes at
 * read time; §3.1's methodology disables it via the mode register
 * precisely because it would otherwise mask read-disturbance bitflips.
 */
#ifndef VRDDRAM_ECC_ON_DIE_H
#define VRDDRAM_ECC_ON_DIE_H

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/hamming.h"

namespace vrddram::ecc {

/// Per-row on-die SEC: one Hamming(72,64) codeword per 8 data bytes.
class OnDieSec {
 public:
  /// Parity bytes for `data` (one byte per 8 data bytes; data length
  /// must be a multiple of 8).
  static std::vector<std::uint8_t> EncodeParity(
      std::span<const std::uint8_t> data);

  struct DecodeStats {
    std::size_t corrected_words = 0;
    std::size_t uncorrectable_words = 0;
  };

  /**
   * Decode `data` in place against `parity`. Single-bit errors per
   * word (in data or parity) are corrected; multi-bit words are left
   * unchanged and counted as uncorrectable (a plain SEC code cannot
   * flag them to the host).
   */
  static DecodeStats DecodeInPlace(std::span<std::uint8_t> data,
                                   std::span<const std::uint8_t> parity);

 private:
  static const Hamming72& Codec();
};

}  // namespace vrddram::ecc

#endif  // VRDDRAM_ECC_ON_DIE_H
