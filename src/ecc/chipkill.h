/**
 * @file
 * Chipkill-like single-symbol-correcting (SSC) code (§6.4 / Table 3):
 * a shortened Reed-Solomon [18,16] code over GF(2^8) - 16 data symbols
 * plus 2 check symbols in a 144-bit codeword of 18 8-bit symbols. One
 * arbitrary symbol error (up to 8 adjacent bits: a whole x8 chip's
 * contribution to the beat) is corrected; most multi-symbol errors are
 * either miscorrected or aliased, which is why Table 3 reports the SSC
 * undetectable probability equal to its uncorrectable probability.
 */
#ifndef VRDDRAM_ECC_CHIPKILL_H
#define VRDDRAM_ECC_CHIPKILL_H

#include <array>
#include <cstdint>

#include "ecc/gf256.h"
#include "ecc/hamming.h"  // DecodeStatus

namespace vrddram::ecc {

/// 18-symbol codeword: symbols 0..15 data, 16..17 check.
struct CodewordSsc {
  std::array<std::uint8_t, 18> symbols{};
  friend bool operator==(const CodewordSsc&, const CodewordSsc&) = default;
};

struct SscDecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  std::array<std::uint8_t, 16> data{};
};

class ChipkillSsc {
 public:
  static constexpr std::size_t kDataSymbols = 16;
  static constexpr std::size_t kTotalSymbols = 18;

  CodewordSsc Encode(const std::array<std::uint8_t, 16>& data) const;

  /**
   * Single-symbol correction: syndromes S0 = sum(c_i), S1 =
   * sum(c_i * alpha^i). Both zero: clean. Both nonzero with a valid
   * position: correct. Otherwise: detected.
   */
  SscDecodeResult Decode(const CodewordSsc& word) const;
};

}  // namespace vrddram::ecc

#endif  // VRDDRAM_ECC_CHIPKILL_H
