#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vrddram::stats {

double Histogram::Fraction(std::size_t b) const {
  VRD_ASSERT(b < bins.size());
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(bins[b].count) / static_cast<double>(total);
}

std::size_t Histogram::ModeBin() const {
  VRD_ASSERT(!bins.empty());
  std::size_t best = 0;
  for (std::size_t b = 1; b < bins.size(); ++b) {
    if (bins[b].count > bins[best].count) {
      best = b;
    }
  }
  return best;
}

std::size_t CountUnique(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted.size();
}

std::size_t CountUnique(std::span<const std::int64_t> xs) {
  std::vector<std::int64_t> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted.size();
}

Histogram BuildHistogram(std::span<const double> xs, std::size_t num_bins) {
  VRD_FATAL_IF(xs.empty(), "histogram of empty series");
  VRD_FATAL_IF(num_bins == 0, "histogram needs at least one bin");
  const double lo = *std::min_element(xs.begin(), xs.end());
  const double hi = *std::max_element(xs.begin(), xs.end());

  Histogram hist;
  hist.bins.resize(num_bins);
  const double width = (hi > lo)
      ? (hi - lo) / static_cast<double>(num_bins)
      : 1.0;
  for (std::size_t b = 0; b < num_bins; ++b) {
    hist.bins[b].lo = lo + width * static_cast<double>(b);
    hist.bins[b].hi = lo + width * static_cast<double>(b + 1);
  }
  hist.bins.back().hi = std::max(hist.bins.back().hi, hi);

  for (double x : xs) {
    auto b = static_cast<std::size_t>((x - lo) / width);
    if (b >= num_bins) {
      b = num_bins - 1;  // x == hi lands in the closed last bin
    }
    ++hist.bins[b].count;
    ++hist.total;
  }
  return hist;
}

Histogram BuildUniqueValueHistogram(std::span<const double> xs) {
  const std::size_t uniq = CountUnique(xs);
  return BuildHistogram(xs, std::max<std::size_t>(uniq, 1));
}

std::size_t CountModes(const Histogram& hist, double min_prominence) {
  VRD_ASSERT(!hist.bins.empty());
  // Smooth with a 3-tap box filter to suppress quantization jitter.
  const std::size_t n = hist.bins.size();
  std::vector<double> smooth(n, 0.0);
  for (std::size_t b = 0; b < n; ++b) {
    double sum = static_cast<double>(hist.bins[b].count);
    double taps = 1.0;
    if (b > 0) {
      sum += static_cast<double>(hist.bins[b - 1].count);
      taps += 1.0;
    }
    if (b + 1 < n) {
      sum += static_cast<double>(hist.bins[b + 1].count);
      taps += 1.0;
    }
    smooth[b] = sum / taps;
  }
  const double peak = *std::max_element(smooth.begin(), smooth.end());
  if (peak <= 0.0) {
    return 0;
  }
  const double floor_height = peak * min_prominence;

  // Count maximal plateaus that are strict local maxima above the
  // prominence floor and separated by a dip below half their height.
  std::size_t modes = 0;
  double last_peak_height = 0.0;
  bool in_valley = true;
  for (std::size_t b = 0; b < n; ++b) {
    const double left = (b > 0) ? smooth[b - 1] : -1.0;
    const double right = (b + 1 < n) ? smooth[b + 1] : -1.0;
    const bool local_max = smooth[b] >= left && smooth[b] >= right &&
                           smooth[b] > floor_height;
    if (local_max && in_valley) {
      ++modes;
      last_peak_height = smooth[b];
      in_valley = false;
    } else if (!in_valley && smooth[b] < 0.5 * last_peak_height) {
      in_valley = true;
    }
  }
  return modes;
}

}  // namespace vrddram::stats
