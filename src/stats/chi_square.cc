#include "stats/chi_square.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"

namespace vrddram::stats {

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

namespace {

// Series expansion of P(a, x), valid and fast for x < a + 1.
double GammaPSeries(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-14) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued-fraction expansion of Q(a, x), valid for x >= a + 1
// (modified Lentz method).
double GammaQContinuedFraction(double a, double x) {
  const double gln = std::lgamma(a);
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) {
      d = tiny;
    }
    c = b + an / c;
    if (std::abs(c) < tiny) {
      c = tiny;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-14) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  VRD_FATAL_IF(a <= 0.0 || x < 0.0, "invalid incomplete-gamma arguments");
  if (x == 0.0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    return GammaPSeries(a, x);
  }
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  VRD_FATAL_IF(a <= 0.0 || x < 0.0, "invalid incomplete-gamma arguments");
  if (x == 0.0) {
    return 1.0;
  }
  if (x < a + 1.0) {
    return 1.0 - GammaPSeries(a, x);
  }
  return GammaQContinuedFraction(a, x);
}

double ChiSquarePValue(double statistic, std::size_t dof) {
  VRD_FATAL_IF(dof == 0, "chi-square with zero degrees of freedom");
  if (statistic <= 0.0) {
    return 1.0;
  }
  return RegularizedGammaQ(static_cast<double>(dof) / 2.0, statistic / 2.0);
}

namespace {

// Pool observed/expected pairs until each expected count reaches
// min_expected, then compute the Pearson statistic and p-value.
GoodnessOfFit FinishTest(const std::vector<double>& observed,
                         const std::vector<double>& expected,
                         double min_expected, double fitted_mean,
                         double fitted_stddev) {
  std::vector<double> obs_pooled;
  std::vector<double> exp_pooled;
  double obs_acc = 0.0;
  double exp_acc = 0.0;
  for (std::size_t b = 0; b < observed.size(); ++b) {
    obs_acc += observed[b];
    exp_acc += expected[b];
    if (exp_acc >= min_expected) {
      obs_pooled.push_back(obs_acc);
      exp_pooled.push_back(exp_acc);
      obs_acc = 0.0;
      exp_acc = 0.0;
    }
  }
  if (exp_acc > 0.0 || obs_acc > 0.0) {
    if (exp_pooled.empty()) {
      obs_pooled.push_back(obs_acc);
      exp_pooled.push_back(std::max(exp_acc, 1e-9));
    } else {
      obs_pooled.back() += obs_acc;
      exp_pooled.back() += exp_acc;
    }
  }

  GoodnessOfFit out;
  out.fitted_mean = fitted_mean;
  out.fitted_stddev = fitted_stddev;
  double stat = 0.0;
  for (std::size_t b = 0; b < obs_pooled.size(); ++b) {
    const double d = obs_pooled[b] - exp_pooled[b];
    stat += d * d / exp_pooled[b];
  }
  out.statistic = stat;
  out.bins_used = obs_pooled.size();
  const std::size_t reduction = 3;  // mean + stddev estimated, -1
  out.dof = (out.bins_used > reduction) ? out.bins_used - reduction : 1;
  out.p_value = ChiSquarePValue(out.statistic, out.dof);
  return out;
}

}  // namespace

GoodnessOfFit ChiSquareNormalTestBinned(std::span<const double> xs,
                                        double min_expected) {
  VRD_FATAL_IF(xs.size() < 8, "chi-square test needs at least 8 samples");
  const double mean = Mean(xs);
  const double stddev = SampleStddev(xs);
  const auto n = static_cast<double>(xs.size());
  if (stddev == 0.0) {
    GoodnessOfFit out;
    out.fitted_mean = mean;
    out.p_value = 1.0;
    out.dof = 1;
    out.bins_used = 1;
    return out;
  }

  // Categories are the observed unique values. The measurement process
  // quantizes a latent value up to the next grid point, so a sample is
  // recorded as v_i exactly when the latent value lies in
  // (v_{i-1}, v_i]; edge categories absorb the open tails.
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> values;
  std::vector<double> counts;
  for (const double x : sorted) {
    if (values.empty() || x != values.back()) {
      values.push_back(x);
      counts.push_back(1.0);
    } else {
      counts.back() += 1.0;
    }
  }

  // Quantization step: the smallest gap between unique values.
  double step = 0.0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double gap = values[i] - values[i - 1];
    if (step == 0.0 || gap < step) {
      step = gap;
    }
  }

  // Sheppard's corrections: ceiling-to-grid shifts the observed mean
  // up by step/2 and inflates the variance by step^2/12 relative to
  // the latent continuous distribution the test is about.
  const double latent_mean = mean - step / 2.0;
  const double latent_var =
      std::max(stddev * stddev - step * step / 12.0,
               0.25 * stddev * stddev);
  const double latent_stddev = std::sqrt(latent_var);

  std::vector<double> expected(values.size(), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double hi_cdf =
        (i + 1 == values.size())
            ? 1.0
            : NormalCdf((values[i] - latent_mean) / latent_stddev);
    const double lo_cdf =
        (i == 0) ? 0.0
                 : NormalCdf((values[i - 1] - latent_mean) /
                             latent_stddev);
    expected[i] = n * std::max(0.0, hi_cdf - lo_cdf);
  }
  return FinishTest(counts, expected, min_expected, mean, stddev);
}

GoodnessOfFit ChiSquareNormalTest(std::span<const double> xs,
                                  std::size_t num_bins,
                                  double min_expected) {
  VRD_FATAL_IF(xs.size() < 8, "chi-square test needs at least 8 samples");
  VRD_FATAL_IF(num_bins < 4, "chi-square test needs at least 4 bins");

  GoodnessOfFit out;
  out.fitted_mean = Mean(xs);
  out.fitted_stddev = SampleStddev(xs);
  const auto n = static_cast<double>(xs.size());

  if (out.fitted_stddev == 0.0) {
    // A degenerate (constant) series trivially "fits" the point mass.
    out.statistic = 0.0;
    out.dof = 1;
    out.p_value = 1.0;
    out.bins_used = 1;
    return out;
  }

  // Equal-probability bins of the fitted normal: each bin expects
  // n/num_bins samples, so pooling is rarely needed for large n.
  std::vector<double> observed(num_bins, 0.0);
  const double inv_prob = 1.0 / static_cast<double>(num_bins);
  for (double x : xs) {
    const double z = (x - out.fitted_mean) / out.fitted_stddev;
    const double u = NormalCdf(z);
    auto b = static_cast<std::size_t>(u / inv_prob);
    if (b >= num_bins) {
      b = num_bins - 1;
    }
    observed[b] += 1.0;
  }
  const std::vector<double> expected(num_bins, n * inv_prob);
  return FinishTest(observed, expected, min_expected, out.fitted_mean,
                    out.fitted_stddev);
}

}  // namespace vrddram::stats
