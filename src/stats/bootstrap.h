/**
 * @file
 * Nonparametric bootstrap confidence intervals for the statistics the
 * characterization study reports (CV, minimum, expected normalized
 * minimum). The paper reports point estimates; the bootstrap quantifies
 * how much a 1,000-measurement series really pins them down.
 */
#ifndef VRDDRAM_STATS_BOOTSTRAP_H
#define VRDDRAM_STATS_BOOTSTRAP_H

#include <functional>
#include <span>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace vrddram::stats {

/// A percentile bootstrap confidence interval.
struct BootstrapCI {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower confidence bound
  double hi = 0.0;     ///< upper confidence bound

  bool Contains(double value) const { return value >= lo && value <= hi; }
  double Width() const { return hi - lo; }
};

/// Any statistic of a sample (mean, CV, percentile, ...).
using Statistic = std::function<double(std::span<const double>)>;

/**
 * Percentile bootstrap: resample `xs` with replacement `resamples`
 * times, evaluate `statistic` on each resample, and report the
 * (1-confidence)/2 and 1-(1-confidence)/2 quantiles.
 *
 * Resamples are drawn in fixed-size chunks, each from its own child
 * stream forked off `rng` before any work runs, so the interval is a
 * pure function of (xs, rng state, resamples, confidence): passing a
 * `pool` fans the chunks out across workers without changing a single
 * bit of the result.
 */
BootstrapCI Bootstrap(std::span<const double> xs,
                      const Statistic& statistic, Rng& rng,
                      std::size_t resamples = 2000,
                      double confidence = 0.95,
                      ThreadPool* pool = nullptr);

}  // namespace vrddram::stats

#endif  // VRDDRAM_STATS_BOOTSTRAP_H
