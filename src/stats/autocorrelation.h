/**
 * @file
 * Autocorrelation function (ACF) of a measurement series, used in §4.1
 * (Fig. 6) to show that RDT series harbour no repeating patterns.
 */
#ifndef VRDDRAM_STATS_AUTOCORRELATION_H
#define VRDDRAM_STATS_AUTOCORRELATION_H

#include <span>
#include <vector>

namespace vrddram::stats {

/**
 * Sample ACF at lags 0..max_lag (biased estimator, the standard
 * time-series convention): rho(k) = c(k) / c(0) with
 * c(k) = (1/n) * sum_{t}(x_t - xbar)(x_{t+k} - xbar).
 */
std::vector<double> Autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag);

/**
 * Two-sided 95% white-noise confidence bound, +-1.96/sqrt(n): lags
 * whose |rho| stays inside this band are consistent with an i.i.d.
 * series.
 */
double WhiteNoiseBound95(std::size_t n);

/**
 * Fraction of lags 1..max_lag whose |rho| exceeds the white-noise
 * band. For an i.i.d. series this should be about 5%; a repeating
 * pattern drives it far higher.
 */
double FractionSignificantLags(std::span<const double> acf, std::size_t n);

}  // namespace vrddram::stats

#endif  // VRDDRAM_STATS_AUTOCORRELATION_H
