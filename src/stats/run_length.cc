#include "stats/run_length.h"

#include "common/error.h"

namespace vrddram::stats {

std::uint64_t RunLengthHistogram::TotalRuns() const {
  std::uint64_t total = 0;
  for (const auto& [len, count] : counts) {
    total += count;
  }
  return total;
}

std::size_t RunLengthHistogram::LongestRun() const {
  if (counts.empty()) {
    return 0;
  }
  return counts.rbegin()->first;
}

double RunLengthHistogram::ImmediateChangeFraction() const {
  const std::uint64_t total = TotalRuns();
  if (total == 0) {
    return 0.0;
  }
  const auto it = counts.find(1);
  const std::uint64_t ones = (it == counts.end()) ? 0 : it->second;
  return static_cast<double>(ones) / static_cast<double>(total);
}

RunLengthHistogram ComputeRunLengths(std::span<const std::int64_t> xs) {
  RunLengthHistogram hist;
  if (xs.empty()) {
    return hist;
  }
  std::size_t run = 1;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] == xs[i - 1]) {
      ++run;
    } else {
      ++hist.counts[run];
      run = 1;
    }
  }
  ++hist.counts[run];
  return hist;
}

void Merge(RunLengthHistogram& a, const RunLengthHistogram& b) {
  for (const auto& [len, count] : b.counts) {
    a.counts[len] += count;
  }
}

}  // namespace vrddram::stats
