/**
 * @file
 * Descriptive statistics used throughout the characterization study:
 * mean/stddev/CV, percentiles, and the box-and-whisker summary the
 * paper plots in Figs. 3, 8-13, and 15.
 */
#ifndef VRDDRAM_STATS_DESCRIPTIVE_H
#define VRDDRAM_STATS_DESCRIPTIVE_H

#include <cstdint>
#include <span>
#include <vector>

namespace vrddram::stats {

/// Arithmetic mean; empty input is a caller error.
double Mean(std::span<const double> xs);

/// Sample variance (n - 1 denominator); returns 0 for n == 1.
double SampleVariance(std::span<const double> xs);

/// Sample standard deviation.
double SampleStddev(std::span<const double> xs);

/**
 * Coefficient of variation: sample stddev normalized to the mean, the
 * per-row temporal-variation metric of Fig. 7 (paper footnote 10).
 */
double CoefficientOfVariation(std::span<const double> xs);

double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

/**
 * Percentile by linear interpolation between closest ranks;
 * p in [0, 100]. Matches the common "linear" convention (numpy
 * default), which is what the paper's plotting stack used.
 */
double Percentile(std::span<const double> xs, double p);

/// Median = 50th percentile.
double Median(std::span<const double> xs);

/**
 * Box-and-whisker summary as defined in the paper's footnote 6:
 * box from Q1 to Q3 (medians of the lower/upper halves of the ordered
 * data), whiskers at min/max, circle at the mean.
 */
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;

  double Iqr() const { return q3 - q1; }
};

BoxStats ComputeBoxStats(std::span<const double> xs);

/// Convenience: widen an integral series to double for the stats API.
std::vector<double> ToDoubles(std::span<const std::int64_t> xs);
std::vector<double> ToDoubles(std::span<const std::uint32_t> xs);

}  // namespace vrddram::stats

#endif  // VRDDRAM_STATS_DESCRIPTIVE_H
