/**
 * @file
 * Histogram construction matching the paper's Fig. 4 convention: the
 * number of bins equals the number of unique measured values, bins are
 * equal-width over [min, max].
 */
#ifndef VRDDRAM_STATS_HISTOGRAM_H
#define VRDDRAM_STATS_HISTOGRAM_H

#include <cstdint>
#include <span>
#include <vector>

namespace vrddram::stats {

/// One histogram bin: [lo, hi) except the last bin which is [lo, hi].
struct HistogramBin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

struct Histogram {
  std::vector<HistogramBin> bins;
  std::uint64_t total = 0;

  /// Fraction of samples in bin b.
  double Fraction(std::size_t b) const;
  /// Index of the most populated bin.
  std::size_t ModeBin() const;
};

/// Count distinct values in the series (Fig. 4: "unique measured RDT
/// values").
std::size_t CountUnique(std::span<const double> xs);
std::size_t CountUnique(std::span<const std::int64_t> xs);

/// Equal-width histogram with an explicit bin count.
Histogram BuildHistogram(std::span<const double> xs, std::size_t num_bins);

/// Fig. 4 convention: num_bins = number of unique values.
Histogram BuildUniqueValueHistogram(std::span<const double> xs);

/**
 * Modality probe used to flag the bimodal HBM chip (Finding 2): counts
 * local maxima of a smoothed histogram whose height exceeds
 * `min_prominence` times the global mode.
 */
std::size_t CountModes(const Histogram& hist, double min_prominence = 0.1);

}  // namespace vrddram::stats

#endif  // VRDDRAM_STATS_HISTOGRAM_H
