#include "stats/bootstrap.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "stats/descriptive.h"

namespace vrddram::stats {

BootstrapCI Bootstrap(std::span<const double> xs,
                      const Statistic& statistic, Rng& rng,
                      std::size_t resamples, double confidence,
                      ThreadPool* pool) {
  VRD_FATAL_IF(xs.empty(), "bootstrap of an empty sample");
  VRD_FATAL_IF(resamples < 10, "bootstrap needs resamples");
  VRD_FATAL_IF(confidence <= 0.0 || confidence >= 1.0,
               "confidence must be in (0, 1)");

  BootstrapCI ci;
  ci.point = statistic(xs);

  // Fixed-size chunks with a pre-forked stream each: the estimates are
  // independent of both the worker count and whether a pool is used at
  // all.
  constexpr std::size_t kChunk = 256;
  const std::size_t chunks = (resamples + kChunk - 1) / kChunk;
  std::vector<Rng> streams;
  streams.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    streams.push_back(rng.Fork("bootstrap/chunk=" + std::to_string(c)));
  }

  std::vector<double> estimates(resamples);
  ParallelFor(pool, chunks, [&](std::size_t c) {
    Rng& stream = streams[c];
    std::vector<double> resample(xs.size());
    const std::size_t end = std::min(resamples, (c + 1) * kChunk);
    for (std::size_t r = c * kChunk; r < end; ++r) {
      for (double& value : resample) {
        value = xs[stream.NextBelow(xs.size())];
      }
      estimates[r] = statistic(resample);
    }
  });
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = Percentile(estimates, 100.0 * alpha);
  ci.hi = Percentile(estimates, 100.0 * (1.0 - alpha));
  return ci;
}

}  // namespace vrddram::stats
