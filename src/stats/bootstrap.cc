#include "stats/bootstrap.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "stats/descriptive.h"

namespace vrddram::stats {

BootstrapCI Bootstrap(std::span<const double> xs,
                      const Statistic& statistic, Rng& rng,
                      std::size_t resamples, double confidence) {
  VRD_FATAL_IF(xs.empty(), "bootstrap of an empty sample");
  VRD_FATAL_IF(resamples < 10, "bootstrap needs resamples");
  VRD_FATAL_IF(confidence <= 0.0 || confidence >= 1.0,
               "confidence must be in (0, 1)");

  BootstrapCI ci;
  ci.point = statistic(xs);

  std::vector<double> estimates;
  estimates.reserve(resamples);
  std::vector<double> resample(xs.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& value : resample) {
      value = xs[rng.NextBelow(xs.size())];
    }
    estimates.push_back(statistic(resample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = Percentile(estimates, 100.0 * alpha);
  ci.hi = Percentile(estimates, 100.0 * (1.0 - alpha));
  return ci;
}

}  // namespace vrddram::stats
