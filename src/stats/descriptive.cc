#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vrddram::stats {

double Mean(std::span<const double> xs) {
  VRD_FATAL_IF(xs.empty(), "Mean of empty series");
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double SampleVariance(std::span<const double> xs) {
  VRD_FATAL_IF(xs.empty(), "SampleVariance of empty series");
  if (xs.size() == 1) {
    return 0.0;
  }
  const double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double SampleStddev(std::span<const double> xs) {
  return std::sqrt(SampleVariance(xs));
}

double CoefficientOfVariation(std::span<const double> xs) {
  const double mu = Mean(xs);
  VRD_FATAL_IF(mu == 0.0, "CoefficientOfVariation with zero mean");
  return SampleStddev(xs) / mu;
}

double Min(std::span<const double> xs) {
  VRD_FATAL_IF(xs.empty(), "Min of empty series");
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  VRD_FATAL_IF(xs.empty(), "Max of empty series");
  return *std::max_element(xs.begin(), xs.end());
}

double Percentile(std::span<const double> xs, double p) {
  VRD_FATAL_IF(xs.empty(), "Percentile of empty series");
  VRD_FATAL_IF(p < 0.0 || p > 100.0, "percentile must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Median(std::span<const double> xs) { return Percentile(xs, 50.0); }

BoxStats ComputeBoxStats(std::span<const double> xs) {
  VRD_FATAL_IF(xs.empty(), "BoxStats of empty series");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  // Median of a sorted sub-range [lo, hi).
  auto median_of = [&](std::size_t lo, std::size_t hi) {
    const std::size_t n = hi - lo;
    const std::size_t mid = lo + n / 2;
    if (n % 2 == 1) {
      return sorted[mid];
    }
    return 0.5 * (sorted[mid - 1] + sorted[mid]);
  };

  BoxStats out;
  const std::size_t n = sorted.size();
  out.min = sorted.front();
  out.max = sorted.back();
  out.median = median_of(0, n);
  // Paper footnote 6: Q1/Q3 are the medians of the first/second halves
  // of the ordered data (Tukey's hinges, excluding the middle element
  // for odd n).
  if (n == 1) {
    out.q1 = out.q3 = sorted.front();
  } else {
    out.q1 = median_of(0, n / 2);
    out.q3 = median_of(n - n / 2, n);
  }
  out.mean = Mean(xs);
  return out;
}

std::vector<double> ToDoubles(std::span<const std::int64_t> xs) {
  return {xs.begin(), xs.end()};
}

std::vector<double> ToDoubles(std::span<const std::uint32_t> xs) {
  return {xs.begin(), xs.end()};
}

}  // namespace vrddram::stats
