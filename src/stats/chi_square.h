/**
 * @file
 * Pearson chi-square goodness-of-fit test against a normal distribution
 * fitted to the sample mean and standard deviation, as used in §4.1 to
 * show that an RDT measurement "likely samples a normally distributed
 * random variable" (minimum p-value 0.18 across tested chips).
 */
#ifndef VRDDRAM_STATS_CHI_SQUARE_H
#define VRDDRAM_STATS_CHI_SQUARE_H

#include <cstddef>
#include <span>

namespace vrddram::stats {

/// Standard normal CDF.
double NormalCdf(double z);

/// Regularized lower incomplete gamma P(a, x).
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Upper-tail p-value of a chi-square statistic with `dof` degrees of
/// freedom.
double ChiSquarePValue(double statistic, std::size_t dof);

/// Result of the goodness-of-fit test.
struct GoodnessOfFit {
  double statistic = 0.0;     ///< Pearson chi-square statistic.
  std::size_t dof = 0;        ///< Degrees of freedom after pooling.
  double p_value = 0.0;       ///< Upper-tail p-value.
  std::size_t bins_used = 0;  ///< Bins remaining after pooling.
  double fitted_mean = 0.0;
  double fitted_stddev = 0.0;

  /// Null hypothesis "data is normal" survives at significance alpha.
  bool NormalAt(double alpha = 0.05) const { return p_value > alpha; }
};

/**
 * Chi-square GOF test of `xs` against N(mean(xs), stddev(xs)).
 *
 * Data is binned into `num_bins` equal-probability bins of the fitted
 * normal; adjacent bins are pooled until every expected count is at
 * least `min_expected` (the usual validity rule). Degrees of freedom
 * are bins - 1 - 2 (two estimated parameters).
 */
GoodnessOfFit ChiSquareNormalTest(std::span<const double> xs,
                                  std::size_t num_bins = 20,
                                  double min_expected = 5.0);

/**
 * Variant matching the paper's §4.1 procedure for the inherently
 * quantized RDT data: bins are the equal-width unique-value bins of
 * the Fig. 4 histogram convention, and expected counts come from the
 * fitted normal's CDF over the bin edges. Use this for discrete /
 * grid-quantized measurements, where equal-probability binning would
 * reject any discrete distribution regardless of its shape.
 */
GoodnessOfFit ChiSquareNormalTestBinned(std::span<const double> xs,
                                        double min_expected = 5.0);

}  // namespace vrddram::stats

#endif  // VRDDRAM_STATS_CHI_SQUARE_H
