/**
 * @file
 * Run-length analysis of a measurement series (Fig. 5 / Finding 3):
 * how many consecutive measurements yield the same value.
 */
#ifndef VRDDRAM_STATS_RUN_LENGTH_H
#define VRDDRAM_STATS_RUN_LENGTH_H

#include <cstdint>
#include <map>
#include <span>

namespace vrddram::stats {

/**
 * Histogram of run lengths: key = number of consecutive measurements
 * yielding the same value, value = number of such runs. A lone
 * measurement (different from both neighbours) is a run of length 1.
 */
struct RunLengthHistogram {
  std::map<std::size_t, std::uint64_t> counts;

  std::uint64_t TotalRuns() const;
  std::size_t LongestRun() const;

  /**
   * Fraction of value changes that happen after a single measurement,
   * i.e. runs of length 1 over all runs — the paper reports 79.0%
   * across all tested rows.
   */
  double ImmediateChangeFraction() const;
};

RunLengthHistogram ComputeRunLengths(std::span<const std::int64_t> xs);

/// Merge b into a (aggregating across rows, as Fig. 5 does).
void Merge(RunLengthHistogram& a, const RunLengthHistogram& b);

}  // namespace vrddram::stats

#endif  // VRDDRAM_STATS_RUN_LENGTH_H
