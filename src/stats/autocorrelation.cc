#include "stats/autocorrelation.h"

#include <cmath>

#include "common/error.h"
#include "stats/descriptive.h"

namespace vrddram::stats {

std::vector<double> Autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag) {
  VRD_FATAL_IF(xs.size() < 2, "ACF needs at least two samples");
  VRD_FATAL_IF(max_lag >= xs.size(), "max_lag must be < series length");
  const std::size_t n = xs.size();
  const double mu = Mean(xs);

  double c0 = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    c0 += d * d;
  }
  c0 /= static_cast<double>(n);

  std::vector<double> acf(max_lag + 1, 0.0);
  if (c0 == 0.0) {
    // A constant series is perfectly correlated with itself at all lags.
    for (auto& r : acf) {
      r = 1.0;
    }
    return acf;
  }
  acf[0] = 1.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (std::size_t t = 0; t + k < n; ++t) {
      ck += (xs[t] - mu) * (xs[t + k] - mu);
    }
    ck /= static_cast<double>(n);
    acf[k] = ck / c0;
  }
  return acf;
}

double WhiteNoiseBound95(std::size_t n) {
  VRD_FATAL_IF(n == 0, "white-noise bound of empty series");
  return 1.96 / std::sqrt(static_cast<double>(n));
}

double FractionSignificantLags(std::span<const double> acf, std::size_t n) {
  VRD_FATAL_IF(acf.size() < 2, "need at least lag 1");
  const double bound = WhiteNoiseBound95(n);
  std::size_t significant = 0;
  for (std::size_t k = 1; k < acf.size(); ++k) {
    if (std::abs(acf[k]) > bound) {
      ++significant;
    }
  }
  return static_cast<double>(significant) /
         static_cast<double>(acf.size() - 1);
}

}  // namespace vrddram::stats
