#include "stats/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vrddram::stats {

MinSampleResult SampleMinStatistics(std::span<const std::int64_t> series,
                                    std::size_t sample_size,
                                    std::size_t iterations, Rng& rng,
                                    std::span<const double> margins) {
  VRD_FATAL_IF(series.empty(), "resampling an empty series");
  VRD_FATAL_IF(sample_size == 0, "sample_size must be positive");
  VRD_FATAL_IF(iterations == 0, "iterations must be positive");

  const std::int64_t series_min =
      *std::min_element(series.begin(), series.end());
  VRD_FATAL_IF(series_min <= 0, "RDT values must be positive");

  MinSampleResult out;
  out.sample_size = sample_size;
  out.iterations = iterations;
  out.prob_within_margin.assign(margins.size(), 0.0);

  std::uint64_t hits = 0;
  double norm_min_sum = 0.0;
  std::vector<std::uint64_t> margin_hits(margins.size(), 0);

  for (std::size_t it = 0; it < iterations; ++it) {
    std::int64_t draw_min = series[rng.NextBelow(series.size())];
    for (std::size_t j = 1; j < sample_size; ++j) {
      draw_min = std::min(draw_min, series[rng.NextBelow(series.size())]);
    }
    if (draw_min == series_min) {
      ++hits;
    }
    norm_min_sum += static_cast<double>(draw_min) /
                    static_cast<double>(series_min);
    for (std::size_t m = 0; m < margins.size(); ++m) {
      const double limit =
          (1.0 + margins[m]) * static_cast<double>(series_min);
      if (static_cast<double>(draw_min) <= limit) {
        ++margin_hits[m];
      }
    }
  }

  out.prob_find_min =
      static_cast<double>(hits) / static_cast<double>(iterations);
  out.expected_norm_min = norm_min_sum / static_cast<double>(iterations);
  for (std::size_t m = 0; m < margins.size(); ++m) {
    out.prob_within_margin[m] =
        static_cast<double>(margin_hits[m]) /
        static_cast<double>(iterations);
  }
  return out;
}

namespace {

// P(all N draws land strictly above `threshold_count` of the n values).
// With draws uniform over the n series entries, a draw avoids a set of
// k entries with probability (1 - k/n) each time.
double ProbAllAbove(std::size_t avoid_count, std::size_t n,
                    std::size_t sample_size) {
  const double p_avoid = 1.0 - static_cast<double>(avoid_count) /
                               static_cast<double>(n);
  return std::pow(p_avoid, static_cast<double>(sample_size));
}

}  // namespace

double ExactProbFindMin(std::span<const std::int64_t> series,
                        std::size_t sample_size) {
  VRD_FATAL_IF(series.empty(), "empty series");
  const std::int64_t mn = *std::min_element(series.begin(), series.end());
  const auto k = static_cast<std::size_t>(
      std::count(series.begin(), series.end(), mn));
  return 1.0 - ProbAllAbove(k, series.size(), sample_size);
}

double ExactExpectedNormalizedMin(std::span<const std::int64_t> series,
                                  std::size_t sample_size) {
  VRD_FATAL_IF(series.empty(), "empty series");
  // E[min] = sum over distinct values v of v * P(min == v). Using the
  // sorted empirical distribution: P(min > v) = ((#entries > v)/n)^N.
  std::vector<std::int64_t> sorted(series.begin(), series.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double mn = static_cast<double>(sorted.front());
  VRD_FATAL_IF(mn <= 0.0, "RDT values must be positive");

  double expectation = 0.0;
  std::size_t i = 0;
  double prev_tail = 1.0;  // P(min > -inf) = 1
  while (i < n) {
    std::size_t j = i;
    while (j < n && sorted[j] == sorted[i]) {
      ++j;
    }
    // P(min > sorted[i]) = ((n - j)/n)^N.
    const double tail = ProbAllAbove(j, n, sample_size);
    const double p_equal = prev_tail - tail;
    expectation += static_cast<double>(sorted[i]) * p_equal;
    prev_tail = tail;
    i = j;
  }
  return expectation / mn;
}

double ExactProbWithinMargin(std::span<const std::int64_t> series,
                             std::size_t sample_size, double margin) {
  VRD_FATAL_IF(series.empty(), "empty series");
  VRD_FATAL_IF(margin < 0.0, "margin must be non-negative");
  const std::int64_t mn = *std::min_element(series.begin(), series.end());
  const double limit = (1.0 + margin) * static_cast<double>(mn);
  const auto k = static_cast<std::size_t>(std::count_if(
      series.begin(), series.end(),
      [&](std::int64_t v) { return static_cast<double>(v) <= limit; }));
  return 1.0 - ProbAllAbove(k, series.size(), sample_size);
}

}  // namespace vrddram::stats
