/**
 * @file
 * Monte Carlo resampling of RDT measurement series, the methodology of
 * §5.1 ("Probability of Identifying the Minimum RDT"): uniformly draw N
 * of the 1,000 measurements per iteration and study the minimum of the
 * draw relative to the minimum of the full series.
 */
#ifndef VRDDRAM_STATS_MONTE_CARLO_H
#define VRDDRAM_STATS_MONTE_CARLO_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace vrddram::stats {

/// Outcome of resampling one series with one sample size N.
struct MinSampleResult {
  std::size_t sample_size = 0;     ///< N measurements per iteration.
  std::size_t iterations = 0;      ///< Monte Carlo iterations (paper: 10k).
  double prob_find_min = 0.0;      ///< P(min of draw == min of series).
  double expected_norm_min = 0.0;  ///< E[min of draw] / min of series.
  /// P(min of draw <= (1 + margin) * min of series), one entry per
  /// requested margin (Fig. 15's safety margins).
  std::vector<double> prob_within_margin;
};

/**
 * Monte Carlo estimate of the minimum-finding statistics for one
 * series. `margins` are relative safety margins (e.g. 0.10 for 10%).
 * Draws are uniform with replacement, matching the paper's
 * "uniformly randomly select N RDT measurements" procedure.
 */
MinSampleResult SampleMinStatistics(std::span<const std::int64_t> series,
                                    std::size_t sample_size,
                                    std::size_t iterations, Rng& rng,
                                    std::span<const double> margins = {});

/**
 * Exact (closed-form) versions of the same statistics, used to
 * cross-check the Monte Carlo estimator in tests: with i.i.d. uniform
 * draws, P(find min) = 1 - (1 - k/n)^N where k = multiplicity of the
 * minimum, and E[min of draw] follows from the order statistics of the
 * empirical distribution.
 */
double ExactProbFindMin(std::span<const std::int64_t> series,
                        std::size_t sample_size);
double ExactExpectedNormalizedMin(std::span<const std::int64_t> series,
                                  std::size_t sample_size);
double ExactProbWithinMargin(std::span<const std::int64_t> series,
                             std::size_t sample_size, double margin);

}  // namespace vrddram::stats

#endif  // VRDDRAM_STATS_MONTE_CARLO_H
