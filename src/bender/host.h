/**
 * @file
 * Host-side testing API in the style of DRAM Bender / SoftMC: a
 * ProgramRunner that executes TestPrograms on a device, and a TestHost
 * with the paper's methodology building blocks - neighbourhood
 * initialization per Table 2, double-sided hammering, read-and-compare,
 * row-mapping reverse engineering, and true-/anti-cell discovery.
 */
#ifndef VRDDRAM_BENDER_HOST_H
#define VRDDRAM_BENDER_HOST_H

#include <optional>
#include <vector>

#include "bender/test_program.h"
#include "dram/device.h"

namespace vrddram::bender {

/// Executes a validated TestProgram against a device.
class ProgramRunner {
 public:
  explicit ProgramRunner(dram::Device& device,
                         Platform platform = MakeAlveoU200())
      : device_(&device), platform_(std::move(platform)) {}

  ExecutionResult Run(const TestProgram& program);

 private:
  dram::Device* device_;
  Platform platform_;
};

/**
 * High-level testing operations composed from device commands; these
 * are the primitives Alg. 1 and the §5/§6 sweeps are written against.
 */
class TestHost {
 public:
  explicit TestHost(dram::Device& device) : device_(&device) {}

  dram::Device& device() { return *device_; }

  /**
   * Alg. 1's initialize_rows: write the victim's physical row, the two
   * physical aggressors (V +- 1), and the surrounding rows V +- [2:8]
   * with the Table 2 bytes of `pattern`. Rows outside the bank are
   * skipped (edge victims are not used by the methodology anyway).
   */
  void InitializeNeighborhood(dram::BankId bank,
                              dram::RowAddr victim_logical,
                              dram::DataPattern pattern);

  /// Double-sided hammer with `hammer_count` activations per aggressor.
  void HammerDoubleSided(dram::BankId bank, dram::RowAddr victim_logical,
                         std::uint64_t hammer_count, Tick t_on);

  /// Read the victim row and diff it against its expected pattern byte.
  std::vector<dram::BitFlip> ReadAndCompareVictim(
      dram::BankId bank, dram::RowAddr victim_logical,
      dram::DataPattern pattern);

  /**
   * One read-disturbance test iteration (Alg. 1 lines 19-21):
   * initialize, hammer with `hammer_count`, read and compare. Returns
   * the observed bitflips (empty = no flip at this hammer count).
   */
  std::vector<dram::BitFlip> TestOnce(dram::BankId bank,
                                      dram::RowAddr victim_logical,
                                      dram::DataPattern pattern,
                                      std::uint64_t hammer_count,
                                      Tick t_on);

  /**
   * Command-exact variant of TestOnce executed through a TestProgram
   * (every ACT/PRE issued individually). Used to validate that the
   * bulk fast path is behaviourally identical; impractically slow for
   * full campaigns, exactly like issuing individual commands from the
   * host would be.
   */
  std::vector<dram::BitFlip> TestOnceExact(dram::BankId bank,
                                           dram::RowAddr victim_logical,
                                           dram::DataPattern pattern,
                                           std::uint64_t hammer_count,
                                           Tick t_on);

  /**
   * Row-mapping reverse engineering ([166], §3.1): hammer
   * `victim_logical` single-sided and report which logical rows in a
   * +-`window` window around it flip - those are its physical
   * neighbours. Returns flipped logical rows sorted by flip count.
   */
  std::vector<dram::RowAddr> FindPhysicalNeighbors(
      dram::BankId bank, dram::RowAddr victim_logical,
      std::uint64_t hammer_count, dram::RowAddr window = 8);

  /**
   * True-/anti-cell discovery ([1, 214, 215], §5.6): write all-zeros,
   * pause refresh far beyond the retention time, and observe the decay
   * direction; then repeat with all-ones. Returns nullopt if the row
   * has no retention-weak cell to betray its encoding.
   */
  std::optional<dram::CellEncoding> DiscoverRowEncoding(
      dram::BankId bank, dram::RowAddr logical_row, Tick wait);

 private:
  dram::Device* device_;
  /// Reused by ReadAndCompareVictim: the swept test loop reads the
  /// same victim row every iteration, so one buffer serves them all.
  std::vector<std::uint8_t> read_scratch_;
};

}  // namespace vrddram::bender

#endif  // VRDDRAM_BENDER_HOST_H
