/**
 * @file
 * Simulated temperature rig (§3): heater pads pressed against the
 * chips plus a PID controller (modeled after the MaxWell FT200) that
 * holds the device at a setpoint within +-0.5 degC. The plant is a
 * first-order thermal mass with loss to ambient and a small sensor
 * noise term.
 */
#ifndef VRDDRAM_BENDER_THERMAL_H
#define VRDDRAM_BENDER_THERMAL_H

#include "common/rng.h"
#include "common/units.h"
#include "dram/device.h"

namespace vrddram::bender {

struct ThermalPlantParams {
  Celsius ambient = 25.0;
  double thermal_mass_j_per_c = 40.0;   ///< heat capacity of DIMM + pads
  double loss_w_per_c = 0.8;            ///< conduction/convection loss
  double heater_max_w = 60.0;           ///< heater pad power limit
  double sensor_noise_c = 0.05;         ///< thermocouple noise (1 sigma)
};

struct PidGains {
  double kp = 8.0;
  double ki = 0.8;
  double kd = 4.0;
};

/**
 * Heater + PID loop bound to a device: stepping the controller
 * advances device time (the device idles while the rig settles) and
 * continually updates the device's temperature.
 */
class TemperatureController {
 public:
  TemperatureController(dram::Device& device,
                        ThermalPlantParams plant = {},
                        PidGains gains = {},
                        std::uint64_t seed = 0xf7200);

  void SetTarget(Celsius target);
  Celsius target() const { return target_; }
  Celsius Current() const { return plant_temp_; }

  /// Within the FT200's +-0.5 degC precision of the target.
  bool Settled() const;

  /// Run the control loop for `duration`, advancing device time.
  void Run(Tick duration);

  /**
   * Run until the temperature has stayed within +-0.5 degC of the
   * target for `hold` continuous time; throws FatalError if not
   * settled within `timeout`. Returns the time it took.
   */
  Tick SettleTo(Celsius target, Tick hold = 2 * units::kSecond,
                Tick timeout = 600 * units::kSecond);

 private:
  void Step(Tick dt);

  dram::Device* device_;
  ThermalPlantParams plant_params_;
  PidGains gains_;
  Rng rng_;

  Celsius target_ = 50.0;
  Celsius plant_temp_;
  double integral_ = 0.0;
  double last_error_ = 0.0;
  bool has_last_error_ = false;
};

}  // namespace vrddram::bender

#endif  // VRDDRAM_BENDER_THERMAL_H
