/**
 * @file
 * DRAM-Bender-style programmable test programs (§3: the paper's
 * infrastructure executes host-generated programs on an FPGA). A
 * TestProgram is a small instruction sequence - ACT/PRE/WR/RD/SLEEP
 * plus hardware loops - validated against platform limits and executed
 * against a dram::Device by ProgramRunner.
 */
#ifndef VRDDRAM_BENDER_TEST_PROGRAM_H
#define VRDDRAM_BENDER_TEST_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "dram/types.h"

namespace vrddram::bender {

enum class Opcode : std::uint8_t {
  kAct,       ///< activate (bank, row)
  kPre,       ///< precharge (bank)
  kWriteRow,  ///< fill the open row with a byte
  kReadRow,   ///< read the open row; captured into the result
  kSleep,     ///< idle the command bus
  kLoop,      ///< begin a loop executed `count` times
  kEndLoop,   ///< end of the innermost loop
};

struct Instruction {
  Opcode op = Opcode::kSleep;
  dram::BankId bank = 0;
  dram::RowAddr row = 0;
  std::uint8_t fill = 0;
  Tick duration = 0;
  std::uint32_t count = 0;
};

/// FPGA platform limits (metadata of the boards the paper uses).
struct Platform {
  std::string name = "alveo-u200";
  std::size_t max_instructions = 8192;
  std::size_t max_loop_depth = 4;
};

Platform MakeAlveoU200();   ///< DDR4 testing board
Platform MakeAlveoU50();    ///< HBM2 testing board
Platform MakeXupvvh();      ///< HBM2 testing board

/**
 * Builder + container for one test program. Build with the fluent
 * methods, then Validate() (or let ProgramRunner validate).
 */
class TestProgram {
 public:
  TestProgram& Act(dram::BankId bank, dram::RowAddr row);
  TestProgram& Pre(dram::BankId bank);
  TestProgram& WriteRow(dram::BankId bank, dram::RowAddr row,
                        std::uint8_t fill);
  TestProgram& ReadRow(dram::BankId bank, dram::RowAddr row);
  TestProgram& Sleep(Tick duration);
  TestProgram& Loop(std::uint32_t count);
  TestProgram& EndLoop();

  /// Throws FatalError if the program violates structural rules or
  /// platform limits.
  void Validate(const Platform& platform) const;

  const std::vector<Instruction>& instructions() const {
    return instructions_;
  }

 private:
  std::vector<Instruction> instructions_;
};

/// One captured read.
struct ReadRecord {
  dram::BankId bank = 0;
  dram::RowAddr row = 0;
  std::vector<std::uint8_t> data;
};

struct ExecutionResult {
  std::vector<ReadRecord> reads;
  Tick elapsed = 0;
};

}  // namespace vrddram::bender

#endif  // VRDDRAM_BENDER_TEST_PROGRAM_H
