#include "bender/thermal.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/faultinject.h"

namespace vrddram::bender {

namespace {
constexpr Tick kStep = 20 * units::kMillisecond;
}

TemperatureController::TemperatureController(dram::Device& device,
                                             ThermalPlantParams plant,
                                             PidGains gains,
                                             std::uint64_t seed)
    : device_(&device),
      plant_params_(plant),
      gains_(gains),
      rng_(seed),
      plant_temp_(plant.ambient) {
  device_->SetTemperature(plant_temp_);
}

void TemperatureController::SetTarget(Celsius target) {
  VRD_FATAL_IF(target < plant_params_.ambient,
               "heater pads cannot cool below ambient");
  VRD_FATAL_IF(target > 120.0, "target beyond the rig's safe range");
  target_ = target;
  integral_ = 0.0;
  has_last_error_ = false;
}

bool TemperatureController::Settled() const {
  return std::abs(plant_temp_ - target_) <= 0.5;
}

void TemperatureController::Step(Tick dt) {
  if (fi::ShouldFire("bender.thermal.sensor")) {
    throw TransientError("thermal rig: PID sensor dropout (injected)");
  }
  const double dt_s = units::ToSeconds(dt);
  const double sensed =
      plant_temp_ + rng_.NextGaussian(0.0, plant_params_.sensor_noise_c);
  const double error = target_ - sensed;

  integral_ += error * dt_s;
  // Anti-windup: bound the integral to what the heater can act on.
  const double integral_cap =
      plant_params_.heater_max_w / std::max(gains_.ki, 1e-9);
  integral_ = std::clamp(integral_, -integral_cap, integral_cap);

  const double derivative =
      has_last_error_ ? (error - last_error_) / dt_s : 0.0;
  last_error_ = error;
  has_last_error_ = true;

  double power = gains_.kp * error + gains_.ki * integral_ +
                 gains_.kd * derivative;
  power = std::clamp(power, 0.0, plant_params_.heater_max_w);

  const double loss =
      plant_params_.loss_w_per_c * (plant_temp_ - plant_params_.ambient);
  plant_temp_ +=
      (power - loss) * dt_s / plant_params_.thermal_mass_j_per_c;

  device_->Sleep(dt);
  device_->SetTemperature(plant_temp_);
}

void TemperatureController::Run(Tick duration) {
  Tick remaining = duration;
  while (remaining > 0) {
    const Tick dt = std::min(remaining, kStep);
    Step(dt);
    remaining -= dt;
  }
}

Tick TemperatureController::SettleTo(Celsius target, Tick hold,
                                     Tick timeout) {
  if (fi::ShouldFire("bender.thermal.settle")) {
    throw TransientError("thermal rig: settle timeout (injected)");
  }
  SetTarget(target);
  Tick elapsed = 0;
  Tick in_band = 0;
  while (elapsed < timeout) {
    Step(kStep);
    elapsed += kStep;
    if (Settled()) {
      in_band += kStep;
      if (in_band >= hold) {
        return elapsed;
      }
    } else {
      in_band = 0;
    }
  }
  // A settle timeout is a rig condition, not a caller mistake: a retry
  // with a freshly built shard can clear it, so it is retryable.
  throw TransientError(
      "temperature rig failed to settle within the timeout");
}

}  // namespace vrddram::bender
