/**
 * @file
 * Read-disturbance access-pattern library: generators for the hammering
 * patterns the RowHammer literature uses - single-sided, the paper's
 * double-sided (§3.1), and many-sided ("n-sided" TRR-bypass patterns a
 * la TRRespass [39]) - both as bulk device operations and as explicit
 * DRAM-Bender test programs.
 */
#ifndef VRDDRAM_BENDER_ATTACK_PATTERNS_H
#define VRDDRAM_BENDER_ATTACK_PATTERNS_H

#include <cstdint>
#include <string>
#include <vector>

#include "bender/test_program.h"
#include "dram/device.h"

namespace vrddram::bender {

enum class AttackKind : std::uint8_t {
  kSingleSided,  ///< one aggressor next to the victim
  kDoubleSided,  ///< both physical neighbours (the paper's pattern)
  kManySided,    ///< n aggressor pairs around decoy victims
};

std::string ToString(AttackKind kind);

/// A resolved attack: the aggressor rows to activate, in order.
struct AttackPlan {
  AttackKind kind = AttackKind::kDoubleSided;
  dram::RowAddr victim_logical = 0;
  /// Logical addresses of the aggressor rows, in activation order.
  std::vector<dram::RowAddr> aggressors;
  /// Activations per aggressor ("hammer count" convention).
  std::uint64_t hammers_per_aggressor = 0;
};

/**
 * Plan an attack around `victim_logical`. For kManySided, `sides`
 * aggressor rows are chosen at physical distances +-1, +-3, +-5, ...
 * (hammering every other row, the classic TRR-evasion layout).
 * Throws if the victim sits too close to the bank edge.
 */
AttackPlan PlanAttack(const dram::Device& device, AttackKind kind,
                      dram::RowAddr victim_logical,
                      std::uint64_t hammers_per_aggressor,
                      std::uint32_t sides = 4);

/**
 * Execute a plan through the device's bulk fast paths. The aggressors
 * are hammered in a round-robin order, `hammers_per_aggressor` times
 * each, holding each activation open for `t_on`.
 */
void ExecuteAttack(dram::Device& device, dram::BankId bank,
                   const AttackPlan& plan, Tick t_on);

/**
 * Compile a plan into an explicit command-level TestProgram (ACT /
 * optional Sleep / PRE per activation, wrapped in a hardware loop).
 */
TestProgram CompileAttack(const dram::Device& device, dram::BankId bank,
                          const AttackPlan& plan, Tick t_on);

}  // namespace vrddram::bender

#endif  // VRDDRAM_BENDER_ATTACK_PATTERNS_H
