#include "bender/test_program.h"

#include "common/error.h"

namespace vrddram::bender {

Platform MakeAlveoU200() { return Platform{"alveo-u200", 8192, 4}; }
Platform MakeAlveoU50() { return Platform{"alveo-u50", 8192, 4}; }
Platform MakeXupvvh() { return Platform{"xupvvh", 8192, 4}; }

TestProgram& TestProgram::Act(dram::BankId bank, dram::RowAddr row) {
  Instruction inst;
  inst.op = Opcode::kAct;
  inst.bank = bank;
  inst.row = row;
  instructions_.push_back(inst);
  return *this;
}

TestProgram& TestProgram::Pre(dram::BankId bank) {
  Instruction inst;
  inst.op = Opcode::kPre;
  inst.bank = bank;
  instructions_.push_back(inst);
  return *this;
}

TestProgram& TestProgram::WriteRow(dram::BankId bank, dram::RowAddr row,
                                   std::uint8_t fill) {
  Instruction inst;
  inst.op = Opcode::kWriteRow;
  inst.bank = bank;
  inst.row = row;
  inst.fill = fill;
  instructions_.push_back(inst);
  return *this;
}

TestProgram& TestProgram::ReadRow(dram::BankId bank, dram::RowAddr row) {
  Instruction inst;
  inst.op = Opcode::kReadRow;
  inst.bank = bank;
  inst.row = row;
  instructions_.push_back(inst);
  return *this;
}

TestProgram& TestProgram::Sleep(Tick duration) {
  VRD_FATAL_IF(duration < 0, "cannot sleep a negative duration");
  Instruction inst;
  inst.op = Opcode::kSleep;
  inst.duration = duration;
  instructions_.push_back(inst);
  return *this;
}

TestProgram& TestProgram::Loop(std::uint32_t count) {
  VRD_FATAL_IF(count == 0, "loop count must be positive");
  Instruction inst;
  inst.op = Opcode::kLoop;
  inst.count = count;
  instructions_.push_back(inst);
  return *this;
}

TestProgram& TestProgram::EndLoop() {
  Instruction inst;
  inst.op = Opcode::kEndLoop;
  instructions_.push_back(inst);
  return *this;
}

void TestProgram::Validate(const Platform& platform) const {
  VRD_FATAL_IF(instructions_.empty(), "empty test program");
  VRD_FATAL_IF(instructions_.size() > platform.max_instructions,
               "program exceeds the platform's instruction memory");
  std::size_t depth = 0;
  std::size_t max_depth = 0;
  for (const Instruction& inst : instructions_) {
    if (inst.op == Opcode::kLoop) {
      ++depth;
      max_depth = std::max(max_depth, depth);
    } else if (inst.op == Opcode::kEndLoop) {
      VRD_FATAL_IF(depth == 0, "EndLoop without a matching Loop");
      --depth;
    }
  }
  VRD_FATAL_IF(depth != 0, "unterminated Loop");
  VRD_FATAL_IF(max_depth > platform.max_loop_depth,
               "loop nesting exceeds the platform limit");
}

}  // namespace vrddram::bender
