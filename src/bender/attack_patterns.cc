#include "bender/attack_patterns.h"

#include <limits>

#include "common/error.h"

namespace vrddram::bender {

std::string ToString(AttackKind kind) {
  switch (kind) {
    case AttackKind::kSingleSided: return "single-sided";
    case AttackKind::kDoubleSided: return "double-sided";
    case AttackKind::kManySided: return "many-sided";
  }
  throw PanicError("unknown attack kind");
}

AttackPlan PlanAttack(const dram::Device& device, AttackKind kind,
                      dram::RowAddr victim_logical,
                      std::uint64_t hammers_per_aggressor,
                      std::uint32_t sides) {
  VRD_FATAL_IF(hammers_per_aggressor == 0, "need at least one hammer");
  const dram::PhysicalRow victim =
      device.mapper().ToPhysical(victim_logical);
  const auto last =
      static_cast<std::int64_t>(device.org().LargestRowAddress());

  AttackPlan plan;
  plan.kind = kind;
  plan.victim_logical = victim_logical;
  plan.hammers_per_aggressor = hammers_per_aggressor;

  std::vector<std::int64_t> offsets;
  switch (kind) {
    case AttackKind::kSingleSided:
      offsets = {+1};
      break;
    case AttackKind::kDoubleSided:
      offsets = {-1, +1};
      break;
    case AttackKind::kManySided: {
      VRD_FATAL_IF(sides < 2, "many-sided needs at least two aggressors");
      // Aggressors at +-1, +-3, +-5, ... - every other row, so each
      // in-between row is double-sided hammered.
      std::int64_t distance = 1;
      while (offsets.size() < sides) {
        offsets.push_back(-distance);
        if (offsets.size() < sides) {
          offsets.push_back(+distance);
        }
        distance += 2;
      }
      break;
    }
  }

  for (const std::int64_t offset : offsets) {
    const std::int64_t target =
        static_cast<std::int64_t>(victim.value) + offset;
    VRD_FATAL_IF(target < 0 || target > last,
                 "victim too close to the bank edge for this pattern");
    plan.aggressors.push_back(device.mapper().ToLogical(
        dram::PhysicalRow{static_cast<dram::RowAddr>(target)}));
  }
  return plan;
}

void ExecuteAttack(dram::Device& device, dram::BankId bank,
                   const AttackPlan& plan, Tick t_on) {
  VRD_FATAL_IF(plan.aggressors.empty(), "empty attack plan");
  if (plan.kind == AttackKind::kDoubleSided) {
    device.HammerDoubleSided(bank, plan.victim_logical,
                             plan.hammers_per_aggressor, t_on);
    return;
  }
  for (const dram::RowAddr aggressor : plan.aggressors) {
    device.HammerSingleSided(bank, aggressor,
                             plan.hammers_per_aggressor, t_on);
  }
}

TestProgram CompileAttack(const dram::Device& device, dram::BankId bank,
                          const AttackPlan& plan, Tick t_on) {
  VRD_FATAL_IF(plan.aggressors.empty(), "empty attack plan");
  VRD_FATAL_IF(t_on < device.timing().tRAS,
               "tAggOn below the minimum tRAS");
  VRD_FATAL_IF(plan.hammers_per_aggressor >
                   std::numeric_limits<std::uint32_t>::max(),
               "hammer count exceeds the loop register width");
  const Tick hold = (t_on > device.timing().tRAS) ? t_on : 0;

  TestProgram program;
  program.Loop(
      static_cast<std::uint32_t>(plan.hammers_per_aggressor));
  for (const dram::RowAddr aggressor : plan.aggressors) {
    program.Act(bank, aggressor);
    if (hold > 0) {
      program.Sleep(hold);
    }
    program.Pre(bank);
  }
  program.EndLoop();
  return program;
}

}  // namespace vrddram::bender
