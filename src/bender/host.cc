#include "bender/host.h"

#include <algorithm>
#include <bit>
#include <map>

#include "common/error.h"
#include "common/faultinject.h"

namespace vrddram::bender {

ExecutionResult ProgramRunner::Run(const TestProgram& program) {
  if (fi::ShouldFire("bender.host.run")) {
    throw TransientError("bender host: command execution failed (injected)");
  }
  program.Validate(platform_);
  ExecutionResult result;
  const Tick start = device_->Now();

  const auto& insts = program.instructions();

  // Resolve loop bounds once.
  std::vector<std::size_t> match(insts.size(), 0);
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      if (insts[i].op == Opcode::kLoop) {
        stack.push_back(i);
      } else if (insts[i].op == Opcode::kEndLoop) {
        VRD_ASSERT(!stack.empty());
        match[stack.back()] = i;
        match[i] = stack.back();
        stack.pop_back();
      }
    }
  }

  // Iterative execution with a loop-counter stack.
  struct Frame {
    std::size_t loop_pc;
    std::uint32_t remaining;
  };
  std::vector<Frame> frames;
  std::size_t pc = 0;
  while (pc < insts.size()) {
    const Instruction& inst = insts[pc];
    switch (inst.op) {
      case Opcode::kAct:
        device_->Activate(inst.bank, inst.row);
        break;
      case Opcode::kPre:
        device_->Precharge(inst.bank);
        break;
      case Opcode::kWriteRow:
        device_->WriteRow(inst.bank, inst.row, inst.fill);
        break;
      case Opcode::kReadRow: {
        ReadRecord record;
        record.bank = inst.bank;
        record.row = inst.row;
        record.data = device_->ReadRow(inst.bank, inst.row);
        result.reads.push_back(std::move(record));
        break;
      }
      case Opcode::kSleep:
        device_->Sleep(inst.duration);
        break;
      case Opcode::kLoop:
        frames.push_back(Frame{pc, inst.count});
        break;
      case Opcode::kEndLoop: {
        VRD_ASSERT(!frames.empty());
        Frame& frame = frames.back();
        VRD_ASSERT(frame.loop_pc == match[pc]);
        if (--frame.remaining == 0) {
          frames.pop_back();
        } else {
          pc = frame.loop_pc;
        }
        break;
      }
    }
    ++pc;
  }

  result.elapsed = device_->Now() - start;
  return result;
}

void TestHost::InitializeNeighborhood(dram::BankId bank,
                                      dram::RowAddr victim_logical,
                                      dram::DataPattern pattern) {
  const dram::PhysicalRow victim =
      device_->mapper().ToPhysical(victim_logical);
  const auto max_row =
      static_cast<std::int64_t>(device_->org().LargestRowAddress());
  for (std::int64_t d = -8; d <= 8; ++d) {
    const std::int64_t target = static_cast<std::int64_t>(victim.value) + d;
    if (target < 0 || target > max_row) {
      continue;
    }
    std::uint8_t fill;
    if (d == 0) {
      fill = dram::VictimByte(pattern);
    } else if (d == -1 || d == 1) {
      fill = dram::AggressorByte(pattern);
    } else {
      fill = dram::SurroundByte(pattern);
    }
    const dram::RowAddr logical = device_->mapper().ToLogical(
        dram::PhysicalRow{static_cast<dram::RowAddr>(target)});
    device_->BulkInitializeRow(bank, logical, fill);
  }
}

void TestHost::HammerDoubleSided(dram::BankId bank,
                                 dram::RowAddr victim_logical,
                                 std::uint64_t hammer_count, Tick t_on) {
  device_->HammerDoubleSided(bank, victim_logical, hammer_count, t_on);
}

std::vector<dram::BitFlip> TestHost::ReadAndCompareVictim(
    dram::BankId bank, dram::RowAddr victim_logical,
    dram::DataPattern pattern) {
  device_->Activate(bank, victim_logical);
  device_->ReadRow(bank, victim_logical, read_scratch_);
  device_->Precharge(bank);

  return dram::DiffBits(read_scratch_, dram::VictimByte(pattern));
}

std::vector<dram::BitFlip> TestHost::TestOnce(dram::BankId bank,
                                              dram::RowAddr victim_logical,
                                              dram::DataPattern pattern,
                                              std::uint64_t hammer_count,
                                              Tick t_on) {
  InitializeNeighborhood(bank, victim_logical, pattern);
  HammerDoubleSided(bank, victim_logical, hammer_count, t_on);
  return ReadAndCompareVictim(bank, victim_logical, pattern);
}

std::vector<dram::BitFlip> TestHost::TestOnceExact(
    dram::BankId bank, dram::RowAddr victim_logical,
    dram::DataPattern pattern, std::uint64_t hammer_count, Tick t_on) {
  const dram::PhysicalRow victim =
      device_->mapper().ToPhysical(victim_logical);
  VRD_FATAL_IF(victim.value == 0 ||
                   victim.value >= device_->org().LargestRowAddress(),
               "edge victim has no double-sided aggressors");
  const dram::RowAddr aggr_lo =
      device_->mapper().ToLogical(dram::PhysicalRow{victim.value - 1});
  const dram::RowAddr aggr_hi =
      device_->mapper().ToLogical(dram::PhysicalRow{victim.value + 1});

  // Initialize the neighbourhood with explicit commands.
  const auto max_row =
      static_cast<std::int64_t>(device_->org().LargestRowAddress());
  TestProgram program;
  for (std::int64_t d = -8; d <= 8; ++d) {
    const std::int64_t target = static_cast<std::int64_t>(victim.value) + d;
    if (target < 0 || target > max_row) {
      continue;
    }
    const std::uint8_t fill = (d == 0) ? dram::VictimByte(pattern)
                              : (d == -1 || d == 1)
                                  ? dram::AggressorByte(pattern)
                                  : dram::SurroundByte(pattern);
    const dram::RowAddr logical = device_->mapper().ToLogical(
        dram::PhysicalRow{static_cast<dram::RowAddr>(target)});
    program.Act(bank, logical)
        .WriteRow(bank, logical, fill)
        .Pre(bank);
  }

  // Hammer: alternate the two aggressors, holding each open for t_on.
  // PRE is auto-delayed to tRAS after ACT, so an explicit Sleep is
  // only needed for RowPress-style t_on beyond tRAS.
  VRD_FATAL_IF(t_on < device_->timing().tRAS,
               "tAggOn below the minimum tRAS");
  const Tick hold = (t_on > device_->timing().tRAS) ? t_on : 0;
  program.Loop(static_cast<std::uint32_t>(hammer_count));
  program.Act(bank, aggr_lo);
  if (hold > 0) {
    program.Sleep(hold);
  }
  program.Pre(bank);
  program.Act(bank, aggr_hi);
  if (hold > 0) {
    program.Sleep(hold);
  }
  program.Pre(bank);
  program.EndLoop();

  // Read back the victim.
  program.Act(bank, victim_logical)
      .ReadRow(bank, victim_logical)
      .Pre(bank);

  ProgramRunner runner(*device_);
  const ExecutionResult result = runner.Run(program);
  VRD_ASSERT(!result.reads.empty());
  const std::vector<std::uint8_t>& data = result.reads.back().data;

  return dram::DiffBits(data, dram::VictimByte(pattern));
}

std::vector<dram::RowAddr> TestHost::FindPhysicalNeighbors(
    dram::BankId bank, dram::RowAddr victim_logical,
    std::uint64_t hammer_count, dram::RowAddr window) {
  const auto max_row =
      static_cast<std::int64_t>(device_->org().LargestRowAddress());
  const auto base = static_cast<std::int64_t>(victim_logical);

  // Candidate logical rows around the hammered row. The manufacturer
  // scrambles within small groups, so physical neighbours live in a
  // small logical window.
  std::vector<dram::RowAddr> candidates;
  for (std::int64_t d = -static_cast<std::int64_t>(window);
       d <= static_cast<std::int64_t>(window); ++d) {
    const std::int64_t target = base + d;
    if (target >= 0 && target <= max_row && d != 0) {
      candidates.push_back(static_cast<dram::RowAddr>(target));
    }
  }

  // Victims hold 0x55, the hammered row 0xAA: opposite data maximizes
  // coupling, the standard reverse-engineering setup.
  for (const dram::RowAddr row : candidates) {
    device_->BulkInitializeRow(bank, row, 0x55);
  }
  device_->BulkInitializeRow(bank, victim_logical, 0xAA);
  device_->HammerSingleSided(bank, victim_logical, hammer_count,
                             device_->timing().tRAS);

  std::map<dram::RowAddr, std::size_t> flip_counts;
  for (const dram::RowAddr row : candidates) {
    device_->Activate(bank, row);
    const std::vector<std::uint8_t> data = device_->ReadRow(bank, row);
    device_->Precharge(bank);
    const std::size_t flips = dram::CountDiffBits(data, 0x55);
    if (flips > 0) {
      flip_counts[row] = flips;
    }
  }

  std::vector<dram::RowAddr> neighbours;
  neighbours.reserve(flip_counts.size());
  for (const auto& [row, count] : flip_counts) {
    neighbours.push_back(row);
  }
  std::sort(neighbours.begin(), neighbours.end(),
            [&](dram::RowAddr a, dram::RowAddr b) {
              return flip_counts[a] > flip_counts[b];
            });
  return neighbours;
}

std::optional<dram::CellEncoding> TestHost::DiscoverRowEncoding(
    dram::BankId bank, dram::RowAddr logical_row, Tick wait) {
  VRD_FATAL_IF(wait <= 0, "retention wait must be positive");

  auto decayed_bits = [&](std::uint8_t fill) {
    device_->BulkInitializeRow(bank, logical_row, fill);
    device_->Sleep(wait);
    device_->Activate(bank, logical_row);
    const std::vector<std::uint8_t> data =
        device_->ReadRow(bank, logical_row);
    device_->Precharge(bank);
    return dram::CountDiffBits(data, fill);
  };

  // All-zero data decays only in anti-cell rows (0 is the charged
  // state there); all-one data decays only in true-cell rows.
  if (decayed_bits(0x00) > 0) {
    return dram::CellEncoding::kAntiCell;
  }
  if (decayed_bits(0xFF) > 0) {
    return dram::CellEncoding::kTrueCell;
  }
  return std::nullopt;
}

}  // namespace vrddram::bender
