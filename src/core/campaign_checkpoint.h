/**
 * @file
 * Versioned on-disk checkpointing for campaign shards.
 *
 * A checkpoint is a plain-text snapshot of every *completed* (ok or
 * retried) shard of a campaign: its `ShardStatus` plus the full
 * `SeriesRecord`s it produced. Quarantined shards are deliberately
 * not stored, so resuming re-attempts them.
 *
 * The file starts with a format version and a hash of the campaign
 * configuration (the fields that define the intended results —
 * devices, rows, measurements, patterns, tAggOn levels, temperatures,
 * scan width, base seed, thermal-rig mode). Execution knobs (threads,
 * retry/quarantine policy, fault injection, checkpoint paths) are
 * excluded: they change how shards run, never what a completed shard
 * records. Loading rejects a version or config-hash mismatch with
 * FatalError rather than silently mixing incompatible results.
 *
 * Floating-point fields are serialized as bit-cast hexadecimal, so a
 * resumed campaign is bit-identical to an uninterrupted one.
 */
#ifndef VRDDRAM_CORE_CAMPAIGN_CHECKPOINT_H
#define VRDDRAM_CORE_CAMPAIGN_CHECKPOINT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/campaign.h"

namespace vrddram::core {

struct CampaignCheckpoint {
  /// Bump when the on-disk grammar changes incompatibly.
  static constexpr std::uint32_t kFormatVersion = 1;

  struct ShardEntry {
    std::size_t index = 0;  ///< position in the canonical shard order
    ShardStatus status;
    std::vector<SeriesRecord> records;
  };

  std::uint64_t config_hash = 0;
  /// Sorted by `index`; at most one entry per shard.
  std::vector<ShardEntry> shards;
};

/// Hash of the result-defining configuration fields (see file docs).
std::uint64_t HashCampaignConfig(const CampaignConfig& config);

/// Serialize / parse the checkpoint grammar. Parse errors and stream
/// failures raise FatalError.
void WriteCheckpoint(std::ostream& os, const CampaignCheckpoint& checkpoint);
CampaignCheckpoint ReadCheckpoint(std::istream& is);

/**
 * Atomically persist `checkpoint` to `path`: the snapshot is written
 * to `path + ".tmp"` and renamed over the target, so a crash mid-save
 * leaves either the previous checkpoint or the new one, never a
 * truncated file. Raises FatalError on I/O failure.
 */
void SaveCheckpoint(const std::string& path,
                    const CampaignCheckpoint& checkpoint);

/**
 * Load the checkpoint at `path` into `out`. Returns false (leaving
 * `out` untouched) when the file does not exist — the "nothing to
 * resume" case. Malformed content raises FatalError.
 */
bool LoadCheckpoint(const std::string& path, CampaignCheckpoint* out);

/**
 * LoadCheckpoint, then verify the stored config hash matches
 * `expected_config_hash`. Both rejection paths — format-version
 * mismatch and config-hash mismatch — raise FatalError naming `path`,
 * so a stale `--resume` file or a foreign cache entry is always
 * attributable. Returns false when the file does not exist.
 */
bool LoadCheckpointFor(const std::string& path,
                       std::uint64_t expected_config_hash,
                       CampaignCheckpoint* out);

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_CAMPAIGN_CHECKPOINT_H
