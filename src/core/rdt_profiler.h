/**
 * @file
 * The paper's Algorithm 1: read-disturbance-threshold (RDT) profiling.
 *
 * find_victim scans rows for one that is vulnerable enough to test
 * (mean guessed RDT below 40,000 at the minimum tAggOn), and test_loop
 * repeatedly measures the victim's RDT by sweeping hammer counts from
 * RDT_guess/2 to 3*RDT_guess in steps of RDT_guess/100 and recording
 * the first count that produces a bitflip.
 *
 * Three sweep execution modes trade fidelity for speed:
 *  - kCommandLevel: every ACT/PRE issued individually through a
 *    bender::TestProgram (ground truth; impractically slow at scale,
 *    exactly like real hosts would be without FPGA loops).
 *  - kBulk: the device's O(1) bulk-hammer path per sweep step.
 *  - kAnalytic: one fault-engine query per *measurement*; the sweep
 *    outcome is computed in closed form with trap states frozen at the
 *    measurement start, and device time advances by the full realistic
 *    sweep duration so trap dynamics keep their pace. This is what
 *    makes 100,000-measurement campaigns tractable.
 */
#ifndef VRDDRAM_CORE_RDT_PROFILER_H
#define VRDDRAM_CORE_RDT_PROFILER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "bender/host.h"
#include "dram/device.h"
#include "vrd/trap_engine.h"

namespace vrddram::core {

enum class SweepMode : std::uint8_t {
  kCommandLevel,
  kBulk,
  kAnalytic,
};

struct ProfilerConfig {
  dram::BankId bank = 0;
  dram::DataPattern pattern = dram::DataPattern::kCheckered0;
  /// Aggressor-on time; 0 selects the device's minimum tRAS.
  Tick t_on = 0;
  SweepMode mode = SweepMode::kAnalytic;

  /// Alg. 1 sweep bounds relative to RDT_guess.
  double sweep_lo_frac = 0.5;
  double sweep_hi_frac = 3.0;
  double sweep_step_frac = 0.01;

  /// find_victim accepts rows whose guessed RDT is below this.
  std::uint64_t find_victim_threshold = 40000;
  /// Measurements averaged into RDT_guess (Alg. 1: 10).
  std::size_t guess_measurements = 10;
  /// Upper bound of the geometric scan used to seed a guess.
  std::uint64_t guess_cap = 400000;
};

/// Sentinel recorded when no hammer count in the sweep grid flips.
inline constexpr std::int64_t kNoFlip = -1;

class RdtProfiler {
 public:
  RdtProfiler(dram::Device& device, ProfilerConfig config);

  const ProfilerConfig& config() const { return config_; }
  Tick EffectiveTOn() const;

  /**
   * One RDT measurement (Alg. 1 lines 18-26): sweep hammer counts and
   * return the first flipping count, or kNoFlip.
   */
  std::int64_t MeasureOnce(dram::RowAddr victim, std::uint64_t rdt_guess);

  /// `n` successive measurements of the same victim.
  std::vector<std::int64_t> MeasureSeries(dram::RowAddr victim,
                                          std::uint64_t rdt_guess,
                                          std::size_t n);

  /// Reuse overload: write the series into caller-owned scratch
  /// (cleared first, capacity retained). With a hoisted `out`, a
  /// campaign shard's measurement loop allocates nothing after the
  /// first series — the profiler-side series context is likewise
  /// rebuilt in place (see SeriesContext).
  void MeasureSeries(dram::RowAddr victim, std::uint64_t rdt_guess,
                     std::size_t n, std::vector<std::int64_t>& out);

  /**
   * Alg. 1's guess_RDT: seed with a geometric scan, then average
   * `guess_measurements` sweep measurements. nullopt when the row does
   * not flip below guess_cap.
   */
  std::optional<std::uint64_t> GuessRdt(dram::RowAddr victim);

  struct Victim {
    dram::RowAddr row = 0;
    std::uint64_t rdt_guess = 0;
  };

  /**
   * Alg. 1's find_victim: scan logical rows in [begin, end) and return
   * the first whose guessed RDT is below the threshold.
   */
  std::optional<Victim> FindVictim(dram::RowAddr begin, dram::RowAddr end);

 private:
  struct Grid {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;    ///< exclusive
    std::uint64_t step = 0;
  };
  Grid GridFor(std::uint64_t rdt_guess) const;

  /**
   * Everything about one (victim, rdt_guess) series that is invariant
   * across its measurements: the sweep grid, the physical row, the
   * timing-derived constants of the analytic duration model, and the
   * engine-side MeasureContext (pinned row state, per-cell invariant
   * multipliers, decay memo). Computed once per series instead of once
   * per measurement, which keeps the 100k-measurement inner loop free
   * of mapper lookups, hash-map probes, and invariant recomputation.
   */
  struct SeriesContext {
    Grid grid;
    dram::PhysicalRow phys{0};
    Tick t_on = 0;            ///< EffectiveTOn()
    Tick fixed_per_step = 0;  ///< IterationTime(0)
    Tick per_hammer = 0;      ///< 2 * (t_on + tRP)
    /// Engine-side series cache (kAnalytic mode only). Mutated by
    /// every measurement (trap-decay memo), hence the non-const
    /// threading below.
    vrd::MeasureContext measure;
  };
  SeriesContext MakeSeriesContext(dram::RowAddr victim,
                                  std::uint64_t rdt_guess);
  /// Rebuild `ctx` in place (engine-side context reused with retained
  /// capacity): the allocation-free path for series-over-series loops.
  void MakeSeriesContext(dram::RowAddr victim, std::uint64_t rdt_guess,
                         SeriesContext& ctx);

  std::int64_t MeasureOnceWith(SeriesContext& ctx,
                               dram::RowAddr victim);
  std::int64_t MeasureOnceSwept(dram::RowAddr victim,
                                const SeriesContext& ctx);
  std::int64_t MeasureOnceAnalytic(SeriesContext& ctx);

  /// Elapsed time of one init+hammer+read iteration at hammer count hc.
  Tick IterationTime(std::uint64_t hc) const;

  /**
   * MeasureOnce memo: the last series context, keyed on everything it
   * depends on that can change between calls — victim, guess, and the
   * device temperature (pattern and t_on are fixed per profiler). Lets
   * call sites that measure in a loop without holding a SeriesContext
   * (e.g. the throughput benchmarks) still hit the series-scoped fast
   * path. The pinned row state stays valid: the engine never erases.
   */
  struct OnceCache {
    bool valid = false;
    dram::RowAddr victim = 0;
    std::uint64_t rdt_guess = 0;
    Celsius temperature = 0.0;
    SeriesContext ctx;
  };
  OnceCache once_cache_;

  /// Scratch series context reused by GuessRdt and MeasureSeries so
  /// back-to-back series on one profiler stop allocating once every
  /// vector has reached its high-water capacity. Never live across a
  /// call boundary (OnceCache has its own context).
  SeriesContext series_scratch_;

  dram::Device* device_;
  bender::TestHost host_;
  ProfilerConfig config_;
  /// Non-null when the device's model is a TrapFaultEngine (enables
  /// kAnalytic).
  vrd::TrapFaultEngine* engine_ = nullptr;
};

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_RDT_PROFILER_H
