#include "core/test_time_model.h"

#include <algorithm>

#include "common/error.h"

namespace vrddram::core {

TestTimeModel::TestTimeModel(dram::TimingParams timing,
                             dram::CurrentParams currents,
                             std::uint32_t bursts_per_row,
                             std::uint32_t chips_per_rank)
    : timing_(timing),
      currents_(currents),
      bursts_per_row_(bursts_per_row),
      chips_per_rank_(chips_per_rank) {
  VRD_FATAL_IF(bursts_per_row == 0, "rows need at least one burst");
  VRD_FATAL_IF(chips_per_rank == 0, "ranks need at least one chip");
}

Tick TestTimeModel::InitOneRowTime(std::uint32_t banks) const {
  // Table 4 (one bank): ACT (tRCD), 127 WRITEs at tCCD_L_WR, final
  // write recovery tWR, PRE (tRP).
  // Table 5 (N banks): N ACTs at tRRD_S, then N*128 WRITEs at tCCD_S.
  if (banks == 1) {
    return timing_.tRCD +
           static_cast<Tick>(bursts_per_row_ - 1) * timing_.tCCD_L_WR +
           timing_.tWR + timing_.tRP;
  }
  const Tick acts = static_cast<Tick>(banks) * timing_.tRRD_S;
  const Tick writes =
      static_cast<Tick>(static_cast<std::uint64_t>(banks) *
                        bursts_per_row_ - 1) * timing_.tCCD_S;
  return acts + writes + timing_.tWR + timing_.tRP;
}

Tick TestTimeModel::HammerPhaseTime(std::uint64_t hammers, Tick t_on,
                                    std::uint32_t banks) const {
  // One hammer = activating both aggressor row addresses once. With N
  // banks, the N same-address ACTs are pipelined at tRRD_S, so each
  // aggressor phase lasts max(tAggOn, tRRD_S * N) before the PREs
  // (Table 5's Max(tAggOn, tRRD_S * 16) row).
  const Tick on_phase =
      std::max(t_on, static_cast<Tick>(banks) * timing_.tRRD_S);
  const Tick per_hammer = 2 * (on_phase + timing_.tRP);
  return static_cast<Tick>(hammers) * per_hammer;
}

Tick TestTimeModel::ReadbackTime(std::uint32_t banks) const {
  if (banks == 1) {
    return timing_.tRCD +
           static_cast<Tick>(bursts_per_row_ - 1) * timing_.tCCD_L +
           timing_.tRTP + timing_.tRP;
  }
  const Tick acts = static_cast<Tick>(banks) * timing_.tRRD_S;
  const Tick reads =
      static_cast<Tick>(static_cast<std::uint64_t>(banks) *
                        bursts_per_row_ - 1) * timing_.tCCD_S;
  return acts + reads + timing_.tRTP + timing_.tRP;
}

TestCost TestTimeModel::MeasurementCost(std::uint64_t hammers, Tick t_on,
                                        std::uint32_t banks) const {
  VRD_FATAL_IF(banks == 0, "at least one bank");
  VRD_FATAL_IF(t_on < timing_.tRAS, "tAggOn below the minimum tRAS");

  TestCost cost;
  const Tick init = 3 * InitOneRowTime(banks);  // victim + 2 aggressors
  const Tick hammer = HammerPhaseTime(hammers, t_on, banks);
  const Tick read = ReadbackTime(banks);
  const Tick total_ticks = init + hammer + read;
  cost.seconds = units::ToSeconds(total_ticks);

  // Energy: per-bank dynamic energy plus background for the duration.
  const double n = static_cast<double>(banks);
  double energy = 0.0;
  // 3 initialization ACT/PRE pairs per bank.
  energy += 3.0 * n *
            currents_.ActPreEnergy(timing_.tRC, timing_.tRC);
  // Many-bank hammering cannot draw the full per-bank ACT current
  // simultaneously: the four-activate window (tFAW) and the chip's
  // power budget cap the concurrency at ~4 banks' worth.
  const double concurrency_derate =
      std::min(n, 4.0) / n;
  energy += 2.0 * static_cast<double>(hammers) * n *
            concurrency_derate *
            currents_.ActPreEnergy(std::max(t_on, timing_.tRAS),
                                   timing_.tRC);
  energy += 1.0 * n * currents_.ActPreEnergy(timing_.tRC, timing_.tRC);
  // Burst energy: full row written 3x and read once per bank.
  const Tick wr_burst = timing_.tBL;
  energy += 3.0 * n * static_cast<double>(bursts_per_row_) *
            currents_.BurstEnergy(wr_burst, /*is_write=*/true);
  energy += 1.0 * n * static_cast<double>(bursts_per_row_) *
            currents_.BurstEnergy(wr_burst, /*is_write=*/false);
  // Background for the whole measurement (device otherwise idle).
  energy += currents_.BackgroundEnergy(total_ticks, /*bank_active=*/true);
  // Every chip of the rank executes every command in lockstep.
  cost.energy = energy * static_cast<double>(chips_per_rank_);
  return cost;
}

TestCost TestTimeModel::CampaignCost(std::uint64_t rows_per_bank,
                                     std::uint64_t measurements,
                                     std::uint64_t hammers, Tick t_on,
                                     std::uint32_t banks) const {
  const TestCost one = MeasurementCost(hammers, t_on, banks);
  TestCost total;
  const auto repetitions =
      static_cast<double>(rows_per_bank) *
      static_cast<double>(measurements);
  total.seconds = one.seconds * repetitions;
  total.energy = one.energy * repetitions;
  return total;
}

TextTable TestTimeModel::CommandTable(std::uint64_t hammers,
                                      std::uint32_t banks) const {
  TextTable table({"Command", "Address", "Timing", "# of Commands"});
  const bool multi = banks > 1;
  const std::string acts = multi ? Cell(std::uint64_t{banks}) : "1";
  const std::string writes =
      multi ? Cell(static_cast<std::uint64_t>(banks) * bursts_per_row_)
            : Cell(static_cast<std::uint64_t>(bursts_per_row_ - 1));
  const std::string act_timing = multi ? "tRRD_S" : "tRCD";
  const std::string wr_timing = multi ? "tCCD_S" : "tCCD_L_WR";

  for (const char* role : {"Victim", "Aggressor 1", "Aggressor 2"}) {
    table.AddRow({"ACT", role, act_timing, acts});
    table.AddRow({"WRITE", role, wr_timing, writes});
    table.AddRow({"WRITE", role, "tWR", "1"});
    table.AddRow({"PRE", role, "tRP", "1"});
  }
  const std::string on_phase =
      multi ? "Max(tAggOn, tRRD_S*" + Cell(std::uint64_t{banks}) + ")"
            : "tAggOn";
  table.AddRow({"ACT", "Aggressor 1", on_phase, Cell(hammers)});
  table.AddRow({"PRE", "Aggressor 1", "tRP", Cell(hammers)});
  table.AddRow({"ACT", "Aggressor 2", on_phase, Cell(hammers)});
  table.AddRow({"PRE", "Aggressor 2", "tRP", Cell(hammers)});
  table.AddRow({"ACT", "Victim", multi ? "tRRD_S" : "tRCD", acts});
  table.AddRow({"READ", "Victim", multi ? "tCCD_S" : "tCCD_L", writes});
  table.AddRow({"READ", "Victim", "tRTP", "1"});
  return table;
}

}  // namespace vrddram::core
