#include "core/campaign.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "bender/thermal.h"
#include "common/error.h"
#include "common/faultinject.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/campaign_checkpoint.h"

namespace vrddram::core {

// Out-of-range TOnChoice values arrive from user configuration (bench
// flags, config files), so per the error.h contract they are fatal
// user errors, not library panics.

std::string ToString(TOnChoice choice) {
  switch (choice) {
    case TOnChoice::kMinTras: return "min-tRAS";
    case TOnChoice::kTrefi: return "tREFI";
    case TOnChoice::kNineTrefi: return "9xtREFI";
  }
  throw FatalError("unknown tAggOn choice: " +
                   std::to_string(static_cast<int>(choice)));
}

Tick ResolveTOn(TOnChoice choice, const dram::TimingParams& timing) {
  switch (choice) {
    case TOnChoice::kMinTras: return timing.tRAS;
    case TOnChoice::kTrefi: return timing.tREFI;
    case TOnChoice::kNineTrefi: return 9 * timing.tREFI;
  }
  throw FatalError("unknown tAggOn choice: " +
                   std::to_string(static_cast<int>(choice)));
}

std::string FormatShardStatus(const ShardStatus& status) {
  switch (status.state) {
    case ShardState::kOk:
      return "ok";
    case ShardState::kRetried:
      return "retried-" + std::to_string(status.attempts - 1);
    case ShardState::kQuarantined:
      return "quarantined";
  }
  throw PanicError("unknown shard state");
}

std::vector<dram::RowAddr> SelectVulnerableRows(
    dram::Device& device, vrd::TrapFaultEngine& engine, dram::BankId bank,
    std::size_t per_region, std::size_t scan_per_region,
    dram::DataPattern pattern, Tick t_on) {
  MonotonicArena arena;
  return SelectVulnerableRows(device, engine, bank, per_region,
                              scan_per_region, pattern, t_on, arena);
}

std::vector<dram::RowAddr> SelectVulnerableRows(
    dram::Device& device, vrd::TrapFaultEngine& engine, dram::BankId bank,
    std::size_t per_region, std::size_t scan_per_region,
    dram::DataPattern pattern, Tick t_on, MonotonicArena& arena) {
  VRD_FATAL_IF(per_region == 0 || scan_per_region < per_region,
               "invalid row-selection counts");
  const dram::RowAddr rows = device.org().rows_per_bank;
  VRD_FATAL_IF(scan_per_region * 3 > rows, "bank too small for selection");

  struct Candidate {
    dram::RowAddr row;
    double mean_rdt;
  };

  // One measurement context reused across every scanned row (rebuilt
  // in place), one arena-backed candidate buffer per region: the scan
  // does not touch the heap beyond the returned row list.
  vrd::MeasureContext mctx;

  auto scan_region = [&](dram::RowAddr begin) {
    std::span<Candidate> candidates =
        arena.AllocSpan<Candidate>(scan_per_region);
    std::size_t count = 0;
    const dram::RowAddr last = device.org().LargestRowAddress();
    for (dram::RowAddr row = begin;
         row < begin + static_cast<dram::RowAddr>(scan_per_region);
         ++row) {
      const dram::PhysicalRow phys = device.mapper().ToPhysical(row);
      if (phys.value == 0 || phys.value >= last) {
        continue;
      }
      // 10 quick RDT samples, as the paper's selection step does, all
      // through one series-scoped context per scanned row.
      engine.MakeMeasureContext(bank, phys, dram::VictimByte(pattern),
                                dram::AggressorByte(pattern), t_on,
                                device.temperature(), device.encoding(),
                                device.Now(), mctx);
      double sum = 0.0;
      std::size_t hits = 0;
      for (int i = 0; i < 10; ++i) {
        const double rdt =
            engine.MinFlipHammerCount(mctx, device.Now());
        device.Sleep(10 * units::kMillisecond);
        if (rdt > 0.0) {
          sum += rdt;
          ++hits;
        }
      }
      if (hits == 10) {
        candidates[count++] = Candidate{row, sum / 10.0};
      }
    }
    // Tie-break equal means by row so the selected set is a pure
    // function of the measurements, not of sort implementation or
    // candidate order.
    std::span<Candidate> found = candidates.first(count);
    std::sort(found.begin(), found.end(),
              [](const Candidate& a, const Candidate& b) {
                return std::tie(a.mean_rdt, a.row) <
                       std::tie(b.mean_rdt, b.row);
              });
    if (found.size() > per_region) {
      found = found.first(per_region);
    }
    return found;
  };

  std::vector<dram::RowAddr> selected;
  const dram::RowAddr scan = static_cast<dram::RowAddr>(scan_per_region);
  for (const dram::RowAddr begin :
       {dram::RowAddr{0}, (rows - scan) / 2, rows - scan}) {
    for (const Candidate& candidate : scan_region(begin)) {
      selected.push_back(candidate.row);
    }
  }
  return selected;
}

namespace {

/**
 * One unit of campaign work: everything a single (device, temperature)
 * combination measures. The shard builds its own device from
 * (name, base_seed) — the same deterministic derivation for every
 * worker count — so shards share no mutable state and can run on any
 * thread in any order.
 */
std::vector<SeriesRecord> RunShard(const CampaignConfig& config,
                                   const std::string& name,
                                   Celsius temperature) {
  const vrd::TestedChip chip =
      vrd::MakeTestedChip(name, config.base_seed);
  std::unique_ptr<dram::Device> device =
      vrd::BuildDevice(name, config.base_seed);
  auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
  VRD_ASSERT(engine != nullptr);
  if (device->config().has_on_die_ecc) {
    // §3.1: disable the HBM2 chips' on-die ECC via the mode register.
    device->SetOnDieEccEnabled(false);
  }

  // Per-shard arena: backs the row-selection scan (and any future
  // batched contexts) so the shard's steady state stays off the heap.
  MonotonicArena arena;

  // Row selection runs on the freshly built device, before the shard
  // temperature is applied, so every shard of the same device selects
  // the identical row set.
  const std::size_t per_region =
      std::max<std::size_t>(1, config.rows_per_device / 3);
  const std::vector<dram::RowAddr> rows = SelectVulnerableRows(
      *device, *engine, /*bank=*/0, per_region,
      config.scan_rows_per_region, dram::DataPattern::kCheckered0,
      device->timing().tRAS, arena);

  if (config.use_thermal_rig) {
    bender::TemperatureController rig(*device);
    rig.SettleTo(temperature);
  } else {
    device->SetTemperature(temperature);
    device->Sleep(30 * units::kSecond);
  }

  std::vector<SeriesRecord> records;
  // Hoisted series scratch: the measurement loop reuses one buffer and
  // the profiler's in-place series context; only the per-record copy
  // into `records` allocates.
  std::vector<std::int64_t> series_scratch;
  for (const TOnChoice t_on_choice : config.t_ons) {
    const Tick t_on = ResolveTOn(t_on_choice, device->timing());
    for (const dram::DataPattern pattern : config.patterns) {
      ProfilerConfig pc;
      pc.bank = 0;
      pc.pattern = pattern;
      pc.t_on = t_on;
      pc.mode = SweepMode::kAnalytic;
      RdtProfiler profiler(*device, pc);

      for (const dram::RowAddr row : rows) {
        const std::optional<std::uint64_t> guess = profiler.GuessRdt(row);
        if (!guess) {
          continue;  // row does not flip under this combination
        }
        SeriesRecord record;
        record.device = name;
        record.mfr = chip.spec.mfr;
        record.standard = chip.spec.standard;
        record.density_gbit = chip.spec.density_gbit;
        record.die_rev = chip.spec.die_rev;
        record.row = row;
        record.pattern = pattern;
        record.t_on = t_on_choice;
        record.temperature = temperature;
        record.rdt_guess = *guess;
        profiler.MeasureSeries(row, *guess, config.measurements,
                               series_scratch);
        record.series = series_scratch;
        records.push_back(std::move(record));
      }
    }
  }
  return records;
}

}  // namespace

CampaignResult RunCampaign(const CampaignConfig& config,
                           std::ostream* progress) {
  VRD_FATAL_IF(config.devices.empty(), "campaign needs devices");
  VRD_FATAL_IF(config.measurements == 0, "campaign needs measurements");
  VRD_FATAL_IF(config.max_attempts == 0,
               "campaign needs at least one attempt per shard");
  VRD_FATAL_IF(config.resume && config.checkpoint_path.empty(),
               "campaign resume requires a checkpoint path");

  // Parsed once, shared read-only by every worker; each shard attempt
  // opens its own FaultScope so fire schedules depend only on
  // (seed, site, shard label, attempt), never on thread count.
  const fi::FaultPlan plan =
      fi::FaultPlan::Parse(config.inject, config.base_seed);
  const std::uint64_t config_hash = HashCampaignConfig(config);

  struct Shard {
    const std::string* device = nullptr;
    Celsius temperature = 0.0;
  };
  // Canonical shard order: device-major, temperature-minor — the same
  // nesting the serial loop used, and the order results merge in.
  std::vector<Shard> shards;
  shards.reserve(config.devices.size() * config.temperatures.size());
  for (const std::string& name : config.devices) {
    for (const Celsius temperature : config.temperatures) {
      shards.push_back(Shard{&name, temperature});
    }
  }

  const Stopwatch wall_watch;
  std::mutex progress_mutex;
  std::vector<std::vector<SeriesRecord>> per_shard(shards.size());
  std::vector<ShardStatus> statuses(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    statuses[i].device = *shards[i].device;
    statuses[i].temperature = shards[i].temperature;
  }
  // Not vector<bool>: workers write distinct indices concurrently.
  std::vector<char> restored(shards.size(), 0);
  std::vector<char> completed(shards.size(), 0);

  if (config.resume) {
    CampaignCheckpoint checkpoint;
    if (LoadCheckpointFor(config.checkpoint_path, config_hash,
                          &checkpoint)) {
      for (CampaignCheckpoint::ShardEntry& entry : checkpoint.shards) {
        VRD_FATAL_IF(entry.index >= shards.size(),
                     "checkpoint: shard index " +
                         std::to_string(entry.index) + " out of range");
        const Shard& shard = shards[entry.index];
        VRD_FATAL_IF(entry.status.device != *shard.device ||
                         entry.status.temperature != shard.temperature,
                     "checkpoint: shard " + std::to_string(entry.index) +
                         " key mismatch (expected " + *shard.device +
                         ", got " + entry.status.device + ")");
        per_shard[entry.index] = std::move(entry.records);
        statuses[entry.index] = std::move(entry.status);
        restored[entry.index] = 1;
        completed[entry.index] = 1;
      }
    }
  }

  // Persist every completed non-quarantined shard. Serialized by the
  // mutex; rewrites the whole snapshot (shard counts are small) via
  // the atomic tmp+rename in SaveCheckpoint, so an interrupt at any
  // instant leaves a loadable file.
  std::mutex checkpoint_mutex;
  auto persist_completed = [&]() {
    CampaignCheckpoint checkpoint;
    checkpoint.config_hash = config_hash;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (completed[i] == 0 ||
          statuses[i].state == ShardState::kQuarantined) {
        continue;
      }
      CampaignCheckpoint::ShardEntry entry;
      entry.index = i;
      entry.status = statuses[i];
      entry.records = per_shard[i];
      checkpoint.shards.push_back(std::move(entry));
    }
    SaveCheckpoint(config.checkpoint_path, checkpoint);
  };

  auto run_one = [&](std::size_t index) {
    const Shard& shard = shards[index];
    ShardStatus& status = statuses[index];
    if (restored[index] != 0) {
      if (progress != nullptr) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        *progress << "campaign: " << *shard.device << " @ "
                  << shard.temperature
                  << " degC: restored from checkpoint ("
                  << per_shard[index].size() << " series)\n";
      }
      return;
    }
    const Stopwatch shard_watch;
    std::ostringstream label;
    label << "campaign/" << *shard.device << '@' << shard.temperature;
    const std::string scope_label = label.str();
    for (std::uint64_t attempt = 0;; ++attempt) {
      try {
        fi::FaultScope scope(plan, scope_label, attempt);
        if (fi::ShouldFire("core.campaign.shard")) {
          throw TransientError("campaign shard " + scope_label +
                               " failed (injected)");
        }
        per_shard[index] =
            RunShard(config, *shard.device, shard.temperature);
        status.attempts = attempt + 1;
        status.state =
            attempt == 0 ? ShardState::kOk : ShardState::kRetried;
        break;
      } catch (const TransientError& error) {
        per_shard[index].clear();
        status.error = error.what();
        status.attempts = attempt + 1;
        if (attempt + 1 < config.max_attempts) {
          // Exponential backoff between attempts, in simulated ticks.
          // Bookkeeping only: the next attempt rebuilds its device
          // from scratch, and advancing any clock here would make a
          // retried shard diverge from a never-failed one.
          status.backoff_ticks += config.retry_backoff_base << attempt;
          continue;
        }
        if (!config.quarantine) {
          throw;
        }
        status.state = ShardState::kQuarantined;
        break;
      } catch (const FatalError& error) {
        // A user-error shard cannot succeed on retry: quarantine it
        // immediately (or propagate when quarantine is off).
        per_shard[index].clear();
        status.error = error.what();
        status.attempts = attempt + 1;
        if (!config.quarantine) {
          throw;
        }
        status.state = ShardState::kQuarantined;
        break;
      }
      // PanicError and unknown exceptions propagate: a library bug
      // must never be quarantined away (error.h contract).
    }
    if (!config.checkpoint_path.empty()) {
      const std::lock_guard<std::mutex> lock(checkpoint_mutex);
      completed[index] = 1;
      persist_completed();
    } else {
      completed[index] = 1;
    }
    if (progress == nullptr) {
      return;
    }
    const double seconds = shard_watch.Seconds();
    std::ostringstream line;
    line << "campaign: " << *shard.device << " @ " << shard.temperature
         << " degC: ";
    if (status.state == ShardState::kQuarantined) {
      line << "quarantined after " << status.attempts << " attempt(s): "
           << status.error;
    } else {
      std::size_t rows = 0;
      std::size_t measurements = 0;
      {
        std::set<dram::RowAddr> distinct;
        for (const SeriesRecord& record : per_shard[index]) {
          distinct.insert(record.row);
          measurements += record.series.size();
        }
        rows = distinct.size();
      }
      const std::size_t series = per_shard[index].size();
      line << rows << " rows, " << series << " series, " << measurements
           << " measurements in " << seconds << " s";
      if (seconds > 0.0) {
        line << " (" << static_cast<double>(series) / seconds
             << " series/s, "
             << static_cast<double>(measurements) / seconds
             << " meas/s)";
      }
      if (status.state == ShardState::kRetried) {
        line << " [" << FormatShardStatus(status) << ']';
      }
    }
    line << '\n';
    const std::lock_guard<std::mutex> lock(progress_mutex);
    *progress << line.str();
  };

  const std::size_t threads =
      config.threads == 0 ? ThreadPool::DefaultWorkerCount()
                          : config.threads;
  const std::size_t workers = std::min(threads, shards.size());
  if (workers > 1) {
    ThreadPool pool(workers);
    pool.ParallelFor(shards.size(), run_one);
  } else {
    for (std::size_t i = 0; i < shards.size(); ++i) {
      run_one(i);
    }
  }

  CampaignResult result;
  std::size_t total_series = 0;
  std::size_t total_measurements = 0;
  for (std::vector<SeriesRecord>& records : per_shard) {
    for (SeriesRecord& record : records) {
      total_series += 1;
      total_measurements += record.series.size();
      result.records.push_back(std::move(record));
    }
  }
  std::size_t retried = 0;
  std::size_t quarantined = 0;
  std::size_t from_checkpoint = 0;
  for (const ShardStatus& status : statuses) {
    retried += status.state == ShardState::kRetried ? 1 : 0;
    quarantined += status.state == ShardState::kQuarantined ? 1 : 0;
    from_checkpoint += status.from_checkpoint ? 1 : 0;
  }
  result.shards = std::move(statuses);
  if (progress != nullptr) {
    const double seconds = wall_watch.Seconds();
    *progress << "campaign: done: " << shards.size() << " shards ("
              << shards.size() - quarantined << " ok, " << retried
              << " retried, " << quarantined << " quarantined, "
              << from_checkpoint << " restored), " << total_series
              << " series, " << total_measurements
              << " measurements in " << seconds << " s wall on "
              << workers << " thread(s)";
    if (seconds > 0.0) {
      *progress << " ("
                << static_cast<double>(total_measurements) / seconds
                << " meas/s)";
    }
    *progress << '\n';
  }
  return result;
}

}  // namespace vrddram::core
