#include "core/campaign_cache.h"

#include <filesystem>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "core/campaign_checkpoint.h"

namespace vrddram::core {

namespace {

std::string HashHex(std::uint64_t hash) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << hash;
  return os.str();
}

bool IsComplete(const CampaignResult& result) {
  for (const ShardStatus& status : result.shards) {
    if (status.state == ShardState::kQuarantined) {
      return false;
    }
  }
  return !result.shards.empty();
}

/// Split the canonically ordered flat record list back into per-shard
/// lists. Records carry the exact (device, temperature) key their
/// shard ran with, so the match is exact.
std::vector<CampaignCheckpoint::ShardEntry> ToShardEntries(
    const CampaignResult& result) {
  std::map<std::pair<std::string, double>, std::size_t> index_of;
  std::vector<CampaignCheckpoint::ShardEntry> entries(
      result.shards.size());
  for (std::size_t i = 0; i < result.shards.size(); ++i) {
    entries[i].index = i;
    entries[i].status = result.shards[i];
    index_of[{result.shards[i].device,
              result.shards[i].temperature}] = i;
  }
  for (const SeriesRecord& record : result.records) {
    const auto it = index_of.find({record.device, record.temperature});
    VRD_FATAL_IF(it == index_of.end(),
                 "campaign-cache: record for " + record.device +
                     " matches no shard of the result being stored");
    entries[it->second].records.push_back(record);
  }
  return entries;
}

CampaignResult FromCheckpoint(CampaignCheckpoint&& checkpoint) {
  CampaignResult result;
  for (CampaignCheckpoint::ShardEntry& entry : checkpoint.shards) {
    for (SeriesRecord& record : entry.records) {
      result.records.push_back(std::move(record));
    }
    result.shards.push_back(std::move(entry.status));
  }
  return result;
}

}  // namespace

CampaignCache::CampaignCache(std::string dir) : dir_(std::move(dir)) {}

std::string CampaignCache::EntryPath(
    const CampaignConfig& config) const {
  if (dir_.empty()) {
    return "";
  }
  return (std::filesystem::path(dir_) /
          ("campaign-" + HashHex(HashCampaignConfig(config)) + ".ckpt"))
      .string();
}

std::optional<CampaignResult> CampaignCache::Lookup(
    const CampaignConfig& config) {
  const std::uint64_t hash = HashCampaignConfig(config);
  const auto memo = memo_.find(hash);
  if (memo != memo_.end()) {
    ++stats_.hits;
    return memo->second;
  }
  if (!dir_.empty()) {
    CampaignCheckpoint checkpoint;
    if (LoadCheckpointFor(EntryPath(config), hash, &checkpoint)) {
      // A valid entry must cover every shard of the campaign exactly
      // once (quarantined shards are never serialized). Anything less
      // is a foreign or partial file: fall through to a fresh run.
      const std::size_t expected =
          config.devices.size() * config.temperatures.size();
      bool complete = checkpoint.shards.size() == expected;
      for (std::size_t i = 0; complete && i < checkpoint.shards.size();
           ++i) {
        complete = checkpoint.shards[i].index == i;
      }
      if (complete) {
        CampaignResult result = FromCheckpoint(std::move(checkpoint));
        ++stats_.hits;
        memo_.emplace(hash, result);
        return result;
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

bool CampaignCache::Store(const CampaignConfig& config,
                          const CampaignResult& result) {
  if (!IsComplete(result)) {
    return false;
  }
  const std::uint64_t hash = HashCampaignConfig(config);
  memo_.insert_or_assign(hash, result);
  if (!dir_.empty()) {
    std::filesystem::create_directories(dir_);
    CampaignCheckpoint checkpoint;
    checkpoint.config_hash = hash;
    checkpoint.shards = ToShardEntries(result);
    SaveCheckpoint(EntryPath(config), checkpoint);
  }
  ++stats_.stores;
  return true;
}

CampaignResult RunCampaignCached(const CampaignConfig& config,
                                 CampaignCache* cache,
                                 std::ostream* telemetry,
                                 std::ostream* progress) {
  if (cache == nullptr) {
    return RunCampaign(config, progress);
  }
  const std::string key = HashHex(HashCampaignConfig(config));
  if (std::optional<CampaignResult> result = cache->Lookup(config)) {
    if (telemetry != nullptr) {
      *telemetry << "campaign-cache: hit " << key << " ("
                 << result->records.size() << " series, "
                 << result->shards.size() << " shards)\n";
    }
    return *std::move(result);
  }
  if (telemetry != nullptr) {
    *telemetry << "campaign-cache: miss " << key
               << ": executing campaign\n";
  }
  CampaignResult result = RunCampaign(config, progress);
  if (cache->Store(config, result)) {
    if (telemetry != nullptr) {
      *telemetry << "campaign-cache: stored " << key
                 << (cache->dir().empty() ? " (memory)\n" : "\n");
    }
  } else if (telemetry != nullptr) {
    *telemetry << "campaign-cache: not cached " << key
               << " (campaign has quarantined shards)\n";
  }
  return result;
}

}  // namespace vrddram::core
