/**
 * @file
 * Per-series VRD analysis: every statistic the paper derives from a
 * series of repeated RDT measurements (Findings 1-4 and the Fig. 1-7
 * metrics) in one structure.
 */
#ifndef VRDDRAM_CORE_SERIES_ANALYSIS_H
#define VRDDRAM_CORE_SERIES_ANALYSIS_H

#include <cstdint>
#include <span>
#include <vector>

#include "stats/autocorrelation.h"
#include "stats/chi_square.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/run_length.h"

namespace vrddram::core {

struct SeriesAnalysis {
  std::size_t measurements = 0;  ///< series length, including no-flips
  std::size_t valid = 0;         ///< measurements that observed a flip

  std::int64_t min_rdt = 0;
  std::int64_t max_rdt = 0;
  double max_over_min = 0.0;           ///< Finding 5's 3.5x metric
  std::size_t first_min_index = 0;     ///< measurement # where the
                                       ///< minimum first appears (Fig. 1)
  std::size_t min_multiplicity = 0;    ///< how often the minimum occurs

  std::size_t unique_values = 0;       ///< Finding 2 (Fig. 4)
  double mean = 0.0;
  double stddev = 0.0;
  double cv = 0.0;                     ///< Fig. 7 coefficient of variation
  stats::BoxStats box;                 ///< Fig. 3

  stats::RunLengthHistogram run_lengths;  ///< Fig. 5
  double immediate_change_fraction = 0.0; ///< Finding 3 (79.0%)

  stats::GoodnessOfFit normal_fit;     ///< §4.1 chi-square test
  std::vector<double> acf;             ///< Fig. 6
  double acf_significant_fraction = 0.0;
  std::size_t histogram_modes = 0;     ///< bimodality probe (Finding 2)
};

/**
 * Analyze a measurement series. kNoFlip sentinels (negative values)
 * are excluded from value statistics but noted in `measurements`.
 * The series must contain at least `min_valid` flipping measurements.
 */
SeriesAnalysis AnalyzeSeries(std::span<const std::int64_t> series,
                             std::size_t acf_max_lag = 40,
                             std::size_t min_valid = 8);

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_SERIES_ANALYSIS_H
