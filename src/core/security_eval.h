/**
 * @file
 * Security evaluation of guardbanded thresholds (§6.1): a mitigation
 * configured with threshold T preventively refreshes a victim before
 * its aggressors reach T activations. Under VRD the victim's *actual*
 * flipping count changes per hammering episode; the defense fails the
 * first time an episode's flipping count drops below T.
 *
 * EvaluateThreshold simulates repeated attack episodes against the
 * trap fault engine (an idealized tracker that always refreshes at
 * exactly T activations - the best case for the defense) and reports
 * when, if ever, a bitflip slips through.
 */
#ifndef VRDDRAM_CORE_SECURITY_EVAL_H
#define VRDDRAM_CORE_SECURITY_EVAL_H

#include <cstdint>
#include <optional>
#include <vector>

#include "dram/device.h"
#include "vrd/trap_engine.h"

namespace vrddram::core {

struct SecurityResult {
  std::uint64_t configured_threshold = 0;
  std::uint64_t episodes = 0;
  std::uint64_t breached_episodes = 0;  ///< episodes with a bitflip
  /// First episode in which the defense failed (nullopt: never).
  std::optional<std::uint64_t> first_breach;

  bool Secure() const { return breached_episodes == 0; }
  double BreachRate() const {
    return episodes == 0
               ? 0.0
               : static_cast<double>(breached_episodes) /
                     static_cast<double>(episodes);
  }
};

/**
 * Simulate `episodes` double-sided attack episodes against `victim`
 * (logical row). In each episode the attacker hammers until the
 * idealized tracker intervenes at `threshold` activations; the episode
 * breaches if the row's flipping count at that moment is at or below
 * the threshold. Episodes are spaced `episode_gap` apart in device
 * time so trap states evolve realistically.
 */
SecurityResult EvaluateThreshold(dram::Device& device,
                                 vrd::TrapFaultEngine& engine,
                                 dram::RowAddr victim,
                                 std::uint64_t threshold,
                                 std::uint64_t episodes,
                                 Tick episode_gap,
                                 dram::DataPattern pattern =
                                     dram::DataPattern::kCheckered0);

/**
 * Sweep guardbands: profile the row's minimum RDT with
 * `profile_measurements` measurements, then evaluate thresholds at
 * each margin below that minimum. Returns one SecurityResult per
 * margin, in the given order.
 */
std::vector<SecurityResult> EvaluateGuardbands(
    dram::Device& device, vrd::TrapFaultEngine& engine,
    dram::RowAddr victim, std::size_t profile_measurements,
    const std::vector<double>& margins, std::uint64_t episodes,
    dram::DataPattern pattern = dram::DataPattern::kCheckered0);

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_SECURITY_EVAL_H
