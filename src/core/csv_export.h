/**
 * @file
 * CSV export of campaign results so measurements can be post-processed
 * outside the suite (the paper's own figures were produced from such
 * dumps). Two shapes: the raw per-measurement long format, and a
 * one-row-per-series analysis summary.
 */
#ifndef VRDDRAM_CORE_CSV_EXPORT_H
#define VRDDRAM_CORE_CSV_EXPORT_H

#include <iosfwd>

#include "core/campaign.h"

namespace vrddram::core {

/**
 * Long format, one line per measurement:
 * device,row,pattern,t_on,temperature,measurement_index,rdt,shard_status
 * (rdt is -1 for measurements that observed no flip; shard_status is
 * the record's shard outcome — "ok", "retried-<n>" or "quarantined" —
 * and "ok" for results without shard statuses).
 *
 * Both writers verify the stream after writing and raise FatalError on
 * failure, so a short write cannot pass as a complete export.
 */
void WriteSeriesCsv(std::ostream& os, const CampaignResult& result);

/**
 * Summary format, one line per series:
 * device,mfr,density_gbit,die_rev,row,pattern,t_on,temperature,
 * rdt_guess,measurements,valid,min,max,mean,cv,unique_values,
 * first_min_index,immediate_change_fraction,shard_status
 */
void WriteSummaryCsv(std::ostream& os, const CampaignResult& result);

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_CSV_EXPORT_H
