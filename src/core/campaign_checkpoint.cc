#include "core/campaign_checkpoint.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"

namespace vrddram::core {

namespace {

constexpr char kMagic[] = "vrddram-campaign-checkpoint";

/// Doubles round-trip as bit-cast hex so restored values are exact.
std::string DoubleToHex(double value) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0')
     << std::bit_cast<std::uint64_t>(value);
  return os.str();
}

double HexToDouble(const std::string& text) {
  std::uint64_t bits = 0;
  std::istringstream is(text);
  is >> std::hex >> bits;
  VRD_FATAL_IF(is.fail() || !is.eof(),
               "checkpoint: bad float field '" + text + "'");
  return std::bit_cast<double>(bits);
}

/// A token the grammar stores bare must not break tokenization.
void CheckToken(const std::string& token, const char* what) {
  VRD_FATAL_IF(token.empty() ||
                   token.find_first_of(" \t\n\r") != std::string::npos,
               std::string("checkpoint: ") + what +
                   " must be a non-empty whitespace-free token, got '" +
                   token + "'");
}

void Expect(std::istream& is, const char* keyword) {
  std::string word;
  is >> word;
  VRD_FATAL_IF(word != keyword, "checkpoint: expected '" +
                                    std::string(keyword) + "', got '" +
                                    word + "'");
}

template <typename T>
T ReadInt(std::istream& is, const char* what) {
  T value{};
  is >> value;
  VRD_FATAL_IF(is.fail(),
               std::string("checkpoint: bad integer field: ") + what);
  return value;
}

double ReadHexDouble(std::istream& is, const char* what) {
  std::string token;
  is >> token;
  VRD_FATAL_IF(is.fail(),
               std::string("checkpoint: missing float field: ") + what);
  return HexToDouble(token);
}

std::string ReadToken(std::istream& is, const char* what) {
  std::string token;
  is >> token;
  VRD_FATAL_IF(is.fail(),
               std::string("checkpoint: missing field: ") + what);
  return token;
}

void WriteRecord(std::ostream& os, const SeriesRecord& record) {
  os << "record " << record.device << ' '
     << static_cast<int>(record.mfr) << ' '
     << static_cast<int>(record.standard) << ' ' << record.density_gbit
     << ' ' << static_cast<int>(record.die_rev) << ' ' << record.row
     << ' ' << static_cast<int>(record.pattern) << ' '
     << static_cast<int>(record.t_on) << ' '
     << DoubleToHex(record.temperature) << ' ' << record.rdt_guess << ' '
     << record.series.size() << '\n';
  for (std::size_t i = 0; i < record.series.size(); ++i) {
    os << (i == 0 ? "" : " ") << record.series[i];
  }
  os << '\n';
}

SeriesRecord ReadRecord(std::istream& is) {
  Expect(is, "record");
  SeriesRecord record;
  record.device = ReadToken(is, "record device");
  record.mfr = static_cast<vrd::Manufacturer>(ReadInt<int>(is, "mfr"));
  record.standard =
      static_cast<dram::Standard>(ReadInt<int>(is, "standard"));
  record.density_gbit = ReadInt<std::uint32_t>(is, "density");
  record.die_rev = static_cast<char>(ReadInt<int>(is, "die_rev"));
  record.row = ReadInt<dram::RowAddr>(is, "row");
  record.pattern =
      static_cast<dram::DataPattern>(ReadInt<int>(is, "pattern"));
  record.t_on = static_cast<TOnChoice>(ReadInt<int>(is, "t_on"));
  record.temperature = ReadHexDouble(is, "record temperature");
  record.rdt_guess = ReadInt<std::uint64_t>(is, "rdt_guess");
  const auto n = ReadInt<std::size_t>(is, "series length");
  record.series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    record.series.push_back(ReadInt<std::int64_t>(is, "series value"));
  }
  return record;
}

}  // namespace

std::uint64_t HashCampaignConfig(const CampaignConfig& config) {
  // Canonical string over the result-defining fields only (see header:
  // execution knobs are excluded on purpose).
  std::ostringstream os;
  os << "v" << CampaignCheckpoint::kFormatVersion;
  os << "|devices";
  for (const std::string& name : config.devices) {
    os << ':' << name;
  }
  os << "|rows:" << config.rows_per_device;
  os << "|meas:" << config.measurements;
  os << "|patterns";
  for (const dram::DataPattern pattern : config.patterns) {
    os << ':' << static_cast<int>(pattern);
  }
  os << "|t_ons";
  for (const TOnChoice t_on : config.t_ons) {
    os << ':' << static_cast<int>(t_on);
  }
  os << "|temps";
  for (const Celsius temperature : config.temperatures) {
    os << ':' << DoubleToHex(temperature);
  }
  os << "|scan:" << config.scan_rows_per_region;
  os << "|seed:" << config.base_seed;
  os << "|rig:" << (config.use_thermal_rig ? 1 : 0);
  return HashLabel(0x5a6ec4a1, os.str());
}

void WriteCheckpoint(std::ostream& os,
                     const CampaignCheckpoint& checkpoint) {
  os << kMagic << ' ' << CampaignCheckpoint::kFormatVersion << '\n';
  os << "config " << std::hex << std::setw(16) << std::setfill('0')
     << checkpoint.config_hash << std::dec << '\n';
  os << "shards " << checkpoint.shards.size() << '\n';
  for (const CampaignCheckpoint::ShardEntry& entry : checkpoint.shards) {
    CheckToken(entry.status.device, "shard device name");
    os << "shard " << entry.index << ' ' << entry.status.device << ' '
       << DoubleToHex(entry.status.temperature) << ' '
       << static_cast<int>(entry.status.state) << ' '
       << entry.status.attempts << ' ' << entry.status.backoff_ticks
       << '\n';
    // Free-text field: keep it on its own line so tokens stay clean.
    os << "error " << entry.status.error << '\n';
    os << "records " << entry.records.size() << '\n';
    for (const SeriesRecord& record : entry.records) {
      WriteRecord(os, record);
    }
  }
  os << "end\n";
  os.flush();
  VRD_FATAL_IF(!os, "checkpoint: stream failed while writing");
}

CampaignCheckpoint ReadCheckpoint(std::istream& is) {
  Expect(is, kMagic);
  const auto version = ReadInt<std::uint32_t>(is, "format version");
  VRD_FATAL_IF(version != CampaignCheckpoint::kFormatVersion,
               "checkpoint: format version " + std::to_string(version) +
                   " does not match expected " +
                   std::to_string(CampaignCheckpoint::kFormatVersion));
  CampaignCheckpoint checkpoint;
  Expect(is, "config");
  {
    const std::string token = ReadToken(is, "config hash");
    std::istringstream hex(token);
    hex >> std::hex >> checkpoint.config_hash;
    VRD_FATAL_IF(hex.fail() || !hex.eof(),
                 "checkpoint: bad config hash '" + token + "'");
  }
  Expect(is, "shards");
  const auto shard_count = ReadInt<std::size_t>(is, "shard count");
  checkpoint.shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    Expect(is, "shard");
    CampaignCheckpoint::ShardEntry entry;
    entry.index = ReadInt<std::size_t>(is, "shard index");
    entry.status.device = ReadToken(is, "shard device");
    entry.status.temperature = ReadHexDouble(is, "shard temperature");
    entry.status.state =
        static_cast<ShardState>(ReadInt<int>(is, "shard state"));
    VRD_FATAL_IF(entry.status.state == ShardState::kQuarantined,
                 "checkpoint: quarantined shards are never checkpointed");
    entry.status.attempts = ReadInt<std::uint64_t>(is, "shard attempts");
    entry.status.backoff_ticks = ReadInt<Tick>(is, "shard backoff");
    entry.status.from_checkpoint = true;
    Expect(is, "error");
    is.ignore(1);  // the single space separating keyword and text
    std::getline(is, entry.status.error);
    Expect(is, "records");
    const auto record_count = ReadInt<std::size_t>(is, "record count");
    entry.records.reserve(record_count);
    for (std::size_t r = 0; r < record_count; ++r) {
      entry.records.push_back(ReadRecord(is));
    }
    checkpoint.shards.push_back(std::move(entry));
  }
  Expect(is, "end");
  std::sort(checkpoint.shards.begin(), checkpoint.shards.end(),
            [](const CampaignCheckpoint::ShardEntry& a,
               const CampaignCheckpoint::ShardEntry& b) {
              return a.index < b.index;
            });
  for (std::size_t s = 1; s < checkpoint.shards.size(); ++s) {
    VRD_FATAL_IF(
        checkpoint.shards[s].index == checkpoint.shards[s - 1].index,
        "checkpoint: duplicate shard index " +
            std::to_string(checkpoint.shards[s].index));
  }
  return checkpoint;
}

void SaveCheckpoint(const std::string& path,
                    const CampaignCheckpoint& checkpoint) {
  VRD_FATAL_IF(path.empty(), "checkpoint: empty path");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    VRD_FATAL_IF(!os, "checkpoint: cannot open '" + tmp + "' for writing");
    WriteCheckpoint(os, checkpoint);
    os.close();
    VRD_FATAL_IF(!os, "checkpoint: failed to finish writing '" + tmp + "'");
  }
  VRD_FATAL_IF(std::rename(tmp.c_str(), path.c_str()) != 0,
               "checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
}

bool LoadCheckpoint(const std::string& path, CampaignCheckpoint* out) {
  VRD_ASSERT(out != nullptr);
  std::ifstream is(path);
  if (!is) {
    return false;  // nothing to resume
  }
  try {
    *out = ReadCheckpoint(is);
  } catch (const FatalError& e) {
    // Re-raise with the offending file named: the grammar-level
    // messages have no way to know which path they came from.
    throw FatalError("checkpoint '" + path + "': " + e.what());
  }
  return true;
}

bool LoadCheckpointFor(const std::string& path,
                       std::uint64_t expected_config_hash,
                       CampaignCheckpoint* out) {
  if (!LoadCheckpoint(path, out)) {
    return false;
  }
  if (out->config_hash != expected_config_hash) {
    std::ostringstream os;
    os << "checkpoint '" << path << "': config hash " << std::hex
       << std::setw(16) << std::setfill('0') << out->config_hash
       << " does not match the requested campaign's hash " << std::setw(16)
       << std::setfill('0') << expected_config_hash
       << "; it belongs to a different configuration";
    throw FatalError(os.str());
  }
  return true;
}

}  // namespace vrddram::core
