#include "core/rdt_profiler.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/faultinject.h"

namespace vrddram::core {

RdtProfiler::RdtProfiler(dram::Device& device, ProfilerConfig config)
    : device_(&device), host_(device), config_(config) {
  VRD_FATAL_IF(config_.sweep_lo_frac <= 0.0 ||
                   config_.sweep_hi_frac <= config_.sweep_lo_frac,
               "invalid sweep bounds");
  VRD_FATAL_IF(config_.sweep_step_frac <= 0.0, "invalid sweep step");
  VRD_FATAL_IF(!device.org().ValidBank(config_.bank), "bank out of range");
  engine_ = dynamic_cast<vrd::TrapFaultEngine*>(&device.model());
  VRD_FATAL_IF(config_.mode == SweepMode::kAnalytic && engine_ == nullptr,
               "analytic sweeps require a TrapFaultEngine device model");
}

Tick RdtProfiler::EffectiveTOn() const {
  return config_.t_on > 0 ? config_.t_on : device_->timing().tRAS;
}

RdtProfiler::Grid RdtProfiler::GridFor(std::uint64_t rdt_guess) const {
  VRD_FATAL_IF(rdt_guess == 0, "RDT guess must be positive");
  Grid grid;
  grid.lo = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(rdt_guess) * config_.sweep_lo_frac));
  grid.hi = std::max<std::uint64_t>(
      grid.lo + 1, static_cast<std::uint64_t>(
                       static_cast<double>(rdt_guess) *
                       config_.sweep_hi_frac));
  grid.step = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(rdt_guess) * config_.sweep_step_frac));
  return grid;
}

Tick RdtProfiler::IterationTime(std::uint64_t hc) const {
  const dram::TimingParams& t = device_->timing();
  const auto bursts =
      static_cast<Tick>(device_->org().row_bytes / 64);

  // One row initialization: ACT, full write train, PRE.
  const Tick row_init = t.tRCD + (bursts - 1) * t.tCCD_L_WR + t.tCWL +
                        t.tBL + t.tWR + t.tRP;
  const Tick init = 17 * std::max(row_init, t.tRAS + t.tRP);
  // Double-sided hammering: hc activations per aggressor.
  const Tick hammer =
      static_cast<Tick>(2 * hc) * (EffectiveTOn() + t.tRP);
  // Victim readback: ACT, full read train, PRE.
  const Tick read = t.tRCD + (bursts - 1) * t.tCCD_L + t.tCL + t.tBL +
                    t.tRTP + t.tRP;
  return init + hammer + read;
}

RdtProfiler::SeriesContext RdtProfiler::MakeSeriesContext(
    dram::RowAddr victim, std::uint64_t rdt_guess) {
  SeriesContext ctx;
  MakeSeriesContext(victim, rdt_guess, ctx);
  return ctx;
}

void RdtProfiler::MakeSeriesContext(dram::RowAddr victim,
                                    std::uint64_t rdt_guess,
                                    SeriesContext& ctx) {
  ctx.grid = GridFor(rdt_guess);
  ctx.t_on = EffectiveTOn();
  if (config_.mode == SweepMode::kAnalytic) {
    ctx.phys = device_->mapper().ToPhysical(victim);
    ctx.fixed_per_step = IterationTime(0);
    ctx.per_hammer = 2 * (ctx.t_on + device_->timing().tRP);
    // In-place rebuild: the engine clears and refills the context's
    // vectors without releasing their capacity.
    engine_->MakeMeasureContext(
        config_.bank, ctx.phys, dram::VictimByte(config_.pattern),
        dram::AggressorByte(config_.pattern), ctx.t_on,
        device_->temperature(), device_->encoding(), device_->Now(),
        ctx.measure);
  }
}

std::int64_t RdtProfiler::MeasureOnceSwept(dram::RowAddr victim,
                                           const SeriesContext& ctx) {
  const Grid& grid = ctx.grid;
  for (std::uint64_t hc = grid.lo; hc < grid.hi; hc += grid.step) {
    const std::vector<dram::BitFlip> flips =
        (config_.mode == SweepMode::kCommandLevel)
            ? host_.TestOnceExact(config_.bank, victim, config_.pattern,
                                  hc, ctx.t_on)
            : host_.TestOnce(config_.bank, victim, config_.pattern, hc,
                             ctx.t_on);
    if (!flips.empty()) {
      return static_cast<std::int64_t>(hc);
    }
  }
  return kNoFlip;
}

std::int64_t RdtProfiler::MeasureOnceAnalytic(SeriesContext& ctx) {
  VRD_ASSERT(engine_ != nullptr);
  const Grid& grid = ctx.grid;
  const double rdt_true =
      engine_->MinFlipHammerCount(ctx.measure, device_->Now());

  // First grid value whose hammer count reaches the flipping count.
  std::int64_t observed = kNoFlip;
  if (rdt_true >= 0.0) {
    if (rdt_true <= static_cast<double>(grid.lo)) {
      observed = static_cast<std::int64_t>(grid.lo);
    } else {
      const double offset = rdt_true - static_cast<double>(grid.lo);
      const auto steps = static_cast<std::uint64_t>(
          std::ceil(offset / static_cast<double>(grid.step)));
      const std::uint64_t value = grid.lo + steps * grid.step;
      if (value < grid.hi) {
        observed = static_cast<std::int64_t>(value);
      }
    }
  }

  // Advance device time by the duration the real sweep would take, so
  // trap dynamics keep their physical pace. The per-iteration time is
  // affine in the hammer count, so the sum over the executed grid
  // prefix has a closed form.
  const std::uint64_t last_hc =
      (observed != kNoFlip) ? static_cast<std::uint64_t>(observed)
                            : grid.lo + ((grid.hi - 1 - grid.lo) /
                                         grid.step) * grid.step;
  const std::uint64_t steps = (last_hc - grid.lo) / grid.step + 1;
  // Sum of the arithmetic hammer-count sequence lo, lo+step, ..., last.
  const auto hammer_sum = static_cast<Tick>(
      steps * (grid.lo + last_hc) / 2);
  const Tick duration =
      static_cast<Tick>(steps) * ctx.fixed_per_step +
      ctx.per_hammer * hammer_sum;
  device_->Sleep(duration);
  return observed;
}

std::int64_t RdtProfiler::MeasureOnceWith(SeriesContext& ctx,
                                          dram::RowAddr victim) {
  const std::int64_t rdt = (config_.mode == SweepMode::kAnalytic)
                               ? MeasureOnceAnalytic(ctx)
                               : MeasureOnceSwept(victim, ctx);
  if (fi::ShouldFire("core.profiler.noflip")) {
    // A spuriously clean measurement: the sweep ran (device time has
    // advanced as usual) but the readout missed the flip.
    return kNoFlip;
  }
  return rdt;
}

std::int64_t RdtProfiler::MeasureOnce(dram::RowAddr victim,
                                      std::uint64_t rdt_guess) {
  if (!once_cache_.valid || once_cache_.victim != victim ||
      once_cache_.rdt_guess != rdt_guess ||
      once_cache_.temperature != device_->temperature()) {
    MakeSeriesContext(victim, rdt_guess, once_cache_.ctx);
    once_cache_.victim = victim;
    once_cache_.rdt_guess = rdt_guess;
    once_cache_.temperature = device_->temperature();
    once_cache_.valid = true;
  }
  return MeasureOnceWith(once_cache_.ctx, victim);
}

std::vector<std::int64_t> RdtProfiler::MeasureSeries(
    dram::RowAddr victim, std::uint64_t rdt_guess, std::size_t n) {
  std::vector<std::int64_t> series;
  MeasureSeries(victim, rdt_guess, n, series);
  return series;
}

void RdtProfiler::MeasureSeries(dram::RowAddr victim,
                                std::uint64_t rdt_guess, std::size_t n,
                                std::vector<std::int64_t>& out) {
  out.clear();
  out.reserve(n);
  // The grid, row mapping, timing constants, and engine-side caches
  // depend only on (victim, rdt_guess) and the fixed test setup; the
  // scratch context is rebuilt in place with retained capacity.
  MakeSeriesContext(victim, rdt_guess, series_scratch_);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(MeasureOnceWith(series_scratch_, victim));
  }
}

std::optional<std::uint64_t> RdtProfiler::GuessRdt(dram::RowAddr victim) {
  // Seed: rough scale of the row's RDT.
  std::uint64_t rough = 0;
  if (config_.mode == SweepMode::kAnalytic) {
    const dram::PhysicalRow phys = device_->mapper().ToPhysical(victim);
    const double rdt_true = engine_->MinFlipHammerCount(
        config_.bank, phys, dram::VictimByte(config_.pattern),
        dram::AggressorByte(config_.pattern), EffectiveTOn(),
        device_->temperature(), device_->encoding(), device_->Now());
    device_->Sleep(10 * units::kMillisecond);
    if (rdt_true < 1.0 ||
        rdt_true > static_cast<double>(config_.guess_cap)) {
      return std::nullopt;
    }
    rough = static_cast<std::uint64_t>(rdt_true);
  } else {
    std::uint64_t hc = 512;
    while (hc < config_.guess_cap) {
      const auto flips = host_.TestOnce(config_.bank, victim,
                                        config_.pattern, hc,
                                        EffectiveTOn());
      if (!flips.empty()) {
        rough = hc;
        break;
      }
      hc = hc + hc / 2;
    }
    if (rough == 0) {
      return std::nullopt;
    }
  }

  // Alg. 1: the guess is the mean RDT across `guess_measurements`
  // repeated measurements.
  double sum = 0.0;
  std::size_t hits = 0;
  MakeSeriesContext(victim, rough, series_scratch_);
  for (std::size_t i = 0; i < config_.guess_measurements; ++i) {
    const std::int64_t rdt = MeasureOnceWith(series_scratch_, victim);
    if (rdt != kNoFlip) {
      sum += static_cast<double>(rdt);
      ++hits;
    }
  }
  if (hits == 0) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(sum / static_cast<double>(hits));
}

std::optional<RdtProfiler::Victim> RdtProfiler::FindVictim(
    dram::RowAddr begin, dram::RowAddr end) {
  VRD_FATAL_IF(begin >= end, "empty row range");
  const dram::RowAddr last = device_->org().LargestRowAddress();
  for (dram::RowAddr row = begin; row < end && row <= last; ++row) {
    const dram::PhysicalRow phys = device_->mapper().ToPhysical(row);
    if (phys.value == 0 || phys.value >= last) {
      continue;  // edge rows have no double-sided aggressors
    }
    const std::optional<std::uint64_t> guess = GuessRdt(row);
    if (guess && *guess < config_.find_victim_threshold) {
      return Victim{row, *guess};
    }
  }
  return std::nullopt;
}

}  // namespace vrddram::core
