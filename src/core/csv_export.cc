#include "core/csv_export.h"

#include <ostream>
#include <string>

#include "common/error.h"
#include "core/series_analysis.h"

namespace vrddram::core {

namespace {

/// Status column for a record's shard. Results built by hand (tests,
/// ad-hoc analyses) carry no statuses; their records were by
/// construction not quarantined, so they export as "ok".
std::string StatusFor(const CampaignResult& result,
                      const SeriesRecord& record) {
  for (const ShardStatus& status : result.shards) {
    if (status.device == record.device &&
        status.temperature == record.temperature) {
      return FormatShardStatus(status);
    }
  }
  return "ok";
}

/// A short write that slips through leaves a silently truncated
/// export — or worse, a truncated checkpoint — so stream failure is a
/// hard error, not a best-effort condition.
void CheckStream(std::ostream& os, const char* what) {
  os.flush();
  VRD_FATAL_IF(!os, std::string("csv export: stream failed writing the ") +
                        what + " (short write?)");
}

}  // namespace

void WriteSeriesCsv(std::ostream& os, const CampaignResult& result) {
  os << "device,row,pattern,t_on,temperature,measurement_index,rdt,"
        "shard_status\n";
  for (const SeriesRecord& record : result.records) {
    const std::string status = StatusFor(result, record);
    for (std::size_t i = 0; i < record.series.size(); ++i) {
      os << record.device << ',' << record.row << ','
         << dram::ToString(record.pattern) << ','
         << ToString(record.t_on) << ',' << record.temperature << ','
         << i << ',' << record.series[i] << ',' << status << '\n';
    }
  }
  CheckStream(os, "series export");
}

void WriteSummaryCsv(std::ostream& os, const CampaignResult& result) {
  os << "device,mfr,density_gbit,die_rev,row,pattern,t_on,temperature,"
        "rdt_guess,measurements,valid,min,max,mean,cv,unique_values,"
        "first_min_index,immediate_change_fraction,shard_status\n";
  for (const SeriesRecord& record : result.records) {
    const SeriesAnalysis a = AnalyzeSeries(record.series, 1);
    os << record.device << ',' << vrd::ToString(record.mfr) << ','
       << record.density_gbit << ',' << record.die_rev << ','
       << record.row << ',' << dram::ToString(record.pattern) << ','
       << ToString(record.t_on) << ',' << record.temperature << ','
       << record.rdt_guess << ',' << a.measurements << ',' << a.valid
       << ',' << a.min_rdt << ',' << a.max_rdt << ',' << a.mean << ','
       << a.cv << ',' << a.unique_values << ',' << a.first_min_index
       << ',' << a.immediate_change_fraction << ','
       << StatusFor(result, record) << '\n';
  }
  CheckStream(os, "summary export");
}

}  // namespace vrddram::core
