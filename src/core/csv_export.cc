#include "core/csv_export.h"

#include <ostream>

#include "core/series_analysis.h"

namespace vrddram::core {

void WriteSeriesCsv(std::ostream& os, const CampaignResult& result) {
  os << "device,row,pattern,t_on,temperature,measurement_index,rdt\n";
  for (const SeriesRecord& record : result.records) {
    for (std::size_t i = 0; i < record.series.size(); ++i) {
      os << record.device << ',' << record.row << ','
         << dram::ToString(record.pattern) << ','
         << ToString(record.t_on) << ',' << record.temperature << ','
         << i << ',' << record.series[i] << '\n';
    }
  }
}

void WriteSummaryCsv(std::ostream& os, const CampaignResult& result) {
  os << "device,mfr,density_gbit,die_rev,row,pattern,t_on,temperature,"
        "rdt_guess,measurements,valid,min,max,mean,cv,unique_values,"
        "first_min_index,immediate_change_fraction\n";
  for (const SeriesRecord& record : result.records) {
    const SeriesAnalysis a = AnalyzeSeries(record.series, 1);
    os << record.device << ',' << vrd::ToString(record.mfr) << ','
       << record.density_gbit << ',' << record.die_rev << ','
       << record.row << ',' << dram::ToString(record.pattern) << ','
       << ToString(record.t_on) << ',' << record.temperature << ','
       << record.rdt_guess << ',' << a.measurements << ',' << a.valid
       << ',' << a.min_rdt << ',' << a.max_rdt << ',' << a.mean << ','
       << a.cv << ',' << a.unique_values << ',' << a.first_min_index
       << ',' << a.immediate_change_fraction << '\n';
  }
}

}  // namespace vrddram::core
