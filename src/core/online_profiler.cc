#include "core/online_profiler.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"

namespace vrddram::core {

OnlineRdtProfiler::OnlineRdtProfiler(dram::Device& device,
                                     dram::RowAddr victim,
                                     OnlineProfilerConfig config,
                                     ProfilerConfig profiler_config)
    : device_(&device),
      victim_(victim),
      config_(config),
      profiler_(device, profiler_config),
      guardband_(config.min_guardband) {
  VRD_FATAL_IF(config.measurements_per_window == 0,
               "windows need measurements");
  VRD_FATAL_IF(config.min_guardband < 0.0 ||
                   config.max_guardband >= 1.0 ||
                   config.min_guardband > config.max_guardband,
               "invalid guardband bounds");
}

bool OnlineRdtProfiler::RunMaintenanceWindow() {
  // One coarse lock for the whole window: measurements are device
  // time, not contention-sensitive, and the readers only need a
  // consistent (min, guardband) pair.
  const std::lock_guard<std::mutex> lock(mu_);
  ++windows_run_;
  if (!rdt_guess_) {
    rdt_guess_ = profiler_.GuessRdt(victim_);
    if (!rdt_guess_) {
      return false;  // row does not flip (yet); try again next window
    }
  }

  bool discovered = false;
  for (std::size_t i = 0; i < config_.measurements_per_window; ++i) {
    const std::int64_t rdt = profiler_.MeasureOnce(victim_, *rdt_guess_);
    if (rdt < 0) {
      continue;
    }
    const auto value = static_cast<std::uint64_t>(rdt);
    if (!observed_min_ || value < *observed_min_) {
      observed_min_ = value;
      discovered = true;
    }
  }

  if (discovered) {
    ++discoveries_;
    guardband_ = std::min(config_.max_guardband,
                          guardband_ + config_.widen_on_discovery);
  } else {
    guardband_ = std::max(config_.min_guardband,
                          guardband_ - config_.narrow_on_quiet);
  }
  return discovered;
}

std::optional<std::uint64_t>
OnlineRdtProfiler::RecommendedThreshold() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!observed_min_) {
    return std::nullopt;
  }
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(*observed_min_) * (1.0 - guardband_)));
}

}  // namespace vrddram::core
