/**
 * @file
 * Monte Carlo minimum-RDT identification analysis (§5.1, Figs. 8, 15,
 * 25): for each measurement series, the probability of finding the
 * series minimum (optionally within a safety margin) with N < series
 * length measurements, and the expected normalized value of the
 * minimum found.
 */
#ifndef VRDDRAM_CORE_MIN_RDT_MC_H
#define VRDDRAM_CORE_MIN_RDT_MC_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "stats/monte_carlo.h"

namespace vrddram::core {

struct MinRdtSettings {
  /// The paper's N values.
  std::vector<std::size_t> sample_sizes = {1, 3, 5, 10, 50, 500};
  /// Monte Carlo iterations per (row, N) pair (paper: 10,000).
  std::size_t iterations = 10000;
  /// Safety margins for Fig. 15 (fractions of the minimum RDT).
  std::vector<double> margins = {0.10, 0.20, 0.30, 0.40, 0.50};
};

/// Per-series results, one entry per sample size.
struct RowMinRdtResult {
  std::vector<stats::MinSampleResult> per_n;
};

/**
 * Resample one series (kNoFlip sentinels removed) for each configured
 * N. The caller supplies the RNG so campaigns stay deterministic: one
 * child stream is forked per sample size (in order, before any work is
 * dispatched), so the result is bit-identical whether the per-N
 * resampling runs inline (`pool` null) or fanned out across workers.
 */
RowMinRdtResult AnalyzeRowSeries(std::span<const std::int64_t> series,
                                 const MinRdtSettings& settings, Rng& rng,
                                 ThreadPool* pool = nullptr);

/**
 * Reusable working storage for AnalyzeRowSeries: the filtered series,
 * the per-N child streams, and the fork labels (cached per sample-size
 * list, so repeated calls build no strings). Hoist one instance across
 * a record loop and the analysis stops allocating once every buffer
 * reaches its high-water capacity.
 */
struct MinRdtScratch {
  std::vector<std::int64_t> valid;
  std::vector<Rng> streams;
  std::vector<std::string> labels;
  std::vector<std::size_t> labeled_sizes;  ///< sample sizes labels match
};

/// Scratch overload: identical results to the value-returning form
/// (same filtering, same fork order, same per-N statistics), writing
/// into `out` and drawing working storage from `scratch`.
void AnalyzeRowSeries(std::span<const std::int64_t> series,
                      const MinRdtSettings& settings, Rng& rng,
                      RowMinRdtResult& out, MinRdtScratch& scratch,
                      ThreadPool* pool = nullptr);

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_MIN_RDT_MC_H
