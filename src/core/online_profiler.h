/**
 * @file
 * Online RDT profiling with a runtime-configurable threshold - the
 * future-work direction the paper calls for (§6.5, directions 2-3).
 *
 * Instead of one offline profiling pass, an OnlineRdtProfiler keeps
 * re-measuring a row during idle maintenance windows. Its running
 * minimum only tightens over time; whenever a new, lower RDT state is
 * observed, the exported threshold (running minimum shrunk by an
 * adaptive guardband) drops, and a cooperating mitigation reconfigures
 * itself. The adaptive guardband widens when minima keep being
 * discovered (the row is VRD-active) and narrows as the estimate
 * stabilizes, bounded below by `min_guardband`.
 *
 * Thread safety: maintenance windows run on a background thread while
 * the mitigation polls RecommendedThreshold() from the request path,
 * so every estimate field is guarded by `mu_` (and annotated for the
 * vrdlint lock-discipline rule, which verifies the coverage).
 */
#ifndef VRDDRAM_CORE_ONLINE_PROFILER_H
#define VRDDRAM_CORE_ONLINE_PROFILER_H

#include <cstdint>
#include <mutex>
#include <optional>

#include "core/rdt_profiler.h"

namespace vrddram::core {

struct OnlineProfilerConfig {
  /// Measurements taken per maintenance window.
  std::size_t measurements_per_window = 4;
  /// Guardband bounds; the adaptive guardband stays within them.
  double min_guardband = 0.10;
  double max_guardband = 0.50;
  /// Each newly discovered minimum widens the guardband by this much.
  double widen_on_discovery = 0.10;
  /// Each quiet window narrows it by this much (never below min).
  double narrow_on_quiet = 0.01;
};

class OnlineRdtProfiler {
 public:
  OnlineRdtProfiler(dram::Device& device, dram::RowAddr victim,
                    OnlineProfilerConfig config = {},
                    ProfilerConfig profiler_config = {});

  /**
   * Run one maintenance window: take a few measurements, fold them
   * into the running minimum, adapt the guardband. Returns true if a
   * new minimum was discovered (the mitigation must reconfigure).
   */
  bool RunMaintenanceWindow();

  /// Running minimum observed so far (nullopt before the first flip).
  std::optional<std::uint64_t> observed_min() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return observed_min_;
  }

  /// Current adaptive guardband fraction.
  double guardband() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return guardband_;
  }

  /**
   * Threshold to program into the mitigation right now: the running
   * minimum shrunk by the adaptive guardband. nullopt until the row
   * has flipped at least once.
   */
  std::optional<std::uint64_t> RecommendedThreshold() const;

  std::size_t windows_run() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return windows_run_;
  }
  std::size_t discoveries() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return discoveries_;
  }

 private:
  dram::Device* device_;
  dram::RowAddr victim_;
  OnlineProfilerConfig config_;
  RdtProfiler profiler_;
  /// Guards every estimate field below: windows mutate them on the
  /// maintenance thread while the mitigation reads the recommendation.
  mutable std::mutex mu_;
  // vrdlint: guarded_by(mu_)
  std::optional<std::uint64_t> rdt_guess_;
  // vrdlint: guarded_by(mu_)
  std::optional<std::uint64_t> observed_min_;
  // vrdlint: guarded_by(mu_)
  double guardband_;
  // vrdlint: guarded_by(mu_)
  std::size_t windows_run_ = 0;
  // vrdlint: guarded_by(mu_)
  std::size_t discoveries_ = 0;
};

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_ONLINE_PROFILER_H
