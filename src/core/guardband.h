/**
 * @file
 * The §6.4 guardband + ECC experiment (Fig. 16, Table 3 inputs):
 * measure each tested row's RDT a few times, then repeatedly hammer at
 * hammer counts reduced by safety margins and record which unique
 * cells still flip, how many chips they span, and how they land in
 * SECDED / Chipkill ECC codewords.
 */
#ifndef VRDDRAM_CORE_GUARDBAND_H
#define VRDDRAM_CORE_GUARDBAND_H

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/rdt_profiler.h"
#include "vrd/chip_catalog.h"

namespace vrddram::core {

struct GuardbandConfig {
  std::vector<std::string> devices;     ///< paper: the §5 DDR4 modules
  std::size_t rows_per_device = 6;      ///< paper: 50
  std::size_t baseline_measurements = 5;
  std::size_t trials = 10000;
  std::vector<double> margins = {0.50, 0.40, 0.30, 0.20, 0.10};
  std::vector<dram::DataPattern> patterns = {
      dram::DataPattern::kCheckered0, dram::DataPattern::kCheckered1};
  Celsius temperature = 50.0;
  std::size_t scan_rows_per_region = 128;
  std::uint64_t base_seed = 2025;
};

struct MarginOutcome {
  double margin = 0.0;
  std::uint64_t hammer_count = 0;        ///< min RDT * (1 - margin)
  std::size_t unique_bitflips = 0;       ///< union over all trials
  std::size_t chips_touched = 0;
  std::size_t max_per_secded_codeword = 0;   ///< 8-byte granule
  std::size_t max_per_chipkill_codeword = 0; ///< 16-byte granule
  std::size_t trials_with_flips = 0;
};

struct RowGuardbandOutcome {
  std::string device;
  dram::RowAddr row = 0;
  dram::DataPattern pattern = dram::DataPattern::kCheckered0;
  std::uint64_t min_rdt = 0;  ///< min over baseline measurements
  std::vector<MarginOutcome> per_margin;
};

std::vector<RowGuardbandOutcome> RunGuardbandStudy(
    const GuardbandConfig& config, std::ostream* progress = nullptr);

/// Fig. 16: histogram of unique-bitflip counts across rows at one
/// margin. Key: number of unique bitflips; value: number of rows.
std::map<std::size_t, std::size_t> BitflipHistogramAtMargin(
    const std::vector<RowGuardbandOutcome>& outcomes, double margin);

/// Worst observed bit error rate across outcomes at one margin
/// (unique bitflips / row bits), the Table 3 input.
double WorstBitErrorRate(const std::vector<RowGuardbandOutcome>& outcomes,
                         double margin, std::size_t row_bits);

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_GUARDBAND_H
