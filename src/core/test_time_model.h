/**
 * @file
 * Appendix A: analytic RDT test time and energy estimation. Commands
 * are tightly scheduled per the DDR5 timings of Table 6; the model
 * reproduces the command listings of Tables 4 (single bank) and 5
 * (16 banks interleaved) and generates the series behind Figs. 17-24.
 */
#ifndef VRDDRAM_CORE_TEST_TIME_MODEL_H
#define VRDDRAM_CORE_TEST_TIME_MODEL_H

#include <cstdint>

#include "common/table.h"
#include "dram/timing.h"

namespace vrddram::core {

struct TestCost {
  double seconds = 0.0;  ///< wall time (double: campaigns span years)
  double energy = 0.0;   ///< joules
};

class TestTimeModel {
 public:
  /**
   * @param chips_per_rank chips operated in lockstep; every command's
   *        energy is drawn by all of them (a module-level estimate).
   */
  explicit TestTimeModel(
      dram::TimingParams timing = dram::MakeDdr5_8800(),
      dram::CurrentParams currents = dram::MakeDdr5Currents(),
      std::uint32_t bursts_per_row = 128,
      std::uint32_t chips_per_rank = 8);

  const dram::TimingParams& timing() const { return timing_; }

  /**
   * One RDT measurement of one victim row using the double-sided
   * pattern: initialize victim + 2 aggressors, hammer `hammers` times
   * per aggressor holding each open for `t_on`, read the victim back
   * (Table 4). With `banks` > 1, the same row address is tested in
   * `banks` banks simultaneously, interleaving commands at tRRD_S /
   * tCCD_S as much as timing allows (Table 5); the cost covers all
   * `banks` rows.
   */
  TestCost MeasurementCost(std::uint64_t hammers, Tick t_on,
                           std::uint32_t banks = 1) const;

  /**
   * Campaign cost: `rows_per_bank` victim rows, each measured
   * `measurements` times, testing `banks` banks in parallel.
   */
  TestCost CampaignCost(std::uint64_t rows_per_bank,
                        std::uint64_t measurements, std::uint64_t hammers,
                        Tick t_on, std::uint32_t banks = 1) const;

  /// Table 4 (banks == 1) or Table 5 (banks > 1) command listing.
  TextTable CommandTable(std::uint64_t hammers, std::uint32_t banks) const;

 private:
  Tick InitOneRowTime(std::uint32_t banks) const;
  Tick HammerPhaseTime(std::uint64_t hammers, Tick t_on,
                       std::uint32_t banks) const;
  Tick ReadbackTime(std::uint32_t banks) const;

  dram::TimingParams timing_;
  dram::CurrentParams currents_;
  std::uint32_t bursts_per_row_;
  std::uint32_t chips_per_rank_;
};

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_TEST_TIME_MODEL_H
