/**
 * @file
 * Content-addressed cache of completed campaigns.
 *
 * A campaign is keyed by `HashCampaignConfig` — the hash over the
 * result-defining configuration fields that the checkpoint machinery
 * already computes — and stored with the same versioned bit-cast-hex
 * shard serialization, so a cache hit restores a `CampaignResult`
 * that is bit-identical to the one a fresh run would produce at any
 * `--threads` setting. Execution knobs (worker count, retry policy,
 * fault injection, checkpoint paths) never participate in the key:
 * two configs that intend the same records share one entry.
 *
 * The cache has two layers:
 *
 *  - an in-process memo, so one driver invocation (`vrdrepro run
 *    --all`) executes each unique campaign exactly once and fans all
 *    dependent analyses out over the memoized result, and
 *  - an optional on-disk directory (one checkpoint file per entry,
 *    written with the atomic tmp+rename of `SaveCheckpoint`), so a
 *    later invocation skips the campaigns entirely.
 *
 * Only *complete* campaigns are cached: a result with a quarantined
 * shard is degraded and must be re-attempted, never replayed. A disk
 * entry whose format version or config hash does not match raises
 * `FatalError` naming the offending file — silently mixing results
 * from a different configuration is the one failure mode a
 * content-addressed store must never have.
 */
#ifndef VRDDRAM_CORE_CAMPAIGN_CACHE_H
#define VRDDRAM_CORE_CAMPAIGN_CACHE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "core/campaign.h"

namespace vrddram::core {

/// Hit/miss/store counters, surfaced in driver telemetry.
struct CampaignCacheStats {
  std::size_t hits = 0;    ///< lookups served from memory or disk
  std::size_t misses = 0;  ///< lookups that fell through to RunCampaign
  std::size_t stores = 0;  ///< complete results admitted to the cache
};

class CampaignCache {
 public:
  /// `dir` is the on-disk entry directory ("" = in-memory only). The
  /// directory is created lazily on the first Store.
  explicit CampaignCache(std::string dir = "");

  /**
   * Return the cached result for `config`, or nullopt on a miss.
   * Disk entries are validated (format version, config hash, one
   * entry per shard, no quarantined shards) before use; a version or
   * hash mismatch raises FatalError naming the file, while an
   * incomplete entry is treated as a miss.
   */
  std::optional<CampaignResult> Lookup(const CampaignConfig& config);

  /**
   * Admit a completed campaign. Results with quarantined shards are
   * rejected (returns false): they are degraded, and a resumed or
   * retried campaign must be able to re-attempt the missing shards.
   */
  bool Store(const CampaignConfig& config, const CampaignResult& result);

  /// Path of the disk entry for `config` ("" when in-memory only).
  std::string EntryPath(const CampaignConfig& config) const;

  const std::string& dir() const { return dir_; }
  const CampaignCacheStats& stats() const { return stats_; }

 private:
  std::string dir_;
  std::map<std::uint64_t, CampaignResult> memo_;
  CampaignCacheStats stats_;
};

/**
 * Run `config` through `cache`: a hit returns the stored result
 * without executing anything; a miss runs `RunCampaign` and admits
 * the result. `cache == nullptr` degrades to a plain `RunCampaign`
 * (the `--no-cache` escape hatch). `telemetry` (optional) receives
 * one `campaign-cache:` line per lookup — hit/miss, the 16-hex-digit
 * key, and where the entry came from or went.
 */
CampaignResult RunCampaignCached(const CampaignConfig& config,
                                 CampaignCache* cache,
                                 std::ostream* telemetry = nullptr,
                                 std::ostream* progress = nullptr);

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_CAMPAIGN_CACHE_H
