#include "core/series_analysis.h"

#include <algorithm>

#include "common/error.h"

namespace vrddram::core {

SeriesAnalysis AnalyzeSeries(std::span<const std::int64_t> series,
                             std::size_t acf_max_lag,
                             std::size_t min_valid) {
  SeriesAnalysis out;
  out.measurements = series.size();

  std::vector<std::int64_t> valid;
  valid.reserve(series.size());
  for (const std::int64_t v : series) {
    if (v >= 0) {
      valid.push_back(v);
    }
  }
  out.valid = valid.size();
  VRD_FATAL_IF(out.valid < min_valid,
               "series has too few flipping measurements to analyze");

  out.min_rdt = *std::min_element(valid.begin(), valid.end());
  out.max_rdt = *std::max_element(valid.begin(), valid.end());
  out.max_over_min = static_cast<double>(out.max_rdt) /
                     static_cast<double>(out.min_rdt);

  // First appearance of the minimum, indexed over the *full* series
  // (a no-flip measurement still costs test time).
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] == out.min_rdt) {
      out.first_min_index = i;
      break;
    }
  }
  out.min_multiplicity = static_cast<std::size_t>(
      std::count(valid.begin(), valid.end(), out.min_rdt));

  out.unique_values = stats::CountUnique(valid);

  const std::vector<double> values = stats::ToDoubles(valid);
  out.mean = stats::Mean(values);
  out.stddev = stats::SampleStddev(values);
  out.cv = (out.mean != 0.0) ? out.stddev / out.mean : 0.0;
  out.box = stats::ComputeBoxStats(values);

  out.run_lengths = stats::ComputeRunLengths(valid);
  out.immediate_change_fraction =
      out.run_lengths.ImmediateChangeFraction();

  if (out.stddev > 0.0) {
    // §4.1 convention: bin by the unique-value histogram (the RDT data
    // is quantized to the sweep grid).
    out.normal_fit = stats::ChiSquareNormalTestBinned(values);
  } else {
    out.normal_fit.p_value = 1.0;
    out.normal_fit.fitted_mean = out.mean;
  }

  const std::size_t max_lag =
      std::min(acf_max_lag, valid.size() > 1 ? valid.size() - 1 : 0);
  if (max_lag >= 1) {
    out.acf = stats::Autocorrelation(values, max_lag);
    out.acf_significant_fraction =
        stats::FractionSignificantLags(out.acf, valid.size());
  }

  const stats::Histogram hist = stats::BuildUniqueValueHistogram(values);
  out.histogram_modes = stats::CountModes(hist);
  return out;
}

}  // namespace vrddram::core
