#include "core/guardband.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>
#include <unordered_map>

#include "common/error.h"
#include "common/sorted.h"
#include "core/campaign.h"

namespace vrddram::core {

std::vector<RowGuardbandOutcome> RunGuardbandStudy(
    const GuardbandConfig& config, std::ostream* progress) {
  VRD_FATAL_IF(config.devices.empty(), "study needs devices");
  VRD_FATAL_IF(config.trials == 0, "study needs trials");
  std::vector<RowGuardbandOutcome> outcomes;

  for (const std::string& name : config.devices) {
    std::unique_ptr<dram::Device> device =
        vrd::BuildDevice(name, config.base_seed);
    auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
    VRD_ASSERT(engine != nullptr);
    device->SetTemperature(config.temperature);

    const std::size_t per_region =
        std::max<std::size_t>(1, config.rows_per_device / 3);
    const std::vector<dram::RowAddr> rows = SelectVulnerableRows(
        *device, *engine, /*bank=*/0, per_region,
        config.scan_rows_per_region, dram::DataPattern::kCheckered0,
        device->timing().tRAS);
    if (progress != nullptr) {
      *progress << "guardband: " << name << ", " << rows.size()
                << " rows\n";
    }

    for (const dram::DataPattern pattern : config.patterns) {
      ProfilerConfig pc;
      pc.bank = 0;
      pc.pattern = pattern;
      pc.mode = SweepMode::kAnalytic;
      RdtProfiler profiler(*device, pc);

      for (const dram::RowAddr row : rows) {
        // Step 1: a handful of RDT measurements; keep the minimum (the
        // paper uses 5 to keep testing time reasonable).
        const std::optional<std::uint64_t> guess = profiler.GuessRdt(row);
        if (!guess) {
          continue;
        }
        std::int64_t min_rdt = -1;
        for (std::size_t i = 0; i < config.baseline_measurements; ++i) {
          const std::int64_t rdt = profiler.MeasureOnce(row, *guess);
          if (rdt >= 0 && (min_rdt < 0 || rdt < min_rdt)) {
            min_rdt = rdt;
          }
        }
        if (min_rdt <= 0) {
          continue;
        }

        RowGuardbandOutcome outcome;
        outcome.device = name;
        outcome.row = row;
        outcome.pattern = pattern;
        outcome.min_rdt = static_cast<std::uint64_t>(min_rdt);

        const dram::PhysicalRow phys = device->mapper().ToPhysical(row);
        const std::uint32_t chips = device->org().chips_per_rank;
        const Tick t_on = device->timing().tRAS;
        const Tick trial_time =
            static_cast<Tick>(2 * outcome.min_rdt) *
            (t_on + device->timing().tRP);

        // Step 2: hammer repeatedly at guard-banded hammer counts and
        // union the flipping cells. All trials of all margins query the
        // same (row, pattern, temperature), so one MeasureContext and
        // one flip-point scratch buffer serve the whole sweep.
        vrd::MeasureContext mctx = engine->MakeMeasureContext(
            /*bank=*/0, phys, dram::VictimByte(pattern),
            dram::AggressorByte(pattern), t_on, config.temperature,
            device->encoding(), device->Now());
        std::vector<vrd::TrapFaultEngine::CellFlipPoint> points;
        for (const double margin : config.margins) {
          MarginOutcome per;
          per.margin = margin;
          per.hammer_count = static_cast<std::uint64_t>(
              static_cast<double>(outcome.min_rdt) * (1.0 - margin));
          std::set<std::uint32_t> unique_bits;
          for (std::size_t trial = 0; trial < config.trials; ++trial) {
            bool any = false;
            engine->PerCellFlipHammerCounts(mctx, device->Now(), points);
            for (const auto& point : points) {
              if (point.hammer_count >= 0.0 &&
                  point.hammer_count <=
                      static_cast<double>(per.hammer_count)) {
                unique_bits.insert(point.bit_index);
                any = true;
              }
            }
            if (any) {
              ++per.trials_with_flips;
            }
            device->Sleep(trial_time);
          }

          per.unique_bitflips = unique_bits.size();
          std::set<std::uint32_t> chip_set;
          std::unordered_map<std::uint32_t, std::size_t> secded;
          std::unordered_map<std::uint32_t, std::size_t> chipkill;
          for (const std::uint32_t bit : unique_bits) {
            const std::uint32_t byte = bit / 8;
            chip_set.insert(byte % chips);
            secded[byte / 8] += 1;
            chipkill[byte / 16] += 1;
          }
          // Aggregate over key-sorted snapshots so the reported maxima
          // are a pure function of the histogram contents, never of
          // hash-table iteration order (DESIGN.md §6).
          for (const auto& [codeword, count] : SortedByKey(secded)) {
            (void)codeword;
            per.max_per_secded_codeword =
                std::max(per.max_per_secded_codeword, count);
          }
          for (const auto& [codeword, count] : SortedByKey(chipkill)) {
            (void)codeword;
            per.max_per_chipkill_codeword =
                std::max(per.max_per_chipkill_codeword, count);
          }
          per.chips_touched = chip_set.size();
          outcome.per_margin.push_back(per);
        }
        outcomes.push_back(std::move(outcome));
      }
    }
  }
  return outcomes;
}

std::map<std::size_t, std::size_t> BitflipHistogramAtMargin(
    const std::vector<RowGuardbandOutcome>& outcomes, double margin) {
  std::map<std::size_t, std::size_t> hist;
  for (const RowGuardbandOutcome& outcome : outcomes) {
    for (const MarginOutcome& per : outcome.per_margin) {
      if (std::abs(per.margin - margin) < 1e-9) {
        ++hist[per.unique_bitflips];
      }
    }
  }
  return hist;
}

double WorstBitErrorRate(const std::vector<RowGuardbandOutcome>& outcomes,
                         double margin, std::size_t row_bits) {
  VRD_FATAL_IF(row_bits == 0, "row must have bits");
  std::size_t worst = 0;
  for (const RowGuardbandOutcome& outcome : outcomes) {
    for (const MarginOutcome& per : outcome.per_margin) {
      if (std::abs(per.margin - margin) < 1e-9) {
        worst = std::max(worst, per.unique_bitflips);
      }
    }
  }
  return static_cast<double>(worst) / static_cast<double>(row_bits);
}

}  // namespace vrddram::core
