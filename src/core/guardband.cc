#include "core/guardband.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/arena.h"
#include "common/error.h"
#include "core/campaign.h"

namespace vrddram::core {

namespace {

/// Largest per-group flip count over sorted unique bit indices, where
/// a bit's group is bit / bits_per_group (codeword locality). Sorted
/// input makes groups contiguous, so one linear run-length scan
/// replaces the histogram map the study previously built per margin —
/// the maxima are identical, and the scan allocates nothing.
std::size_t MaxFlipsPerGroup(std::span<const std::uint32_t> sorted_bits,
                             std::uint32_t bits_per_group) {
  std::size_t worst = 0;
  std::size_t run = 0;
  std::uint32_t group = 0;
  for (const std::uint32_t bit : sorted_bits) {
    const std::uint32_t g = bit / bits_per_group;
    if (run == 0 || g != group) {
      group = g;
      run = 0;
    }
    ++run;
    worst = std::max(worst, run);
  }
  return worst;
}

}  // namespace

std::vector<RowGuardbandOutcome> RunGuardbandStudy(
    const GuardbandConfig& config, std::ostream* progress) {
  VRD_FATAL_IF(config.devices.empty(), "study needs devices");
  VRD_FATAL_IF(config.trials == 0, "study needs trials");
  std::vector<RowGuardbandOutcome> outcomes;

  // Per-study arena + scratch reused by every (device, pattern, row,
  // margin) combination: the measurement loops are allocation-free
  // once the buffers reach their high-water capacity.
  MonotonicArena arena;
  vrd::MeasureContext mctx;
  std::vector<vrd::TrapFaultEngine::CellFlipPoint> points;
  std::vector<std::uint32_t> flipped_bits;
  std::vector<std::uint32_t> chip_scratch;

  for (const std::string& name : config.devices) {
    // The previous device's selection spans are dead; reuse the pages.
    arena.Reset();
    std::unique_ptr<dram::Device> device =
        vrd::BuildDevice(name, config.base_seed);
    auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
    VRD_ASSERT(engine != nullptr);
    device->SetTemperature(config.temperature);

    const std::size_t per_region =
        std::max<std::size_t>(1, config.rows_per_device / 3);
    const std::vector<dram::RowAddr> rows = SelectVulnerableRows(
        *device, *engine, /*bank=*/0, per_region,
        config.scan_rows_per_region, dram::DataPattern::kCheckered0,
        device->timing().tRAS, arena);
    if (progress != nullptr) {
      *progress << "guardband: " << name << ", " << rows.size()
                << " rows\n";
    }

    for (const dram::DataPattern pattern : config.patterns) {
      ProfilerConfig pc;
      pc.bank = 0;
      pc.pattern = pattern;
      pc.mode = SweepMode::kAnalytic;
      RdtProfiler profiler(*device, pc);

      for (const dram::RowAddr row : rows) {
        // Step 1: a handful of RDT measurements; keep the minimum (the
        // paper uses 5 to keep testing time reasonable).
        const std::optional<std::uint64_t> guess = profiler.GuessRdt(row);
        if (!guess) {
          continue;
        }
        std::int64_t min_rdt = -1;
        for (std::size_t i = 0; i < config.baseline_measurements; ++i) {
          const std::int64_t rdt = profiler.MeasureOnce(row, *guess);
          if (rdt >= 0 && (min_rdt < 0 || rdt < min_rdt)) {
            min_rdt = rdt;
          }
        }
        if (min_rdt <= 0) {
          continue;
        }

        RowGuardbandOutcome outcome;
        outcome.device = name;
        outcome.row = row;
        outcome.pattern = pattern;
        outcome.min_rdt = static_cast<std::uint64_t>(min_rdt);

        const dram::PhysicalRow phys = device->mapper().ToPhysical(row);
        const std::uint32_t chips = device->org().chips_per_rank;
        const Tick t_on = device->timing().tRAS;
        const Tick trial_time =
            static_cast<Tick>(2 * outcome.min_rdt) *
            (t_on + device->timing().tRP);

        // Step 2: hammer repeatedly at guard-banded hammer counts and
        // union the flipping cells. All trials of all margins query the
        // same (row, pattern, temperature), so one rebuilt-in-place
        // MeasureContext and the hoisted scratch buffers serve the
        // whole sweep without allocating.
        engine->MakeMeasureContext(
            /*bank=*/0, phys, dram::VictimByte(pattern),
            dram::AggressorByte(pattern), t_on, config.temperature,
            device->encoding(), device->Now(), mctx);
        for (const double margin : config.margins) {
          MarginOutcome per;
          per.margin = margin;
          per.hammer_count = static_cast<std::uint64_t>(
              static_cast<double>(outcome.min_rdt) * (1.0 - margin));
          flipped_bits.clear();
          for (std::size_t trial = 0; trial < config.trials; ++trial) {
            bool any = false;
            engine->PerCellFlipHammerCounts(mctx, device->Now(), points);
            for (const auto& point : points) {
              if (point.hammer_count >= 0.0 &&
                  point.hammer_count <=
                      static_cast<double>(per.hammer_count)) {
                flipped_bits.push_back(point.bit_index);
                any = true;
              }
            }
            if (any) {
              ++per.trials_with_flips;
            }
            device->Sleep(trial_time);
          }

          // Deduplicate across trials: sort+unique in the hoisted
          // buffer stands in for the ordered set the study previously
          // populated per margin (same unique bits, same order).
          std::sort(flipped_bits.begin(), flipped_bits.end());
          flipped_bits.erase(
              std::unique(flipped_bits.begin(), flipped_bits.end()),
              flipped_bits.end());
          per.unique_bitflips = flipped_bits.size();

          // Codeword maxima via run-length scans over the sorted bits
          // (a SECDED codeword covers 8 bytes = 64 bits, a chipkill
          // codeword 16 bytes = 128); chips touched via the sorted
          // chip-index scratch. All pure functions of the bit set,
          // identical to the previous histogram-map aggregation.
          per.max_per_secded_codeword = MaxFlipsPerGroup(flipped_bits, 64);
          per.max_per_chipkill_codeword =
              MaxFlipsPerGroup(flipped_bits, 128);
          chip_scratch.clear();
          for (const std::uint32_t bit : flipped_bits) {
            chip_scratch.push_back((bit / 8) % chips);
          }
          std::sort(chip_scratch.begin(), chip_scratch.end());
          chip_scratch.erase(
              std::unique(chip_scratch.begin(), chip_scratch.end()),
              chip_scratch.end());
          per.chips_touched = chip_scratch.size();
          outcome.per_margin.push_back(per);
        }
        outcomes.push_back(std::move(outcome));
      }
    }
  }
  return outcomes;
}

std::map<std::size_t, std::size_t> BitflipHistogramAtMargin(
    const std::vector<RowGuardbandOutcome>& outcomes, double margin) {
  std::map<std::size_t, std::size_t> hist;
  for (const RowGuardbandOutcome& outcome : outcomes) {
    for (const MarginOutcome& per : outcome.per_margin) {
      if (std::abs(per.margin - margin) < 1e-9) {
        ++hist[per.unique_bitflips];
      }
    }
  }
  return hist;
}

double WorstBitErrorRate(const std::vector<RowGuardbandOutcome>& outcomes,
                         double margin, std::size_t row_bits) {
  VRD_FATAL_IF(row_bits == 0, "row must have bits");
  std::size_t worst = 0;
  for (const RowGuardbandOutcome& outcome : outcomes) {
    for (const MarginOutcome& per : outcome.per_margin) {
      if (std::abs(per.margin - margin) < 1e-9) {
        worst = std::max(worst, per.unique_bitflips);
      }
    }
  }
  return static_cast<double>(worst) / static_cast<double>(row_bits);
}

}  // namespace vrddram::core
