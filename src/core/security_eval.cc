#include "core/security_eval.h"

#include <algorithm>

#include "common/error.h"
#include "core/rdt_profiler.h"

namespace vrddram::core {

SecurityResult EvaluateThreshold(dram::Device& device,
                                 vrd::TrapFaultEngine& engine,
                                 dram::RowAddr victim,
                                 std::uint64_t threshold,
                                 std::uint64_t episodes,
                                 Tick episode_gap,
                                 dram::DataPattern pattern) {
  VRD_FATAL_IF(threshold == 0, "threshold must be positive");
  VRD_FATAL_IF(episodes == 0, "need at least one episode");
  const dram::PhysicalRow phys = device.mapper().ToPhysical(victim);
  VRD_FATAL_IF(phys.value == 0 ||
                   phys.value >= device.org().LargestRowAddress(),
               "edge victim has no double-sided aggressors");

  SecurityResult result;
  result.configured_threshold = threshold;
  result.episodes = episodes;

  for (std::uint64_t episode = 0; episode < episodes; ++episode) {
    // The idealized tracker lets exactly `threshold` activations per
    // aggressor through before refreshing the victim. The episode
    // breaches if the row can flip at or below that count right now.
    const double flip_at = engine.MinFlipHammerCount(
        /*bank=*/0, phys, dram::VictimByte(pattern),
        dram::AggressorByte(pattern), device.timing().tRAS,
        device.temperature(), device.encoding(), device.Now());
    if (flip_at >= 0.0 &&
        flip_at <= static_cast<double>(threshold)) {
      ++result.breached_episodes;
      if (!result.first_breach) {
        result.first_breach = episode;
      }
    }
    // The attack itself plus idle time between attempts.
    const Tick attack_time =
        static_cast<Tick>(2 * threshold) *
        (device.timing().tRAS + device.timing().tRP);
    device.Sleep(attack_time + episode_gap);
  }
  return result;
}

std::vector<SecurityResult> EvaluateGuardbands(
    dram::Device& device, vrd::TrapFaultEngine& engine,
    dram::RowAddr victim, std::size_t profile_measurements,
    const std::vector<double>& margins, std::uint64_t episodes,
    dram::DataPattern pattern) {
  VRD_FATAL_IF(margins.empty(), "need at least one margin");
  VRD_FATAL_IF(profile_measurements == 0, "need profiling measurements");

  ProfilerConfig pc;
  pc.pattern = pattern;
  RdtProfiler profiler(device, pc);
  const std::optional<std::uint64_t> guess = profiler.GuessRdt(victim);
  VRD_FATAL_IF(!guess, "victim does not flip under this pattern");

  std::int64_t min_rdt = -1;
  for (std::size_t i = 0; i < profile_measurements; ++i) {
    const std::int64_t rdt = profiler.MeasureOnce(victim, *guess);
    if (rdt >= 0 && (min_rdt < 0 || rdt < min_rdt)) {
      min_rdt = rdt;
    }
  }
  VRD_FATAL_IF(min_rdt <= 0, "profiling observed no flips");

  std::vector<SecurityResult> results;
  results.reserve(margins.size());
  for (const double margin : margins) {
    VRD_FATAL_IF(margin < 0.0 || margin >= 1.0,
                 "margin must be in [0, 1)");
    const auto threshold = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(min_rdt) * (1.0 - margin)));
    results.push_back(EvaluateThreshold(device, engine, victim,
                                        threshold, episodes,
                                        100 * units::kMillisecond,
                                        pattern));
  }
  return results;
}

}  // namespace vrddram::core
