#include "core/min_rdt_mc.h"

#include "common/error.h"

namespace vrddram::core {

RowMinRdtResult AnalyzeRowSeries(std::span<const std::int64_t> series,
                                 const MinRdtSettings& settings,
                                 Rng& rng) {
  std::vector<std::int64_t> valid;
  valid.reserve(series.size());
  for (const std::int64_t v : series) {
    if (v >= 0) {
      valid.push_back(v);
    }
  }
  VRD_FATAL_IF(valid.empty(), "series has no flipping measurements");

  RowMinRdtResult out;
  out.per_n.reserve(settings.sample_sizes.size());
  for (const std::size_t n : settings.sample_sizes) {
    out.per_n.push_back(stats::SampleMinStatistics(
        valid, n, settings.iterations, rng, settings.margins));
  }
  return out;
}

}  // namespace vrddram::core
