#include "core/min_rdt_mc.h"

#include <string>

#include "common/error.h"

namespace vrddram::core {

RowMinRdtResult AnalyzeRowSeries(std::span<const std::int64_t> series,
                                 const MinRdtSettings& settings,
                                 Rng& rng, ThreadPool* pool) {
  std::vector<std::int64_t> valid;
  valid.reserve(series.size());
  for (const std::int64_t v : series) {
    if (v >= 0) {
      valid.push_back(v);
    }
  }
  VRD_FATAL_IF(valid.empty(), "series has no flipping measurements");

  // Fork one stream per sample size up front (in N order) so every
  // task draws from its own RNG: the fan-out below never shares a
  // generator, and the output does not depend on the worker count.
  std::vector<Rng> streams;
  streams.reserve(settings.sample_sizes.size());
  for (const std::size_t n : settings.sample_sizes) {
    streams.push_back(rng.Fork("minrdt/n=" + std::to_string(n)));
  }

  RowMinRdtResult out;
  out.per_n.resize(settings.sample_sizes.size());
  ParallelFor(pool, settings.sample_sizes.size(), [&](std::size_t i) {
    out.per_n[i] = stats::SampleMinStatistics(
        valid, settings.sample_sizes[i], settings.iterations, streams[i],
        settings.margins);
  });
  return out;
}

}  // namespace vrddram::core
