#include "core/min_rdt_mc.h"

#include <string>

#include "common/error.h"

namespace vrddram::core {

RowMinRdtResult AnalyzeRowSeries(std::span<const std::int64_t> series,
                                 const MinRdtSettings& settings,
                                 Rng& rng, ThreadPool* pool) {
  RowMinRdtResult out;
  MinRdtScratch scratch;
  AnalyzeRowSeries(series, settings, rng, out, scratch, pool);
  return out;
}

void AnalyzeRowSeries(std::span<const std::int64_t> series,
                      const MinRdtSettings& settings, Rng& rng,
                      RowMinRdtResult& out, MinRdtScratch& scratch,
                      ThreadPool* pool) {
  std::vector<std::int64_t>& valid = scratch.valid;
  valid.clear();
  valid.reserve(series.size());
  for (const std::int64_t v : series) {
    if (v >= 0) {
      valid.push_back(v);
    }
  }
  VRD_FATAL_IF(valid.empty(), "series has no flipping measurements");

  // Fork labels depend only on the sample-size list; cache them so a
  // hoisted scratch builds the strings once per settings shape.
  if (scratch.labeled_sizes != settings.sample_sizes) {
    scratch.labels.clear();
    scratch.labels.reserve(settings.sample_sizes.size());
    for (const std::size_t n : settings.sample_sizes) {
      scratch.labels.push_back("minrdt/n=" + std::to_string(n));
    }
    scratch.labeled_sizes = settings.sample_sizes;
  }

  // Fork one stream per sample size up front (in N order) so every
  // task draws from its own RNG: the fan-out below never shares a
  // generator, and the output does not depend on the worker count.
  std::vector<Rng>& streams = scratch.streams;
  streams.clear();
  streams.reserve(settings.sample_sizes.size());
  for (const std::string& label : scratch.labels) {
    streams.push_back(rng.Fork(label));
  }

  out.per_n.resize(settings.sample_sizes.size());
  ParallelFor(pool, settings.sample_sizes.size(), [&](std::size_t i) {
    out.per_n[i] = stats::SampleMinStatistics(
        valid, settings.sample_sizes[i], settings.iterations, streams[i],
        settings.margins);
  });
}

}  // namespace vrddram::core
