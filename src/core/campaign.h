/**
 * @file
 * Multi-row, multi-parameter characterization campaigns: the §5 test
 * methodology. Selects vulnerable rows per device (first/middle/last
 * regions, lowest mean RDT over 10 quick measurements), then collects
 * a measurement series per (row, data pattern, tAggOn, temperature)
 * combination, settling the thermal rig between temperature levels.
 */
#ifndef VRDDRAM_CORE_CAMPAIGN_H
#define VRDDRAM_CORE_CAMPAIGN_H

#include <iosfwd>
#include <string>
#include <vector>

#include "common/arena.h"
#include "core/rdt_profiler.h"
#include "vrd/chip_catalog.h"

namespace vrddram::core {

/// The paper's three aggressor-on-time levels (§5 test parameters).
enum class TOnChoice : std::uint8_t {
  kMinTras,    ///< minimum tRAS of the standard
  kTrefi,      ///< average refresh interval (7.8 us DDR4)
  kNineTrefi,  ///< 9 x tREFI, the longest legal row-open time
};

std::string ToString(TOnChoice choice);
Tick ResolveTOn(TOnChoice choice, const dram::TimingParams& timing);

/// Outcome of one (device, temperature) shard of a campaign.
enum class ShardState : std::uint8_t {
  kOk,           ///< succeeded on the first attempt
  kRetried,      ///< succeeded after >= 1 transient failure
  kQuarantined,  ///< gave up; the shard contributes no records
};

/**
 * Per-shard execution report, surfaced in `CampaignResult::shards`
 * (canonical device-major, temperature-minor order), in the CSV
 * exports (`shard_status` column) and in the bench summaries.
 */
struct ShardStatus {
  std::string device;
  Celsius temperature = 50.0;
  ShardState state = ShardState::kOk;
  /// Attempts executed (1 = clean first run). Restored shards keep the
  /// count recorded at checkpoint time.
  std::uint64_t attempts = 1;
  /// Simulated exponential-backoff delay accumulated across retries.
  /// Pure bookkeeping: it never advances any device clock, so a
  /// retried-then-successful shard stays bit-identical to a clean one.
  Tick backoff_ticks = 0;
  /// what() of the last failure for retried/quarantined shards.
  std::string error;
  /// True when the shard was restored from a checkpoint, not re-run.
  bool from_checkpoint = false;
};

/// "ok", "retried-<n>" (n = retries, i.e. attempts - 1), "quarantined".
std::string FormatShardStatus(const ShardStatus& status);

struct CampaignConfig {
  std::vector<std::string> devices;       ///< catalog names
  std::size_t rows_per_device = 15;       ///< paper: 150
  std::size_t measurements = 1000;
  std::vector<dram::DataPattern> patterns = {
      dram::DataPattern::kCheckered0};
  std::vector<TOnChoice> t_ons = {TOnChoice::kMinTras};
  std::vector<Celsius> temperatures = {50.0};
  /// Rows scanned per region during selection (paper: 1024).
  std::size_t scan_rows_per_region = 192;
  std::uint64_t base_seed = 2025;
  /// Settle temperatures through the simulated heater + PID rig; when
  /// false the device temperature is set directly (fast).
  bool use_thermal_rig = false;
  /**
   * Worker threads for the campaign executor: the campaign is sharded
   * at (device, temperature) granularity and shards run concurrently
   * on a work-stealing pool. 0 selects hardware_concurrency, 1 runs
   * the shards inline on the calling thread. Results are bit-identical
   * for every setting: each shard derives all state deterministically
   * from (device name, base_seed) and the merge order is canonical.
   */
  std::size_t threads = 0;

  // --- Resilience (DESIGN.md "Failure semantics") -------------------

  /// Attempts per shard before giving up; each attempt rebuilds the
  /// shard's device from scratch, so a retry that succeeds produces
  /// records bit-identical to a never-failed shard.
  std::size_t max_attempts = 3;
  /// Simulated backoff before retry k (doubles per retry); recorded in
  /// `ShardStatus::backoff_ticks`, never applied to a device clock.
  Tick retry_backoff_base = units::kSecond;
  /// When true (default) a shard that exhausts its attempts — or fails
  /// fatally — is quarantined and the campaign degrades gracefully to
  /// the surviving shards. When false the error propagates out of
  /// RunCampaign (the pre-resilience all-or-nothing behavior).
  bool quarantine = true;
  /// Fault-injection spec (fi::FaultPlan grammar), "" = no injection.
  /// The plan is seeded from `base_seed`. Injection and resilience
  /// knobs do not participate in the checkpoint config hash: they
  /// change how shards execute, never what a completed shard records.
  std::string inject;
  /// When non-empty, completed (ok/retried) shards are checkpointed to
  /// this path after each completion (atomic tmp + rename), so an
  /// interrupted campaign can resume without re-measuring them.
  std::string checkpoint_path;
  /// With `resume`, shards present in the checkpoint are restored
  /// verbatim instead of re-run; a missing checkpoint file runs the
  /// full campaign. Quarantined shards are never checkpointed, so a
  /// resume re-attempts them.
  bool resume = false;
};

/// One collected measurement series and its full test-parameter key.
struct SeriesRecord {
  std::string device;
  vrd::Manufacturer mfr = vrd::Manufacturer::kMfrH;
  dram::Standard standard = dram::Standard::kDdr4;
  std::uint32_t density_gbit = 0;
  char die_rev = '?';
  dram::RowAddr row = 0;
  dram::DataPattern pattern = dram::DataPattern::kCheckered0;
  TOnChoice t_on = TOnChoice::kMinTras;
  Celsius temperature = 50.0;
  std::uint64_t rdt_guess = 0;
  std::vector<std::int64_t> series;
};

struct CampaignResult {
  std::vector<SeriesRecord> records;
  /// One status per shard, canonical device-major/temperature-minor
  /// order regardless of worker count or completion order.
  std::vector<ShardStatus> shards;
};

/**
 * §5 row selection: quick-measure rows in the first, middle, and last
 * `scan_per_region` rows of the bank (10 analytic samples each) and
 * keep the `per_region` rows with the smallest mean RDT from each
 * region. Rows that never flip are skipped.
 */
std::vector<dram::RowAddr> SelectVulnerableRows(
    dram::Device& device, vrd::TrapFaultEngine& engine, dram::BankId bank,
    std::size_t per_region, std::size_t scan_per_region,
    dram::DataPattern pattern, Tick t_on);

/// Arena-backed variant: candidate storage is carved out of `arena`
/// (campaign shards pass their per-shard arena so the scan performs no
/// heap allocation besides the returned row list). Selected rows are
/// identical to the overload above.
std::vector<dram::RowAddr> SelectVulnerableRows(
    dram::Device& device, vrd::TrapFaultEngine& engine, dram::BankId bank,
    std::size_t per_region, std::size_t scan_per_region,
    dram::DataPattern pattern, Tick t_on, MonotonicArena& arena);

/**
 * Run a full campaign. Work is sharded per (device, temperature) and
 * executed on `config.threads` workers; every shard builds its own
 * `dram::Device` (device state is derived purely from the catalog name
 * and `base_seed`), so shards share nothing and the merged result is
 * bit-identical to a single-threaded run.
 *
 * `progress` (optional) receives one telemetry line per completed
 * shard — rows, series, measurements, wall-clock seconds, and the
 * series/s and measurements/s rates — plus a campaign summary line.
 * Writes are mutex-serialized; with several workers the *order* of
 * shard lines follows completion order, only the records are
 * canonically ordered.
 */
CampaignResult RunCampaign(const CampaignConfig& config,
                           std::ostream* progress = nullptr);

}  // namespace vrddram::core

#endif  // VRDDRAM_CORE_CAMPAIGN_H
