#include "memsim/mitigation.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/sorted.h"

namespace vrddram::memsim {

std::string ToString(MitigationKind kind) {
  switch (kind) {
    case MitigationKind::kNone: return "None";
    case MitigationKind::kGraphene: return "Graphene";
    case MitigationKind::kPrac: return "PRAC";
    case MitigationKind::kPara: return "PARA";
    case MitigationKind::kMint: return "MINT";
  }
  throw PanicError("unknown mitigation kind");
}

MitigationCosts MitigationCosts::FromTiming(
    const dram::TimingParams& timing) {
  MitigationCosts costs;
  // Refreshing one victim row costs a full row cycle; a preventive
  // action refreshes both neighbors of the aggressor.
  costs.neighbor_refresh = 2 * timing.tRC;
  // RFM / back-off blackout, per JESD79-5C refresh-management timing.
  costs.rfm = 195 * units::kNanosecond;
  return costs;
}

std::unique_ptr<Mitigation> MakeMitigation(
    MitigationKind kind, std::uint64_t rdt,
    const dram::TimingParams& timing, std::uint64_t seed) {
  const MitigationCosts costs = MitigationCosts::FromTiming(timing);
  switch (kind) {
    case MitigationKind::kNone:
      return std::make_unique<NoMitigation>();
    case MitigationKind::kGraphene:
      return std::make_unique<Graphene>(rdt, costs);
    case MitigationKind::kPrac:
      return std::make_unique<Prac>(rdt, costs);
    case MitigationKind::kPara:
      return std::make_unique<Para>(rdt, costs, seed);
    case MitigationKind::kMint:
      return std::make_unique<Mint>(rdt, costs, seed);
  }
  throw PanicError("unknown mitigation kind");
}

// -- Graphene ---------------------------------------------------------------

Graphene::Graphene(std::uint64_t rdt, MitigationCosts costs)
    : costs_(costs) {
  VRD_FATAL_IF(rdt < 4, "RDT too small to configure Graphene");
  // Refresh neighbors once a row accumulates a quarter of the
  // threshold; the Misra-Gries table is sized so no row can exceed the
  // threshold between resets (Graphene's W/T sizing, bounded for
  // simulation practicality).
  threshold_ = std::max<std::uint64_t>(1, rdt / 4);
  const std::uint64_t acts_per_window = 8192 * 8;  // ~tREFW at tRC pace
  table_size_ = static_cast<std::size_t>(
      std::clamp<std::uint64_t>(acts_per_window / threshold_, 8, 4096));
}

Penalty Graphene::OnActivate(std::uint32_t bank, std::uint32_t row,
                             Tick now) {
  (void)now;
  std::vector<Entry>& table = tables_[bank];
  for (Entry& entry : table) {
    if (entry.row == row) {
      if (++entry.count >= threshold_) {
        entry.count = 0;
        ++preventive_actions_;
        Penalty penalty;
        penalty.bank_busy = costs_.neighbor_refresh;
        penalty.extra_activations = 2;
        return penalty;
      }
      return Penalty{};
    }
  }
  if (table.size() < table_size_) {
    table.push_back(Entry{row, 1});
    return Penalty{};
  }
  // Misra-Gries: decrement all when the table is full and the row is
  // untracked (the spill counter absorbs the increment).
  ++spill_count_;
  for (Entry& entry : table) {
    if (entry.count > 0) {
      --entry.count;
    }
  }
  std::erase_if(table, [](const Entry& e) { return e.count == 0; });
  return Penalty{};
}

void Graphene::OnRefresh(Tick now) {
  (void)now;
  // Counter tables reset every refresh window; modeled at each REF for
  // simplicity (more conservative than per-tREFW).
}

std::vector<std::pair<std::uint32_t, std::vector<Graphene::Entry>>>
Graphene::SortedTables() const {
  auto tables = SortedByKey(tables_);
  for (auto& [bank, table] : tables) {
    (void)bank;
    std::sort(table.begin(), table.end(),
              [](const Entry& a, const Entry& b) { return a.row < b.row; });
  }
  return tables;
}

// -- PRAC --------------------------------------------------------------------

Prac::Prac(std::uint64_t rdt, MitigationCosts costs) : costs_(costs) {
  VRD_FATAL_IF(rdt < 4, "RDT too small to configure PRAC");
  // Back-off when a row's count reaches ~40% of the threshold, leaving
  // headroom for the ALERT handshake latency and in-flight activations
  // (the Chronus/PRAC analyses use similarly conservative margins).
  threshold_ = std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(static_cast<double>(rdt) * 0.4));
}

Penalty Prac::OnActivate(std::uint32_t bank, std::uint32_t row,
                         Tick now) {
  (void)now;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(bank) << 32) | row;
  std::uint64_t& count = counters_[key];
  Penalty penalty;
  penalty.bank_busy = kPerActTax;  // counter-update tRC stretch
  if (++count >= threshold_) {
    count = 0;
    ++preventive_actions_;
    // ALERT_n back-off: the whole rank performs refresh management.
    penalty.rank_busy = costs_.rfm;
  }
  return penalty;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Prac::SortedCounters()
    const {
  return SortedByKey(counters_);
}

// -- PARA --------------------------------------------------------------------

Para::Para(std::uint64_t rdt, MitigationCosts costs, std::uint64_t seed)
    : costs_(costs), rng_(seed) {
  VRD_FATAL_IF(rdt < 2, "RDT too small to configure PARA");
  // p = 1 - eps^(1/RDT) ~ -ln(eps)/RDT for a per-row failure
  // probability eps = 1e-15 over RDT activations.
  constexpr double kLnEps = 34.5;  // -ln(1e-15)
  probability_ = std::min(1.0, kLnEps / static_cast<double>(rdt));
}

Penalty Para::OnActivate(std::uint32_t bank, std::uint32_t row,
                         Tick now) {
  (void)bank;
  (void)row;
  (void)now;
  if (rng_.NextBernoulli(probability_)) {
    ++preventive_actions_;
    Penalty penalty;
    penalty.bank_busy = costs_.neighbor_refresh;
    penalty.extra_activations = 2;
    return penalty;
  }
  return Penalty{};
}

// -- MINT --------------------------------------------------------------------

Mint::Mint(std::uint64_t rdt, MitigationCosts costs, std::uint64_t seed)
    : costs_(costs), rng_(seed) {
  VRD_FATAL_IF(rdt < 8, "RDT too small to configure MINT");
  // One RFM per rdt/8 activations keeps the sampled-aggressor bound
  // below the threshold; the interval is quantized to a power of two
  // (the tracker's window register), which is why small threshold
  // changes (128 -> 115) often do not change MINT's behaviour at all.
  const std::uint64_t raw = std::max<std::uint64_t>(2, rdt / 16);
  rfm_interval_ = std::uint64_t{1} << static_cast<unsigned>(
      std::lround(std::log2(static_cast<double>(raw))));
}

Penalty Mint::OnActivate(std::uint32_t bank, std::uint32_t row,
                         Tick now) {
  (void)row;
  (void)now;
  std::uint64_t& count = acts_since_rfm_[bank];
  Penalty penalty;
  if (++count >= rfm_interval_) {
    count = 0;
    ++preventive_actions_;
    // RFM: the bank (and its bank group's ACT budget) is blocked.
    penalty.bank_busy = costs_.rfm;
    penalty.extra_activations = 4;  // refresh-management row cycles
  }
  return penalty;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
Mint::SortedBankCounters() const {
  return SortedByKey(acts_since_rfm_);
}

}  // namespace vrddram::memsim
