/**
 * @file
 * Synthetic multi-core memory workloads standing in for the paper's
 * SPEC/TPC/MediaBench/YCSB mixes (§6.3). Each core is a closed-loop
 * request generator characterized by memory intensity (LLC MPKI) and
 * row-buffer locality; the 15 four-core mixes are seeded variations
 * spanning the highly-memory-intensive regime (MPKI >= 20).
 */
#ifndef VRDDRAM_MEMSIM_WORKLOAD_H
#define VRDDRAM_MEMSIM_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace vrddram::memsim {

/// Static behaviour of one core's workload.
struct CoreProfile {
  std::string name;
  double mpki = 30.0;           ///< LLC misses per kilo-instruction
  double row_locality = 0.5;    ///< P(next access hits the open row)
  double write_fraction = 0.2;
  std::uint32_t hot_rows = 64;  ///< size of the row working set
  std::uint32_t hot_banks = 8;  ///< banks the working set spans
};

/// A four-core mix (Fig. 14 uses 15 of them).
struct WorkloadMix {
  std::string name;
  std::vector<CoreProfile> cores;
};

/// The 15 four-core highly-memory-intensive mixes.
std::vector<WorkloadMix> MakeHighMemoryIntensityMixes(
    std::uint64_t seed = 42);

/// One memory request produced by a core generator.
struct Request {
  std::uint32_t core = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  bool is_write = false;
};

/**
 * Closed-loop generator: produces the address stream of one core.
 * Issue pacing is handled by the system model; the generator only
 * decides *where* each access goes.
 */
class CoreGenerator {
 public:
  CoreGenerator(std::uint32_t core_id, const CoreProfile& profile,
                std::uint32_t num_banks, std::uint32_t rows_per_bank,
                std::uint64_t seed);

  Request Next();

  /// Average core-time between requests (from MPKI and core IPC).
  Tick ThinkTime() const;

  const CoreProfile& profile() const { return profile_; }

 private:
  std::uint32_t core_id_;
  CoreProfile profile_;
  std::uint32_t num_banks_;
  std::uint32_t rows_per_bank_;
  Rng rng_;
  std::uint32_t current_bank_ = 0;
  std::uint32_t current_row_ = 0;
  std::vector<std::uint32_t> hot_rows_;
  std::vector<std::uint32_t> hot_banks_;
};

}  // namespace vrddram::memsim

#endif  // VRDDRAM_MEMSIM_WORKLOAD_H
