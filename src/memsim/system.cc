#include "memsim/system.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace vrddram::memsim {

SystemResult SimulateMix(const WorkloadMix& mix,
                         const SystemConfig& config) {
  VRD_FATAL_IF(mix.cores.empty(), "mix has no cores");
  VRD_FATAL_IF(config.mlp == 0, "cores need at least one outstanding miss");
  const dram::TimingParams& t = config.timing;

  // Per-core generators and pacing state.
  const std::size_t num_cores = mix.cores.size();
  std::vector<CoreGenerator> generators;
  std::vector<Tick> think(num_cores);
  std::vector<std::vector<Tick>> completion_window(num_cores);
  std::vector<std::uint64_t> issued(num_cores, 0);
  std::vector<Tick> last_issue(num_cores, 0);
  std::vector<Tick> next_issue(num_cores, 0);
  std::vector<Tick> core_finish(num_cores, 0);
  generators.reserve(num_cores);
  for (std::size_t c = 0; c < num_cores; ++c) {
    generators.emplace_back(static_cast<std::uint32_t>(c), mix.cores[c],
                            config.num_banks, config.rows_per_bank,
                            MixSeed(config.seed, c, 0x3e4));
    think[c] = generators.back().ThinkTime();
    completion_window[c].assign(config.mlp, 0);
  }

  // Bank, bus, and rank-level activation-budget state. Activations
  // across the rank are spaced by at least max(tRRD_S, tFAW/4);
  // preventive refreshes consume the same budget and RFM/back-off
  // blackouts stall it entirely.
  std::vector<Tick> bank_free(config.num_banks, 0);
  std::vector<std::int64_t> open_row(config.num_banks, -1);
  Tick bus_free = 0;
  Tick rank_act_free = 0;
  const Tick act_spacing = std::max(t.tRRD_S, t.tFAW / 4);
  Tick next_ref = t.tREFI;

  std::unique_ptr<Mitigation> mitigation = MakeMitigation(
      config.mitigation, config.rdt, t, MixSeed(config.seed, 0x317));

  SystemResult result;
  result.cores.resize(num_cores);

  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(config.requests_per_core) * num_cores;
  std::uint64_t served = 0;

  // Each core exposes one head-of-line request; the scheduler picks
  // among the heads.
  std::vector<Request> head(num_cores);
  for (std::size_t c = 0; c < num_cores; ++c) {
    head[c] = generators[c].Next();
  }

  while (served < total_requests) {
    // Pick a head per the configured policy.
    std::size_t core = num_cores;
    if (config.scheduler == Scheduler::kInOrder) {
      Tick best = std::numeric_limits<Tick>::max();
      for (std::size_t c = 0; c < num_cores; ++c) {
        if (issued[c] >= config.requests_per_core) {
          continue;
        }
        if (next_issue[c] < best) {
          best = next_issue[c];
          core = c;
        }
      }
    } else {
      // FR-FCFS: earliest possible service start wins; among ties,
      // row-buffer hits beat misses, then the older request wins.
      Tick best_start = std::numeric_limits<Tick>::max();
      bool best_hit = false;
      Tick best_arrival = std::numeric_limits<Tick>::max();
      for (std::size_t c = 0; c < num_cores; ++c) {
        if (issued[c] >= config.requests_per_core) {
          continue;
        }
        const Request& candidate = head[c];
        const Tick start_c =
            std::max(next_issue[c], bank_free[candidate.bank]);
        const bool hit_c =
            open_row[candidate.bank] ==
            static_cast<std::int64_t>(candidate.row);
        const bool better =
            start_c < best_start ||
            (start_c == best_start &&
             ((hit_c && !best_hit) ||
              (hit_c == best_hit && next_issue[c] < best_arrival)));
        if (better) {
          best_start = start_c;
          best_hit = hit_c;
          best_arrival = next_issue[c];
          core = c;
        }
      }
    }
    VRD_ASSERT(core < num_cores);
    const Tick issue_time = next_issue[core];
    const Request request = head[core];
    head[core] = generators[core].Next();

    // Refresh blackouts that have come due.
    if (config.refresh_enabled) {
      while (next_ref <=
             std::max(issue_time, bank_free[request.bank])) {
        for (Tick& free_at : bank_free) {
          free_at = std::max(free_at, next_ref) + t.tRFC;
        }
        mitigation->OnRefresh(next_ref);
        next_ref += t.tREFI;
      }
    }

    const Tick start = std::max(issue_time, bank_free[request.bank]);
    const bool hit =
        open_row[request.bank] ==
        static_cast<std::int64_t>(request.row);
    Tick access_latency = 0;
    Tick bank_busy = 0;
    if (hit) {
      ++result.row_hits;
      access_latency = (request.is_write ? t.tCWL : t.tCL);
      bank_busy = t.tCCD_L;
    } else {
      // Closed-row or conflict: PRE + ACT + CAS. The activation feeds
      // the mitigation engine, whose preventive actions keep the bank
      // busy, consume rank activation budget, or stall the rank.
      ++result.activations;
      const Tick act_at = std::max(start, rank_act_free);
      const Penalty penalty =
          mitigation->OnActivate(request.bank, request.row, act_at);
      const Tick act_wait = act_at - start;
      access_latency = act_wait + t.tRP + t.tRCD + penalty.bank_busy +
                       (request.is_write ? t.tCWL : t.tCL);
      bank_busy =
          act_wait + t.tRP + t.tRCD + penalty.bank_busy + t.tCCD_L;
      rank_act_free =
          act_at +
          static_cast<Tick>(1 + penalty.extra_activations) *
              act_spacing +
          penalty.rank_busy;
      if (penalty.rank_busy > 0) {
        // A rank-wide blackout stalls every bank.
        for (Tick& free_at : bank_free) {
          free_at = std::max(free_at, act_at + penalty.rank_busy);
        }
      }
      open_row[request.bank] = static_cast<std::int64_t>(request.row);
    }

    // Shared data bus: the burst occupies tBL exclusively.
    Tick burst_start = start + access_latency;
    burst_start = std::max(burst_start, bus_free);
    const Tick completion = burst_start + t.tBL;
    bus_free = completion;
    bank_free[request.bank] =
        std::max(start + bank_busy, completion);

    result.total_latency += completion - issue_time;
    ++result.total_requests;
    result.latencies.push_back(completion - issue_time);

    // Core pacing: the (k+1)th request waits for think time and for
    // the (k+1-MLP)th completion.
    const std::uint64_t k = issued[core];
    completion_window[core][k % config.mlp] = completion;
    last_issue[core] = issue_time;
    ++issued[core];
    Tick pace = issue_time + think[core];
    if (issued[core] >= config.mlp) {
      // The (k+1-MLP)th completion gates the next issue.
      pace = std::max(
          pace,
          completion_window[core][(issued[core] - config.mlp) %
                                  config.mlp]);
    }
    next_issue[core] = pace;
    core_finish[core] = std::max(core_finish[core], completion);
    ++served;
  }

  result.preventive_actions = mitigation->preventive_actions();
  for (std::size_t c = 0; c < num_cores; ++c) {
    CoreStats& stats = result.cores[c];
    stats.requests = issued[c];
    stats.finish_time = core_finish[c];
    stats.instructions = static_cast<double>(issued[c]) *
                         (1000.0 / mix.cores[c].mpki);
    result.makespan = std::max(result.makespan, core_finish[c]);
  }
  return result;
}

double SystemResult::LatencyPercentileNs(double p) const {
  VRD_FATAL_IF(latencies.empty(), "no latencies recorded");
  VRD_FATAL_IF(p < 0.0 || p > 100.0, "percentile out of range");
  std::vector<Tick> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(rank);
  return units::ToNs(sorted[idx]);
}

double NormalizedPerformance(const SystemResult& mitigated,
                             const SystemResult& baseline) {
  VRD_FATAL_IF(mitigated.cores.size() != baseline.cores.size(),
               "mismatched core counts");
  VRD_FATAL_IF(mitigated.cores.empty(), "no cores");
  double sum = 0.0;
  for (std::size_t c = 0; c < mitigated.cores.size(); ++c) {
    const double base = baseline.cores[c].Throughput();
    VRD_FATAL_IF(base <= 0.0, "baseline core did no work");
    sum += mitigated.cores[c].Throughput() / base;
  }
  return sum / static_cast<double>(mitigated.cores.size());
}

}  // namespace vrddram::memsim
