#include "memsim/workload.h"

#include "common/error.h"

namespace vrddram::memsim {

std::vector<WorkloadMix> MakeHighMemoryIntensityMixes(std::uint64_t seed) {
  // Archetypes spanning the behaviours of the paper's suites:
  // streaming (high locality), pointer-chasing (low locality),
  // transactional (medium), and bursty analytics.
  struct Archetype {
    const char* name;
    double mpki_lo, mpki_hi;
    double loc_lo, loc_hi;
    double wr;
    std::uint32_t hot_rows;
    std::uint32_t hot_banks;
  };
  // hot_banks concentrates each core's working set on a few banks,
  // which is what row-conflict-heavy memory-intensive workloads do.
  constexpr Archetype kArchetypes[] = {
      {"stream", 25.0, 45.0, 0.75, 0.92, 0.30, 16, 4},
      {"chase", 30.0, 70.0, 0.05, 0.25, 0.05, 512, 12},
      {"txn", 20.0, 40.0, 0.35, 0.60, 0.35, 128, 8},
      {"scan", 40.0, 90.0, 0.55, 0.80, 0.15, 64, 6},
  };

  Rng rng(seed);
  std::vector<WorkloadMix> mixes;
  mixes.reserve(15);
  for (int m = 0; m < 15; ++m) {
    WorkloadMix mix;
    mix.name = "mix" + std::to_string(m);
    for (int c = 0; c < 4; ++c) {
      const Archetype& arch = kArchetypes[rng.NextBelow(4)];
      CoreProfile profile;
      profile.name = std::string(arch.name) + "-" + std::to_string(m) +
                     "." + std::to_string(c);
      profile.mpki =
          arch.mpki_lo + (arch.mpki_hi - arch.mpki_lo) * rng.NextDouble();
      profile.row_locality =
          arch.loc_lo + (arch.loc_hi - arch.loc_lo) * rng.NextDouble();
      profile.write_fraction = arch.wr;
      profile.hot_rows = arch.hot_rows;
      profile.hot_banks = arch.hot_banks;
      mix.cores.push_back(profile);
    }
    mixes.push_back(std::move(mix));
  }
  return mixes;
}

CoreGenerator::CoreGenerator(std::uint32_t core_id,
                             const CoreProfile& profile,
                             std::uint32_t num_banks,
                             std::uint32_t rows_per_bank,
                             std::uint64_t seed)
    : core_id_(core_id),
      profile_(profile),
      num_banks_(num_banks),
      rows_per_bank_(rows_per_bank),
      rng_(seed) {
  VRD_FATAL_IF(num_banks == 0 || rows_per_bank == 0, "empty geometry");
  VRD_FATAL_IF(profile.mpki <= 0.0, "MPKI must be positive");
  hot_rows_.reserve(profile_.hot_rows);
  for (std::uint32_t i = 0; i < profile_.hot_rows; ++i) {
    hot_rows_.push_back(
        static_cast<std::uint32_t>(rng_.NextBelow(rows_per_bank_)));
  }
  const std::uint32_t bank_set =
      std::max<std::uint32_t>(1, std::min(profile_.hot_banks, num_banks_));
  hot_banks_.reserve(bank_set);
  for (std::uint32_t i = 0; i < bank_set; ++i) {
    hot_banks_.push_back(
        static_cast<std::uint32_t>(rng_.NextBelow(num_banks_)));
  }
  current_bank_ = hot_banks_[rng_.NextBelow(hot_banks_.size())];
  current_row_ = hot_rows_.empty()
                     ? 0
                     : hot_rows_[rng_.NextBelow(hot_rows_.size())];
}

Request CoreGenerator::Next() {
  if (!rng_.NextBernoulli(profile_.row_locality)) {
    current_bank_ = hot_banks_[rng_.NextBelow(hot_banks_.size())];
    current_row_ = hot_rows_[rng_.NextBelow(hot_rows_.size())];
  }
  Request request;
  request.core = core_id_;
  request.bank = current_bank_;
  request.row = current_row_;
  request.is_write = rng_.NextBernoulli(profile_.write_fraction);
  return request;
}

Tick CoreGenerator::ThinkTime() const {
  // A 4 GHz core retiring 2 IPC between misses: 1000/MPKI instructions
  // take (1000 / MPKI) / 8 ns.
  const double instructions = 1000.0 / profile_.mpki;
  const double ns = instructions / 8.0;
  return static_cast<Tick>(ns * static_cast<double>(units::kNanosecond));
}

}  // namespace vrddram::memsim
