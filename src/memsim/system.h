/**
 * @file
 * Cycle-approximate four-core DDR5 memory-system model used for the
 * §6.3 mitigation-overhead study (Fig. 14). Event-driven: each core is
 * a closed-loop generator with a bounded miss window (MLP); the single
 * memory channel models per-bank row-buffer state, bank timing
 * (tRP/tRCD/tCL/tCCD), shared data-bus occupancy, periodic refresh,
 * and the per-activation penalties charged by the configured
 * read-disturbance mitigation.
 */
#ifndef VRDDRAM_MEMSIM_SYSTEM_H
#define VRDDRAM_MEMSIM_SYSTEM_H

#include <vector>

#include "dram/timing.h"
#include "memsim/mitigation.h"
#include "memsim/workload.h"

namespace vrddram::memsim {

/// Request scheduling policy.
enum class Scheduler : std::uint8_t {
  /// Serve strictly in core-issue order (baseline).
  kInOrder,
  /// FR-FCFS: among requests ready at the same instant, row-buffer
  /// hits bypass older misses.
  kFrFcfs,
};

struct SystemConfig {
  dram::TimingParams timing = dram::MakeDdr5_8800();
  Scheduler scheduler = Scheduler::kInOrder;
  std::uint32_t num_banks = 32;
  std::uint32_t rows_per_bank = 1u << 17;
  std::size_t requests_per_core = 20000;
  std::uint32_t mlp = 8;  ///< outstanding misses per core
  MitigationKind mitigation = MitigationKind::kNone;
  std::uint64_t rdt = 1024;  ///< configured read disturbance threshold
  std::uint64_t seed = 1;
  bool refresh_enabled = true;
};

struct CoreStats {
  std::uint64_t requests = 0;
  Tick finish_time = 0;
  double instructions = 0.0;
  /// Instructions per nanosecond (any consistent unit works for the
  /// normalized metrics).
  double Throughput() const {
    return finish_time > 0
               ? instructions / units::ToNs(finish_time)
               : 0.0;
  }
};

struct SystemResult {
  std::vector<CoreStats> cores;
  Tick makespan = 0;
  std::uint64_t activations = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t preventive_actions = 0;
  /// Sum of per-request (completion - issue) latencies.
  Tick total_latency = 0;
  std::uint64_t total_requests = 0;
  /// Every request's latency, for percentile reporting.
  std::vector<Tick> latencies;

  /// Average memory latency in nanoseconds.
  double AvgLatencyNs() const {
    return total_requests == 0
               ? 0.0
               : units::ToNs(total_latency) /
                     static_cast<double>(total_requests);
  }

  /// Latency percentile in nanoseconds (p in [0, 100]).
  double LatencyPercentileNs(double p) const;
};

/// Simulate one mix under one configuration.
SystemResult SimulateMix(const WorkloadMix& mix,
                         const SystemConfig& config);

/**
 * Fig. 14 metric: weighted speedup of the mitigated run normalized to
 * the baseline run (same mix, no mitigation): the mean over cores of
 * per-core throughput ratios.
 */
double NormalizedPerformance(const SystemResult& mitigated,
                             const SystemResult& baseline);

}  // namespace vrddram::memsim

#endif  // VRDDRAM_MEMSIM_SYSTEM_H
