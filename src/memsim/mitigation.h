/**
 * @file
 * Read-disturbance mitigation engines evaluated in §6.3 (Fig. 14):
 * Graphene [83], PRAC [138], PARA [1], and MINT [218]. Each engine
 * observes every row activation and returns the extra bank-busy time
 * its preventive actions cost (neighbor refreshes, RFMs, back-offs).
 *
 * All engines are configured with a read disturbance threshold; the
 * guardband study lowers that threshold by the safety margin, which is
 * exactly how the paper derives the Fig. 14 x-axis.
 */
#ifndef VRDDRAM_MEMSIM_MITIGATION_H
#define VRDDRAM_MEMSIM_MITIGATION_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dram/timing.h"

namespace vrddram::memsim {

enum class MitigationKind : std::uint8_t {
  kNone,
  kGraphene,
  kPrac,
  kPara,
  kMint,
};

std::string ToString(MitigationKind kind);

/// Cost constants shared by the engines (derived from the timing set).
struct MitigationCosts {
  Tick neighbor_refresh = 0;  ///< one victim-row refresh (ACT+PRE)
  Tick rfm = 0;               ///< one RFM / back-off blackout

  static MitigationCosts FromTiming(const dram::TimingParams& timing);
};

/// Cost of the preventive actions triggered by one activation.
struct Penalty {
  Tick bank_busy = 0;  ///< extra busy time on the activated bank
  Tick rank_busy = 0;  ///< rank-wide blackout (RFM / ALERT back-off)
  /// Preventive row activations (neighbor refreshes) consuming the
  /// rank's tRRD/tFAW activation budget.
  std::uint32_t extra_activations = 0;

  bool IsZero() const {
    return bank_busy == 0 && rank_busy == 0 && extra_activations == 0;
  }
};

class Mitigation {
 public:
  virtual ~Mitigation() = default;

  /// Row activation in `bank`; returns the preventive-action cost.
  virtual Penalty OnActivate(std::uint32_t bank, std::uint32_t row,
                             Tick now) = 0;
  /// Periodic refresh boundary (counter tables of windowed trackers
  /// reset here).
  virtual void OnRefresh(Tick /*now*/) {}

  virtual MitigationKind kind() const = 0;

  /// Total preventive actions taken (stats).
  std::uint64_t preventive_actions() const { return preventive_actions_; }

 protected:
  std::uint64_t preventive_actions_ = 0;
};

/**
 * Factory: build a mitigation configured for `rdt` (the threshold the
 * system designer programmed, i.e. measured RDT minus the guardband).
 */
std::unique_ptr<Mitigation> MakeMitigation(
    MitigationKind kind, std::uint64_t rdt,
    const dram::TimingParams& timing, std::uint64_t seed);

// -- concrete engines (exposed for unit testing) ---------------------------

/// No mitigation: the Fig. 14 baseline.
class NoMitigation final : public Mitigation {
 public:
  Penalty OnActivate(std::uint32_t, std::uint32_t, Tick) override {
    return Penalty{};
  }
  MitigationKind kind() const override { return MitigationKind::kNone; }
};

/**
 * Graphene: per-bank Misra-Gries frequent-element tables; when a
 * tracked row's estimated count reaches the threshold, its neighbors
 * are preventively refreshed and the counter resets.
 */
class Graphene final : public Mitigation {
 public:
  Graphene(std::uint64_t rdt, MitigationCosts costs);
  Penalty OnActivate(std::uint32_t bank, std::uint32_t row,
                     Tick now) override;
  void OnRefresh(Tick now) override;
  MitigationKind kind() const override {
    return MitigationKind::kGraphene;
  }
  std::uint64_t threshold() const { return threshold_; }

  struct Entry {
    std::uint32_t row = 0;
    std::uint64_t count = 0;
  };
  /**
   * Bank-sorted snapshot of the Misra-Gries tables, each table's
   * entries sorted by row. All stats/output over tracker state go
   * through this (never the raw hash map), so reported rows are a pure
   * function of the tracked counts — DESIGN.md §6.
   */
  std::vector<std::pair<std::uint32_t, std::vector<Entry>>> SortedTables()
      const;

 private:
  std::uint64_t threshold_;
  std::size_t table_size_;
  MitigationCosts costs_;
  std::unordered_map<std::uint32_t, std::vector<Entry>> tables_;
  std::uint64_t spill_count_ = 0;
};

/**
 * PRAC: per-row activation counters in DRAM; crossing the back-off
 * threshold raises ALERT_n and the controller performs an RFM during
 * which the bank is unavailable. The counter update also stretches
 * every row cycle slightly (the PRAC tRC tax).
 */
class Prac final : public Mitigation {
 public:
  Prac(std::uint64_t rdt, MitigationCosts costs);
  Penalty OnActivate(std::uint32_t bank, std::uint32_t row,
                     Tick now) override;
  MitigationKind kind() const override { return MitigationKind::kPrac; }
  std::uint64_t threshold() const { return threshold_; }
  static constexpr Tick kPerActTax = 1 * units::kNanosecond;

  /// Key-sorted ((bank << 32) | row, count) snapshot of the per-row
  /// activation counters; the only sanctioned way to enumerate them.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> SortedCounters()
      const;

 private:
  std::uint64_t threshold_;
  MitigationCosts costs_;
  std::unordered_map<std::uint64_t, std::uint64_t> counters_;
};

/**
 * PARA: on every activation, refresh the neighbors with probability p
 * chosen so that RDT activations slip through unmitigated only with
 * negligible probability (p ~ -ln(eps)/RDT).
 */
class Para final : public Mitigation {
 public:
  Para(std::uint64_t rdt, MitigationCosts costs, std::uint64_t seed);
  Penalty OnActivate(std::uint32_t bank, std::uint32_t row,
                     Tick now) override;
  MitigationKind kind() const override { return MitigationKind::kPara; }
  double probability() const { return probability_; }

 private:
  double probability_;
  MitigationCosts costs_;
  Rng rng_;
};

/**
 * MINT: a minimalist in-DRAM tracker that mitigates one sampled
 * aggressor per RFM; security requires one RFM per ~RDT/8 activations,
 * modeled as a periodic RFM blackout every K activations per bank.
 */
class Mint final : public Mitigation {
 public:
  Mint(std::uint64_t rdt, MitigationCosts costs, std::uint64_t seed);
  Penalty OnActivate(std::uint32_t bank, std::uint32_t row,
                     Tick now) override;
  MitigationKind kind() const override { return MitigationKind::kMint; }
  std::uint64_t rfm_interval() const { return rfm_interval_; }

  /// Bank-sorted (bank, activations-since-RFM) snapshot.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> SortedBankCounters()
      const;

 private:
  std::uint64_t rfm_interval_;
  MitigationCosts costs_;
  Rng rng_;
  std::unordered_map<std::uint32_t, std::uint64_t> acts_since_rfm_;
};

}  // namespace vrddram::memsim

#endif  // VRDDRAM_MEMSIM_MITIGATION_H
