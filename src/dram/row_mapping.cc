#include "dram/row_mapping.h"

#include "common/error.h"

namespace vrddram::dram {

std::string ToString(RowMappingScheme scheme) {
  switch (scheme) {
    case RowMappingScheme::kDirect: return "direct";
    case RowMappingScheme::kXorMidBits: return "xor-mid-bits";
    case RowMappingScheme::kPairSwap16: return "pair-swap-16";
  }
  throw PanicError("unknown row mapping scheme");
}

RowMapper::RowMapper(RowMappingScheme scheme, RowAddr rows_per_bank)
    : scheme_(scheme), rows_per_bank_(rows_per_bank) {
  VRD_FATAL_IF(rows_per_bank == 0, "bank must have rows");
  VRD_FATAL_IF((rows_per_bank & (rows_per_bank - 1)) != 0,
               "rows per bank must be a power of two");
  VRD_FATAL_IF(rows_per_bank < 16, "mapping schemes act on 16-row groups");
}

namespace {

RowAddr ApplyScheme(RowMappingScheme scheme, RowAddr row) {
  switch (scheme) {
    case RowMappingScheme::kDirect:
      return row;
    case RowMappingScheme::kXorMidBits: {
      // Within each aligned 8-row group, XOR the low two bits with bit
      // 2; self-inverse because bit 2 itself is untouched.
      const RowAddr bit2 = (row >> 2) & 1;
      return row ^ (bit2 ? 0x3u : 0x0u);
    }
    case RowMappingScheme::kPairSwap16: {
      // Swap odd/even pairs in the upper half of each 16-row group:
      // rows 8..15 of the group become 9,8,11,10,13,12,15,14.
      if ((row & 0x8u) != 0) {
        return row ^ 0x1u;
      }
      return row;
    }
  }
  throw PanicError("unknown row mapping scheme");
}

}  // namespace

PhysicalRow RowMapper::ToPhysical(RowAddr logical) const {
  VRD_FATAL_IF(logical >= rows_per_bank_, "row address out of range");
  return PhysicalRow{ApplyScheme(scheme_, logical)};
}

RowAddr RowMapper::ToLogical(PhysicalRow physical) const {
  VRD_FATAL_IF(physical.value >= rows_per_bank_, "row address out of range");
  // All schemes are involutions.
  return ApplyScheme(scheme_, physical.value);
}

}  // namespace vrddram::dram
