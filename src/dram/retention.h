/**
 * @file
 * Data-retention fault model. Two roles in the suite:
 *
 *  1. Interference control (§3.1): the characterization methodology
 *     must finish every test strictly within the refresh window so
 *     retention failures cannot pollute RDT measurements; this model
 *     makes that rule testable (a sloppy test program *does* pick up
 *     retention flips).
 *  2. True-/anti-cell reverse engineering (§5.6): pausing refresh far
 *     beyond the retention time decays weak cells toward their
 *     discharged state, revealing the encoding of each row.
 *
 * Each row has a sparse set of weak-retention cells with lognormal
 * retention times; retention halves per ~10 degC (the usual DRAM
 * leakage temperature dependence).
 */
#ifndef VRDDRAM_DRAM_RETENTION_H
#define VRDDRAM_DRAM_RETENTION_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dram/cell_encoding.h"
#include "dram/types.h"

namespace vrddram::dram {

struct RetentionParams {
  /// Expected number of weak-retention cells per row.
  double weak_cells_per_row = 0.25;
  /// ln of the median retention time (ticks) of a weak cell at 50 degC.
  double log_median_retention = 0.0;  // set in MakeDefault()
  /// Lognormal sigma of weak-cell retention.
  double log_sigma = 0.9;
  /// Temperature doubling constant: retention halves per this many degC.
  double halving_celsius = 10.0;
  Celsius reference_celsius = 50.0;

  static RetentionParams MakeDefault();
};

/**
 * Retention model for one device. Deterministic per (seed, bank, row):
 * the weak-cell population is a manufacturing artifact.
 */
class RetentionModel {
 public:
  RetentionModel(std::uint64_t seed, RetentionParams params,
                 std::uint32_t row_bytes);

  struct WeakCell {
    std::uint32_t bit_index = 0;  ///< bit within the row
    Tick retention_at_ref = 0;    ///< retention time at reference temp
  };

  /// The (possibly empty) weak-cell set of a row.
  std::vector<WeakCell> WeakCellsOf(BankId bank, PhysicalRow row) const;

  /**
   * Bits of `row` that have decayed given the time since the last
   * charge restoration and the temperature history (approximated by
   * the current temperature). Only cells whose *stored* value is the
   * charged state can decay.
   */
  std::vector<BitFlip> DecayedBits(BankId bank, PhysicalRow row,
                                   std::span<const std::uint8_t> data,
                                   const CellEncodingLayout& encoding,
                                   Tick since_restore,
                                   Celsius temperature) const;

 private:
  std::uint64_t seed_;
  RetentionParams params_;
  std::uint32_t row_bytes_;
};

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_RETENTION_H
