/**
 * @file
 * Device geometry: the module/rank/chip/bank/row/column organization of
 * §2.1, sized from Table 1's density and chip-organization columns.
 */
#ifndef VRDDRAM_DRAM_ORGANIZATION_H
#define VRDDRAM_DRAM_ORGANIZATION_H

#include <cstdint>
#include <string>

#include "dram/types.h"

namespace vrddram::dram {

/**
 * Geometry of one device under test. For DDR4 the "device" is a module
 * rank operated in lockstep (as the FPGA tester sees it); for HBM2 it
 * is one channel of one chip.
 */
struct Organization {
  std::uint32_t density_gbit = 8;   ///< per-chip density (Table 1)
  std::uint32_t dq_bits = 8;        ///< chip interface width (x8/x16)
  std::uint32_t chips_per_rank = 8; ///< chips operated in lockstep
  std::uint32_t num_banks = 16;
  std::uint32_t rows_per_bank = 1u << 16;
  std::uint32_t row_bytes = 8192;   ///< module-level row size (64 Kibit)

  /// Total addressable bytes in one bank.
  std::uint64_t BankBytes() const {
    return static_cast<std::uint64_t>(rows_per_bank) * row_bytes;
  }

  /// True if `row` is a legal row address.
  bool ValidRow(RowAddr row) const { return row < rows_per_bank; }

  /// True if `bank` is a legal bank index.
  bool ValidBank(BankId bank) const { return bank < num_banks; }

  /// Largest row address ("LRA" in Alg. 1).
  RowAddr LargestRowAddress() const { return rows_per_bank - 1; }

  std::string Describe() const;
};

/// DDR4 chip organizations used in Table 1.
Organization MakeDdr4Org(std::uint32_t density_gbit, std::uint32_t dq_bits,
                         std::uint32_t chips_per_rank);

/// One HBM2 channel: 16 banks, 16K rows, 2KB rows (per pseudo-channel).
Organization MakeHbm2Org();

/// DDR5 rank (16 Gb x8 chips, 32 banks in 8 bank groups): the geometry
/// the Fig. 14 system simulations and the PRAC device model assume.
Organization MakeDdr5Org();

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_ORGANIZATION_H
