#include "dram/timing.h"

#include "common/error.h"

namespace vrddram::dram {

using units::FromNs;
using units::FromUs;

std::string ToString(Standard standard) {
  switch (standard) {
    case Standard::kDdr4: return "DDR4";
    case Standard::kDdr5: return "DDR5";
    case Standard::kHbm2: return "HBM2";
  }
  throw PanicError("unknown DRAM standard");
}

TimingParams MakeDdr4_3200() {
  TimingParams t;
  t.standard = Standard::kDdr4;
  t.data_rate_mtps = 3200.0;
  t.tRCD = FromNs(13.75);
  t.tRP = FromNs(13.75);
  t.tRAS = FromNs(32.0);
  t.tRC = t.tRAS + t.tRP;
  t.tWR = FromNs(15.0);
  t.tRTP = FromNs(7.5);
  t.tCCD_S = FromNs(2.5);      // 4 nCK @ 1600 MHz clock
  t.tCCD_L = FromNs(5.0);
  t.tCCD_L_WR = FromNs(5.0);
  t.tRRD_S = FromNs(2.5);
  t.tRRD_L = FromNs(4.9);
  t.tFAW = FromNs(10.0);
  t.tREFI = FromUs(7.8);
  t.tREFW = FromUs(64000.0);   // 64 ms
  t.tRFC = FromNs(350.0);
  t.tCL = FromNs(13.75);
  t.tCWL = FromNs(10.0);
  t.tBL = FromNs(2.5);         // BL8 @ 3200 MT/s
  return t;
}

TimingParams MakeDdr5_8800() {
  // Paper Appendix A, Table 6 (JESD79-5C @ 8800 MT/s).
  TimingParams t;
  t.standard = Standard::kDdr5;
  t.data_rate_mtps = 8800.0;
  t.tRRD_S = FromNs(1.816);
  t.tCCD_S = FromNs(1.816);
  t.tCCD_L = FromNs(5.0);
  t.tCCD_L_WR = FromNs(20.0);
  t.tRCD = FromNs(14.090);
  t.tRP = FromNs(14.090);
  t.tRAS = FromNs(32.0);
  t.tRTP = FromNs(7.5);
  t.tWR = FromNs(30.0);
  t.tRC = t.tRAS + t.tRP;
  t.tRRD_L = FromNs(5.0);
  t.tFAW = FromNs(10.667);
  t.tREFI = FromUs(3.9);
  t.tREFW = FromUs(32000.0);   // 32 ms
  t.tRFC = FromNs(410.0);
  t.tCL = FromNs(14.090);
  t.tCWL = FromNs(13.0);
  t.tBL = FromNs(1.818);       // BL16 @ 8800 MT/s
  return t;
}

TimingParams MakeHbm2() {
  TimingParams t;
  t.standard = Standard::kHbm2;
  t.data_rate_mtps = 2000.0;
  t.tRCD = FromNs(14.0);
  t.tRP = FromNs(14.0);
  t.tRAS = FromNs(33.0);
  t.tRC = t.tRAS + t.tRP;
  t.tWR = FromNs(16.0);
  t.tRTP = FromNs(7.5);
  t.tCCD_S = FromNs(2.0);
  t.tCCD_L = FromNs(4.0);
  t.tCCD_L_WR = FromNs(4.0);
  t.tRRD_S = FromNs(4.0);
  t.tRRD_L = FromNs(6.0);
  t.tFAW = FromNs(16.0);
  t.tREFI = FromUs(3.9);
  t.tREFW = FromUs(32000.0);
  t.tRFC = FromNs(350.0);
  t.tCL = FromNs(14.0);
  t.tCWL = FromNs(8.0);
  t.tBL = FromNs(2.0);
  return t;
}

double CurrentParams::ActPreEnergy(Tick t_on, Tick t_rc) const {
  // IDD0 is specified for back-to-back ACT/PRE at tRC; the incremental
  // energy of one cycle is (IDD0 - IDD3N) * VDD * tRC plus active
  // standby for the time the row stays open beyond tRAS.
  const double cycle_s = units::ToSeconds(t_rc);
  const double extra_open_s =
      units::ToSeconds(t_on > t_rc ? t_on - t_rc : 0);
  const double dyn = (idd0_ma - idd3n_ma) * 1e-3 * vdd * cycle_s;
  const double open = idd3n_ma * 1e-3 * vdd * extra_open_s;
  return dyn + open;
}

double CurrentParams::BurstEnergy(Tick t_burst, bool is_write) const {
  const double idd4 = is_write ? idd4w_ma : idd4r_ma;
  return (idd4 - idd3n_ma) * 1e-3 * vdd * units::ToSeconds(t_burst);
}

double CurrentParams::BackgroundEnergy(Tick span, bool bank_active) const {
  const double idd = bank_active ? idd3n_ma : idd2n_ma;
  return idd * 1e-3 * vdd * units::ToSeconds(span);
}

CurrentParams MakeDdr5Currents() { return CurrentParams{}; }

}  // namespace vrddram::dram
