/**
 * @file
 * The DRAM device under test: command-level model of one DDR4 module
 * rank (chips in lockstep) or one HBM2 channel. It owns the data
 * arrays, the timing-checked bank FSMs, the logical-to-physical row
 * remapping, retention behaviour, an optional on-die TRR engine, and
 * delegates read-disturbance physics to a pluggable
 * ReadDisturbanceModel (the VRD trap engine in src/vrd).
 *
 * Commands are auto-scheduled at the earliest JEDEC-legal instant, the
 * way DRAM Bender programs are tightly scheduled on the FPGA; Sleep()
 * inserts deliberate idle time (e.g. to realize a RowPress tAggOn).
 */
#ifndef VRDDRAM_DRAM_DEVICE_H
#define VRDDRAM_DRAM_DEVICE_H

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dram/bank.h"
#include "dram/cell_encoding.h"
#include "dram/disturbance_model.h"
#include "dram/organization.h"
#include "dram/retention.h"
#include "dram/row_mapping.h"
#include "dram/timing.h"
#include "dram/types.h"

namespace vrddram::dram {

/// Static description of one device under test.
struct DeviceConfig {
  std::string name = "DEV0";
  Organization org;
  TimingParams timing = MakeDdr4_3200();
  RowMappingScheme row_mapping = RowMappingScheme::kDirect;
  double anti_cell_fraction = 0.4;
  RetentionParams retention = RetentionParams::MakeDefault();
  /// Device-unique seed: every "chip" is a distinct individual.
  std::uint64_t seed = 1;
  /// DDR4/DDR5 modules ship an on-die TRR engine coupled to REF.
  bool has_trr = true;
  /// HBM2 on-die SEC ECC; enabled at power-up, disabled via MR bit.
  bool has_on_die_ecc = false;
  /// DDR5 PRAC: per-row activation counters with ALERT_n back-off
  /// (JESD79-5C). Configure the threshold via SetPracThreshold().
  bool has_prac = false;
};

/// Counts of commands the device has executed (test/time-model hooks).
struct CommandCounts {
  std::uint64_t act = 0;
  std::uint64_t pre = 0;
  std::uint64_t rd = 0;
  std::uint64_t wr = 0;
  std::uint64_t ref = 0;
};

class Device {
 public:
  /// Constructs the device; if `model` is null a NullDisturbanceModel
  /// is installed (rows never flip from hammering).
  Device(DeviceConfig config,
         std::unique_ptr<ReadDisturbanceModel> model = nullptr);

  // -- identity & geometry ------------------------------------------------
  const std::string& name() const { return config_.name; }
  const DeviceConfig& config() const { return config_; }
  const Organization& org() const { return config_.org; }
  const TimingParams& timing() const { return config_.timing; }
  const RowMapper& mapper() const { return mapper_; }
  const CellEncodingLayout& encoding() const { return encoding_; }
  ReadDisturbanceModel& model() { return *model_; }

  // -- environment --------------------------------------------------------
  Celsius temperature() const { return temperature_; }
  void SetTemperature(Celsius celsius) { temperature_ = celsius; }

  Tick Now() const { return now_; }
  /// Idle the command bus for `duration` ticks.
  void Sleep(Tick duration);

  // -- mode registers -----------------------------------------------------
  /// HBM2 MR bit that enables/disables on-die ECC (JESD235D); no-op on
  /// devices without on-die ECC.
  void SetOnDieEccEnabled(bool enabled);
  bool OnDieEccEnabled() const { return ecc_enabled_; }

  // -- PRAC (per-row activation counting, JESD79-5C) ------------------------
  /// Program the back-off threshold; 0 disables alerting. Requires
  /// has_prac.
  void SetPracThreshold(std::uint64_t threshold);
  std::uint64_t PracThreshold() const { return prac_threshold_; }
  /// ALERT_n: a row's activation count crossed the threshold.
  bool AlertPending() const { return alert_pending_; }
  /// The controller's back-off: the device refreshes the neighbours of
  /// every row at or above the threshold, resets those counters, and
  /// deasserts ALERT_n. Advances time by one tRFC per serviced row.
  /// All banks must be precharged.
  void ServiceAlert();
  /// Current PRAC counter of a row (physical address; test hook).
  std::uint64_t PracCountOf(BankId bank, PhysicalRow row) const;

  // -- commands (logical row addresses) ------------------------------------
  void Activate(BankId bank, RowAddr logical_row);
  void Precharge(BankId bank);
  /// Fill the entire open row with `fill`; issues the full burst train
  /// (e.g. 128 write bursts for an 8 KiB row).
  void WriteRow(BankId bank, RowAddr logical_row, std::uint8_t fill);
  /// Write arbitrary bytes at a column offset of the open row.
  void Write(BankId bank, RowAddr logical_row, ColAddr col,
             std::span<const std::uint8_t> bytes);
  /// Read the entire open row (full burst train).
  std::vector<std::uint8_t> ReadRow(BankId bank, RowAddr logical_row);
  /// ReadRow into caller-owned scratch (replaced, not appended): the
  /// swept test loop reads the same victim row per iteration, so the
  /// buffer's capacity is reused instead of reallocated per read.
  void ReadRow(BankId bank, RowAddr logical_row,
               std::vector<std::uint8_t>& out);
  /// One rank-level REF command; refreshes the next stripe of rows in
  /// every bank and runs the TRR engine if present.
  void Refresh();

  // -- bulk testing fast path ----------------------------------------------
  /**
   * Double-sided hammer: `count` ACT/PRE pairs to each of the two
   * physical neighbours of `victim_logical`'s physical row, keeping
   * each aggressor open for `t_on`. Semantically identical to issuing
   * the 2*count ACT/PRE commands one by one (asserted by tests), but
   * runs in O(1).
   *
   * All banks must be precharged. Victims at the bank edge (physical
   * row 0 or max) are rejected, matching the paper's methodology.
   */
  void HammerDoubleSided(BankId bank, RowAddr victim_logical,
                         std::uint64_t count, Tick t_on);

  /// Single-sided variant: hammer one aggressor row (by logical addr).
  void HammerSingleSided(BankId bank, RowAddr aggressor_logical,
                         std::uint64_t count, Tick t_on);

  /**
   * Fill one row with `fill` through the fast path: semantically the
   * ACT + full write-burst train + PRE sequence (same elapsed time and
   * command counts), executed in O(1). The bank must be precharged.
   */
  void BulkInitializeRow(BankId bank, RowAddr logical_row,
                         std::uint8_t fill);

  // -- introspection -------------------------------------------------------
  const CommandCounts& counts() const { return counts_; }
  BankState StateOf(BankId bank) const;
  /// Raw stored bytes of a row (physical address), bypassing commands
  /// and timing; for tests and debugging only.
  std::vector<std::uint8_t> PeekRowPhysical(BankId bank, PhysicalRow row);
  /// Time since the given row's charge was last restored.
  Tick SinceRestore(BankId bank, PhysicalRow row) const;

 private:
  struct RowStore {
    std::vector<std::uint8_t> data;    ///< current (possibly corrupted)
    std::vector<std::uint8_t> parity;  ///< on-die ECC parity (if any)
    Tick last_restore = 0;
  };

  static std::uint64_t Key(BankId bank, PhysicalRow row) {
    return (static_cast<std::uint64_t>(bank) << 32) | row.value;
  }

  RowStore& StoreOf(BankId bank, PhysicalRow row);

  /// Earliest ACT issue honouring device-level tRRD_S and tFAW.
  Tick EarliestActDeviceLevel(Tick candidate);
  void RecordAct(Tick at);

  /// Apply accumulated disturbance and retention decay to the stored
  /// data, then restore the row's charge (ACT/REF semantics).
  void MaterializeAndRestore(BankId bank, PhysicalRow row);

  /// Per-bank TRR bookkeeping: sampled aggressor tracking.
  void TrrObserveAct(BankId bank, PhysicalRow row);
  void TrrOnRefresh();

  DeviceConfig config_;
  RowMapper mapper_;
  CellEncodingLayout encoding_;
  RetentionModel retention_;
  std::unique_ptr<ReadDisturbanceModel> model_;

  std::vector<Bank> banks_;
  std::unordered_map<std::uint64_t, RowStore> rows_;
  /// Scratch reused by MaterializeAndRestore for model flip queries.
  std::vector<BitFlip> flip_scratch_;
  /// On-die-ECC parity of a row uniformly filled with each byte value;
  /// row size is fixed per device, so BulkInitializeRow's re-encoding
  /// of identical data reduces to one lookup per fill byte.
  std::array<std::vector<std::uint8_t>, 256> fill_parity_;
  Tick now_ = 0;
  Celsius temperature_ = 50.0;
  bool ecc_enabled_ = false;
  CommandCounts counts_;

  std::deque<Tick> recent_acts_;  ///< for tFAW
  Tick last_act_any_bank_ = -1;   ///< for tRRD_S

  /// PRAC bookkeeping.
  void PracObserveAct(BankId bank, PhysicalRow row, std::uint64_t count);

  std::uint64_t prac_threshold_ = 0;
  bool alert_pending_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> prac_counters_;

  /// TRR: per bank, (row, activation count) pairs since the last REF.
  struct TrrEntry {
    PhysicalRow row{0};
    std::uint64_t count = 0;
  };
  std::vector<std::vector<TrrEntry>> trr_tracker_;
  std::vector<RowAddr> refresh_cursor_;  ///< next physical row stripe

  Rng powerup_rng_;
};

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_DEVICE_H
