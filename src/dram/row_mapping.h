/**
 * @file
 * Logical-to-physical row-address remapping (§3.1). DRAM manufacturers
 * internally reorder rows; read-disturbance tests must aggress the rows
 * that are *physically* adjacent to the victim, so the testing
 * methodology reverse-engineers the scheme (done in
 * bender::ReverseEngineerRowMapping against this model).
 */
#ifndef VRDDRAM_DRAM_ROW_MAPPING_H
#define VRDDRAM_DRAM_ROW_MAPPING_H

#include <string>

#include "dram/types.h"

namespace vrddram::dram {

/**
 * Remapping schemes modeled after those reported by prior
 * reverse-engineering work [166]: identity, LSB-XOR swizzles within
 * 8-row groups, and pairwise swaps within 16-row groups.
 */
enum class RowMappingScheme : std::uint8_t {
  kDirect,        ///< physical == logical
  kXorMidBits,    ///< bits [1:0] XORed with bit 2 within 8-row groups
  kPairSwap16,    ///< adjacent odd/even pairs swapped in 16-row groups
};

std::string ToString(RowMappingScheme scheme);

/**
 * Bijective logical<->physical row translation for one bank.
 * All schemes are involutions restricted to small aligned groups, as
 * observed in real chips, so translation never leaves the bank.
 */
class RowMapper {
 public:
  RowMapper(RowMappingScheme scheme, RowAddr rows_per_bank);

  PhysicalRow ToPhysical(RowAddr logical) const;
  RowAddr ToLogical(PhysicalRow physical) const;

  RowMappingScheme scheme() const { return scheme_; }
  RowAddr rows_per_bank() const { return rows_per_bank_; }

 private:
  RowMappingScheme scheme_;
  RowAddr rows_per_bank_;
};

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_ROW_MAPPING_H
