/**
 * @file
 * DRAM timing and current (energy) parameters, with presets for the
 * standards the paper uses: DDR4 (tested chips), DDR5 (Appendix A test
 * time/energy model and the Fig. 14 system simulations), and HBM2.
 */
#ifndef VRDDRAM_DRAM_TIMING_H
#define VRDDRAM_DRAM_TIMING_H

#include <string>

#include "common/units.h"

namespace vrddram::dram {

enum class Standard : std::uint8_t {
  kDdr4,
  kDdr5,
  kHbm2,
};

std::string ToString(Standard standard);

/**
 * Inter-command timing constraints (all in ticks = picoseconds).
 * Field names follow the JEDEC standards; the DDR5 preset carries the
 * exact Table 6 values of the paper's Appendix A.
 */
struct TimingParams {
  Standard standard = Standard::kDdr4;
  double data_rate_mtps = 3200.0;  ///< transfer rate, MT/s

  Tick tRCD = 0;       ///< ACT -> RD/WR, same bank
  Tick tRP = 0;        ///< PRE -> ACT, same bank
  Tick tRAS = 0;       ///< ACT -> PRE, same bank (charge restoration)
  Tick tRC = 0;        ///< ACT -> ACT, same bank
  Tick tWR = 0;        ///< end of write -> PRE
  Tick tRTP = 0;       ///< RD -> PRE
  Tick tCCD_S = 0;     ///< RD/WR -> RD/WR, different bank group
  Tick tCCD_L = 0;     ///< RD -> RD, same bank group
  Tick tCCD_L_WR = 0;  ///< WR -> WR, same bank group
  Tick tRRD_S = 0;     ///< ACT -> ACT, different bank group
  Tick tRRD_L = 0;     ///< ACT -> ACT, same bank group
  Tick tFAW = 0;       ///< rolling four-activate window
  Tick tREFI = 0;      ///< average refresh command interval
  Tick tREFW = 0;      ///< refresh window (retention guarantee)
  Tick tRFC = 0;       ///< refresh cycle time
  Tick tCL = 0;        ///< read CAS latency
  Tick tCWL = 0;       ///< write CAS latency
  Tick tBL = 0;        ///< burst duration on the data bus

  /// Maximum time a row may stay open: 9 x tREFI per DDR4/HBM2
  /// standards (§5, "Test Parameters").
  Tick MaxRowOpenTime() const { return 9 * tREFI; }
};

/// DDR4-3200 speed-bin timings (JESD79-4C).
TimingParams MakeDdr4_3200();

/// DDR5-8800 timings; Table 6 of the paper's Appendix A.
TimingParams MakeDdr5_8800();

/// HBM2 timings (JESD235D, 2 Gbps pin rate).
TimingParams MakeHbm2();

/**
 * Current-draw model used for Appendix A energy estimation, in the
 * style of datasheet IDD values (the paper uses the currents of the
 * Micron 16Gb DDR5 addendum [243]).
 */
struct CurrentParams {
  double vdd = 1.1;          ///< supply voltage, volts
  double idd0_ma = 142.0;    ///< ACT-PRE cycling current, one bank
  double idd2n_ma = 61.0;    ///< precharge standby
  double idd3n_ma = 87.0;    ///< active standby
  double idd4r_ma = 440.0;   ///< burst read
  double idd4w_ma = 428.0;   ///< burst write

  /// Energy (joules) for one ACT+PRE pair held open for t_on.
  double ActPreEnergy(Tick t_on, Tick t_rc) const;
  /// Energy (joules) for one read or write burst of the given length.
  double BurstEnergy(Tick t_burst, bool is_write) const;
  /// Background energy for a span of wall time.
  double BackgroundEnergy(Tick span, bool bank_active) const;
};

/// DDR5 currents from the Micron 16Gb addendum (scaled to one chip).
CurrentParams MakeDdr5Currents();

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_TIMING_H
