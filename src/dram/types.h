/**
 * @file
 * Core identifier and data-pattern types of the DRAM device model.
 */
#ifndef VRDDRAM_DRAM_TYPES_H
#define VRDDRAM_DRAM_TYPES_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace vrddram::dram {

/// Bank index within a device.
using BankId = std::uint32_t;

/// Row address within a bank. "Logical" rows are what the memory
/// controller issues; "physical" rows reflect the in-silicon order
/// after the manufacturer's internal remapping.
using RowAddr = std::uint32_t;

/// Column (byte offset) within a row.
using ColAddr = std::uint32_t;

/// Strongly-typed wrapper to keep logical and physical row addresses
/// from being mixed up accidentally.
struct PhysicalRow {
  RowAddr value = 0;
  friend bool operator==(PhysicalRow, PhysicalRow) = default;
  friend auto operator<=>(PhysicalRow, PhysicalRow) = default;
};

/**
 * The four data patterns of Table 2, named after the victim-row
 * content.
 */
enum class DataPattern : std::uint8_t {
  kRowstripe0,  ///< victim 0x00, aggressors 0xFF, V +- [2:8] 0x00
  kRowstripe1,  ///< victim 0xFF, aggressors 0x00, V +- [2:8] 0xFF
  kCheckered0,  ///< victim 0x55, aggressors 0xAA, V +- [2:8] 0x55
  kCheckered1,  ///< victim 0xAA, aggressors 0x55, V +- [2:8] 0xAA
};

inline constexpr DataPattern kAllDataPatterns[] = {
    DataPattern::kRowstripe0, DataPattern::kRowstripe1,
    DataPattern::kCheckered0, DataPattern::kCheckered1};

/// Byte written to the victim row under a pattern.
std::uint8_t VictimByte(DataPattern pattern);

/// Byte written to the two aggressor rows (V +- 1) under a pattern.
std::uint8_t AggressorByte(DataPattern pattern);

/// Byte written to the surrounding rows (V +- [2:8]) under a pattern.
std::uint8_t SurroundByte(DataPattern pattern);

std::string ToString(DataPattern pattern);

/**
 * DRAM cell data-encoding convention (§5.6): a true cell encodes
 * logic-1 as a charged capacitor, an anti cell encodes logic-1 as a
 * discharged capacitor.
 */
enum class CellEncoding : std::uint8_t {
  kTrueCell,
  kAntiCell,
};

std::string ToString(CellEncoding encoding);

/// A single observed bitflip in a victim row.
struct BitFlip {
  ColAddr byte_offset = 0;   ///< Byte within the row.
  std::uint8_t bit = 0;      ///< Bit within the byte (0 = LSB).

  /// Absolute bit index within the row.
  std::uint64_t BitIndex() const {
    return static_cast<std::uint64_t>(byte_offset) * 8 + bit;
  }
  friend bool operator==(const BitFlip&, const BitFlip&) = default;
  friend auto operator<=>(const BitFlip&, const BitFlip&) = default;
};

/// Bit positions where `data` differs from the uniform `expected`
/// byte - the read-and-compare step of every disturbance test.
std::vector<BitFlip> DiffBits(std::span<const std::uint8_t> data,
                              std::uint8_t expected);

/// Number of differing bits (cheaper when positions are not needed).
std::size_t CountDiffBits(std::span<const std::uint8_t> data,
                          std::uint8_t expected);

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_TYPES_H
