/**
 * @file
 * Per-bank state machine and timing bookkeeping for the device model
 * (§2.2). The device auto-schedules every command at the earliest
 * instant that satisfies the JEDEC inter-command constraints, the way a
 * tightly-scheduled FPGA test program would issue it.
 */
#ifndef VRDDRAM_DRAM_BANK_H
#define VRDDRAM_DRAM_BANK_H

#include <cstdint>

#include "common/units.h"
#include "dram/timing.h"
#include "dram/types.h"

namespace vrddram::dram {

enum class BankState : std::uint8_t {
  kIdle,    ///< precharged
  kActive,  ///< a row is open in the row buffer
};

/**
 * One DRAM bank: FSM plus the per-bank timestamps needed to compute
 * the earliest legal issue time of the next command.
 */
class Bank {
 public:
  explicit Bank(const TimingParams* timing);

  BankState state() const { return state_; }
  PhysicalRow open_row() const { return open_row_; }

  /// Earliest tick at which ACT may be issued to this bank.
  Tick EarliestActivate(Tick now) const;
  /// Earliest tick for PRE (honours tRAS and write recovery).
  Tick EarliestPrecharge(Tick now) const;
  /// Earliest tick for a RD burst.
  Tick EarliestRead(Tick now) const;
  /// Earliest tick for a WR burst.
  Tick EarliestWrite(Tick now) const;

  /// Apply ACT at tick `at` (must be legal; checked).
  void Activate(PhysicalRow row, Tick at);
  /// Apply PRE at tick `at`; returns how long the row was open.
  Tick Precharge(Tick at);
  /// Apply a RD burst starting at `at`; returns burst end tick.
  Tick Read(Tick at);
  /// Apply a WR burst starting at `at`; returns burst end tick.
  Tick Write(Tick at);

  /**
   * Synchronize timestamps after a bulk ACT/PRE train executed through
   * the device's fast path. The bank must be idle; the arguments are
   * the times of the train's final ACT and PRE.
   */
  void SyncAfterBulk(Tick last_act_time, Tick last_pre_time);

 private:
  const TimingParams* timing_;
  BankState state_ = BankState::kIdle;
  PhysicalRow open_row_{0};

  Tick last_act_ = kNever;
  Tick last_pre_ = kNever;
  Tick last_rd_start_ = kNever;
  Tick last_wr_start_ = kNever;
  Tick last_wr_data_end_ = kNever;

  static constexpr Tick kNever = -1;
};

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_BANK_H
