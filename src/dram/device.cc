#include "dram/device.h"

#include <algorithm>
#include <bit>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/sorted.h"
#include "ecc/on_die.h"

namespace vrddram::dram {

namespace {

/// Bytes transferred by one burst at module level (BL8 x 64-bit bus).
constexpr std::uint32_t kBurstBytes = 64;

}  // namespace

Device::Device(DeviceConfig config,
               std::unique_ptr<ReadDisturbanceModel> model)
    : config_(std::move(config)),
      mapper_(config_.row_mapping, config_.org.rows_per_bank),
      encoding_(MixSeed(config_.seed, 0xec0d), config_.anti_cell_fraction),
      retention_(MixSeed(config_.seed, 0x4e7e), config_.retention,
                 config_.org.row_bytes),
      model_(model ? std::move(model)
                   : std::make_unique<NullDisturbanceModel>()),
      ecc_enabled_(config_.has_on_die_ecc),
      powerup_rng_(MixSeed(config_.seed, 0xb007)) {
  banks_.reserve(config_.org.num_banks);
  for (std::uint32_t b = 0; b < config_.org.num_banks; ++b) {
    banks_.emplace_back(&config_.timing);
  }
  trr_tracker_.resize(config_.org.num_banks);
  refresh_cursor_.assign(config_.org.num_banks, 0);
}

void Device::Sleep(Tick duration) {
  VRD_FATAL_IF(duration < 0, "cannot sleep a negative duration");
  now_ += duration;
}

void Device::SetOnDieEccEnabled(bool enabled) {
  VRD_FATAL_IF(enabled && !config_.has_on_die_ecc,
               "device has no on-die ECC");
  ecc_enabled_ = enabled && config_.has_on_die_ecc;
}

BankState Device::StateOf(BankId bank) const {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  return banks_[bank].state();
}

Device::RowStore& Device::StoreOf(BankId bank, PhysicalRow row) {
  const std::uint64_t key = Key(bank, row);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    RowStore store;
    store.data.resize(config_.org.row_bytes);
    // Power-up content is effectively random and device-specific.
    Rng rng(MixSeed(config_.seed, bank, row.value, 0xda7a));
    for (auto& byte : store.data) {
      byte = static_cast<std::uint8_t>(rng.NextBelow(256));
    }
    if (config_.has_on_die_ecc) {
      store.parity = ecc::OnDieSec::EncodeParity(store.data);
    }
    store.last_restore = now_;
    it = rows_.emplace(key, std::move(store)).first;
  }
  return it->second;
}

Tick Device::EarliestActDeviceLevel(Tick candidate) {
  Tick at = candidate;
  if (last_act_any_bank_ >= 0) {
    at = std::max(at, last_act_any_bank_ + config_.timing.tRRD_S);
  }
  if (recent_acts_.size() >= 4) {
    at = std::max(at, recent_acts_.front() + config_.timing.tFAW);
  }
  return at;
}

void Device::RecordAct(Tick at) {
  last_act_any_bank_ = at;
  recent_acts_.push_back(at);
  while (recent_acts_.size() > 4) {
    recent_acts_.pop_front();
  }
}

void Device::MaterializeAndRestore(BankId bank, PhysicalRow row) {
  RowStore& store = StoreOf(bank, row);

  VictimContext ctx;
  ctx.bank = bank;
  ctx.row = row;
  ctx.data = store.data;
  ctx.encoding = &encoding_;
  ctx.temperature = temperature_;
  ctx.now = now_;
  model_->Evaluate(ctx, flip_scratch_);
  for (const BitFlip& flip : flip_scratch_) {
    VRD_ASSERT(flip.byte_offset < store.data.size());
    store.data[flip.byte_offset] ^=
        static_cast<std::uint8_t>(1u << flip.bit);
  }

  const Tick since = now_ - store.last_restore;
  for (const BitFlip& flip : retention_.DecayedBits(
           bank, row, store.data, encoding_, since, temperature_)) {
    // A decayed cell reads back the discharged value; since only
    // charged cells can decay, this is a flip of the stored bit.
    store.data[flip.byte_offset] ^=
        static_cast<std::uint8_t>(1u << flip.bit);
  }

  model_->OnRestore(bank, row, now_);
  store.last_restore = now_;
}

void Device::SetPracThreshold(std::uint64_t threshold) {
  VRD_FATAL_IF(!config_.has_prac, "device has no PRAC support");
  prac_threshold_ = threshold;
}

void Device::PracObserveAct(BankId bank, PhysicalRow row,
                            std::uint64_t count) {
  if (!config_.has_prac || prac_threshold_ == 0) {
    return;
  }
  std::uint64_t& counter = prac_counters_[Key(bank, row)];
  counter += count;
  if (counter >= prac_threshold_) {
    alert_pending_ = true;
  }
}

void Device::ServiceAlert() {
  VRD_FATAL_IF(!config_.has_prac, "device has no PRAC support");
  for (BankId bank = 0; bank < config_.org.num_banks; ++bank) {
    VRD_FATAL_IF(banks_[bank].state() != BankState::kIdle,
                 "back-off requires all banks precharged");
  }
  // Service rows in (bank, row) key order: each serviced row advances
  // now_, so hash-order iteration would make restore timestamps — and
  // through them retention state — depend on the map's growth history.
  for (const auto& [key, count] : SortedByKey(prac_counters_)) {
    if (count < prac_threshold_ || prac_threshold_ == 0) {
      continue;
    }
    const auto bank = static_cast<BankId>(key >> 32);
    const auto base = static_cast<RowAddr>(key & 0xffffffffu);
    for (std::int64_t d = -2; d <= 2; ++d) {
      const std::int64_t neighbour = static_cast<std::int64_t>(base) + d;
      if (d == 0 || neighbour < 0 ||
          neighbour > config_.org.LargestRowAddress()) {
        continue;
      }
      MaterializeAndRestore(
          bank, PhysicalRow{static_cast<RowAddr>(neighbour)});
    }
    prac_counters_[key] = 0;
    now_ += config_.timing.tRFC;
  }
  alert_pending_ = false;
}

std::uint64_t Device::PracCountOf(BankId bank, PhysicalRow row) const {
  const auto it = prac_counters_.find(Key(bank, row));
  return it == prac_counters_.end() ? 0 : it->second;
}

void Device::TrrObserveAct(BankId bank, PhysicalRow row) {
  if (!config_.has_trr) {
    return;
  }
  auto& tracker = trr_tracker_[bank];
  for (TrrEntry& entry : tracker) {
    if (entry.row == row) {
      ++entry.count;
      return;
    }
  }
  constexpr std::size_t kTrrSlots = 4;
  if (tracker.size() < kTrrSlots) {
    tracker.push_back(TrrEntry{row, 1});
    return;
  }
  // Misra-Gries style decrement-all when the table is full.
  for (TrrEntry& entry : tracker) {
    if (entry.count > 0) {
      --entry.count;
    }
  }
  std::erase_if(tracker, [](const TrrEntry& e) { return e.count == 0; });
}

void Device::TrrOnRefresh() {
  if (!config_.has_trr) {
    return;
  }
  for (BankId bank = 0; bank < config_.org.num_banks; ++bank) {
    auto& tracker = trr_tracker_[bank];
    if (tracker.empty()) {
      continue;
    }
    const auto top = std::max_element(
        tracker.begin(), tracker.end(),
        [](const TrrEntry& a, const TrrEntry& b) {
          return a.count < b.count;
        });
    const RowAddr base = top->row.value;
    for (std::int64_t d = -2; d <= 2; ++d) {
      const std::int64_t neighbour = static_cast<std::int64_t>(base) + d;
      if (d == 0 || neighbour < 0 ||
          neighbour > config_.org.LargestRowAddress()) {
        continue;
      }
      MaterializeAndRestore(
          bank, PhysicalRow{static_cast<RowAddr>(neighbour)});
    }
    tracker.clear();
  }
}

void Device::Activate(BankId bank, RowAddr logical_row) {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  VRD_FATAL_IF(!config_.org.ValidRow(logical_row), "row out of range");
  const PhysicalRow phys = mapper_.ToPhysical(logical_row);

  Tick at = banks_[bank].EarliestActivate(now_);
  at = EarliestActDeviceLevel(at);
  banks_[bank].Activate(phys, at);
  now_ = at;
  RecordAct(at);
  ++counts_.act;

  // Opening a row senses and restores it: pending disturbance and
  // retention corruption materializes into the array now.
  MaterializeAndRestore(bank, phys);
  TrrObserveAct(bank, phys);
  PracObserveAct(bank, phys, 1);
}

void Device::Precharge(BankId bank) {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  const PhysicalRow open = banks_[bank].open_row();
  const Tick at = banks_[bank].EarliestPrecharge(now_);
  const Tick open_time = banks_[bank].Precharge(at);
  now_ = at;
  ++counts_.pre;

  // The closing row acted as an aggressor on its neighbours for the
  // whole time it was open.
  model_->OnActivations(bank, open, 1, open_time, now_, temperature_,
                        StoreOf(bank, open).data);
}

void Device::WriteRow(BankId bank, RowAddr logical_row, std::uint8_t fill) {
  std::vector<std::uint8_t> bytes(config_.org.row_bytes, fill);
  Write(bank, logical_row, 0, bytes);
}

void Device::Write(BankId bank, RowAddr logical_row, ColAddr col,
                   std::span<const std::uint8_t> bytes) {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  const PhysicalRow phys = mapper_.ToPhysical(logical_row);
  VRD_FATAL_IF(banks_[bank].state() != BankState::kActive ||
                   banks_[bank].open_row() != phys,
               "WR to a row that is not open");
  VRD_FATAL_IF(col + bytes.size() > config_.org.row_bytes,
               "write beyond row end");
  VRD_FATAL_IF(bytes.empty(), "empty write");

  const std::size_t bursts = (bytes.size() + kBurstBytes - 1) / kBurstBytes;
  for (std::size_t i = 0; i < bursts; ++i) {
    const Tick at = banks_[bank].EarliestWrite(now_);
    const Tick data_end = banks_[bank].Write(at);
    now_ = (i + 1 == bursts) ? data_end : at;
    ++counts_.wr;
  }

  RowStore& store = StoreOf(bank, phys);
  std::copy(bytes.begin(), bytes.end(), store.data.begin() + col);
  if (config_.has_on_die_ecc) {
    // The on-die engine re-encodes written data transparently.
    store.parity = ecc::OnDieSec::EncodeParity(store.data);
  }
}

std::vector<std::uint8_t> Device::ReadRow(BankId bank,
                                          RowAddr logical_row) {
  std::vector<std::uint8_t> out;
  ReadRow(bank, logical_row, out);
  return out;
}

void Device::ReadRow(BankId bank, RowAddr logical_row,
                     std::vector<std::uint8_t>& out) {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  const PhysicalRow phys = mapper_.ToPhysical(logical_row);
  VRD_FATAL_IF(banks_[bank].state() != BankState::kActive ||
                   banks_[bank].open_row() != phys,
               "RD from a row that is not open");

  const std::size_t bursts = config_.org.row_bytes / kBurstBytes;
  Tick data_end = now_;
  for (std::size_t i = 0; i < bursts; ++i) {
    const Tick at = banks_[bank].EarliestRead(now_);
    data_end = banks_[bank].Read(at);
    now_ = at;
    ++counts_.rd;
  }
  now_ = data_end;

  RowStore& store = StoreOf(bank, phys);
  out.assign(store.data.begin(), store.data.end());
  if (ecc_enabled_) {
    // On-die SEC: decode each 64-bit word against the stored parity;
    // single-bit (e.g. read-disturbance) errors are corrected on the
    // way out, which is exactly why §3.1 disables this engine during
    // characterization.
    ecc::OnDieSec::DecodeInPlace(out, store.parity);
  }
  if (fi::ShouldFire("dram.device.readout")) {
    // A stuck-at-1 readout pin downstream of the on-die ECC engine:
    // bit 0 of the first byte reads high regardless of the stored
    // value. The store itself is untouched.
    out[0] |= 0x01;
  }
}

void Device::Refresh() {
  for (BankId bank = 0; bank < config_.org.num_banks; ++bank) {
    VRD_FATAL_IF(banks_[bank].state() != BankState::kIdle,
                 "REF requires all banks precharged");
  }
  ++counts_.ref;

  // Rows refreshed per REF so the whole bank is covered each tREFW.
  const auto refs_per_window = static_cast<std::uint64_t>(
      config_.timing.tREFW / config_.timing.tREFI);
  const std::uint64_t stripe =
      std::max<std::uint64_t>(1, config_.org.rows_per_bank /
                                     std::max<std::uint64_t>(
                                         1, refs_per_window));
  for (BankId bank = 0; bank < config_.org.num_banks; ++bank) {
    RowAddr cursor = refresh_cursor_[bank];
    for (std::uint64_t i = 0; i < stripe; ++i) {
      const PhysicalRow row{cursor};
      if (rows_.contains(Key(bank, row))) {
        MaterializeAndRestore(bank, row);
      } else {
        model_->OnRestore(bank, row, now_);
      }
      cursor = (cursor + 1) % config_.org.rows_per_bank;
    }
    refresh_cursor_[bank] = cursor;
  }

  TrrOnRefresh();
  now_ += config_.timing.tRFC;
}

void Device::HammerDoubleSided(BankId bank, RowAddr victim_logical,
                               std::uint64_t count, Tick t_on) {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  VRD_FATAL_IF(banks_[bank].state() != BankState::kIdle,
               "bulk hammer requires the bank precharged");
  VRD_FATAL_IF(t_on < config_.timing.tRAS,
               "tAggOn below the minimum tRAS");
  VRD_FATAL_IF(t_on > config_.timing.MaxRowOpenTime(),
               "tAggOn above 9 x tREFI (standard limit)");
  const PhysicalRow victim = mapper_.ToPhysical(victim_logical);
  VRD_FATAL_IF(victim.value == 0 ||
                   victim.value >= config_.org.LargestRowAddress(),
               "victim at the bank edge has no double-sided aggressors");
  if (count == 0) {
    return;
  }

  const PhysicalRow aggressors[2] = {PhysicalRow{victim.value - 1},
                                     PhysicalRow{victim.value + 1}};
  const Tick cycle = t_on + config_.timing.tRP;
  const Tick start = banks_[bank].EarliestActivate(now_);
  const Tick end = start + static_cast<Tick>(2 * count) * cycle;

  for (const PhysicalRow& aggressor : aggressors) {
    model_->OnActivations(bank, aggressor, count, t_on, end, temperature_,
                          StoreOf(bank, aggressor).data);
    TrrObserveAct(bank, aggressor);
    PracObserveAct(bank, aggressor, count);
    // Each aggressor is restored every cycle; its own accumulated dose
    // never exceeds a couple of distant activations, so clear it.
    model_->OnRestore(bank, aggressor, end);
    StoreOf(bank, aggressor).last_restore = end;
  }

  counts_.act += 2 * count;
  counts_.pre += 2 * count;
  now_ = end;
  RecordAct(end - config_.timing.tRP);
  banks_[bank].SyncAfterBulk(end - cycle, end - config_.timing.tRP);
}

void Device::HammerSingleSided(BankId bank, RowAddr aggressor_logical,
                               std::uint64_t count, Tick t_on) {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  VRD_FATAL_IF(banks_[bank].state() != BankState::kIdle,
               "bulk hammer requires the bank precharged");
  VRD_FATAL_IF(t_on < config_.timing.tRAS,
               "tAggOn below the minimum tRAS");
  const PhysicalRow aggressor = mapper_.ToPhysical(aggressor_logical);
  if (count == 0) {
    return;
  }

  const Tick cycle = t_on + config_.timing.tRP;
  const Tick start = banks_[bank].EarliestActivate(now_);
  const Tick end = start + static_cast<Tick>(count) * cycle;

  model_->OnActivations(bank, aggressor, count, t_on, end, temperature_,
                        StoreOf(bank, aggressor).data);
  TrrObserveAct(bank, aggressor);
  PracObserveAct(bank, aggressor, count);
  model_->OnRestore(bank, aggressor, end);
  StoreOf(bank, aggressor).last_restore = end;

  counts_.act += count;
  counts_.pre += count;
  now_ = end;
  RecordAct(end - config_.timing.tRP);
  banks_[bank].SyncAfterBulk(end - cycle, end - config_.timing.tRP);
}

void Device::BulkInitializeRow(BankId bank, RowAddr logical_row,
                               std::uint8_t fill) {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  VRD_FATAL_IF(!config_.org.ValidRow(logical_row), "row out of range");
  VRD_FATAL_IF(banks_[bank].state() != BankState::kIdle,
               "bulk init requires the bank precharged");
  const PhysicalRow phys = mapper_.ToPhysical(logical_row);
  const TimingParams& t = config_.timing;

  Tick act_at = banks_[bank].EarliestActivate(now_);
  act_at = EarliestActDeviceLevel(act_at);
  RecordAct(act_at);
  ++counts_.act;
  now_ = act_at;

  // Opening the row materializes pending corruption, then the write
  // train overwrites the data.
  MaterializeAndRestore(bank, phys);
  TrrObserveAct(bank, phys);
  PracObserveAct(bank, phys, 1);

  const std::uint64_t bursts = config_.org.row_bytes / kBurstBytes;
  const Tick first_wr = act_at + t.tRCD;
  const Tick last_wr =
      first_wr + static_cast<Tick>(bursts - 1) * t.tCCD_L_WR;
  const Tick data_end = last_wr + t.tCWL + t.tBL;
  const Tick pre_at = std::max(data_end + t.tWR, act_at + t.tRAS);
  counts_.wr += bursts;
  ++counts_.pre;

  RowStore& store = StoreOf(bank, phys);
  std::fill(store.data.begin(), store.data.end(), fill);
  if (config_.has_on_die_ecc) {
    // A uniformly filled row's parity depends only on (fill byte, row
    // size); memoize it so per-iteration pattern re-initialization
    // stops re-encoding identical data.
    std::vector<std::uint8_t>& memo = fill_parity_[fill];
    if (memo.empty()) {
      memo = ecc::OnDieSec::EncodeParity(store.data);
    }
    store.parity = memo;
  }

  now_ = pre_at;
  banks_[bank].SyncAfterBulk(act_at, pre_at);
  // The row was open for pre_at - act_at: it aggressed its neighbours
  // for that long, exactly as the per-command path reports via PRE.
  model_->OnActivations(bank, phys, 1, pre_at - act_at, now_, temperature_,
                        store.data);
}

std::vector<std::uint8_t> Device::PeekRowPhysical(BankId bank,
                                                  PhysicalRow row) {
  VRD_FATAL_IF(!config_.org.ValidBank(bank), "bank out of range");
  VRD_FATAL_IF(row.value >= config_.org.rows_per_bank, "row out of range");
  return StoreOf(bank, row).data;
}

Tick Device::SinceRestore(BankId bank, PhysicalRow row) const {
  const auto it = rows_.find(Key(bank, row));
  if (it == rows_.end()) {
    return 0;
  }
  return now_ - it->second.last_restore;
}

}  // namespace vrddram::dram
