#include "dram/retention.h"

#include <cmath>

#include "common/error.h"

namespace vrddram::dram {

RetentionParams RetentionParams::MakeDefault() {
  RetentionParams p;
  // Weak cells retain for seconds at 50 degC; the JEDEC guarantee (64
  // ms) has a wide margin, matching [149]: the weakest cells of a chip
  // sit around a few hundred ms to seconds.
  p.log_median_retention =
      std::log(static_cast<double>(2 * units::kSecond));
  return p;
}

RetentionModel::RetentionModel(std::uint64_t seed, RetentionParams params,
                               std::uint32_t row_bytes)
    : seed_(seed), params_(params), row_bytes_(row_bytes) {
  VRD_FATAL_IF(row_bytes == 0, "rows must have bytes");
}

std::vector<RetentionModel::WeakCell>
RetentionModel::WeakCellsOf(BankId bank, PhysicalRow row) const {
  Rng rng(MixSeed(seed_, bank, row.value, 0x4e7e));
  // Poisson-ish count via inversion on a small support: the expected
  // count is << 1, so sampling 0/1/2/3 from the Poisson pmf is exact
  // enough and cheap.
  const double lambda = params_.weak_cells_per_row;
  const double u = rng.NextDouble();
  const double p0 = std::exp(-lambda);
  const double p1 = p0 * lambda;
  const double p2 = p1 * lambda / 2.0;
  std::size_t count = 0;
  if (u < p0) {
    count = 0;
  } else if (u < p0 + p1) {
    count = 1;
  } else if (u < p0 + p1 + p2) {
    count = 2;
  } else {
    count = 3;
  }

  std::vector<WeakCell> cells;
  cells.reserve(count);
  const std::uint64_t row_bits = static_cast<std::uint64_t>(row_bytes_) * 8;
  for (std::size_t i = 0; i < count; ++i) {
    WeakCell cell;
    cell.bit_index = static_cast<std::uint32_t>(rng.NextBelow(row_bits));
    cell.retention_at_ref = static_cast<Tick>(rng.NextLognormal(
        params_.log_median_retention, params_.log_sigma));
    cells.push_back(cell);
  }
  return cells;
}

std::vector<BitFlip> RetentionModel::DecayedBits(
    BankId bank, PhysicalRow row, std::span<const std::uint8_t> data,
    const CellEncodingLayout& encoding, Tick since_restore,
    Celsius temperature) const {
  std::vector<BitFlip> flips;
  if (since_restore <= 0) {
    return flips;
  }
  const double temp_scale = std::exp2(
      (temperature - params_.reference_celsius) / params_.halving_celsius);
  for (const WeakCell& cell : WeakCellsOf(bank, row)) {
    const auto effective = static_cast<Tick>(
        static_cast<double>(cell.retention_at_ref) / temp_scale);
    if (since_restore <= effective) {
      continue;
    }
    const std::uint32_t byte = cell.bit_index / 8;
    const std::uint8_t bit = cell.bit_index % 8;
    if (byte >= data.size()) {
      continue;
    }
    const bool stored = (data[byte] >> bit) & 1;
    // Only charged cells lose data by leaking.
    if (encoding.IsCharged(row, stored)) {
      flips.push_back(BitFlip{byte, bit});
    }
  }
  return flips;
}

}  // namespace vrddram::dram
