#include "dram/bank.h"

#include <algorithm>

#include "common/error.h"

namespace vrddram::dram {

Bank::Bank(const TimingParams* timing) : timing_(timing) {
  VRD_ASSERT(timing_ != nullptr);
}

Tick Bank::EarliestActivate(Tick now) const {
  Tick earliest = now;
  if (last_pre_ != kNever) {
    earliest = std::max(earliest, last_pre_ + timing_->tRP);
  }
  if (last_act_ != kNever) {
    earliest = std::max(earliest, last_act_ + timing_->tRC);
  }
  return earliest;
}

Tick Bank::EarliestPrecharge(Tick now) const {
  Tick earliest = now;
  if (last_act_ != kNever) {
    earliest = std::max(earliest, last_act_ + timing_->tRAS);
  }
  if (last_rd_start_ != kNever) {
    earliest = std::max(earliest, last_rd_start_ + timing_->tRTP);
  }
  if (last_wr_data_end_ != kNever) {
    earliest = std::max(earliest, last_wr_data_end_ + timing_->tWR);
  }
  return earliest;
}

Tick Bank::EarliestRead(Tick now) const {
  Tick earliest = now;
  if (last_act_ != kNever) {
    earliest = std::max(earliest, last_act_ + timing_->tRCD);
  }
  if (last_rd_start_ != kNever) {
    earliest = std::max(earliest, last_rd_start_ + timing_->tCCD_L);
  }
  if (last_wr_data_end_ != kNever) {
    earliest = std::max(earliest, last_wr_data_end_);
  }
  return earliest;
}

Tick Bank::EarliestWrite(Tick now) const {
  Tick earliest = now;
  if (last_act_ != kNever) {
    earliest = std::max(earliest, last_act_ + timing_->tRCD);
  }
  if (last_wr_start_ != kNever) {
    earliest = std::max(earliest, last_wr_start_ + timing_->tCCD_L_WR);
  }
  if (last_rd_start_ != kNever) {
    earliest = std::max(earliest, last_rd_start_ + timing_->tCCD_L);
  }
  return earliest;
}

void Bank::Activate(PhysicalRow row, Tick at) {
  VRD_FATAL_IF(state_ != BankState::kIdle,
               "ACT issued to a bank with an open row");
  VRD_ASSERT_MSG(at >= EarliestActivate(at), "ACT violates timing");
  state_ = BankState::kActive;
  open_row_ = row;
  last_act_ = at;
  last_rd_start_ = kNever;
  last_wr_start_ = kNever;
  last_wr_data_end_ = kNever;
}

Tick Bank::Precharge(Tick at) {
  VRD_FATAL_IF(state_ != BankState::kActive,
               "PRE issued to an idle bank");
  VRD_FATAL_IF(at < EarliestPrecharge(at), "PRE violates timing");
  state_ = BankState::kIdle;
  last_pre_ = at;
  const Tick open_time = at - last_act_;
  return open_time;
}

Tick Bank::Read(Tick at) {
  VRD_FATAL_IF(state_ != BankState::kActive, "RD issued to an idle bank");
  VRD_FATAL_IF(at < EarliestRead(at), "RD violates timing");
  last_rd_start_ = at;
  return at + timing_->tCL + timing_->tBL;
}

void Bank::SyncAfterBulk(Tick last_act_time, Tick last_pre_time) {
  VRD_FATAL_IF(state_ != BankState::kIdle,
               "bulk sync on a bank with an open row");
  VRD_ASSERT(last_act_time <= last_pre_time);
  last_act_ = last_act_time;
  last_pre_ = last_pre_time;
  last_rd_start_ = kNever;
  last_wr_start_ = kNever;
  last_wr_data_end_ = kNever;
}

Tick Bank::Write(Tick at) {
  VRD_FATAL_IF(state_ != BankState::kActive, "WR issued to an idle bank");
  VRD_FATAL_IF(at < EarliestWrite(at), "WR violates timing");
  last_wr_start_ = at;
  const Tick data_end = at + timing_->tCWL + timing_->tBL;
  last_wr_data_end_ = data_end;
  return data_end;
}

}  // namespace vrddram::dram
