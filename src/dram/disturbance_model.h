/**
 * @file
 * Interface between the DRAM device model and a read-disturbance fault
 * engine. The engine sees physical-space activations and decides which
 * victim bits flip; the device stores data and applies the flips.
 *
 * The trap-based engine that reproduces the paper's VRD statistics
 * lives in src/vrd (vrd::TrapFaultEngine); the device model is agnostic
 * to the implementation so tests can plug in deterministic fakes.
 */
#ifndef VRDDRAM_DRAM_DISTURBANCE_MODEL_H
#define VRDDRAM_DRAM_DISTURBANCE_MODEL_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "dram/types.h"

namespace vrddram::dram {

class CellEncodingLayout;

/// Everything a fault engine may consult when deciding victim flips.
struct VictimContext {
  BankId bank = 0;
  PhysicalRow row{0};
  /// Current stored bytes of the victim row.
  std::span<const std::uint8_t> data;
  /// True-/anti-cell layout of the device (never null).
  const CellEncodingLayout* encoding = nullptr;
  Celsius temperature = 50.0;
  Tick now = 0;
};

/**
 * Read-disturbance fault engine interface.
 *
 * Lifecycle per victim row: OnRestore() whenever the row's charge is
 * restored (write, activation of the row itself, refresh) clears the
 * accumulated disturbance; OnActivations() accumulates aggressor dose
 * on the rows physically adjacent to the aggressor; Evaluate() reports
 * the set of bits that have flipped since the last restore.
 */
class ReadDisturbanceModel {
 public:
  virtual ~ReadDisturbanceModel() = default;

  /**
   * `count` activations of the aggressor row, each keeping the row
   * open for `t_on`, finishing at device time `now`. The engine is
   * responsible for spreading the dose to the aggressor's physical
   * neighbours. `aggressor_data` is the content of the aggressor row
   * during the activations (bitline coupling depends on it); it may be
   * empty, in which case worst-case coupling is assumed.
   */
  virtual void OnActivations(BankId bank, PhysicalRow aggressor,
                             std::uint64_t count, Tick t_on, Tick now,
                             Celsius temperature,
                             std::span<const std::uint8_t> aggressor_data)
      = 0;

  /// The row's charge was restored; clear its accumulated dose.
  virtual void OnRestore(BankId bank, PhysicalRow row, Tick now) = 0;

  /**
   * Bits of the victim row that have flipped since the last restore,
   * written into caller-owned scratch (cleared first). The out-param
   * keeps the device's materialization path allocation-free: the
   * device reuses one buffer across every row it opens.
   */
  virtual void Evaluate(const VictimContext& ctx,
                        std::vector<BitFlip>& out) = 0;

  /// Convenience wrapper for tests and one-off callers.
  std::vector<BitFlip> EvaluateToVector(const VictimContext& ctx) {
    std::vector<BitFlip> out;
    Evaluate(ctx, out);
    return out;
  }
};

/// Engine that never flips anything (default for plain devices).
class NullDisturbanceModel final : public ReadDisturbanceModel {
 public:
  void OnActivations(BankId, PhysicalRow, std::uint64_t, Tick, Tick,
                     Celsius, std::span<const std::uint8_t>) override {}
  void OnRestore(BankId, PhysicalRow, Tick) override {}
  void Evaluate(const VictimContext&,
                std::vector<BitFlip>& out) override {
    out.clear();
  }
};

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_DISTURBANCE_MODEL_H
