/**
 * @file
 * True-/anti-cell layout (§5.6). Real chips interleave rows of true
 * cells (logic-1 = charged) and anti cells (logic-1 = discharged); the
 * layout is fixed at manufacturing. We model row-granularity encoding,
 * as observed for the modules the paper tests (M0: 20 of 50 sampled
 * rows were anti-cell rows).
 */
#ifndef VRDDRAM_DRAM_CELL_ENCODING_H
#define VRDDRAM_DRAM_CELL_ENCODING_H

#include <cstdint>

#include "common/error.h"
#include "common/rng.h"
#include "dram/types.h"

namespace vrddram::dram {

class CellEncodingLayout {
 public:
  /**
   * @param seed          device-unique seed (the layout is a
   *                      manufacturing artifact: fixed per device,
   *                      varying across devices)
   * @param anti_fraction fraction of rows using anti-cell encoding
   */
  CellEncodingLayout(std::uint64_t seed, double anti_fraction)
      : seed_(seed), anti_fraction_(anti_fraction) {
    VRD_FATAL_IF(anti_fraction < 0.0 || anti_fraction > 1.0,
                 "anti_fraction must be in [0, 1]");
  }

  /// Encoding of every cell in the given physical row.
  CellEncoding RowEncoding(PhysicalRow row) const {
    const std::uint64_t h = MixSeed(seed_, row.value, 0xce11u);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < anti_fraction_ ? CellEncoding::kAntiCell
                              : CellEncoding::kTrueCell;
  }

  /**
   * Whether the capacitor of the cell holding `stored_bit` is charged.
   * True cells charge for 1, anti cells charge for 0.
   */
  bool IsCharged(PhysicalRow row, bool stored_bit) const {
    const bool anti = RowEncoding(row) == CellEncoding::kAntiCell;
    return stored_bit != anti;
  }

  /// Value a fully-discharged cell reads back as.
  bool DischargedValue(PhysicalRow row) const {
    return RowEncoding(row) == CellEncoding::kAntiCell;
  }

  double anti_fraction() const { return anti_fraction_; }

 private:
  std::uint64_t seed_;
  double anti_fraction_;
};

}  // namespace vrddram::dram

#endif  // VRDDRAM_DRAM_CELL_ENCODING_H
