#include "dram/organization.h"

#include <sstream>

#include "common/error.h"

namespace vrddram::dram {

std::string Organization::Describe() const {
  std::ostringstream os;
  os << density_gbit << "Gb x" << dq_bits << " (" << chips_per_rank
     << " chips, " << num_banks << " banks, " << rows_per_bank
     << " rows/bank, " << row_bytes << " B rows)";
  return os.str();
}

Organization MakeDdr4Org(std::uint32_t density_gbit, std::uint32_t dq_bits,
                         std::uint32_t chips_per_rank) {
  VRD_FATAL_IF(dq_bits != 8 && dq_bits != 16, "DDR4 chips are x8 or x16");
  VRD_FATAL_IF(density_gbit != 4 && density_gbit != 8 && density_gbit != 16,
               "supported DDR4 densities: 4, 8, 16 Gb");

  Organization org;
  org.density_gbit = density_gbit;
  org.dq_bits = dq_bits;
  org.chips_per_rank = chips_per_rank;
  // x8 chips: 4 bank groups x 4 banks; x16: 2 bank groups x 4 banks.
  org.num_banks = (dq_bits == 8) ? 16 : 8;
  // Module-level row: 8 KiB page spread across the rank (the 64 Kibit
  // row of §6.4's codeword analysis).
  org.row_bytes = 8192;
  // rows/bank = chip bits / (banks * page bits per chip).
  const std::uint64_t chip_bits =
      static_cast<std::uint64_t>(density_gbit) << 30;
  const std::uint64_t page_bits_per_chip =
      static_cast<std::uint64_t>(org.row_bytes) * 8 / chips_per_rank;
  org.rows_per_bank = static_cast<std::uint32_t>(
      chip_bits / (org.num_banks * page_bits_per_chip));
  return org;
}

Organization MakeDdr5Org() {
  Organization org;
  org.density_gbit = 16;
  org.dq_bits = 8;
  org.chips_per_rank = 8;
  org.num_banks = 32;  // 8 bank groups x 4 banks
  org.row_bytes = 8192;
  const std::uint64_t chip_bits = 16ull << 30;
  const std::uint64_t page_bits_per_chip =
      static_cast<std::uint64_t>(org.row_bytes) * 8 / org.chips_per_rank;
  org.rows_per_bank = static_cast<std::uint32_t>(
      chip_bits / (org.num_banks * page_bits_per_chip));
  return org;
}

Organization MakeHbm2Org() {
  Organization org;
  org.density_gbit = 8;
  org.dq_bits = 128;  // one channel
  org.chips_per_rank = 1;
  org.num_banks = 16;
  org.rows_per_bank = 1u << 14;
  org.row_bytes = 2048;
  return org;
}

}  // namespace vrddram::dram
