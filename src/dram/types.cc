#include "dram/types.h"

#include <bit>

#include "common/error.h"

namespace vrddram::dram {

std::uint8_t VictimByte(DataPattern pattern) {
  switch (pattern) {
    case DataPattern::kRowstripe0: return 0x00;
    case DataPattern::kRowstripe1: return 0xFF;
    case DataPattern::kCheckered0: return 0x55;
    case DataPattern::kCheckered1: return 0xAA;
  }
  throw PanicError("unknown data pattern");
}

std::uint8_t AggressorByte(DataPattern pattern) {
  switch (pattern) {
    case DataPattern::kRowstripe0: return 0xFF;
    case DataPattern::kRowstripe1: return 0x00;
    case DataPattern::kCheckered0: return 0xAA;
    case DataPattern::kCheckered1: return 0x55;
  }
  throw PanicError("unknown data pattern");
}

std::uint8_t SurroundByte(DataPattern pattern) {
  // Table 2: rows V +- [2:8] hold the same byte as the victim.
  return VictimByte(pattern);
}

std::string ToString(DataPattern pattern) {
  switch (pattern) {
    case DataPattern::kRowstripe0: return "Rowstripe0";
    case DataPattern::kRowstripe1: return "Rowstripe1";
    case DataPattern::kCheckered0: return "Checkered0";
    case DataPattern::kCheckered1: return "Checkered1";
  }
  throw PanicError("unknown data pattern");
}

std::vector<BitFlip> DiffBits(std::span<const std::uint8_t> data,
                              std::uint8_t expected) {
  std::vector<BitFlip> flips;
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    std::uint8_t diff = data[byte] ^ expected;
    while (diff != 0) {
      const auto bit = static_cast<std::uint8_t>(std::countr_zero(diff));
      flips.push_back(BitFlip{static_cast<ColAddr>(byte), bit});
      diff &= static_cast<std::uint8_t>(diff - 1);
    }
  }
  return flips;
}

std::size_t CountDiffBits(std::span<const std::uint8_t> data,
                          std::uint8_t expected) {
  std::size_t count = 0;
  for (const std::uint8_t byte : data) {
    count += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(byte ^ expected)));
  }
  return count;
}

std::string ToString(CellEncoding encoding) {
  switch (encoding) {
    case CellEncoding::kTrueCell: return "true-cell";
    case CellEncoding::kAntiCell: return "anti-cell";
  }
  throw PanicError("unknown cell encoding");
}

}  // namespace vrddram::dram
