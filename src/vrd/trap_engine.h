/**
 * @file
 * Trap-based read-disturbance fault engine: the component that makes
 * the simulated chips exhibit *variable read disturbance*.
 *
 * Physics sketch (DESIGN.md §4, paper §4.2): each row owns a sparse
 * set of disturbance-prone weak cells. An aggressor activation injects
 * a dose into neighbouring cells, scaled by side-dependent coupling,
 * aggressor/victim data, RowPress amplification (tAggOn), and
 * temperature. A cell flips once its accumulated dose, amplified by
 * the weights of its *occupied charge traps*, crosses the cell's
 * intrinsic threshold. Traps are two-state continuous-time Markov
 * chains (random telegraph noise): fast low-weight traps create the
 * multi-state, near-normal RDT histograms of Fig. 4; rare low-occupancy
 * high-weight traps create the deep RDT minima that surface only after
 * tens of thousands of measurements (Fig. 1).
 *
 * Everything is deterministic given (device seed, bank, row): a chip
 * is a reproducible individual.
 */
#ifndef VRDDRAM_VRD_TRAP_ENGINE_H
#define VRDDRAM_VRD_TRAP_ENGINE_H

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dram/disturbance_model.h"
#include "dram/organization.h"
#include "vrd/fault_profile.h"

namespace vrddram {
class MonotonicArena;
}

namespace vrddram::vrd {

/**
 * Poisson sampler for a fixed rate (Knuth's product-of-uniforms
 * method): construction pays the std::exp(-lambda) once, each draw is
 * then pure RNG work. Draw sequences are identical to the historical
 * free-function path for the same (rng state, lambda) — the loop is
 * untouched, only the limit computation is hoisted.
 *
 * Rates above 50 are rejected at construction: exp(-lambda) underflows
 * and the loop degenerates (see weak_cells_mean / fast_trap_mean).
 */
class PoissonSampler {
 public:
  explicit PoissonSampler(double lambda);

  std::size_t operator()(Rng& rng) const;

  double lambda() const { return lambda_; }

 private:
  double lambda_ = 0.0;
  double limit_ = 1.0;  ///< exp(-lambda), cached
};

/// Sample a Poisson variate (one-shot convenience; recomputes the
/// exp(-lambda) limit every call — hot paths hold a PoissonSampler).
std::size_t SamplePoisson(Rng& rng, double lambda);

class MeasureContext;
class BatchMeasureContext;

/**
 * Bank-wide structure-of-arrays measurement constants for a set of
 * rows measured in lockstep (DESIGN.md §10). Every span is a view into
 * a caller-owned MonotonicArena: contiguous across the whole batch,
 * per-trap arrays indexed by bank-wide trap offsets and per-cell
 * arrays by bank-wide cell offsets (rows are addressed by their
 * (begin, count) spans held in BatchMeasureContext).
 */
struct BankTrapSoA {
  // Per trap, concatenated row by row.
  std::span<double> rate_scaled;  ///< rate_hz * q10_scale
  std::span<double> occupancy;    ///< stationary occupied probability
  std::span<double> weight;       ///< coupling boost while occupied

  // Per cell, concatenated row by row.
  std::span<double> per_hammer_fixed;  ///< series-invariant dose factor
  std::span<double> threshold;
  std::span<double> noise_sigma;
  std::span<std::uint32_t> bit_index;
  std::span<std::uint32_t> trap_begin;  ///< bank-wide trap offset
  std::span<std::uint32_t> trap_count;
};

class TrapFaultEngine final : public dram::ReadDisturbanceModel {
 public:
  TrapFaultEngine(FaultProfile profile, std::uint64_t device_seed,
                  dram::Organization org);

  // -- ReadDisturbanceModel -------------------------------------------------
  void OnActivations(dram::BankId bank, dram::PhysicalRow aggressor,
                     std::uint64_t count, Tick t_on, Tick now,
                     Celsius temperature,
                     std::span<const std::uint8_t> aggressor_data) override;
  void OnRestore(dram::BankId bank, dram::PhysicalRow row,
                 Tick now) override;
  void Evaluate(const dram::VictimContext& ctx,
                std::vector<dram::BitFlip>& out) override;

  // -- introspection (tests, analyses) --------------------------------------
  /// One charge trap attached to a weak cell.
  struct Trap {
    // Field order is deliberate: the four fields the measurement
    // kernels touch every sample sit in the first 32 bytes, so a
    // sequential trap walk pulls one hot half-line per trap; rate_hz
    // is only read at context build and in decay-memo misses.
    double occupancy = 0.0;   ///< stationary occupied probability
    double weight = 0.0;      ///< coupling boost while occupied
    bool occupied = false;
    Tick last_sample = 0;
    double rate_hz = 0.0;     ///< total transition rate at 50 degC
  };

  /// One disturbance-prone cell of a row.
  struct WeakCell {
    std::uint32_t bit_index = 0;
    double threshold = 0.0;       ///< intrinsic dose budget
    double alpha_above = 0.5;     ///< share of coupling from row+1
    double temp_beta = 0.0;
    double noise_sigma = 0.0;  ///< per-cell analog noise magnitude
    double aggr_jitter[2] = {1.0, 1.0};    ///< by aggressor bit value
    double victim_jitter[2] = {1.0, 1.0};  ///< by victim bit value
    double dose[2] = {0.0, 0.0};           ///< accumulated, by aggr bit
    /// The cell's traps live in RowState::traps (one contiguous array
    /// per row, grouped by cell): [trap_begin, trap_begin+trap_count).
    std::uint32_t trap_begin = 0;
    std::uint32_t trap_count = 0;
  };

  struct RowState {
    std::vector<WeakCell> cells;
    /// All traps of the row, contiguous, grouped by cell, so the
    /// measurement kernel walks linear memory.
    std::vector<Trap> traps;
    Rng dynamics_rng{0};
    Tick last_restore = 0;

    std::span<Trap> CellTraps(const WeakCell& cell) {
      return {traps.data() + cell.trap_begin, cell.trap_count};
    }
    std::span<const Trap> CellTraps(const WeakCell& cell) const {
      return {traps.data() + cell.trap_begin, cell.trap_count};
    }
  };

  /// Weak-cell state of a row (creates it deterministically if new).
  const RowState& RowStateOf(dram::BankId bank, dram::PhysicalRow row);

  /**
   * Analytic fast path for profiling campaigns: the smallest
   * double-sided hammer count that flips any weak cell of `victim`
   * under the standard test setup (both aggressors filled with
   * `aggressor_byte`, victim with `victim_byte`, each activation
   * holding the row open for `t_on`), with trap states sampled at
   * `now`. Returns a negative value if no cell can flip at any count.
   *
   * Behaviourally this is the continuum limit of sweeping hammer
   * counts through the command path with trap states frozen for the
   * duration of one measurement (tests check the correspondence).
   */
  double MinFlipHammerCount(dram::BankId bank, dram::PhysicalRow victim,
                            std::uint8_t victim_byte,
                            std::uint8_t aggressor_byte, Tick t_on,
                            Celsius temperature,
                            const dram::CellEncodingLayout& encoding,
                            Tick now);

  /// A weak cell's flipping hammer count under the standard setup.
  struct CellFlipPoint {
    std::uint32_t bit_index = 0;
    double hammer_count = 0.0;  ///< negative: cannot flip
  };

  /**
   * Per-cell variant of MinFlipHammerCount: the flipping hammer count
   * of every weak cell of the victim (trap states sampled at `now`).
   * Used by the guardband bitflip study (Fig. 16), which needs to know
   * *which* cells flip at a given hammer count.
   */
  std::vector<CellFlipPoint> PerCellFlipHammerCounts(
      dram::BankId bank, dram::PhysicalRow victim,
      std::uint8_t victim_byte, std::uint8_t aggressor_byte, Tick t_on,
      Celsius temperature, const dram::CellEncodingLayout& encoding,
      Tick now);

  // -- series-scoped fast path ----------------------------------------------
  /**
   * Build a MeasureContext for a series of measurements of `victim`
   * under a fixed (pattern, t_on, temperature, encoding) setup: pins
   * the row state (no hash lookup per call) and precomputes every
   * per-cell multiplier that is invariant across the series. Draws
   * nothing from the row's dynamics_rng, so interleaving context
   * construction with measurements does not perturb any sequence.
   */
  MeasureContext MakeMeasureContext(
      dram::BankId bank, dram::PhysicalRow victim,
      std::uint8_t victim_byte, std::uint8_t aggressor_byte, Tick t_on,
      Celsius temperature, const dram::CellEncodingLayout& encoding,
      Tick now);

  /// Reuse overload: rebuild `ctx` in place for a new series. Clears
  /// and refills the context's storage without releasing capacity, so
  /// a context hoisted out of a scan loop makes the steady state
  /// allocation-free. Same bit-identity contract as above.
  void MakeMeasureContext(dram::BankId bank, dram::PhysicalRow victim,
                          std::uint8_t victim_byte,
                          std::uint8_t aggressor_byte, Tick t_on,
                          Celsius temperature,
                          const dram::CellEncodingLayout& encoding,
                          Tick now, MeasureContext& ctx);

  /**
   * Context-based MinFlipHammerCount: bit-identical results and
   * dynamics_rng consumption to the per-call overload above (a tier-1
   * regression test asserts this across the chip catalog), without the
   * per-call state lookup, invariant recomputation, or allocation.
   */
  double MinFlipHammerCount(MeasureContext& ctx, Tick now);

  /// Context-based PerCellFlipHammerCounts writing into caller-owned
  /// scratch (cleared first); same bit-identity contract as above.
  void PerCellFlipHammerCounts(MeasureContext& ctx, Tick now,
                               std::vector<CellFlipPoint>& out);

  // -- bank-wide batched fast path ------------------------------------------
  /**
   * Build a BatchMeasureContext for measuring `rows` of `bank` in
   * lockstep under one fixed (pattern, t_on, temperature, encoding)
   * setup. All storage — the SoA arrays, scratch, and the decay memo —
   * comes from `arena`, so the batch kernel never touches the heap.
   * The context stays valid until the arena is Reset or destroyed, and
   * it must only be used with this engine. Row states are materialized
   * at `now` (new rows stamp their traps' last_sample then), and
   * construction draws nothing from any row's dynamics RNG.
   *
   * The batch kernel is a *lockstep* semantic: every call advances all
   * rows of the batch to the same instant. That is a different tick
   * pattern from scanning rows one-by-one through per-row contexts, so
   * the two APIs answer different experimental setups; per row, the
   * batch kernel is bit-identical to the scalar context path given the
   * same (state, tick) history (tests pin this across the catalog).
   */
  BatchMeasureContext MakeBatchMeasureContext(
      dram::BankId bank, std::span<const dram::PhysicalRow> rows,
      std::uint8_t victim_byte, std::uint8_t aggressor_byte, Tick t_on,
      Celsius temperature, const dram::CellEncodingLayout& encoding,
      Tick now, MonotonicArena& arena);

  /// Advance every row of the batch to `now` and write each row's
  /// smallest flipping hammer count (negative: cannot flip) into
  /// `out_min_hc`, which must have exactly row_count() elements.
  /// Decay factors are evaluated bank-wide (SIMD where available, see
  /// common/simd.h); per-row RNG draws keep the scalar path's order.
  void BatchMinFlipHammerCounts(BatchMeasureContext& ctx, Tick now,
                                std::span<double> out_min_hc);

  /// Per-cell variant: flip points of every cell of every row of the
  /// batch, concatenated in row order, written into caller-owned
  /// scratch (cleared first). Row r's slice is ctx.RowCellRange(r).
  void BatchPerCellFlipHammerCounts(BatchMeasureContext& ctx, Tick now,
                                    std::vector<CellFlipPoint>& out);

  const FaultProfile& profile() const { return profile_; }

 private:
  friend class MeasureContext;
  friend class BatchMeasureContext;

  RowState& MutableRowState(dram::BankId bank, dram::PhysicalRow row,
                            Tick now);

  /// Shared context kernel: advance every trap of the pinned row to
  /// `now` and emit (bit_index, flip hammer count) per cell.
  template <typename Sink>
  void ForEachFlipPoint(MeasureContext& ctx, Tick now, Sink&& sink);

  /// Shared batch kernel: advance every row of the batch to `now` and
  /// emit (row index, bit_index, flip hammer count) per cell.
  template <typename Sink>
  void ForEachBatchFlipPoint(BatchMeasureContext& ctx, Tick now,
                             Sink&& sink);

  /// The series-invariant part of a cell's per-hammer dose — pattern
  /// jitters, same-bit/discharged selection, temperature exponential —
  /// accumulated in exactly the per-call path's association order.
  /// Single source of truth for every context builder, so the scalar
  /// and batched paths cannot drift apart by a rounding.
  double FixedPerHammerDose(const WeakCell& cell,
                            dram::PhysicalRow victim,
                            std::uint8_t victim_byte,
                            std::uint8_t aggressor_byte, double press,
                            Celsius temperature,
                            const dram::CellEncodingLayout& encoding) const;

  /// Advance all traps of `cell` to `now` and return the summed weight
  /// of the occupied ones.
  double SampleTrapBoost(RowState& state, WeakCell& cell, Tick now,
                         Celsius temperature);
  RowState BuildRowState(dram::BankId bank, dram::PhysicalRow row,
                         Tick now) const;

  /// Accrue dose on one victim row from `count` aggressor activations.
  void AccrueDose(dram::BankId bank, dram::PhysicalRow victim,
                  bool aggressor_is_above, double strength,
                  std::uint64_t count, double press,
                  std::span<const std::uint8_t> aggressor_data, Tick now);

  static std::uint64_t Key(dram::BankId bank, dram::PhysicalRow row) {
    return (static_cast<std::uint64_t>(bank) << 32) | row.value;
  }

  FaultProfile profile_;
  std::uint64_t device_seed_;
  dram::Organization org_;
  /// Manufacturing samplers with hoisted exp(-lambda) limits; drawing
  /// through them is sequence-identical to the free-function path.
  PoissonSampler weak_cell_sampler_;
  PoissonSampler fast_trap_sampler_;
  std::unordered_map<std::uint64_t, RowState> states_;
};

/**
 * Series-scoped cache for the hot measurement kernel (DESIGN.md §9).
 *
 * Everything about one (victim row, pattern, t_on, temperature,
 * encoding) series that is invariant across its measurements:
 *  - the pinned RowState pointer (stable: states_ never erases),
 *  - per-cell fixed per-hammer multipliers — pattern jitters,
 *    same-bit/discharged selection, and the temperature exponential,
 *    accumulated in exactly the per-call path's association order,
 *  - per-trap Q10-scaled transition rates, and
 *  - an exact memo of exp(-rate*dt) keyed on the tick delta between
 *    measurements (the analytic sweep revisits a handful of distinct
 *    durations, so almost every measurement reuses a cached decay).
 *
 * Construction draws nothing from the dynamics RNG; the memo caches
 * only values std::exp would return for identical arguments. Both
 * together are what keep the context path bit-identical to the legacy
 * per-call path.
 */
class MeasureContext {
 public:
  MeasureContext() = default;

  /// Number of weak cells of the pinned row (introspection).
  std::size_t cell_count() const { return cells_.size(); }

 private:
  friend class TrapFaultEngine;

  struct CellPre {
    std::uint32_t bit_index = 0;
    std::uint32_t trap_begin = 0;
    std::uint32_t trap_count = 0;
    /// press * jitters * same-bit/discharged factors * temp exp: the
    /// full per-hammer dose except the trap-boost term.
    double per_hammer_fixed = 0.0;
    double threshold = 0.0;
    double noise_sigma = 0.0;
  };

  struct DecayEntry {
    Tick dt = -1;
    std::vector<double> decay;  ///< per row trap index
  };

  /// exp(-rate_scaled * ToSeconds(dt)) per trap, memoized on dt.
  const double* DecayFor(Tick dt);

  TrapFaultEngine::RowState* state_ = nullptr;
  std::vector<CellPre> cells_;
  std::vector<double> rate_scaled_;  ///< rate_hz * q10_scale, per trap
  std::vector<DecayEntry> memo_;
  std::size_t memo_next_evict_ = 0;
};

/**
 * Bank-wide batched counterpart of MeasureContext (DESIGN.md §10):
 * one context covering many rows of a bank, measured in lockstep. All
 * per-series constants live in a BankTrapSoA carved out of a
 * caller-owned MonotonicArena, and the exp(-rate*dt) decay memo is a
 * fixed set of arena-backed bank-wide lanes — after construction, the
 * batch kernel performs no heap allocation at all.
 *
 * Mutable trap state (occupied, last_sample) intentionally stays in
 * the engine's RowState structs: the batch kernel writes its Bernoulli
 * outcomes back there, so batched and scalar measurements of the same
 * row can interleave and always observe one coherent trap history.
 *
 * Lifetime: valid while the arena it was carved from is neither Reset
 * nor destroyed and the engine is alive. Copies are shallow views.
 */
class BatchMeasureContext {
 public:
  BatchMeasureContext() = default;

  /// Number of rows measured in lockstep.
  std::size_t row_count() const { return rows_.size(); }
  /// Total weak cells across the batch (size of per-cell SoA arrays).
  std::size_t total_cell_count() const { return soa_.bit_index.size(); }
  /// Total traps across the batch (size of per-trap SoA arrays).
  std::size_t total_trap_count() const {
    return soa_.rate_scaled.size();
  }

  /// Row r's (begin, count) slice of the flat per-cell outputs.
  std::pair<std::uint32_t, std::uint32_t> RowCellRange(
      std::size_t r) const {
    return {rows_[r].cell_begin, rows_[r].cell_count};
  }

  /// The underlying SoA (introspection; spans are arena-backed).
  const BankTrapSoA& soa() const { return soa_; }

 private:
  friend class TrapFaultEngine;

  /// One row of the batch: its pinned state plus the row's (begin,
  /// count) spans into the bank-wide SoA arrays.
  struct RowRef {
    TrapFaultEngine::RowState* state = nullptr;
    std::uint32_t cell_begin = 0;
    std::uint32_t cell_count = 0;
    std::uint32_t trap_begin = 0;
    std::uint32_t trap_count = 0;
  };

  /// One memoized bank-wide decay lane; dt < 0 marks it unused. The
  /// lane spans are allocated once at construction, so memo misses
  /// only recompute values, never allocate.
  struct DecayEntry {
    Tick dt = -1;
    std::span<double> decay;
  };

  /// Packed per-cell constants for the sequential RNG pass. The SoA
  /// spans stay the canonical bank-wide lanes (they feed the SIMD
  /// decay fill), but the fused kernel walks one packed stream instead
  /// of six parallel arrays — fewer concurrent prefetch streams. The
  /// per-trap constants need no mirror: the kernel reads them straight
  /// from the Trap structs whose mutable state it touches anyway.
  struct CellHot {
    double per_hammer_fixed = 0.0;
    double threshold = 0.0;
    double noise_sigma = 0.0;
    std::uint32_t bit_index = 0;
    std::uint32_t trap_begin = 0;  ///< bank-wide
    std::uint32_t trap_count = 0;
  };

  static constexpr std::size_t kMemoCapacity = 16;

  /// exp(-rate_scaled * ToSeconds(dt)) per trap, bank-wide, memoized
  /// on dt. Scalar std::exp fill on miss — see common/simd.h for why
  /// the transcendental must stay scalar under the bit-equality
  /// contract.
  const double* DecayFor(Tick dt);

  std::span<RowRef> rows_;
  BankTrapSoA soa_;
  std::span<CellHot> hot_cells_;
  std::array<DecayEntry, kMemoCapacity> memo_{};
  std::size_t memo_next_evict_ = 0;
};

}  // namespace vrddram::vrd

#endif  // VRDDRAM_VRD_TRAP_ENGINE_H
