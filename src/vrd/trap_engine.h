/**
 * @file
 * Trap-based read-disturbance fault engine: the component that makes
 * the simulated chips exhibit *variable read disturbance*.
 *
 * Physics sketch (DESIGN.md §4, paper §4.2): each row owns a sparse
 * set of disturbance-prone weak cells. An aggressor activation injects
 * a dose into neighbouring cells, scaled by side-dependent coupling,
 * aggressor/victim data, RowPress amplification (tAggOn), and
 * temperature. A cell flips once its accumulated dose, amplified by
 * the weights of its *occupied charge traps*, crosses the cell's
 * intrinsic threshold. Traps are two-state continuous-time Markov
 * chains (random telegraph noise): fast low-weight traps create the
 * multi-state, near-normal RDT histograms of Fig. 4; rare low-occupancy
 * high-weight traps create the deep RDT minima that surface only after
 * tens of thousands of measurements (Fig. 1).
 *
 * Everything is deterministic given (device seed, bank, row): a chip
 * is a reproducible individual.
 */
#ifndef VRDDRAM_VRD_TRAP_ENGINE_H
#define VRDDRAM_VRD_TRAP_ENGINE_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dram/disturbance_model.h"
#include "dram/organization.h"
#include "vrd/fault_profile.h"

namespace vrddram::vrd {

/// Sample a Poisson variate (Knuth's method; lambda is small here).
/// Rates above 50 are rejected: exp(-lambda) underflows and the loop
/// degenerates (see the profile's weak_cells_mean / fast_trap_mean).
std::size_t SamplePoisson(Rng& rng, double lambda);

class MeasureContext;

class TrapFaultEngine final : public dram::ReadDisturbanceModel {
 public:
  TrapFaultEngine(FaultProfile profile, std::uint64_t device_seed,
                  dram::Organization org);

  // -- ReadDisturbanceModel -------------------------------------------------
  void OnActivations(dram::BankId bank, dram::PhysicalRow aggressor,
                     std::uint64_t count, Tick t_on, Tick now,
                     Celsius temperature,
                     std::span<const std::uint8_t> aggressor_data) override;
  void OnRestore(dram::BankId bank, dram::PhysicalRow row,
                 Tick now) override;
  void Evaluate(const dram::VictimContext& ctx,
                std::vector<dram::BitFlip>& out) override;

  // -- introspection (tests, analyses) --------------------------------------
  /// One charge trap attached to a weak cell.
  struct Trap {
    double occupancy = 0.0;   ///< stationary occupied probability
    double rate_hz = 0.0;     ///< total transition rate at 50 degC
    double weight = 0.0;      ///< coupling boost while occupied
    bool occupied = false;
    Tick last_sample = 0;
  };

  /// One disturbance-prone cell of a row.
  struct WeakCell {
    std::uint32_t bit_index = 0;
    double threshold = 0.0;       ///< intrinsic dose budget
    double alpha_above = 0.5;     ///< share of coupling from row+1
    double temp_beta = 0.0;
    double noise_sigma = 0.0;  ///< per-cell analog noise magnitude
    double aggr_jitter[2] = {1.0, 1.0};    ///< by aggressor bit value
    double victim_jitter[2] = {1.0, 1.0};  ///< by victim bit value
    double dose[2] = {0.0, 0.0};           ///< accumulated, by aggr bit
    /// The cell's traps live in RowState::traps (one contiguous array
    /// per row, grouped by cell): [trap_begin, trap_begin+trap_count).
    std::uint32_t trap_begin = 0;
    std::uint32_t trap_count = 0;
  };

  struct RowState {
    std::vector<WeakCell> cells;
    /// All traps of the row, contiguous, grouped by cell, so the
    /// measurement kernel walks linear memory.
    std::vector<Trap> traps;
    Rng dynamics_rng{0};
    Tick last_restore = 0;

    std::span<Trap> CellTraps(const WeakCell& cell) {
      return {traps.data() + cell.trap_begin, cell.trap_count};
    }
    std::span<const Trap> CellTraps(const WeakCell& cell) const {
      return {traps.data() + cell.trap_begin, cell.trap_count};
    }
  };

  /// Weak-cell state of a row (creates it deterministically if new).
  const RowState& RowStateOf(dram::BankId bank, dram::PhysicalRow row);

  /**
   * Analytic fast path for profiling campaigns: the smallest
   * double-sided hammer count that flips any weak cell of `victim`
   * under the standard test setup (both aggressors filled with
   * `aggressor_byte`, victim with `victim_byte`, each activation
   * holding the row open for `t_on`), with trap states sampled at
   * `now`. Returns a negative value if no cell can flip at any count.
   *
   * Behaviourally this is the continuum limit of sweeping hammer
   * counts through the command path with trap states frozen for the
   * duration of one measurement (tests check the correspondence).
   */
  double MinFlipHammerCount(dram::BankId bank, dram::PhysicalRow victim,
                            std::uint8_t victim_byte,
                            std::uint8_t aggressor_byte, Tick t_on,
                            Celsius temperature,
                            const dram::CellEncodingLayout& encoding,
                            Tick now);

  /// A weak cell's flipping hammer count under the standard setup.
  struct CellFlipPoint {
    std::uint32_t bit_index = 0;
    double hammer_count = 0.0;  ///< negative: cannot flip
  };

  /**
   * Per-cell variant of MinFlipHammerCount: the flipping hammer count
   * of every weak cell of the victim (trap states sampled at `now`).
   * Used by the guardband bitflip study (Fig. 16), which needs to know
   * *which* cells flip at a given hammer count.
   */
  std::vector<CellFlipPoint> PerCellFlipHammerCounts(
      dram::BankId bank, dram::PhysicalRow victim,
      std::uint8_t victim_byte, std::uint8_t aggressor_byte, Tick t_on,
      Celsius temperature, const dram::CellEncodingLayout& encoding,
      Tick now);

  // -- series-scoped fast path ----------------------------------------------
  /**
   * Build a MeasureContext for a series of measurements of `victim`
   * under a fixed (pattern, t_on, temperature, encoding) setup: pins
   * the row state (no hash lookup per call) and precomputes every
   * per-cell multiplier that is invariant across the series. Draws
   * nothing from the row's dynamics_rng, so interleaving context
   * construction with measurements does not perturb any sequence.
   */
  MeasureContext MakeMeasureContext(
      dram::BankId bank, dram::PhysicalRow victim,
      std::uint8_t victim_byte, std::uint8_t aggressor_byte, Tick t_on,
      Celsius temperature, const dram::CellEncodingLayout& encoding,
      Tick now);

  /**
   * Context-based MinFlipHammerCount: bit-identical results and
   * dynamics_rng consumption to the per-call overload above (a tier-1
   * regression test asserts this across the chip catalog), without the
   * per-call state lookup, invariant recomputation, or allocation.
   */
  double MinFlipHammerCount(MeasureContext& ctx, Tick now);

  /// Context-based PerCellFlipHammerCounts writing into caller-owned
  /// scratch (cleared first); same bit-identity contract as above.
  void PerCellFlipHammerCounts(MeasureContext& ctx, Tick now,
                               std::vector<CellFlipPoint>& out);

  const FaultProfile& profile() const { return profile_; }

 private:
  friend class MeasureContext;

  RowState& MutableRowState(dram::BankId bank, dram::PhysicalRow row,
                            Tick now);

  /// Shared context kernel: advance every trap of the pinned row to
  /// `now` and emit (bit_index, flip hammer count) per cell.
  template <typename Sink>
  void ForEachFlipPoint(MeasureContext& ctx, Tick now, Sink&& sink);

  /// Advance all traps of `cell` to `now` and return the summed weight
  /// of the occupied ones.
  double SampleTrapBoost(RowState& state, WeakCell& cell, Tick now,
                         Celsius temperature);
  RowState BuildRowState(dram::BankId bank, dram::PhysicalRow row,
                         Tick now) const;

  /// Accrue dose on one victim row from `count` aggressor activations.
  void AccrueDose(dram::BankId bank, dram::PhysicalRow victim,
                  bool aggressor_is_above, double strength,
                  std::uint64_t count, double press,
                  std::span<const std::uint8_t> aggressor_data, Tick now);

  static std::uint64_t Key(dram::BankId bank, dram::PhysicalRow row) {
    return (static_cast<std::uint64_t>(bank) << 32) | row.value;
  }

  FaultProfile profile_;
  std::uint64_t device_seed_;
  dram::Organization org_;
  std::unordered_map<std::uint64_t, RowState> states_;
};

/**
 * Series-scoped cache for the hot measurement kernel (DESIGN.md §9).
 *
 * Everything about one (victim row, pattern, t_on, temperature,
 * encoding) series that is invariant across its measurements:
 *  - the pinned RowState pointer (stable: states_ never erases),
 *  - per-cell fixed per-hammer multipliers — pattern jitters,
 *    same-bit/discharged selection, and the temperature exponential,
 *    accumulated in exactly the per-call path's association order,
 *  - per-trap Q10-scaled transition rates, and
 *  - an exact memo of exp(-rate*dt) keyed on the tick delta between
 *    measurements (the analytic sweep revisits a handful of distinct
 *    durations, so almost every measurement reuses a cached decay).
 *
 * Construction draws nothing from the dynamics RNG; the memo caches
 * only values std::exp would return for identical arguments. Both
 * together are what keep the context path bit-identical to the legacy
 * per-call path.
 */
class MeasureContext {
 public:
  MeasureContext() = default;

  /// Number of weak cells of the pinned row (introspection).
  std::size_t cell_count() const { return cells_.size(); }

 private:
  friend class TrapFaultEngine;

  struct CellPre {
    std::uint32_t bit_index = 0;
    std::uint32_t trap_begin = 0;
    std::uint32_t trap_count = 0;
    /// press * jitters * same-bit/discharged factors * temp exp: the
    /// full per-hammer dose except the trap-boost term.
    double per_hammer_fixed = 0.0;
    double threshold = 0.0;
    double noise_sigma = 0.0;
  };

  struct DecayEntry {
    Tick dt = -1;
    std::vector<double> decay;  ///< per row trap index
  };

  /// exp(-rate_scaled * ToSeconds(dt)) per trap, memoized on dt.
  const double* DecayFor(Tick dt);

  TrapFaultEngine::RowState* state_ = nullptr;
  std::vector<CellPre> cells_;
  std::vector<double> rate_scaled_;  ///< rate_hz * q10_scale, per trap
  std::vector<DecayEntry> memo_;
  std::size_t memo_next_evict_ = 0;
};

}  // namespace vrddram::vrd

#endif  // VRDDRAM_VRD_TRAP_ENGINE_H
