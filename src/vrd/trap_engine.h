/**
 * @file
 * Trap-based read-disturbance fault engine: the component that makes
 * the simulated chips exhibit *variable read disturbance*.
 *
 * Physics sketch (DESIGN.md §4, paper §4.2): each row owns a sparse
 * set of disturbance-prone weak cells. An aggressor activation injects
 * a dose into neighbouring cells, scaled by side-dependent coupling,
 * aggressor/victim data, RowPress amplification (tAggOn), and
 * temperature. A cell flips once its accumulated dose, amplified by
 * the weights of its *occupied charge traps*, crosses the cell's
 * intrinsic threshold. Traps are two-state continuous-time Markov
 * chains (random telegraph noise): fast low-weight traps create the
 * multi-state, near-normal RDT histograms of Fig. 4; rare low-occupancy
 * high-weight traps create the deep RDT minima that surface only after
 * tens of thousands of measurements (Fig. 1).
 *
 * Everything is deterministic given (device seed, bank, row): a chip
 * is a reproducible individual.
 */
#ifndef VRDDRAM_VRD_TRAP_ENGINE_H
#define VRDDRAM_VRD_TRAP_ENGINE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dram/disturbance_model.h"
#include "dram/organization.h"
#include "vrd/fault_profile.h"

namespace vrddram::vrd {

/// Sample a Poisson variate (Knuth's method; lambda is small here).
std::size_t SamplePoisson(Rng& rng, double lambda);

class TrapFaultEngine final : public dram::ReadDisturbanceModel {
 public:
  TrapFaultEngine(FaultProfile profile, std::uint64_t device_seed,
                  dram::Organization org);

  // -- ReadDisturbanceModel -------------------------------------------------
  void OnActivations(dram::BankId bank, dram::PhysicalRow aggressor,
                     std::uint64_t count, Tick t_on, Tick now,
                     Celsius temperature,
                     std::span<const std::uint8_t> aggressor_data) override;
  void OnRestore(dram::BankId bank, dram::PhysicalRow row,
                 Tick now) override;
  std::vector<dram::BitFlip> Evaluate(
      const dram::VictimContext& ctx) override;

  // -- introspection (tests, analyses) --------------------------------------
  /// One charge trap attached to a weak cell.
  struct Trap {
    double occupancy = 0.0;   ///< stationary occupied probability
    double rate_hz = 0.0;     ///< total transition rate at 50 degC
    double weight = 0.0;      ///< coupling boost while occupied
    bool occupied = false;
    Tick last_sample = 0;
  };

  /// One disturbance-prone cell of a row.
  struct WeakCell {
    std::uint32_t bit_index = 0;
    double threshold = 0.0;       ///< intrinsic dose budget
    double alpha_above = 0.5;     ///< share of coupling from row+1
    double temp_beta = 0.0;
    double noise_sigma = 0.0;  ///< per-cell analog noise magnitude
    double aggr_jitter[2] = {1.0, 1.0};    ///< by aggressor bit value
    double victim_jitter[2] = {1.0, 1.0};  ///< by victim bit value
    double dose[2] = {0.0, 0.0};           ///< accumulated, by aggr bit
    std::vector<Trap> traps;
  };

  struct RowState {
    std::vector<WeakCell> cells;
    Rng dynamics_rng{0};
    Tick last_restore = 0;
  };

  /// Weak-cell state of a row (creates it deterministically if new).
  const RowState& RowStateOf(dram::BankId bank, dram::PhysicalRow row);

  /**
   * Analytic fast path for profiling campaigns: the smallest
   * double-sided hammer count that flips any weak cell of `victim`
   * under the standard test setup (both aggressors filled with
   * `aggressor_byte`, victim with `victim_byte`, each activation
   * holding the row open for `t_on`), with trap states sampled at
   * `now`. Returns a negative value if no cell can flip at any count.
   *
   * Behaviourally this is the continuum limit of sweeping hammer
   * counts through the command path with trap states frozen for the
   * duration of one measurement (tests check the correspondence).
   */
  double MinFlipHammerCount(dram::BankId bank, dram::PhysicalRow victim,
                            std::uint8_t victim_byte,
                            std::uint8_t aggressor_byte, Tick t_on,
                            Celsius temperature,
                            const dram::CellEncodingLayout& encoding,
                            Tick now);

  /// A weak cell's flipping hammer count under the standard setup.
  struct CellFlipPoint {
    std::uint32_t bit_index = 0;
    double hammer_count = 0.0;  ///< negative: cannot flip
  };

  /**
   * Per-cell variant of MinFlipHammerCount: the flipping hammer count
   * of every weak cell of the victim (trap states sampled at `now`).
   * Used by the guardband bitflip study (Fig. 16), which needs to know
   * *which* cells flip at a given hammer count.
   */
  std::vector<CellFlipPoint> PerCellFlipHammerCounts(
      dram::BankId bank, dram::PhysicalRow victim,
      std::uint8_t victim_byte, std::uint8_t aggressor_byte, Tick t_on,
      Celsius temperature, const dram::CellEncodingLayout& encoding,
      Tick now);

  const FaultProfile& profile() const { return profile_; }

 private:
  RowState& MutableRowState(dram::BankId bank, dram::PhysicalRow row,
                            Tick now);

  /// Advance all traps of `cell` to `now` and return the summed weight
  /// of the occupied ones.
  double SampleTrapBoost(RowState& state, WeakCell& cell, Tick now,
                         Celsius temperature);
  RowState BuildRowState(dram::BankId bank, dram::PhysicalRow row,
                         Tick now) const;

  /// Accrue dose on one victim row from `count` aggressor activations.
  void AccrueDose(dram::BankId bank, dram::PhysicalRow victim,
                  bool aggressor_is_above, double strength,
                  std::uint64_t count, double press,
                  std::span<const std::uint8_t> aggressor_data, Tick now);

  static std::uint64_t Key(dram::BankId bank, dram::PhysicalRow row) {
    return (static_cast<std::uint64_t>(bank) << 32) | row.value;
  }

  FaultProfile profile_;
  std::uint64_t device_seed_;
  dram::Organization org_;
  std::unordered_map<std::uint64_t, RowState> states_;
};

}  // namespace vrddram::vrd

#endif  // VRDDRAM_VRD_TRAP_ENGINE_H
