#include "vrd/fault_profile.h"

#include <algorithm>
#include <cmath>

namespace vrddram::vrd {

double FaultProfile::PressFactor(Tick t_on) const {
  // Sub-linear amplification with aggressor-on time, anchored at 1.0
  // for t_on == tRAS; the exponent follows the saturating trend
  // RowPress [4] reports across tAggOn values.
  const double extra_us =
      std::max(0.0, units::ToUs(t_on) - units::ToUs(t_ras));
  return 1.0 + k_press * std::pow(extra_us, 0.7);
}

}  // namespace vrddram::vrd
