#include "vrd/chip_catalog.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace vrddram::vrd {

std::string ToString(Manufacturer mfr) {
  switch (mfr) {
    case Manufacturer::kMfrH: return "Mfr. H";
    case Manufacturer::kMfrM: return "Mfr. M";
    case Manufacturer::kMfrS: return "Mfr. S";
  }
  throw PanicError("unknown manufacturer");
}

int TestedChipSpec::TechnologyOrdinal() const {
  // Density dominates; die revision breaks ties (footnote 12: later
  // letters indicate more advanced technology nodes).
  const int density_rank = (density_gbit >= 16) ? 2
                           : (density_gbit >= 8) ? 1
                                                 : 0;
  const int rev_rank = (die_rev == '?') ? 0 : (die_rev - 'A');
  return density_rank * 32 + rev_rank;
}

namespace {

/// Raw calibration row for one catalog entry.
struct CatalogRow {
  const char* name;
  Manufacturer mfr;
  dram::Standard standard;
  std::uint32_t density_gbit;
  char die_rev;
  std::uint32_t dq_bits;
  std::uint32_t chips;
  const char* date_code;
  double median_rdt;   ///< lognormal median of weak-cell thresholds
  double k_press;      ///< RowPress sensitivity (from Table 7 ratios)
  double severity;     ///< VRD severity knob (fast-trap population)
  double rare_weight;  ///< median weight of rare deep-minimum traps
};

// median_rdt ~ 2.2x the module's Table 7 minimum observed RDT at
// tAggOn = tRAS (the minimum across many rows sits well below the
// per-cell median); k_press from the tRAS/tREFI min-RDT ratio;
// severity from the module's expected-normalized-min band (Fig. 9 /
// Table 7); rare_weight from the module's worst-row max column.
constexpr CatalogRow kCatalog[] = {
    // name  mfr                standard              Gb  rev dq chips date      medRDT  kprss sev  rare
    {"H0", Manufacturer::kMfrH, dram::Standard::kDdr4, 8, 'J', 8, 8, "N/A",     50000.0, 0.35, 0.5, 0.55},
    {"H1", Manufacturer::kMfrH, dram::Standard::kDdr4, 16, 'C', 8, 8, "36-21",  17000.0, 0.73, 2.0, 0.50},
    {"H2", Manufacturer::kMfrH, dram::Standard::kDdr4, 8, 'A', 8, 8, "43-18",   55000.0, 0.27, 1.0, 0.35},
    {"H3", Manufacturer::kMfrH, dram::Standard::kDdr4, 8, 'D', 8, 8, "38-19",   22000.0, 0.32, 1.0, 0.50},
    {"H4", Manufacturer::kMfrH, dram::Standard::kDdr4, 8, 'D', 8, 8, "38-19",   23000.0, 0.63, 1.0, 0.58},
    {"H5", Manufacturer::kMfrH, dram::Standard::kDdr4, 8, 'D', 8, 8, "24-20",   30000.0, 0.78, 1.0, 0.53},
    {"H6", Manufacturer::kMfrH, dram::Standard::kDdr4, 8, 'D', 8, 8, "24-20",   21000.0, 0.37, 1.0, 0.70},
    {"M0", Manufacturer::kMfrM, dram::Standard::kDdr4, 16, 'E', 16, 4, "46-20", 11000.0, 0.35, 1.5, 0.42},
    {"M1", Manufacturer::kMfrM, dram::Standard::kDdr4, 16, 'F', 8, 8, "37-22",   9500.0, 0.33, 2.5, 0.70},
    {"M2", Manufacturer::kMfrM, dram::Standard::kDdr4, 16, 'F', 8, 8, "37-22",  10000.0, 0.46, 2.5, 0.45},
    {"M3", Manufacturer::kMfrM, dram::Standard::kDdr4, 8, 'R', 8, 8, "12-24",   10000.0, 0.39, 2.0, 0.42},
    {"M4", Manufacturer::kMfrM, dram::Standard::kDdr4, 8, 'R', 8, 8, "12-24",    8000.0, 0.14, 2.0, 0.75},
    {"M5", Manufacturer::kMfrM, dram::Standard::kDdr4, 8, 'R', 8, 8, "10-24",   10000.0, 0.27, 2.0, 0.72},
    {"M6", Manufacturer::kMfrM, dram::Standard::kDdr4, 16, 'F', 8, 8, "12-24",   9500.0, 0.30, 3.0, 0.55},
    {"S0", Manufacturer::kMfrS, dram::Standard::kDdr4, 8, 'C', 8, 8, "N/A",    27000.0, 1.24, 0.5, 1.30},
    {"S1", Manufacturer::kMfrS, dram::Standard::kDdr4, 8, 'B', 8, 8, "53-20",  65000.0, 2.00, 0.3, 0.75},
    {"S2", Manufacturer::kMfrS, dram::Standard::kDdr4, 8, 'D', 8, 8, "10-21",  14000.0, 0.65, 1.0, 0.70},
    {"S3", Manufacturer::kMfrS, dram::Standard::kDdr4, 16, 'A', 8, 8, "20-23", 18000.0, 0.22, 1.0, 0.55},
    {"S4", Manufacturer::kMfrS, dram::Standard::kDdr4, 4, 'C', 16, 4, "19-19", 27000.0, 1.43, 0.5, 0.63},
    {"S5", Manufacturer::kMfrS, dram::Standard::kDdr4, 16, 'B', 16, 8, "15-23", 15000.0, 0.50, 1.0, 0.48},
    {"S6", Manufacturer::kMfrS, dram::Standard::kDdr4, 16, 'B', 16, 8, "15-23", 17000.0, 0.29, 1.0, 0.78},
    {"Chip0", Manufacturer::kMfrS, dram::Standard::kHbm2, 8, '?', 128, 1, "N/A", 95000.0, 8.40, 1.0, 0.62},
    {"Chip1", Manufacturer::kMfrS, dram::Standard::kHbm2, 8, '?', 128, 1, "N/A", 90000.0, 4.25, 1.0, 0.68},
    {"Chip2", Manufacturer::kMfrS, dram::Standard::kHbm2, 8, '?', 128, 1, "N/A", 75000.0, 5.20, 1.0, 0.58},
    {"Chip3", Manufacturer::kMfrS, dram::Standard::kHbm2, 8, '?', 128, 1, "N/A", 115000.0, 7.70, 1.0, 0.72},
};

dram::RowMappingScheme SchemeFor(Manufacturer mfr,
                                 dram::Standard standard) {
  if (standard == dram::Standard::kHbm2) {
    return dram::RowMappingScheme::kDirect;
  }
  switch (mfr) {
    case Manufacturer::kMfrH: return dram::RowMappingScheme::kXorMidBits;
    case Manufacturer::kMfrM: return dram::RowMappingScheme::kPairSwap16;
    case Manufacturer::kMfrS: return dram::RowMappingScheme::kDirect;
  }
  throw PanicError("unknown manufacturer");
}

const CatalogRow& FindRow(std::string_view name) {
  for (const CatalogRow& row : kCatalog) {
    if (name == row.name) {
      return row;
    }
  }
  throw FatalError("unknown device name: " + std::string(name));
}

}  // namespace

const std::vector<std::string>& AllDeviceNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const CatalogRow& row : kCatalog) {
      out.emplace_back(row.name);
    }
    return out;
  }();
  return names;
}

const std::vector<std::string>& Ddr4ModuleNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const CatalogRow& row : kCatalog) {
      if (row.standard == dram::Standard::kDdr4) {
        out.emplace_back(row.name);
      }
    }
    return out;
  }();
  return names;
}

const std::vector<std::string>& Hbm2ChipNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const CatalogRow& row : kCatalog) {
      if (row.standard == dram::Standard::kHbm2) {
        out.emplace_back(row.name);
      }
    }
    return out;
  }();
  return names;
}

TestedChip MakeTestedChip(std::string_view name, std::uint64_t base_seed) {
  const CatalogRow& row = FindRow(name);

  TestedChip chip;
  chip.spec.name = row.name;
  chip.spec.mfr = row.mfr;
  chip.spec.standard = row.standard;
  chip.spec.density_gbit = row.density_gbit;
  chip.spec.die_rev = row.die_rev;
  chip.spec.dq_bits = row.dq_bits;
  chip.spec.chips_per_rank = row.chips;
  chip.spec.date_code = row.date_code;

  chip.device.name = row.name;
  chip.device.seed = HashLabel(base_seed, name);
  chip.device.row_mapping = SchemeFor(row.mfr, row.standard);
  if (row.standard == dram::Standard::kHbm2) {
    chip.device.org = dram::MakeHbm2Org();
    chip.device.timing = dram::MakeHbm2();
    chip.device.has_trr = false;
    chip.device.has_on_die_ecc = true;  // disabled via MR for testing
  } else {
    chip.device.org =
        dram::MakeDdr4Org(row.density_gbit, row.dq_bits, row.chips);
    chip.device.timing = dram::MakeDdr4_3200();
    chip.device.has_trr = true;
    chip.device.has_on_die_ecc = false;
  }
  // Layout fractions vary per device; M0 is calibrated to the paper's
  // measured 20-of-50 anti-cell rows (§5.6).
  chip.device.anti_cell_fraction =
      (name == "M0") ? 0.4
                     : 0.25 + 0.3 * (static_cast<double>(HashLabel(
                                         7, name) % 1000) / 1000.0);

  FaultProfile& fault = chip.fault;
  // DDR4 medians carry an extra factor: the deep row selection (the
  // lowest-RDT rows of three 1024-row regions) and the temporal dips
  // place the campaign's minimum observed RDT well below the per-cell
  // median, calibrated against Table 7's minima.
  fault.median_rdt = row.median_rdt *
                     (row.standard == dram::Standard::kDdr4 ? 1.6 : 1.0);
  fault.k_press = row.k_press;
  fault.t_ras = chip.device.timing.tRAS;
  fault.fast_trap_mean = 3.0 + 0.5 * row.severity;
  fault.fast_weight_med = 0.003 + 0.0015 * row.severity;
  fault.measurement_noise_sigma = 0.012 + 0.005 * row.severity;
  fault.rare_weight_med = row.rare_weight;
  fault.bimodal_trap_prob = (name == "Chip1") ? 0.9 : 0.0;
  chip.device.retention = dram::RetentionParams::MakeDefault();
  return chip;
}

std::unique_ptr<dram::Device> BuildDevice(std::string_view name,
                                          std::uint64_t base_seed) {
  TestedChip chip = MakeTestedChip(name, base_seed);
  auto engine = std::make_unique<TrapFaultEngine>(
      chip.fault, chip.device.seed, chip.device.org);
  return std::make_unique<dram::Device>(chip.device, std::move(engine));
}

TestedChip MakeFutureDdr5Chip(std::uint64_t base_seed) {
  TestedChip chip;
  chip.spec.name = "DDR5-FUT";
  chip.spec.mfr = Manufacturer::kMfrM;
  chip.spec.standard = dram::Standard::kDdr5;
  chip.spec.density_gbit = 16;
  chip.spec.die_rev = 'Z';
  chip.spec.dq_bits = 8;
  chip.spec.chips_per_rank = 8;
  chip.spec.date_code = "N/A";

  chip.device.name = chip.spec.name;
  chip.device.seed = HashLabel(base_seed, chip.spec.name);
  chip.device.org = dram::MakeDdr5Org();
  chip.device.timing = dram::MakeDdr5_8800();
  chip.device.row_mapping = dram::RowMappingScheme::kPairSwap16;
  chip.device.has_trr = false;   // PRAC replaces sampling TRR
  chip.device.has_prac = true;
  chip.device.anti_cell_fraction = 0.5;

  FaultProfile& fault = chip.fault;
  // The "near-future RDT of 1024" regime of §6.3, with worst-in-class
  // VRD severity per Finding 11 (most advanced node).
  fault.median_rdt = 2500.0;
  fault.k_press = 0.8;
  fault.t_ras = chip.device.timing.tRAS;
  fault.fast_trap_mean = 5.0;
  fault.fast_weight_med = 0.012;
  fault.measurement_noise_sigma = 0.030;
  fault.rare_weight_med = 0.8;
  return chip;
}

std::unique_ptr<dram::Device> BuildFutureDdr5Device(
    std::uint64_t base_seed) {
  TestedChip chip = MakeFutureDdr5Chip(base_seed);
  auto engine = std::make_unique<TrapFaultEngine>(
      chip.fault, chip.device.seed, chip.device.org);
  return std::make_unique<dram::Device>(chip.device, std::move(engine));
}

}  // namespace vrddram::vrd
