#include "vrd/trap_engine.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/arena.h"
#include "common/error.h"
#include "common/simd.h"
#include "dram/cell_encoding.h"

namespace vrddram::vrd {

PoissonSampler::PoissonSampler(double lambda) : lambda_(lambda) {
  VRD_FATAL_IF(lambda < 0.0, "Poisson rate must be non-negative");
  // Beyond ~50 the exp(-lambda) limit underflows towards 0 and the
  // product loop degenerates into thousands of iterations per sample.
  VRD_FATAL_IF(lambda > 50.0,
               "Poisson rate " + std::to_string(lambda) +
                   " too large for Knuth sampling; check the fault "
                   "profile's weak_cells_mean and fast_trap_mean");
  limit_ = std::exp(-lambda);
}

std::size_t PoissonSampler::operator()(Rng& rng) const {
  // Knuth's product-of-uniforms method; fine for the small lambdas the
  // fault model uses (< ~10). The loop is byte-for-byte the historical
  // SamplePoisson loop, so draw sequences are unchanged.
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit_);
  return k - 1;
}

std::size_t SamplePoisson(Rng& rng, double lambda) {
  return PoissonSampler(lambda)(rng);
}

TrapFaultEngine::TrapFaultEngine(FaultProfile profile,
                                 std::uint64_t device_seed,
                                 dram::Organization org)
    : profile_(profile),
      device_seed_(device_seed),
      org_(org),
      weak_cell_sampler_(profile_.weak_cells_mean),
      fast_trap_sampler_(profile_.fast_trap_mean) {}

TrapFaultEngine::RowState TrapFaultEngine::BuildRowState(
    dram::BankId bank, dram::PhysicalRow row, Tick now) const {
  // Manufacturing randomness: fixed per (device, bank, row).
  Rng rng(MixSeed(device_seed_, bank, row.value, 0xfab5));
  RowState state;
  state.last_restore = now;
  state.dynamics_rng =
      Rng(MixSeed(device_seed_, bank, row.value, 0xd114));

  // Row-level process variation: one factor shared by all the row's
  // weak cells, so their thresholds cluster.
  const double row_scale = rng.NextLognormal(0.0, profile_.sigma_rdt);
  const std::size_t cell_count = weak_cell_sampler_(rng);
  state.cells.reserve(cell_count);
  // Heuristic capacity: most cells carry one or two traps, so two per
  // cell absorbs nearly every row; growth beyond it stays inside this
  // construction path.
  state.traps.reserve(cell_count * 2);
  const std::uint64_t row_bits =
      static_cast<std::uint64_t>(org_.row_bytes) * 8;

  auto log_uniform = [&rng](double lo, double hi) {
    return lo * std::exp(rng.NextDouble() * std::log(hi / lo));
  };

  for (std::size_t i = 0; i < cell_count; ++i) {
    WeakCell cell;
    cell.bit_index = static_cast<std::uint32_t>(rng.NextBelow(row_bits));
    cell.threshold = profile_.median_rdt * row_scale *
                     rng.NextLognormal(0.0, profile_.sigma_rdt_cell);
    // Products are computed into named temporaries before the adds
    // throughout this file: `a + b * c` written inline is
    // FMA-contractable, and one fused rounding on the scalar path
    // would break scalar-vs-AVX2 bit-equality (DESIGN.md §6).
    const double alpha_span = 0.4 * rng.NextDouble();
    cell.alpha_above = 0.3 + alpha_span;
    cell.temp_beta =
        rng.NextGaussian(profile_.temp_beta_mean, profile_.temp_beta_sigma);
    // Per-cell noise magnitude: a minority of cells are quiet enough
    // that quantization hides their variation under some parameter
    // combinations (the paper's 2.9% of rows, Finding 6).
    cell.noise_sigma =
        profile_.measurement_noise_sigma *
        std::min(1.5, rng.NextLognormal(0.0, 1.0));
    for (double& j : cell.aggr_jitter) {
      j = rng.NextLognormal(0.0, profile_.pattern_jitter_sigma);
    }
    for (double& j : cell.victim_jitter) {
      j = rng.NextLognormal(0.0, profile_.pattern_jitter_sigma);
    }

    cell.trap_begin = static_cast<std::uint32_t>(state.traps.size());
    const std::size_t fast_traps = fast_trap_sampler_(rng);
    for (std::size_t t = 0; t < fast_traps; ++t) {
      Trap trap;
      const double occ_span = 0.70 * rng.NextDouble();
      trap.occupancy = 0.15 + occ_span;
      trap.rate_hz =
          log_uniform(profile_.fast_rate_lo_hz, profile_.fast_rate_hi_hz);
      trap.weight = profile_.fast_weight_med * rng.NextLognormal(0.0, 0.25);
      trap.occupied = rng.NextBernoulli(trap.occupancy);
      trap.last_sample = now;
      state.traps.push_back(trap);
    }
    if (rng.NextBernoulli(profile_.rare_trap_prob)) {
      Trap trap;
      const double exp_span =
          (profile_.rare_occupancy_exp_hi - profile_.rare_occupancy_exp_lo) *
          rng.NextDouble();
      const double exponent = profile_.rare_occupancy_exp_lo + exp_span;
      trap.occupancy = std::pow(10.0, -exponent);
      trap.rate_hz =
          log_uniform(profile_.rare_rate_lo_hz, profile_.rare_rate_hi_hz);
      trap.weight = profile_.rare_weight_med * rng.NextLognormal(0.0, 0.4);
      trap.occupied = rng.NextBernoulli(trap.occupancy);
      trap.last_sample = now;
      state.traps.push_back(trap);
    }
    if (rng.NextBernoulli(profile_.heavy_trap_prob)) {
      Trap trap;
      const double occ_span = 0.40 * rng.NextDouble();
      trap.occupancy = 0.10 + occ_span;
      trap.rate_hz = log_uniform(10.0, 100.0);
      trap.weight = profile_.heavy_weight_med * rng.NextLognormal(0.0, 0.4);
      trap.occupied = rng.NextBernoulli(trap.occupancy);
      trap.last_sample = now;
      state.traps.push_back(trap);
    }
    if (rng.NextBernoulli(profile_.bimodal_trap_prob)) {
      Trap trap;
      const double occ_span = 0.30 * rng.NextDouble();
      trap.occupancy = 0.25 + occ_span;
      // Fast enough to decorrelate between measurements: the paper's
      // bimodal HBM chip still shows a white-noise-like ACF.
      trap.rate_hz = log_uniform(30.0, 300.0);
      const double weight_jitter = 0.4 * rng.NextDouble();
      trap.weight = profile_.bimodal_weight * (0.8 + weight_jitter);
      trap.occupied = rng.NextBernoulli(trap.occupancy);
      trap.last_sample = now;
      state.traps.push_back(trap);
    }
    cell.trap_count =
        static_cast<std::uint32_t>(state.traps.size()) - cell.trap_begin;
    state.cells.push_back(std::move(cell));
  }
  return state;
}

TrapFaultEngine::RowState& TrapFaultEngine::MutableRowState(
    dram::BankId bank, dram::PhysicalRow row, Tick now) {
  const std::uint64_t key = Key(bank, row);
  auto it = states_.find(key);
  if (it == states_.end()) {
    it = states_.emplace(key, BuildRowState(bank, row, now)).first;
  }
  return it->second;
}

const TrapFaultEngine::RowState& TrapFaultEngine::RowStateOf(
    dram::BankId bank, dram::PhysicalRow row) {
  return MutableRowState(bank, row, 0);
}

void TrapFaultEngine::AccrueDose(
    dram::BankId bank, dram::PhysicalRow victim, bool aggressor_is_above,
    double strength, std::uint64_t count, double press,
    std::span<const std::uint8_t> aggressor_data, Tick now) {
  RowState& state = MutableRowState(bank, victim, now);
  const double base = static_cast<double>(count) * press * strength;
  for (WeakCell& cell : state.cells) {
    const double side =
        aggressor_is_above ? cell.alpha_above : (1.0 - cell.alpha_above);
    // Worst-case coupling if the aggressor content is unknown.
    bool aggr_bit_known = false;
    bool aggr_bit = false;
    const std::uint32_t byte = cell.bit_index / 8;
    if (byte < aggressor_data.size()) {
      aggr_bit_known = true;
      aggr_bit = (aggressor_data[byte] >> (cell.bit_index % 8)) & 1;
    }
    const double dose = base * side;
    if (aggr_bit_known) {
      cell.dose[aggr_bit ? 1 : 0] += dose;
    } else {
      // Split pessimistically: count it as opposite-bit coupling for
      // either victim value by crediting both slots.
      cell.dose[0] += dose;
      cell.dose[1] += dose;
    }
  }
}

void TrapFaultEngine::OnActivations(
    dram::BankId bank, dram::PhysicalRow aggressor, std::uint64_t count,
    Tick t_on, Tick now, Celsius temperature,
    std::span<const std::uint8_t> aggressor_data) {
  (void)temperature;  // applied per-cell at evaluation time
  if (count == 0) {
    return;
  }
  const double press = profile_.PressFactor(t_on);
  const auto max_row = org_.LargestRowAddress();
  const std::int64_t base = aggressor.value;

  struct Neighbour {
    std::int64_t offset;
    double strength;
  };
  const Neighbour neighbours[] = {
      {-1, 1.0},
      {+1, 1.0},
      {-2, profile_.d2_coupling},
      {+2, profile_.d2_coupling},
  };
  for (const Neighbour& nb : neighbours) {
    const std::int64_t target = base + nb.offset;
    if (target < 0 || target > max_row) {
      continue;
    }
    // The aggressor sits above the victim when its address is larger.
    const bool above = nb.offset < 0;
    AccrueDose(bank, dram::PhysicalRow{static_cast<dram::RowAddr>(target)},
               above, nb.strength, count, press, aggressor_data, now);
  }
}

void TrapFaultEngine::OnRestore(dram::BankId bank, dram::PhysicalRow row,
                                Tick now) {
  const auto it = states_.find(Key(bank, row));
  if (it == states_.end()) {
    // Restoring a row we have never tracked: nothing accumulated.
    return;
  }
  for (WeakCell& cell : it->second.cells) {
    cell.dose[0] = 0.0;
    cell.dose[1] = 0.0;
  }
  it->second.last_restore = now;
}

double TrapFaultEngine::SampleTrapBoost(RowState& state, WeakCell& cell,
                                        Tick now, Celsius temperature) {
  const double q10_scale =
      std::pow(profile_.trap_rate_q10, (temperature - 50.0) / 10.0);
  double boost = 0.0;
  for (Trap& trap : state.CellTraps(cell)) {
    const double dt =
        units::ToSeconds(std::max<Tick>(0, now - trap.last_sample));
    const double rate = trap.rate_hz * q10_scale;
    const double decay = std::exp(-rate * dt);
    const double prev = trap.occupied ? 1.0 : 0.0;
    const double relax = (prev - trap.occupancy) * decay;
    const double p_occupied = trap.occupancy + relax;
    trap.occupied = state.dynamics_rng.NextBernoulli(p_occupied);
    trap.last_sample = now;
    if (trap.occupied) {
      boost += trap.weight;
    }
  }
  return boost;
}

double TrapFaultEngine::FixedPerHammerDose(
    const WeakCell& cell, dram::PhysicalRow victim,
    std::uint8_t victim_byte, std::uint8_t aggressor_byte, double press,
    Celsius temperature,
    const dram::CellEncodingLayout& encoding) const {
  const std::uint8_t bit_in_byte = cell.bit_index % 8;
  const bool victim_bit = (victim_byte >> bit_in_byte) & 1;
  const bool aggr_bit = (aggressor_byte >> bit_in_byte) & 1;

  // Per-hammer dose: one activation of each aggressor (the paper's
  // hammer-count convention counts activations per aggressor, so one
  // "hammer" = both sides once: alpha_above + alpha_below = 1). The
  // factor association order below is the bit-identity reference for
  // every context builder.
  double per_hammer =
      press * cell.aggr_jitter[aggr_bit ? 1 : 0] *
      (aggr_bit != victim_bit ? 1.0 : profile_.same_bit_factor);
  per_hammer *= cell.victim_jitter[victim_bit ? 1 : 0];
  if (!encoding.IsCharged(victim, victim_bit)) {
    per_hammer *= profile_.discharged_factor;
  }
  per_hammer *= std::exp(cell.temp_beta * (temperature - 50.0));
  return per_hammer;
}

std::vector<TrapFaultEngine::CellFlipPoint>
TrapFaultEngine::PerCellFlipHammerCounts(
    dram::BankId bank, dram::PhysicalRow victim, std::uint8_t victim_byte,
    std::uint8_t aggressor_byte, Tick t_on, Celsius temperature,
    const dram::CellEncodingLayout& encoding, Tick now) {
  RowState& state = MutableRowState(bank, victim, now);
  const double press = profile_.PressFactor(t_on);

  std::vector<CellFlipPoint> points;
  points.reserve(state.cells.size());
  for (WeakCell& cell : state.cells) {
    const double boost = SampleTrapBoost(state, cell, now, temperature);
    double per_hammer = FixedPerHammerDose(
        cell, victim, victim_byte, aggressor_byte, press, temperature,
        encoding);
    per_hammer *= 1.0 + boost;
    // Analog measurement noise jitters the effective charge budget
    // symmetrically (normal in the hammer-count domain).
    const double noise = std::max(
        0.05, 1.0 + state.dynamics_rng.NextGaussian(
                        0.0, cell.noise_sigma));

    CellFlipPoint point;
    point.bit_index = cell.bit_index;
    point.hammer_count =
        (per_hammer > 0.0) ? cell.threshold * noise / per_hammer : -1.0;
    points.push_back(point);
  }
  return points;
}

double TrapFaultEngine::MinFlipHammerCount(
    dram::BankId bank, dram::PhysicalRow victim, std::uint8_t victim_byte,
    std::uint8_t aggressor_byte, Tick t_on, Celsius temperature,
    const dram::CellEncodingLayout& encoding, Tick now) {
  double min_hc = -1.0;
  for (const CellFlipPoint& point : PerCellFlipHammerCounts(
           bank, victim, victim_byte, aggressor_byte, t_on, temperature,
           encoding, now)) {
    if (point.hammer_count >= 0.0 &&
        (min_hc < 0.0 || point.hammer_count < min_hc)) {
      min_hc = point.hammer_count;
    }
  }
  return min_hc;
}

void TrapFaultEngine::Evaluate(const dram::VictimContext& ctx,
                               std::vector<dram::BitFlip>& out) {
  out.clear();
  const auto it = states_.find(Key(ctx.bank, ctx.row));
  if (it == states_.end()) {
    return;  // never disturbed
  }
  RowState& state = it->second;
  VRD_ASSERT(ctx.encoding != nullptr);

  for (WeakCell& cell : state.cells) {
    // Advance every trap of the cell to `now` (random telegraph noise:
    // the state at now is a Bernoulli draw conditioned on the previous
    // state and the elapsed time).
    const double trap_boost =
        SampleTrapBoost(state, cell, ctx.now, ctx.temperature);

    if (cell.dose[0] == 0.0 && cell.dose[1] == 0.0) {
      continue;
    }
    const std::uint32_t byte = cell.bit_index / 8;
    const std::uint8_t bit = cell.bit_index % 8;
    if (byte >= ctx.data.size()) {
      continue;
    }
    const bool victim_bit = (ctx.data[byte] >> bit) & 1;

    // Coupling by aggressor-bit slot: opposite bits couple fully.
    const std::size_t opp = victim_bit ? 0 : 1;
    const std::size_t same = victim_bit ? 1 : 0;
    const double opp_part = cell.dose[opp] * cell.aggr_jitter[opp];
    const double same_part = cell.dose[same] * cell.aggr_jitter[same] *
                             profile_.same_bit_factor;
    double exposure = opp_part + same_part;
    exposure *= cell.victim_jitter[victim_bit ? 1 : 0];
    if (!ctx.encoding->IsCharged(ctx.row, victim_bit)) {
      exposure *= profile_.discharged_factor;
    }
    exposure *= std::exp(cell.temp_beta * (ctx.temperature - 50.0));
    exposure *= 1.0 + trap_boost;
    const double noise = std::max(
        0.05, 1.0 + state.dynamics_rng.NextGaussian(
                        0.0, cell.noise_sigma));

    if (exposure >= cell.threshold * noise) {
      // Flips are rare events; the caller owns the accumulator.
      // vrdlint: allow(kernel-allocation)
      out.push_back(dram::BitFlip{byte, bit});
    }
  }
}

const double* MeasureContext::DecayFor(Tick dt) {
  for (DecayEntry& entry : memo_) {
    if (entry.dt == dt) {
      return entry.decay.data();
    }
  }
  // Miss: compute exp(-rate*dt) for every trap of the row, exactly as
  // the per-call path would. The analytic sweep revisits a bounded set
  // of durations, so the memo saturates after a handful of entries;
  // round-robin eviction bounds memory without affecting values.
  constexpr std::size_t kMemoCapacity = 16;
  DecayEntry* slot = nullptr;
  for (DecayEntry& entry : memo_) {
    if (entry.dt < 0) {  // invalidated by a context rebuild
      slot = &entry;
      break;
    }
  }
  if (slot == nullptr) {
    if (memo_.size() < kMemoCapacity) {
      // vrdlint: allow(kernel-allocation) -- memo growth, not steady state
      memo_.emplace_back();
      slot = &memo_.back();
    } else {
      slot = &memo_[memo_next_evict_];
      memo_next_evict_ = (memo_next_evict_ + 1) % kMemoCapacity;
    }
  }
  slot->dt = dt;
  // First fill of a memo slot; the sweep's bounded duration set makes
  // this settle after a handful of entries.
  // vrdlint: allow(kernel-allocation)
  slot->decay.resize(rate_scaled_.size());
  const double seconds = units::ToSeconds(dt);
  for (std::size_t i = 0; i < rate_scaled_.size(); ++i) {
    slot->decay[i] = std::exp(-rate_scaled_[i] * seconds);
  }
  return slot->decay.data();
}

MeasureContext TrapFaultEngine::MakeMeasureContext(
    dram::BankId bank, dram::PhysicalRow victim, std::uint8_t victim_byte,
    std::uint8_t aggressor_byte, Tick t_on, Celsius temperature,
    const dram::CellEncodingLayout& encoding, Tick now) {
  MeasureContext ctx;
  MakeMeasureContext(bank, victim, victim_byte, aggressor_byte, t_on,
                     temperature, encoding, now, ctx);
  return ctx;
}

void TrapFaultEngine::MakeMeasureContext(
    dram::BankId bank, dram::PhysicalRow victim, std::uint8_t victim_byte,
    std::uint8_t aggressor_byte, Tick t_on, Celsius temperature,
    const dram::CellEncodingLayout& encoding, Tick now,
    MeasureContext& ctx) {
  ctx.state_ = &MutableRowState(bank, victim, now);
  const RowState& state = *ctx.state_;
  const double press = profile_.PressFactor(t_on);
  const double q10_scale =
      std::pow(profile_.trap_rate_q10, (temperature - 50.0) / 10.0);

  // Reuse: drop contents but keep every vector's capacity, and mark
  // the memo lanes stale in place (their inner buffers are retained),
  // so rebuilding a hoisted context allocates nothing in steady state.
  ctx.cells_.clear();
  ctx.rate_scaled_.clear();
  for (MeasureContext::DecayEntry& entry : ctx.memo_) {
    entry.dt = -1;
  }
  ctx.memo_next_evict_ = 0;

  ctx.cells_.reserve(state.cells.size());
  for (const WeakCell& cell : state.cells) {
    MeasureContext::CellPre pre;
    pre.bit_index = cell.bit_index;
    pre.trap_begin = cell.trap_begin;
    pre.trap_count = cell.trap_count;
    // The fixed part of the per-hammer dose; the trailing 1+boost
    // factor stays per-sample.
    pre.per_hammer_fixed = FixedPerHammerDose(
        cell, victim, victim_byte, aggressor_byte, press, temperature,
        encoding);
    pre.threshold = cell.threshold;
    pre.noise_sigma = cell.noise_sigma;
    ctx.cells_.push_back(pre);
  }

  ctx.rate_scaled_.reserve(state.traps.size());
  for (const Trap& trap : state.traps) {
    ctx.rate_scaled_.push_back(trap.rate_hz * q10_scale);
  }
}

template <typename Sink>
void TrapFaultEngine::ForEachFlipPoint(MeasureContext& ctx, Tick now,
                                       Sink&& sink) {
  RowState& state = *ctx.state_;
  Trap* const traps = state.traps.data();
  Rng& rng = state.dynamics_rng;
  // Every sampling path advances all traps of a row together, so the
  // row shares one sampling instant and one decay factor per trap; a
  // stale trap (impossible today) falls back to a direct exp.
  const Tick base = state.traps.empty() ? now : traps[0].last_sample;
  const double* const decay =
      ctx.DecayFor(std::max<Tick>(0, now - base));

  for (const MeasureContext::CellPre& cell : ctx.cells_) {
    double boost = 0.0;
    const std::uint32_t end = cell.trap_begin + cell.trap_count;
    for (std::uint32_t i = cell.trap_begin; i < end; ++i) {
      Trap& trap = traps[i];
      double d = decay[i];
      if (trap.last_sample != base) [[unlikely]] {
        const double dt =
            units::ToSeconds(std::max<Tick>(0, now - trap.last_sample));
        d = std::exp(-ctx.rate_scaled_[i] * dt);
      }
      const double prev = static_cast<double>(trap.occupied);
      const double relax = (prev - trap.occupancy) * d;
      const double p_occupied = trap.occupancy + relax;
      const bool occupied = rng.NextBernoulli(p_occupied);
      trap.occupied = occupied;
      trap.last_sample = now;
      // weight*1.0 and +0.0 are exact, so this matches the per-call
      // path's `if (occupied) boost += weight` bit for bit without its
      // data-dependent branch.
      const double hit = trap.weight * static_cast<double>(occupied);
      boost += hit;
    }
    const double per_hammer = cell.per_hammer_fixed * (1.0 + boost);
    const double noise = std::max(
        0.05, 1.0 + rng.NextGaussian(0.0, cell.noise_sigma));
    sink(cell.bit_index, (per_hammer > 0.0)
                             ? cell.threshold * noise / per_hammer
                             : -1.0);
  }
}

double TrapFaultEngine::MinFlipHammerCount(MeasureContext& ctx, Tick now) {
  double min_hc = -1.0;
  ForEachFlipPoint(ctx, now, [&](std::uint32_t, double hc) {
    if (hc >= 0.0 && (min_hc < 0.0 || hc < min_hc)) {
      min_hc = hc;
    }
  });
  return min_hc;
}

void TrapFaultEngine::PerCellFlipHammerCounts(
    MeasureContext& ctx, Tick now, std::vector<CellFlipPoint>& out) {
  out.clear();
  out.reserve(ctx.cells_.size());
  ForEachFlipPoint(ctx, now, [&](std::uint32_t bit_index, double hc) {
    out.push_back(CellFlipPoint{bit_index, hc});
  });
}

const double* BatchMeasureContext::DecayFor(Tick dt) {
  for (DecayEntry& entry : memo_) {
    if (entry.dt == dt) {
      return entry.decay.data();
    }
  }
  DecayEntry* slot = nullptr;
  for (DecayEntry& entry : memo_) {
    if (entry.dt < 0) {  // unused lane (all lanes pre-allocated)
      slot = &entry;
      break;
    }
  }
  if (slot == nullptr) {
    slot = &memo_[memo_next_evict_];
    memo_next_evict_ = (memo_next_evict_ + 1) % kMemoCapacity;
  }
  slot->dt = dt;
  // Bank-wide argument fill first: rate * (-seconds) is bit-identical
  // to the scalar context's -rate * seconds (IEEE sign manipulation is
  // exact), and the elementwise multiply vectorizes. The exp itself
  // stays scalar by contract: a vectorized exp approximation would
  // differ from the scalar reference path in ulps, so the
  // transcendental is the one part of the batch kernel that must not
  // be vectorized (common/simd.h documents the boundary).
  const double seconds = units::ToSeconds(dt);
  const std::size_t n = soa_.rate_scaled.size();
  simd::ScaleTo(slot->decay.data(), soa_.rate_scaled.data(), -seconds, n);
  for (std::size_t i = 0; i < n; ++i) {
    slot->decay[i] = std::exp(slot->decay[i]);
  }
  return slot->decay.data();
}

BatchMeasureContext TrapFaultEngine::MakeBatchMeasureContext(
    dram::BankId bank, std::span<const dram::PhysicalRow> rows,
    std::uint8_t victim_byte, std::uint8_t aggressor_byte, Tick t_on,
    Celsius temperature, const dram::CellEncodingLayout& encoding,
    Tick now, MonotonicArena& arena) {
  using Batch = BatchMeasureContext;
  Batch ctx;
  const double press = profile_.PressFactor(t_on);
  const double q10_scale =
      std::pow(profile_.trap_rate_q10, (temperature - 50.0) / 10.0);

  // Pass 1: materialize every row state and lay out the bank-wide
  // (begin, count) addressing.
  ctx.rows_ = arena.AllocSpan<Batch::RowRef>(rows.size());
  std::size_t cell_total = 0;
  std::size_t trap_total = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    RowState& state = MutableRowState(bank, rows[r], now);
    Batch::RowRef& ref = ctx.rows_[r];
    ref.state = &state;
    ref.cell_begin = static_cast<std::uint32_t>(cell_total);
    ref.cell_count = static_cast<std::uint32_t>(state.cells.size());
    ref.trap_begin = static_cast<std::uint32_t>(trap_total);
    ref.trap_count = static_cast<std::uint32_t>(state.traps.size());
    cell_total += state.cells.size();
    trap_total += state.traps.size();
  }

  // Pass 2: carve the SoA, the scratch lanes, and every decay memo
  // lane out of the arena up front — the kernel itself never
  // allocates, not even from the arena.
  BankTrapSoA& soa = ctx.soa_;
  soa.rate_scaled = arena.AllocSpan<double>(trap_total);
  soa.occupancy = arena.AllocSpan<double>(trap_total);
  soa.weight = arena.AllocSpan<double>(trap_total);
  soa.per_hammer_fixed = arena.AllocSpan<double>(cell_total);
  soa.threshold = arena.AllocSpan<double>(cell_total);
  soa.noise_sigma = arena.AllocSpan<double>(cell_total);
  soa.bit_index = arena.AllocSpan<std::uint32_t>(cell_total);
  soa.trap_begin = arena.AllocSpan<std::uint32_t>(cell_total);
  soa.trap_count = arena.AllocSpan<std::uint32_t>(cell_total);
  ctx.hot_cells_ = arena.AllocSpan<Batch::CellHot>(cell_total);
  for (Batch::DecayEntry& entry : ctx.memo_) {
    entry.dt = -1;
    entry.decay = arena.AllocSpan<double>(trap_total);
  }

  // Pass 3: gather the per-series constants.
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Batch::RowRef& ref = ctx.rows_[r];
    const RowState& state = *ref.state;
    for (std::uint32_t i = 0; i < ref.trap_count; ++i) {
      const Trap& trap = state.traps[i];
      const std::size_t g = ref.trap_begin + i;
      soa.rate_scaled[g] = trap.rate_hz;  // Q10-scaled below
      soa.occupancy[g] = trap.occupancy;
      soa.weight[g] = trap.weight;
    }
    for (std::uint32_t c = 0; c < ref.cell_count; ++c) {
      const WeakCell& cell = state.cells[c];
      const std::size_t g = ref.cell_begin + c;
      soa.per_hammer_fixed[g] = FixedPerHammerDose(
          cell, rows[r], victim_byte, aggressor_byte, press, temperature,
          encoding);
      soa.threshold[g] = cell.threshold;
      soa.noise_sigma[g] = cell.noise_sigma;
      soa.bit_index[g] = cell.bit_index;
      soa.trap_begin[g] = ref.trap_begin + cell.trap_begin;
      soa.trap_count[g] = cell.trap_count;
    }
  }
  // One bank-wide elementwise multiply turns the gathered rate_hz
  // lanes into Q10-scaled rates: the same trap.rate_hz * q10_scale
  // product as the scalar context, so every value is bit-identical.
  simd::ScaleTo(soa.rate_scaled.data(), soa.rate_scaled.data(),
                q10_scale, trap_total);
  // Packed mirror of the kernel-hot per-cell constants (see CellHot).
  for (std::size_t c = 0; c < cell_total; ++c) {
    ctx.hot_cells_[c] = {soa.per_hammer_fixed[c], soa.threshold[c],
                         soa.noise_sigma[c],      soa.bit_index[c],
                         soa.trap_begin[c],       soa.trap_count[c]};
  }
  return ctx;
}

template <typename Sink>
void TrapFaultEngine::ForEachBatchFlipPoint(BatchMeasureContext& ctx,
                                            Tick now, Sink&& sink) {
  using Batch = BatchMeasureContext;
  const BankTrapSoA& soa = ctx.soa_;

  // Bank-wide sampling instant: every sampling path advances all traps
  // of a row together, so one first-trap probe per row establishes
  // whether the whole batch shares a single decay factor per trap (the
  // lockstep steady state). A row measured through another path since
  // the last batch call surfaces here and degrades to the per-trap
  // exp fallback in the main loop below.
  bool uniform = true;
  bool base_set = false;
  Tick base = 0;
  for (const Batch::RowRef& row : ctx.rows_) {
    if (row.trap_count == 0) {
      continue;
    }
    const Tick first = row.state->traps[0].last_sample;
    if (!base_set) {
      base = first;
      base_set = true;
    } else if (first != base) {
      uniform = false;
      break;
    }
  }
  const bool have_lane = base_set && uniform;
  // One memoized bank-wide decay lane (SIMD-filled arguments, scalar
  // exp — see DecayFor) shared by every trap sampled at `base`.
  // In the mixed-history case the lane pointer targets valid (but
  // unused) memory and `match` is a tick no trap can carry, so the
  // single per-trap comparison below routes every trap to the exp
  // fallback; in the lockstep case the unconditional lane load issues
  // without a control dependency, exactly like the scalar kernel.
  const double* const decay =
      have_lane ? ctx.DecayFor(std::max<Tick>(0, now - base))
                : soa.rate_scaled.data();
  const Tick match = have_lane ? base : Tick{-1};

  // Single fused pass, sequential per row: each row owns its
  // dynamics_rng, and within a row the draw order is exactly the
  // scalar kernel's — per cell, its traps' Bernoullis then the noise
  // Gaussian — so batched and scalar sequences are interchangeable.
  // The blend below is the same expression the scalar context
  // evaluates, so results are bit-identical.
  for (std::size_t r = 0; r < ctx.rows_.size(); ++r) {
    const Batch::RowRef& row = ctx.rows_[r];
    Rng& rng = row.state->dynamics_rng;
    Trap* const traps = row.state->traps.data();
    const std::uint32_t cell_end = row.cell_begin + row.cell_count;
    for (std::uint32_t c = row.cell_begin; c < cell_end; ++c) {
      const Batch::CellHot& cell = ctx.hot_cells_[c];
      double boost = 0.0;
      const std::uint32_t trap_end = cell.trap_begin + cell.trap_count;
      Trap* trap = traps + (cell.trap_begin - row.trap_begin);
      for (std::uint32_t i = cell.trap_begin; i < trap_end;
           ++i, ++trap) {
        double d = decay[i];
        if (trap->last_sample != match) [[unlikely]] {
          // Mixed history: same expression as the memo fill, so the
          // value still matches the scalar path bit for bit.
          const double dt = units::ToSeconds(
              std::max<Tick>(0, now - trap->last_sample));
          d = std::exp(-soa.rate_scaled[i] * dt);
        }
        const double prev = static_cast<double>(trap->occupied);
        const double relax = (prev - trap->occupancy) * d;
        const double p = trap->occupancy + relax;
        const bool occupied = rng.NextBernoulli(p);
        trap->occupied = occupied;
        trap->last_sample = now;
        const double hit = trap->weight * static_cast<double>(occupied);
        boost += hit;
      }
      const double per_hammer = cell.per_hammer_fixed * (1.0 + boost);
      const double noise = std::max(
          0.05, 1.0 + rng.NextGaussian(0.0, cell.noise_sigma));
      sink(r, cell.bit_index,
           (per_hammer > 0.0) ? cell.threshold * noise / per_hammer
                              : -1.0);
    }
  }
}

void TrapFaultEngine::BatchMinFlipHammerCounts(
    BatchMeasureContext& ctx, Tick now, std::span<double> out_min_hc) {
  VRD_ASSERT(out_min_hc.size() == ctx.row_count());
  for (double& v : out_min_hc) {
    v = -1.0;
  }
  ForEachBatchFlipPoint(
      ctx, now, [&](std::size_t r, std::uint32_t, double hc) {
        if (hc >= 0.0 && (out_min_hc[r] < 0.0 || hc < out_min_hc[r])) {
          out_min_hc[r] = hc;
        }
      });
}

void TrapFaultEngine::BatchPerCellFlipHammerCounts(
    BatchMeasureContext& ctx, Tick now, std::vector<CellFlipPoint>& out) {
  out.clear();
  out.reserve(ctx.total_cell_count());
  ForEachBatchFlipPoint(
      ctx, now, [&](std::size_t, std::uint32_t bit_index, double hc) {
        out.push_back(CellFlipPoint{bit_index, hc});
      });
}

}  // namespace vrddram::vrd
