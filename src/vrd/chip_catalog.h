/**
 * @file
 * The population of devices under test: the 21 DDR4 modules and 4 HBM2
 * chips of the paper's Table 1. Each catalog entry carries the device
 * geometry/timing and a fault profile calibrated so the population
 * reproduces the paper's per-module statistics (Table 7): minimum
 * observed RDT at tAggOn = tRAS and tREFI, and the expected normalized
 * minimum RDT bands per manufacturer / density / die revision.
 */
#ifndef VRDDRAM_VRD_CHIP_CATALOG_H
#define VRDDRAM_VRD_CHIP_CATALOG_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dram/device.h"
#include "vrd/fault_profile.h"
#include "vrd/trap_engine.h"

namespace vrddram::vrd {

enum class Manufacturer : std::uint8_t {
  kMfrH,  ///< SK Hynix
  kMfrM,  ///< Micron
  kMfrS,  ///< Samsung
};

std::string ToString(Manufacturer mfr);

/// Static facts about one tested device (Table 1 row).
struct TestedChipSpec {
  std::string name;        ///< "H0".."H6", "M0".."M6", "S0".."S6",
                           ///< "Chip0".."Chip3"
  Manufacturer mfr = Manufacturer::kMfrH;
  dram::Standard standard = dram::Standard::kDdr4;
  std::uint32_t density_gbit = 8;
  char die_rev = '?';      ///< '?' when unknown (N/A in Table 1)
  std::uint32_t dq_bits = 8;
  std::uint32_t chips_per_rank = 8;
  std::string date_code;   ///< "ww-yy" or "N/A"

  /// Ordinal used by the density/die-revision analysis (Fig. 9):
  /// larger means denser or later revision.
  int TechnologyOrdinal() const;
};

/// Everything needed to instantiate one device under test.
struct TestedChip {
  TestedChipSpec spec;
  dram::DeviceConfig device;
  FaultProfile fault;
};

/// All 25 device names, DDR4 modules first.
const std::vector<std::string>& AllDeviceNames();
/// The 21 DDR4 module names.
const std::vector<std::string>& Ddr4ModuleNames();
/// The 4 HBM2 chip names.
const std::vector<std::string>& Hbm2ChipNames();

/// Catalog lookup; throws FatalError for unknown names.
TestedChip MakeTestedChip(std::string_view name,
                          std::uint64_t base_seed = 2025);

/// Instantiate the device with its trap fault engine attached.
std::unique_ptr<dram::Device> BuildDevice(std::string_view name,
                                          std::uint64_t base_seed = 2025);

/**
 * A hypothetical near-future DDR5 device (not part of the paper's
 * Table 1 population): PRAC-capable per JESD79-5C, with a weak-cell
 * population around the "near-future RDT of 1024" regime that §6.3
 * evaluates. Use for PRAC / mitigation experiments at the device
 * level.
 */
TestedChip MakeFutureDdr5Chip(std::uint64_t base_seed = 2025);
std::unique_ptr<dram::Device> BuildFutureDdr5Device(
    std::uint64_t base_seed = 2025);

}  // namespace vrddram::vrd

#endif  // VRDDRAM_VRD_CHIP_CATALOG_H
