/**
 * @file
 * Parameters of the trap-based read-disturbance fault model (DESIGN.md
 * §4). One FaultProfile describes the disturbance physics of one chip
 * "individual": per-cell threshold statistics (spatial variation), the
 * charge-trap population that creates the *temporal* variation (VRD),
 * and the sensitivities to data pattern, aggressor-on time (RowPress),
 * and temperature that §5.3-§5.5 characterize.
 */
#ifndef VRDDRAM_VRD_FAULT_PROFILE_H
#define VRDDRAM_VRD_FAULT_PROFILE_H

#include <cstdint>

#include "common/units.h"

namespace vrddram::vrd {

struct FaultProfile {
  // -- spatial variation (per-cell intrinsic thresholds) -------------------
  /// Median hammer count needed to flip a weak cell under nominal
  /// conditions (double-sided, tAggOn = tRAS, opposite-bit aggressors,
  /// no occupied traps).
  double median_rdt = 12000.0;
  /// Lognormal sigma of the per-row threshold factor (row-level
  /// process variation shared by the row's cells).
  double sigma_rdt = 0.30;
  /// Lognormal sigma of per-cell thresholds within a row. Small values
  /// cluster a row's weak cells near its minimum, which is why several
  /// distinct cells can flip under a guard-banded hammer count
  /// (Fig. 16's up-to-5 unique bitflips per row).
  double sigma_rdt_cell = 0.10;
  /// Expected number of disturbance-prone (weak) cells per row.
  double weak_cells_mean = 5.0;
  /// Relative coupling of aggressors two rows away (blast radius).
  double d2_coupling = 0.02;

  // -- RowPress sensitivity -------------------------------------------------
  /// Strength of the aggressor-on-time amplification.
  double k_press = 1.0;
  /// Minimum tRAS of the device (press factor reference point).
  Tick t_ras = 32 * units::kNanosecond;

  // -- trap population (temporal variation) --------------------------------
  /// Expected number of fast traps per weak cell. Fast traps toggle
  /// between measurements and create the multi-state RDT histogram.
  double fast_trap_mean = 1.6;
  /// Median coupling weight added by one occupied fast trap.
  double fast_weight_med = 0.035;
  /// Fast trap transition-rate range (total rate, 1/s).
  double fast_rate_lo_hz = 50.0;
  double fast_rate_hi_hz = 2000.0;
  /// Per-cell probability of owning a *rare* trap: very low occupancy,
  /// large weight - the deep RDT minima that appear once in 1e4..1e5
  /// measurements (Fig. 1).
  double rare_trap_prob = 0.10;
  /// Median weight of a rare trap (large: occupied state slashes RDT).
  double rare_weight_med = 0.9;
  /// Rare-trap occupancy is 10^-u with u uniform in [lo, hi].
  double rare_occupancy_exp_lo = 3.3;
  double rare_occupancy_exp_hi = 5.0;
  /// Rare trap transition-rate range (1/s). Fast enough that a deep
  /// minimum lasts only a few measurements (the paper's minima appear
  /// as brief dips), slow enough to be visible at all.
  double rare_rate_lo_hz = 2.0;
  double rare_rate_hi_hz = 30.0;
  /// Per-cell probability of a *bimodal* trap: mid occupancy, slow,
  /// medium weight - produces the bimodal RDT histogram observed on
  /// HBM2 Chip1 (Finding 2).
  double bimodal_trap_prob = 0.0;
  double bimodal_weight = 0.18;
  /// Per-cell probability of a *heavy* trap: mid-low occupancy with a
  /// weight large enough to slash the RDT several-fold while occupied.
  /// A small population of such cells produces the worst-case rows of
  /// Fig. 7 (CV up to 0.52, max/min up to 3.5x).
  double heavy_trap_prob = 0.012;
  double heavy_weight_med = 1.0;

  // -- environmental sensitivities -----------------------------------------
  /// Per-cell temperature coefficient sigma: threshold scales as
  /// exp(beta * (T - 50)) with beta ~ N(temp_beta_mean, temp_beta_sigma);
  /// per-cell sign varies, as observed for RowHammer [166].
  double temp_beta_mean = 0.0;
  double temp_beta_sigma = 0.004;
  /// Trap rates speed up with temperature (per 10 degC factor).
  double trap_rate_q10 = 1.6;
  /// Lognormal sigma of the per-(cell, pattern) coupling jitter.
  double pattern_jitter_sigma = 0.12;
  /// Lognormal sigma of the per-measurement analog noise (supply and
  /// reference fluctuations, sense-amp offsets): the continuous
  /// component of VRD that gives RDT histograms their normal body.
  double measurement_noise_sigma = 0.015;
  /// Coupling factor for aggressor bits equal to the victim bit
  /// (opposite bits couple at 1.0).
  double same_bit_factor = 0.6;
  /// Coupling factor for victim cells whose capacitor is discharged
  /// under the written pattern (charged cells couple at 1.0).
  double discharged_factor = 0.3;

  /// RowPress amplification for a given aggressor-on time.
  double PressFactor(Tick t_on) const;
};

}  // namespace vrddram::vrd

#endif  // VRDDRAM_VRD_FAULT_PROFILE_H
