/**
 * @file
 * Monotonic bump allocator for shard- and series-scoped scratch
 * storage (DESIGN.md §10).
 *
 * Campaign shards and bank-wide measurement contexts need many small
 * same-lifetime arrays whose sizes are known only at construction time.
 * A MonotonicArena hands out aligned spans from large chunks with one
 * pointer bump per allocation and releases everything at once:
 * Reset() rewinds the arena without returning memory to the system, so
 * a shard that is reused (one arena per campaign shard, one Reset per
 * series or sweep) reaches an allocation-free steady state.
 *
 * The arena is deliberately restricted to trivially destructible
 * element types: Reset() never runs destructors, which is what makes
 * rewinding O(chunks). It is not thread-safe — every shard owns its
 * own arena, the same ownership discipline the per-shard RNG streams
 * follow.
 */
#ifndef VRDDRAM_COMMON_ARENA_H
#define VRDDRAM_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace vrddram {

class MonotonicArena {
 public:
  /// `chunk_bytes` is the granularity of growth; oversized allocations
  /// get a dedicated chunk of exactly their size.
  explicit MonotonicArena(std::size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  MonotonicArena(MonotonicArena&&) = default;
  MonotonicArena& operator=(MonotonicArena&&) = default;

  /**
   * Allocate a value-initialized span of `count` elements. Returns an
   * empty span for count == 0. The storage lives until Reset() or
   * destruction; spans handed out earlier must not be used after
   * either.
   */
  template <typename T>
  std::span<T> AllocSpan(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "MonotonicArena::Reset never runs destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned types are not supported");
    if (count == 0) {
      return {};
    }
    void* raw = AllocBytes(count * sizeof(T), alignof(T));
    T* data = static_cast<T*>(raw);
    std::uninitialized_value_construct_n(data, count);
    return {data, count};
  }

  /**
   * Rewind the arena: every previously returned span becomes invalid,
   * every chunk is retained for reuse. The allocation cursor restarts
   * at the first chunk, so a steady-state caller stops touching the
   * system allocator after its first pass.
   */
  void Reset() {
    for (Chunk& chunk : chunks_) {
      chunk.used = 0;
    }
    active_ = 0;
  }

  /// Bytes handed out since construction / the last Reset (diagnostic).
  std::size_t bytes_used() const {
    std::size_t used = 0;
    for (const Chunk& chunk : chunks_) {
      used += chunk.used;
    }
    return used;
  }

  /// Total bytes held in chunks (capacity, survives Reset).
  std::size_t bytes_reserved() const {
    std::size_t reserved = 0;
    for (const Chunk& chunk : chunks_) {
      reserved += chunk.size;
    }
    return reserved;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t AlignUp(std::size_t value, std::size_t alignment) {
    return (value + alignment - 1) & ~(alignment - 1);
  }

  void* AllocBytes(std::size_t bytes, std::size_t alignment) {
    // Advance through retained chunks until one fits; operator new
    // already aligns chunk bases to max_align_t, so aligning the
    // offset suffices.
    while (active_ < chunks_.size()) {
      Chunk& chunk = chunks_[active_];
      const std::size_t offset = AlignUp(chunk.used, alignment);
      if (offset + bytes <= chunk.size) {
        chunk.used = offset + bytes;
        return chunk.data.get() + offset;
      }
      ++active_;
    }
    Chunk chunk;
    chunk.size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    chunk.data = std::make_unique<std::byte[]>(chunk.size);
    chunk.used = bytes;
    chunks_.push_back(std::move(chunk));
    active_ = chunks_.size() - 1;
    return chunks_.back().data.get();
  }

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t chunk_bytes_;
};

}  // namespace vrddram

#endif  // VRDDRAM_COMMON_ARENA_H
