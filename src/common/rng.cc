#include "common/rng.h"

#include "common/error.h"

namespace vrddram {

namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t HashLabel(std::uint64_t base_seed, std::string_view label) {
  // FNV-1a over the label bytes, then mixed with the base seed through
  // SplitMix64 so that nearby labels map to unrelated streams.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char ch : label) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  std::uint64_t s = base_seed ^ h;
  std::uint64_t out = SplitMix64(s);
  out ^= SplitMix64(s);
  return out;
}

void Rng::Reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
  // xoshiro must not start from the all-zero state; SplitMix64 cannot
  // produce four zero outputs from any seed, but guard regardless.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ull;
  }
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  VRD_ASSERT_MSG(bound > 0, "NextBelow requires bound > 0");
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  VRD_ASSERT_MSG(lo <= hi, "NextInRange requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: no trig, numerically robust.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential(double lambda) {
  VRD_ASSERT_MSG(lambda > 0.0, "NextExponential requires lambda > 0");
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / lambda;
}

Rng Rng::Fork(std::string_view label) {
  return Rng(HashLabel(Next(), label));
}

}  // namespace vrddram
