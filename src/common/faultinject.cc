#include "common/faultinject.h"

#include <charconv>
#include <utility>

#include "common/error.h"

namespace vrddram::fi {
namespace {

/// Innermost active scope of the calling thread; nullptr = clean run.
thread_local FaultScope* g_active_scope = nullptr;

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

double ParseProbability(std::string_view value, std::string_view fragment) {
  double p = 0.0;
  auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), p);
  VRD_FATAL_IF(ec != std::errc{} || ptr != value.data() + value.size() ||
                   p < 0.0 || p > 1.0,
               "fault spec: bad probability in '" + std::string(fragment) +
                   "' (want a number in [0, 1])");
  return p;
}

std::uint64_t ParseCount(std::string_view value, std::string_view fragment) {
  std::uint64_t n = 0;
  auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), n);
  VRD_FATAL_IF(ec != std::errc{} || ptr != value.data() + value.size(),
               "fault spec: bad count in '" + std::string(fragment) +
                   "' (want a non-negative integer)");
  return n;
}

SiteSpec ParseSite(std::string_view fragment) {
  SiteSpec spec;
  std::string_view rest = fragment;
  const std::size_t colon = rest.find(':');
  spec.site = std::string(Trim(rest.substr(0, colon)));
  VRD_FATAL_IF(spec.site.empty(),
               "fault spec: empty site name in '" + std::string(fragment) + "'");
  if (colon == std::string_view::npos) {
    return spec;
  }
  rest.remove_prefix(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = Trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) {
      continue;
    }
    const std::size_t eq = pair.find('=');
    VRD_FATAL_IF(eq == std::string_view::npos,
                 "fault spec: expected key=value, got '" + std::string(pair) +
                     "' in '" + std::string(fragment) + "'");
    const std::string_view key = Trim(pair.substr(0, eq));
    const std::string_view value = Trim(pair.substr(eq + 1));
    if (key == "p") {
      spec.probability = ParseProbability(value, fragment);
    } else if (key == "max") {
      spec.max_fires = ParseCount(value, fragment);
    } else if (key == "attempt_lt") {
      spec.attempt_lt = ParseCount(value, fragment);
    } else if (key == "match") {
      spec.match = std::string(value);
    } else {
      VRD_FATAL_IF(true, "fault spec: unknown key '" + std::string(key) +
                             "' in '" + std::string(fragment) + "'");
    }
  }
  return spec;
}

}  // namespace

FaultPlan FaultPlan::Parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view fragment = Trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (fragment.empty()) {
      continue;
    }
    SiteSpec site = ParseSite(fragment);
    for (const SiteSpec& existing : plan.sites_) {
      VRD_FATAL_IF(existing.site == site.site,
                   "fault spec: duplicate site '" + site.site + "'");
    }
    plan.sites_.push_back(std::move(site));
  }
  return plan;
}

const SiteSpec* FaultPlan::Find(std::string_view site) const {
  for (const SiteSpec& spec : sites_) {
    if (spec.site == site) {
      return &spec;
    }
  }
  return nullptr;
}

FaultScope::FaultScope(const FaultPlan& plan, std::string label,
                       std::uint64_t attempt)
    : plan_(&plan),
      label_(std::move(label)),
      attempt_(attempt),
      previous_(g_active_scope) {
  g_active_scope = this;
}

FaultScope::~FaultScope() { g_active_scope = previous_; }

bool FaultScope::Fire(std::string_view site) {
  const SiteSpec* spec = plan_->Find(site);
  if (spec == nullptr) {
    return false;
  }
  if (attempt_ >= spec->attempt_lt) {
    return false;
  }
  if (!spec->match.empty() && label_.find(spec->match) == std::string::npos) {
    return false;
  }
  auto it = streams_.find(site);
  if (it == streams_.end()) {
    // The stream seed depends only on (plan seed, site, scope label,
    // attempt): worker count and completion order cannot shift it.
    const std::uint64_t stream_seed =
        MixSeed(plan_->seed(), HashLabel(plan_->seed(), spec->site),
                HashLabel(plan_->seed(), label_), attempt_);
    it = streams_.emplace(std::string(site), Stream(stream_seed)).first;
  }
  Stream& stream = it->second;
  if (stream.fires >= spec->max_fires) {
    return false;
  }
  // p >= 1 fires unconditionally without consuming a draw, so "always
  // fail" specs do not depend on the Bernoulli stream at all.
  const bool fire =
      spec->probability >= 1.0 || stream.rng.NextBernoulli(spec->probability);
  if (fire) {
    ++stream.fires;
  }
  return fire;
}

bool ShouldFire(std::string_view site) {
  FaultScope* scope = g_active_scope;
  return scope != nullptr && scope->Fire(site);
}

}  // namespace vrddram::fi
