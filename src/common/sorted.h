/**
 * @file
 * Hash-order laundering for unordered containers.
 *
 * Iterating a `std::unordered_map`/`set` bakes the hash function and
 * the container's growth history into whatever the loop produces —
 * which is exactly the kind of incidental state the determinism
 * contract (DESIGN.md §6) forbids in results. Whenever aggregation or
 * output needs to walk an unordered container, extract it through
 * SortedByKey()/SortedKeys() first: the result is a key-sorted vector,
 * a pure function of the container's *contents*. The `vrdlint`
 * `unordered-iteration` rule recognizes these helpers and accepts
 * range-for over them where it would flag the raw container.
 */
#ifndef VRDDRAM_COMMON_SORTED_H
#define VRDDRAM_COMMON_SORTED_H

#include <algorithm>
#include <utility>
#include <vector>

namespace vrddram {

/// Key-sorted (key, value) snapshot of an associative container.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
SortedByKey(const Map& map) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      out;
  out.reserve(map.size());
  for (auto it = map.begin(); it != map.end(); ++it) {
    out.emplace_back(it->first, it->second);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

/// Sorted snapshot of a set-like container's elements (or a map's keys).
template <typename Set>
std::vector<typename Set::key_type> SortedKeys(const Set& container) {
  std::vector<typename Set::key_type> out;
  out.reserve(container.size());
  for (auto it = container.begin(); it != container.end(); ++it) {
    if constexpr (requires { it->first; }) {
      out.push_back(it->first);
    } else {
      out.push_back(*it);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vrddram

#endif  // VRDDRAM_COMMON_SORTED_H
