#include "common/thread_pool.h"

#include <algorithm>

namespace vrddram {

namespace {

/// Set while a thread runs a pool's WorkerLoop; lets a nested
/// ParallelFor on the same pool fall back to inline execution.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

std::size_t ThreadPool::DefaultWorkerCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = DefaultWorkerCount();
  }
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // std::jthread joins on destruction.
}

bool ThreadPool::OnWorkerThread() const { return t_current_pool == this; }

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (OnWorkerThread()) {
    // Nested use from a task: the job lock is (or may be) held by the
    // thread that submitted the outer job, and blocking this worker on
    // it could deadlock the pool. Inline execution preserves results.
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mutex_);
  const std::size_t workers = worker_count();
  // ~8 chunks per worker balances stealing granularity against
  // per-chunk locking; campaign-style jobs (n < workers) get one
  // index per chunk.
  const std::size_t grain =
      std::max<std::size_t>(1, n / (workers * 8));
  std::vector<Chunk> chunks;
  chunks.reserve(n / grain + 1);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    chunks.push_back(Chunk{begin, std::min(n, begin + grain)});
  }

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    job_ = &fn;
    pending_ = chunks.size();
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    error_index_ = ~std::size_t{0};
  }
  // Distribute round-robin *before* publishing the unclaimed count so
  // a woken worker always finds the chunks it was promised.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    WorkerQueue& queue = *queues_[i % workers];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.chunks.push_back(chunks[i]);
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    unclaimed_.store(chunks.size(), std::memory_order_release);
  }
  work_cv_.notify_all();

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

bool ThreadPool::TryClaim(std::size_t index, Chunk* out) {
  const std::size_t workers = queues_.size();
  for (std::size_t k = 0; k < workers; ++k) {
    const std::size_t victim = (index + k) % workers;
    WorkerQueue& queue = *queues_[victim];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.chunks.empty()) {
      continue;
    }
    if (victim == index) {
      *out = queue.chunks.back();
      queue.chunks.pop_back();
    } else {
      *out = queue.chunks.front();
      queue.chunks.pop_front();
    }
    unclaimed_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  return false;
}

void ThreadPool::RunChunk(const Chunk& chunk) {
  if (!abort_.load(std::memory_order_relaxed)) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      if (abort_.load(std::memory_order_relaxed)) {
        break;
      }
      try {
        (*job_)(i);
      } catch (...) {
        // Keep the exception with the smallest task index, so the
        // caller sees a deterministic winner when several tasks throw
        // concurrently rather than whichever thread raced in first.
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (error_ == nullptr || i < error_index_) {
          error_ = std::current_exception();
          error_index_ = i;
        }
        abort_.store(true, std::memory_order_relaxed);
        break;
      }
    }
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (--pending_ == 0) {
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(std::size_t index) {
  t_current_pool = this;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ ||
               unclaimed_.load(std::memory_order_acquire) > 0;
      });
      if (stopping_) {
        return;
      }
    }
    Chunk chunk;
    while (TryClaim(index, &chunk)) {
      RunChunk(chunk);
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->worker_count() > 1 && n > 1) {
    pool->ParallelFor(n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

}  // namespace vrddram
