/**
 * @file
 * Minimal table/CSV emitters used by the bench harnesses to print the
 * rows and series that the paper's tables and figures report.
 */
#ifndef VRDDRAM_COMMON_TABLE_H
#define VRDDRAM_COMMON_TABLE_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace vrddram {

/**
 * Column-aligned text table. Collect rows with AddRow(), then Print().
 * Cells are strings; use Cell() helpers for formatted numerics.
 */
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Render with aligned columns to the given stream.
  void Print(std::ostream& os) const;

  /// Render as CSV (RFC-4180 quoting for cells containing separators).
  void PrintCsv(std::ostream& os) const;

  std::size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given number of decimal places.
std::string Cell(double value, int precision = 3);

/// Format an integer cell.
std::string Cell(std::int64_t value);
std::string Cell(std::uint64_t value);
std::string Cell(std::uint32_t value);
std::string Cell(int value);

/// Print a section banner (used between figure panels in benches).
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace vrddram

#endif  // VRDDRAM_COMMON_TABLE_H
