/**
 * @file
 * AVX2 lanes of the simd.h kernels. This translation unit is the only
 * one compiled with -mavx2, and it is compiled WITHOUT -mfma on
 * purpose: every vector op below is a distinct IEEE multiply/add/sub,
 * so each lane rounds exactly like the scalar reference loop and the
 * dispatch in simd.cc can never change results, only speed.
 *
 * The functions are only referenced when VRDDRAM_HAVE_AVX2_TU is
 * defined (set by CMake when the compiler accepts -mavx2); callers
 * additionally gate on __builtin_cpu_supports("avx2") at runtime.
 */
#if defined(VRDDRAM_HAVE_AVX2_TU)

#include <immintrin.h>

#include <cstddef>

namespace vrddram::simd::detail {

void ScaleToScalar(double* dst, const double* src, double factor,
                   std::size_t n);
void OccupancyBlendScalar(double* dst, const double* occupancy,
                          const double* prev, const double* decay,
                          std::size_t n);

void ScaleToAvx2(double* dst, const double* src, double factor,
                 std::size_t n) {
  const __m256d f = _mm256_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_mul_pd(_mm256_loadu_pd(src + i), f));
  }
  ScaleToScalar(dst + i, src + i, factor, n - i);
}

void OccupancyBlendAvx2(double* dst, const double* occupancy,
                        const double* prev, const double* decay,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d occ = _mm256_loadu_pd(occupancy + i);
    const __m256d pv = _mm256_loadu_pd(prev + i);
    const __m256d dc = _mm256_loadu_pd(decay + i);
    // occ + (prev - occ) * decay as separate sub, mul, add — the same
    // three roundings as the scalar loop.
    const __m256d out = _mm256_add_pd(
        occ, _mm256_mul_pd(_mm256_sub_pd(pv, occ), dc));
    _mm256_storeu_pd(dst + i, out);
  }
  OccupancyBlendScalar(dst + i, occupancy + i, prev + i, decay + i,
                       n - i);
}

}  // namespace vrddram::simd::detail

#endif  // VRDDRAM_HAVE_AVX2_TU
