/**
 * @file
 * Runtime-dispatched SIMD kernels for the bank-wide measurement path
 * (DESIGN.md §10).
 *
 * Every routine here is *element-exact*: it performs the same IEEE-754
 * operations per element as the scalar reference loop, in the same
 * per-element order, with no fused-multiply-add and no cross-element
 * reassociation. That is what lets the AVX2 path and the portable
 * scalar fallback produce bit-identical outputs — the dispatch is a
 * pure speed choice, never a results choice, so simulation output
 * cannot depend on the host CPU (the DESIGN.md §6 determinism
 * contract).
 *
 * What is deliberately NOT here:
 *  - exp(): a vectorized exponential (polynomial or table based)
 *    differs from libm's std::exp in the last ulps, which would break
 *    the batched kernel's bit-equality contract with the scalar
 *    MeasureContext path. Decay evaluation therefore vectorizes the
 *    -rate*dt products and falls back to scalar std::exp for the
 *    final reduction (see BatchMeasureContext::DecayFor).
 *  - horizontal sums: the per-cell trap-boost accumulation is a
 *    sequentially ordered sum; reassociating it changes rounding.
 */
#ifndef VRDDRAM_COMMON_SIMD_H
#define VRDDRAM_COMMON_SIMD_H

#include <cstddef>

namespace vrddram::simd {

/// True when the process runs on a CPU with AVX2 and the AVX2 kernels
/// were compiled in. Exposed for tests and telemetry; results never
/// depend on it.
bool HasAvx2();

/// Human-readable name of the active dispatch target ("avx2" or
/// "scalar").
const char* ActiveTarget();

/// dst[i] = src[i] * factor. Exact: one IEEE multiply per element.
void ScaleTo(double* dst, const double* src, double factor,
             std::size_t n);

/**
 * dst[i] = occupancy[i] + (prev[i] - occupancy[i]) * decay[i] — the
 * trap-occupancy relaxation step, evaluated as sub, mul, add per
 * element (never an FMA), matching the scalar kernel's rounding
 * exactly.
 */
void OccupancyBlend(double* dst, const double* occupancy,
                    const double* prev, const double* decay,
                    std::size_t n);

namespace detail {
// Scalar reference loops (always compiled; the dispatch target on
// non-AVX2 hosts). Exposed so tests can pin dispatched == scalar on
// whatever CPU runs them.
void ScaleToScalar(double* dst, const double* src, double factor,
                   std::size_t n);
void OccupancyBlendScalar(double* dst, const double* occupancy,
                          const double* prev, const double* decay,
                          std::size_t n);
}  // namespace detail

}  // namespace vrddram::simd

#endif  // VRDDRAM_COMMON_SIMD_H
