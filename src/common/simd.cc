#include "common/simd.h"

namespace vrddram::simd {

namespace detail {

void ScaleToScalar(double* dst, const double* src, double factor,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = src[i] * factor;
  }
}

void OccupancyBlendScalar(double* dst, const double* occupancy,
                          const double* prev, const double* decay,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // Product before add, in a named temporary: inline `a + b * c` is
    // FMA-contractable, and a fused rounding here would break the
    // scalar-vs-AVX2 bit-equality this file exists to guarantee.
    const double relax = (prev[i] - occupancy[i]) * decay[i];
    dst[i] = occupancy[i] + relax;
  }
}

#if defined(VRDDRAM_HAVE_AVX2_TU)
// Defined in simd_avx2.cc (compiled with -mavx2 and *without* -mfma,
// so the compiler cannot contract the sub/mul/add sequences into FMAs
// that would round differently from the scalar loops above).
void ScaleToAvx2(double* dst, const double* src, double factor,
                 std::size_t n);
void OccupancyBlendAvx2(double* dst, const double* occupancy,
                        const double* prev, const double* decay,
                        std::size_t n);
#endif

}  // namespace detail

namespace {

bool DetectAvx2() {
#if defined(VRDDRAM_HAVE_AVX2_TU) && defined(__x86_64__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

bool HasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

const char* ActiveTarget() { return HasAvx2() ? "avx2" : "scalar"; }

void ScaleTo(double* dst, const double* src, double factor,
             std::size_t n) {
#if defined(VRDDRAM_HAVE_AVX2_TU)
  if (HasAvx2()) {
    detail::ScaleToAvx2(dst, src, factor, n);
    return;
  }
#endif
  detail::ScaleToScalar(dst, src, factor, n);
}

void OccupancyBlend(double* dst, const double* occupancy,
                    const double* prev, const double* decay,
                    std::size_t n) {
#if defined(VRDDRAM_HAVE_AVX2_TU)
  if (HasAvx2()) {
    detail::OccupancyBlendAvx2(dst, occupancy, prev, decay, n);
    return;
  }
#endif
  detail::OccupancyBlendScalar(dst, occupancy, prev, decay, n);
}

}  // namespace vrddram::simd
