/**
 * @file
 * Error-handling primitives shared across the vrddram libraries.
 *
 * Follows the gem5 fatal/panic convention, extended with a transient
 * class for rig-style failures:
 *  - TransientError is thrown for conditions that a retry with fresh
 *    state can reasonably clear (a command execution hiccup, a thermal
 *    rig that failed to settle, a dropped sensor reading). It is the
 *    ONLY retryable error class: resilient executors such as
 *    core::RunCampaign re-attempt a shard that threw TransientError
 *    and quarantine or propagate everything else.
 *  - FatalError is thrown for user-caused conditions (bad configuration,
 *    invalid arguments): the caller could have avoided it, and retrying
 *    the same inputs cannot succeed.
 *  - VRD_ASSERT guards internal invariants; a failure (PanicError)
 *    indicates a bug in this library, not in the caller's usage, and
 *    must never be swallowed by resilience machinery.
 */
#ifndef VRDDRAM_COMMON_ERROR_H
#define VRDDRAM_COMMON_ERROR_H

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vrddram {

/// Thrown when an operation failed in a way a retry with fresh state
/// may clear (transient rig/hardware-style failure). Retryable.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when a caller-visible precondition is violated (user error).
/// Not retryable: the same inputs will fail the same way.
class FatalError : public std::runtime_error {
 public:
  explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated (library bug).
/// Never retryable and never quarantined.
class PanicError : public std::logic_error {
 public:
  explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void ThrowFatal(const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "fatal: " << msg << " (" << file << ":" << line << ")";
  throw FatalError(os.str());
}

[[noreturn]] inline void ThrowPanic(const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "panic: " << msg << " (" << file << ":" << line << ")";
  throw PanicError(os.str());
}

}  // namespace detail

}  // namespace vrddram

/// Report a user-caused error: condition the caller should have ensured.
#define VRD_FATAL_IF(cond, msg)                                    \
  do {                                                             \
    if (cond) {                                                    \
      ::vrddram::detail::ThrowFatal(__FILE__, __LINE__, (msg));    \
    }                                                              \
  } while (0)

/// Internal invariant check; failure means a bug in this library.
#define VRD_ASSERT(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::vrddram::detail::ThrowPanic(__FILE__, __LINE__,                    \
                                    "assertion failed: " #cond);           \
    }                                                                      \
  } while (0)

#define VRD_ASSERT_MSG(cond, msg)                                  \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::vrddram::detail::ThrowPanic(__FILE__, __LINE__, (msg));    \
    }                                                              \
  } while (0)

#endif  // VRDDRAM_COMMON_ERROR_H
