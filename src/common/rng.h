/**
 * @file
 * Deterministic random-number generation for the vrddram suite.
 *
 * Every stochastic component owns its own Rng stream, seeded from a
 * human-readable label via SeedFrom(). Two runs with the same labels
 * and seeds produce bit-identical results, which is what lets the
 * benches reproduce the numbers recorded in EXPERIMENTS.md.
 *
 * The generator is xoshiro256** (Blackman & Vigna) seeded through
 * SplitMix64, the combination recommended by the xoshiro authors.
 */
#ifndef VRDDRAM_COMMON_RNG_H
#define VRDDRAM_COMMON_RNG_H

#include <cmath>
#include <cstdint>
#include <string_view>

namespace vrddram {

/// SplitMix64 step; used for seeding and for label hashing.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Hash an arbitrary label (e.g. "module=H1/row=5123/trap=2") together
/// with a base seed into a 64-bit stream seed.
std::uint64_t HashLabel(std::uint64_t base_seed, std::string_view label);

/// Mix several integer components into one seed (order-sensitive).
constexpr std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b = 0,
                                std::uint64_t c = 0, std::uint64_t d = 0) {
  std::uint64_t s = a;
  std::uint64_t out = SplitMix64(s);
  s ^= b + 0x9e3779b97f4a7c15ull;
  out ^= SplitMix64(s);
  s ^= c + 0xc2b2ae3d27d4eb4full;
  out ^= SplitMix64(s);
  s ^= d + 0x165667b19e3779f9ull;
  out ^= SplitMix64(s);
  return out;
}

/**
 * xoshiro256** pseudo-random generator with the distribution helpers
 * the suite needs. Satisfies UniformRandomBitGenerator.
 */
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { Reseed(seed); }

  /// Reset the stream from a 64-bit seed (expanded via SplitMix64).
  void Reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64-bit output.
  std::uint64_t operator()() { return Next(); }

  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's method; bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p of returning true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller with caching.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Lognormal: exp(N(mu, sigma)).
  double NextLognormal(double mu, double sigma) {
    return std::exp(NextGaussian(mu, sigma));
  }

  /// Exponential with the given rate (lambda > 0).
  double NextExponential(double lambda);

  /// Fork a child stream; deterministic given this stream's state and
  /// the label, without perturbing this stream's sequence more than
  /// one draw.
  Rng Fork(std::string_view label);

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace vrddram

#endif  // VRDDRAM_COMMON_RNG_H
