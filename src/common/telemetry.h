/**
 * @file
 * Wall-clock telemetry, quarantined.
 *
 * The determinism contract (DESIGN.md §6) bans wall-clock reads from
 * result-producing code: a timestamp that leaks into a measurement or
 * a merge order breaks bit-identical reproduction. Progress and
 * throughput reporting still needs real elapsed time, so the two
 * legitimate clock reads in the suite live here — behind a type whose
 * output can only ever feed human-facing telemetry — and carry the
 * `vrdlint: allow(wall-clock)` annotation that exempts them from the
 * `banned-api` lint rule. Code that needs "how long did this take"
 * for a log line takes a Stopwatch; code that needs time as an input
 * to a computation is wrong by construction.
 */
#ifndef VRDDRAM_COMMON_TELEMETRY_H
#define VRDDRAM_COMMON_TELEMETRY_H

#include <chrono>

namespace vrddram {

/**
 * Measures real elapsed time for progress/throughput report lines.
 * Starts at construction; Seconds() may be read repeatedly.
 */
class Stopwatch {
 public:
  Stopwatch()
      : start_(std::chrono::steady_clock::now()) {  // vrdlint: allow(wall-clock)
  }

  /// Restart the stopwatch from now.
  void Reset() {
    start_ = std::chrono::steady_clock::now();  // vrdlint: allow(wall-clock)
  }

  /// Elapsed wall time since construction or the last Reset().
  double Seconds() const {
    const auto now =
        std::chrono::steady_clock::now();  // vrdlint: allow(wall-clock)
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vrddram

#endif  // VRDDRAM_COMMON_TELEMETRY_H
