/**
 * @file
 * Work-stealing thread pool for the embarrassingly-parallel hot loops
 * of the suite (campaign shards, Monte Carlo resampling, bootstrap
 * chunks).
 *
 * Design constraints, in order:
 *  1. Determinism: the pool never owns randomness or ordering. Callers
 *     shard work into independent index-addressed tasks whose results
 *     land in preallocated slots, so output is bit-identical for any
 *     worker count (including the inline serial fallback).
 *  2. Coarse tasks: campaign shards run for seconds, so per-worker
 *     deques guarded by plain mutexes are plenty; no lock-free
 *     machinery is warranted.
 *  3. Exceptions propagate deterministically: when tasks throw, the
 *     exception with the smallest index wins — not whichever thread
 *     lost the race — and is rethrown from ParallelFor on the calling
 *     thread; remaining tasks are abandoned (tasks that never started
 *     do not get to compete, so the winner is the canonical-first
 *     among the tasks that actually threw).
 */
#ifndef VRDDRAM_COMMON_THREAD_POOL_H
#define VRDDRAM_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vrddram {

class ThreadPool {
 public:
  /// `workers` = 0 selects DefaultWorkerCount().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return queues_.size(); }

  /**
   * Run fn(i) for every i in [0, n) across the workers and block until
   * all complete. Indices are split into contiguous chunks; each worker
   * drains its own deque LIFO and steals FIFO from the others when it
   * runs dry. Rethrows the thrown task exception with the smallest
   * index. A call from one of this pool's own worker threads runs
   * inline (serially) instead of deadlocking on the single-job lock.
   */
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t DefaultWorkerCount();

 private:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;  ///< exclusive
  };
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Chunk> chunks;
  };

  void WorkerLoop(std::size_t index);
  /// Pop from own deque (back) or steal from another (front).
  bool TryClaim(std::size_t index, Chunk* out);
  void RunChunk(const Chunk& chunk);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::jthread> workers_;

  /// Serializes ParallelFor callers: one job at a time.
  std::mutex job_mutex_;

  std::mutex state_mutex_;
  std::condition_variable work_cv_;  ///< workers wait for chunks
  std::condition_variable done_cv_;  ///< caller waits for completion
  bool stopping_ = false;
  const std::function<void(std::size_t)>* job_ = nullptr;
  /// Chunks not yet claimed by any worker (wait predicate).
  std::atomic<std::size_t> unclaimed_{0};
  /// Chunks not yet fully executed (completion predicate).
  std::size_t pending_ = 0;
  std::atomic<bool> abort_{false};
  std::exception_ptr error_;
  /// Task index that produced error_; the smallest index wins so the
  /// rethrown exception is deterministic under concurrent failures.
  std::size_t error_index_ = 0;
};

/**
 * Convenience fan-out used by the parallel hot loops: runs fn(i) for i
 * in [0, n) on `pool` when it is non-null and has more than one
 * worker, inline on the calling thread otherwise. Either way every
 * index runs exactly once, so results are identical.
 */
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace vrddram

#endif  // VRDDRAM_COMMON_THREAD_POOL_H
