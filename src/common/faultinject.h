/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * Real characterization rigs lose work to flaky hardware: a DRAM
 * Bender command times out, a thermocouple drops off the PID loop, a
 * readout pin sticks, a measurement spuriously reports no flip. This
 * engine lets tests and campaigns reproduce those failures *exactly*:
 *
 *  - A FaultPlan is a registry of named sites parsed from a compact
 *    spec string (the `--inject=` bench flag):
 *
 *        site[:key=value[,key=value...]][;site2...]
 *
 *    with keys `p` (per-evaluation fire probability, default 1),
 *    `max` (fire budget per scope stream, default unlimited),
 *    `match` (fire only in scopes whose label contains this
 *    substring), and `attempt_lt` (fire only while the scope's
 *    attempt ordinal is below this — the knob that makes "fails once,
 *    succeeds on retry" schedules deterministic).
 *
 *  - A FaultScope installs the plan for the current thread for one
 *    unit of work (e.g. one campaign shard attempt). Each (site,
 *    scope label, attempt) triple owns its own seeded RNG stream, so
 *    a given (site, seed) schedule is reproducible at any
 *    `--threads`: worker count and completion order cannot leak into
 *    which evaluations fire.
 *
 *  - Instrumented code asks `fi::ShouldFire("layer.site")` at the
 *    point where the real rig fails. With no active scope (the
 *    default everywhere outside resilience tests) the query is a
 *    thread-local null check and nothing ever fires.
 *
 * Wired sites (see docs/API.md for the catalog):
 *   bender.host.run       ProgramRunner::Run throws TransientError
 *   bender.thermal.sensor PID thermocouple dropout (TransientError)
 *   bender.thermal.settle settle timeout (TransientError)
 *   dram.device.readout   stuck-at-1 bit in ReadRow data
 *   core.profiler.noflip  measurement spuriously returns kNoFlip
 *   core.campaign.shard   shard fails wholesale (TransientError)
 */
#ifndef VRDDRAM_COMMON_FAULTINJECT_H
#define VRDDRAM_COMMON_FAULTINJECT_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace vrddram::fi {

/// Configuration of one named fault site within a plan.
struct SiteSpec {
  std::string site;                  ///< e.g. "bender.thermal.settle"
  double probability = 1.0;          ///< per-evaluation fire probability
  std::uint64_t max_fires = ~0ull;   ///< budget per (scope, attempt) stream
  std::uint64_t attempt_lt = ~0ull;  ///< fire only when attempt < this
  std::string match;                 ///< scope-label substring filter
};

/**
 * Immutable registry of fault sites plus the seed all site streams
 * derive from. Parsed once (from config/flags) before work is
 * dispatched; shared read-only by every worker thread.
 */
class FaultPlan {
 public:
  FaultPlan() = default;

  /**
   * Parse a spec string (grammar above). An empty spec yields an
   * empty (never-firing) plan; malformed input throws FatalError
   * naming the offending fragment.
   */
  static FaultPlan Parse(std::string_view spec, std::uint64_t seed);

  bool empty() const { return sites_.empty(); }
  std::uint64_t seed() const { return seed_; }
  const std::vector<SiteSpec>& sites() const { return sites_; }
  /// nullptr when the plan has no spec for `site`.
  const SiteSpec* Find(std::string_view site) const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<SiteSpec> sites_;
};

/**
 * RAII activation of a plan for the current thread, labelled with the
 * unit of work (e.g. "campaign/M1@50") and an attempt ordinal.
 * Scopes nest; the innermost active scope answers ShouldFire. The
 * scope owns the per-site RNG streams, so two scopes with the same
 * (plan, label, attempt) replay the identical fire schedule.
 */
class FaultScope {
 public:
  FaultScope(const FaultPlan& plan, std::string label,
             std::uint64_t attempt = 0);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  const std::string& label() const { return label_; }
  std::uint64_t attempt() const { return attempt_; }

  /// One evaluation of `site` in this scope; true = inject the fault.
  bool Fire(std::string_view site);

 private:
  struct Stream {
    Rng rng;
    std::uint64_t fires = 0;
    explicit Stream(std::uint64_t seed) : rng(seed) {}
  };

  const FaultPlan* plan_;
  std::string label_;
  std::uint64_t attempt_;
  /// Ordered map: deterministic teardown and no hash-order effects.
  std::map<std::string, Stream, std::less<>> streams_;
  FaultScope* previous_;
};

/**
 * Ask the innermost active scope of the calling thread whether this
 * evaluation of `site` injects its fault. Always false when no scope
 * is active — instrumented code needs no configuration to run clean.
 */
bool ShouldFire(std::string_view site);

}  // namespace vrddram::fi

#endif  // VRDDRAM_COMMON_FAULTINJECT_H
