/**
 * @file
 * Time, frequency, and energy units used throughout the suite.
 *
 * All device-level time is kept in integral picoseconds (Tick) so that
 * DRAM timing arithmetic is exact; conversions to floating point happen
 * only at reporting boundaries.
 */
#ifndef VRDDRAM_COMMON_UNITS_H
#define VRDDRAM_COMMON_UNITS_H

#include <cstdint>

namespace vrddram {

/// Integral simulation time in picoseconds.
using Tick = std::int64_t;

namespace units {

inline constexpr Tick kPicosecond = 1;
inline constexpr Tick kNanosecond = 1000;
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
inline constexpr Tick kSecond = 1000 * kMillisecond;

/// Convert a floating-point nanosecond quantity to ticks (rounded).
constexpr Tick FromNs(double ns) {
  return static_cast<Tick>(ns * static_cast<double>(kNanosecond) + 0.5);
}

/// Convert a floating-point microsecond quantity to ticks (rounded).
constexpr Tick FromUs(double us) {
  return static_cast<Tick>(us * static_cast<double>(kMicrosecond) + 0.5);
}

/// Convert ticks to floating-point nanoseconds.
constexpr double ToNs(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

/// Convert ticks to floating-point microseconds.
constexpr double ToUs(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Convert ticks to floating-point milliseconds.
constexpr double ToMs(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Convert ticks to floating-point seconds.
constexpr double ToSeconds(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace units

/// Temperature in degrees Celsius; DRAM test setpoints are coarse enough
/// that double precision is ample.
using Celsius = double;

}  // namespace vrddram

#endif  // VRDDRAM_COMMON_UNITS_H
