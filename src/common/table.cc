#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace vrddram {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  VRD_FATAL_IF(header_.empty(), "table requires at least one column");
}

void TextTable::AddRow(std::vector<std::string> cells) {
  VRD_FATAL_IF(cells.size() != header_.size(),
               "row arity does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(
          static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) {
      rule += "  ";
    }
  }
  os << rule << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << CsvEscape(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Cell(std::int64_t value) { return std::to_string(value); }
std::string Cell(std::uint64_t value) { return std::to_string(value); }
std::string Cell(std::uint32_t value) { return std::to_string(value); }
std::string Cell(int value) { return std::to_string(value); }

void PrintBanner(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==" << '\n';
}

}  // namespace vrddram
