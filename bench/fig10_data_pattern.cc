/**
 * @file
 * Figure 10 / Findings 12-13: the expected normalized value of the
 * minimum RDT after N measurements for the four Table 2 data patterns,
 * grouped per manufacturer (and the HBM2 chips). No single data
 * pattern causes the worst VRD profile across all chips.
 *
 * Flags: --rows=6 --measurements=1000 --iters=4000 --seed=2025
 */
#include <iostream>
#include <map>

#include "common/bench_util.h"
#include "core/min_rdt_mc.h"

using namespace vrddram;
using namespace vrddram::bench;

namespace {

std::string GroupName(const core::SeriesRecord& record) {
  if (record.standard == dram::Standard::kHbm2) {
    return "Mfr. S HBM2";
  }
  return ToString(record.mfr);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices", "all"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows", 6));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements", 1000));
  config.base_seed = flags.GetUint("seed", 2025);
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan", 96));
  config.threads = ResolveThreads(flags);
  ApplyResilienceFlags(flags, &config);
  config.patterns.assign(std::begin(dram::kAllDataPatterns),
                         std::end(dram::kAllDataPatterns));

  core::MinRdtSettings settings;
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters", 4000));

  PrintBanner(std::cout,
              "Figure 10: expected normalized min RDT per data "
              "pattern and manufacturer");

  const core::CampaignResult result = core::RunCampaign(config);
  PrintShardSummary(result);
  Rng rng(config.base_seed ^ 0xf1a);

  // group -> pattern -> per-N list of expected normalized minima.
  std::map<std::string,
           std::map<dram::DataPattern, std::vector<std::vector<double>>>>
      groups;
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    auto& per_pattern = groups[GroupName(record)][record.pattern];
    if (per_pattern.empty()) {
      per_pattern.resize(settings.sample_sizes.size());
    }
    for (std::size_t i = 0; i < mc.per_n.size(); ++i) {
      per_pattern[i].push_back(mc.per_n[i].expected_norm_min);
    }
  }

  TextTable table(
      {"group", "pattern", "N", "median", "max", "mean"});
  std::map<std::string, dram::DataPattern> worst_pattern;
  std::map<std::string, double> worst_median;
  for (const auto& [group, per_pattern] : groups) {
    for (const auto& [pattern, per_n] : per_pattern) {
      for (std::size_t i = 0; i < settings.sample_sizes.size(); ++i) {
        if (per_n[i].empty()) {
          continue;
        }
        const stats::BoxStats box = Box(per_n[i]);
        table.AddRow(
            {group, ToString(pattern),
             Cell(static_cast<std::uint64_t>(settings.sample_sizes[i])),
             Cell(box.median, 4), Cell(box.max, 4), Cell(box.mean, 4)});
        if (settings.sample_sizes[i] == 1 &&
            box.median > worst_median[group]) {
          worst_median[group] = box.median;
          worst_pattern[group] = pattern;
        }
      }
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Findings 12-13 checks");
  std::map<dram::DataPattern, int> worst_counts;
  for (const auto& [group, pattern] : worst_pattern) {
    PrintCheck("fig10.worst_pattern." + group, "varies per mfr",
               ToString(pattern));
    ++worst_counts[pattern];
  }
  PrintCheck("fig10.single_worst_pattern_across_chips", "no",
             worst_counts.size() > 1 ? "no" : "yes");
  return 0;
}
