/**
 * @file
 * Figure 3: box-and-whiskers distribution of 100,000 RDT measurements
 * of one victim row in each tested module and chip.
 *
 * Flags: --devices=all --measurements=100000 --seed=2025
 */
#include <iostream>

#include "common/bench_util.h"

using namespace vrddram;
using namespace vrddram::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements", 100000));
  const std::uint64_t seed = flags.GetUint("seed", 2025);
  const auto devices = ResolveDevices(flags.GetString("devices", "all"));

  PrintBanner(std::cout,
              "Figure 3: RDT distribution of a single victim row per "
              "module/chip (" + std::to_string(measurements) +
                  " measurements)");

  TextTable table(
      {"device", "min", "Q1", "median", "Q3", "max", "mean"});
  double worst_ratio = 1.0;
  std::string worst_device;
  for (const std::string& name : devices) {
    SingleRowSeries data;
    if (!CollectSingleRowSeries(name, measurements, seed, &data)) {
      std::cerr << "skipping " << name << ": no victim row\n";
      continue;
    }
    const core::SeriesAnalysis analysis = core::AnalyzeSeries(data.series);
    AddBoxRow(table, name, analysis.box);
    if (analysis.max_over_min > worst_ratio) {
      worst_ratio = analysis.max_over_min;
      worst_device = name;
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Finding 1 check");
  // Paper: e.g. Chip0's largest measured RDT is 1.21x the smallest
  // across 100k measurements; every tested row varies.
  PrintCheck("fig03.worst_max_over_min (" + worst_device + ")",
             "1.21 (Chip0 example; larger on other rows)", worst_ratio,
             3);
  return 0;
}
