/**
 * @file
 * Figure 16 / §6.4: repeatedly hammer each tested row at hammer counts
 * reduced by safety margins below its (few-measurement) minimum RDT,
 * and count the unique cells that still flip. The paper observes up to
 * 5 unique flipping cells per row at a 10% margin (spanning up to 4
 * chips, at most 1 per ECC codeword) and none at margins above 10%.
 *
 * Flags: --devices=ddr4 --rows=6 --trials=10000 --seed=2025
 */
#include <algorithm>
#include <iostream>

#include "common/bench_util.h"
#include "core/guardband.h"
#include "ecc/analysis.h"

using namespace vrddram;
using namespace vrddram::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  core::GuardbandConfig config;
  config.devices = ResolveDevices(flags.GetString("devices", "ddr4"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows", 9));
  config.trials =
      static_cast<std::size_t>(flags.GetUint("trials", 10000));
  config.base_seed = flags.GetUint("seed", 2025);
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan", 96));

  PrintBanner(std::cout,
              "Figure 16: unique bitflips per row when hammering below "
              "the measured min RDT with safety margins");

  const auto outcomes = core::RunGuardbandStudy(config);
  std::cout << "tested " << outcomes.size()
            << " (row, pattern) combinations\n";

  for (const double margin : config.margins) {
    PrintBanner(std::cout, "Margin " + Cell(margin * 100.0, 0) +
                               "%: histogram of unique bitflips per "
                               "row across " +
                               Cell(static_cast<std::uint64_t>(
                                   config.trials)) +
                               " trials");
    TextTable table({"unique bitflips", "# of rows"});
    for (const auto& [bitflips, rows] :
         core::BitflipHistogramAtMargin(outcomes, margin)) {
      table.AddRow({Cell(static_cast<std::uint64_t>(bitflips)),
                    Cell(static_cast<std::uint64_t>(rows))});
    }
    table.Print(std::cout);
  }

  // ECC-codeword placement of the 10%-margin flips.
  std::size_t max_flips_10 = 0;
  std::size_t max_chips_10 = 0;
  std::size_t max_secded_10 = 0;
  std::size_t max_chipkill_10 = 0;
  std::size_t max_flips_above_10 = 0;
  for (const auto& outcome : outcomes) {
    for (const auto& per : outcome.per_margin) {
      if (std::abs(per.margin - 0.10) < 1e-9) {
        max_flips_10 = std::max(max_flips_10, per.unique_bitflips);
        max_chips_10 = std::max(max_chips_10, per.chips_touched);
        max_secded_10 =
            std::max(max_secded_10, per.max_per_secded_codeword);
        max_chipkill_10 =
            std::max(max_chipkill_10, per.max_per_chipkill_codeword);
      } else if (per.margin > 0.10 + 1e-9) {
        max_flips_above_10 =
            std::max(max_flips_above_10, per.unique_bitflips);
      }
    }
  }

  PrintBanner(std::cout, "§6.4 checks");
  PrintCheck("fig16.max_unique_bitflips_at_10pct", "5",
             Cell(static_cast<std::uint64_t>(max_flips_10)));
  PrintCheck("fig16.max_chips_touched_at_10pct", "4",
             Cell(static_cast<std::uint64_t>(max_chips_10)));
  PrintCheck("fig16.max_bitflips_per_secded_codeword", "1",
             Cell(static_cast<std::uint64_t>(max_secded_10)));
  PrintCheck("fig16.max_bitflips_per_chipkill_codeword", "1",
             Cell(static_cast<std::uint64_t>(max_chipkill_10)));
  PrintCheck("fig16.max_unique_bitflips_above_10pct",
             "<= 1 (no more than one bitflip observed)",
             Cell(static_cast<std::uint64_t>(max_flips_above_10)));

  const double ber = core::WorstBitErrorRate(outcomes, 0.10, 65536);
  PrintCheck("fig16.worst_bit_error_rate_at_10pct", 7.6e-5, ber, 6);
  std::cout << "\n(That bit error rate feeds Table 3; see "
               "bench_table03_ecc.)\n";
  return 0;
}
