/**
 * @file
 * Throughput microbenchmarks (google-benchmark): how fast the
 * simulation substrate itself runs - analytic vs. bulk vs.
 * command-level RDT measurements, raw fault-engine queries, and
 * memory-system events. These quantify why the analytic fast path is
 * what makes 100,000-measurement campaigns tractable.
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/campaign.h"
#include "core/rdt_profiler.h"
#include "memsim/system.h"
#include "vrd/chip_catalog.h"
#include "vrd/trap_engine.h"

namespace {

using namespace vrddram;

struct ProfilerFixture {
  ProfilerFixture(core::SweepMode mode) {
    device = vrd::BuildDevice("M1");
    core::ProfilerConfig pc;
    pc.mode = mode;
    profiler = std::make_unique<core::RdtProfiler>(*device, pc);
    core::ProfilerConfig seed_pc;
    core::RdtProfiler seeder(*device, seed_pc);
    const auto found = seeder.FindVictim(1, 4000);
    VRD_FATAL_IF(!found,
                 "perf fixture: no victim row below the find_victim "
                 "threshold in rows [1, 4000) of device M1");
    victim = found->row;
    guess = found->rdt_guess;
  }
  std::unique_ptr<dram::Device> device;
  std::unique_ptr<core::RdtProfiler> profiler;
  dram::RowAddr victim = 0;
  std::uint64_t guess = 0;
};

void BM_MeasurementAnalytic(benchmark::State& state) {
  ProfilerFixture fx(core::SweepMode::kAnalytic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.profiler->MeasureOnce(fx.victim, fx.guess));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeasurementAnalytic);

void BM_MeasurementBulk(benchmark::State& state) {
  ProfilerFixture fx(core::SweepMode::kBulk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.profiler->MeasureOnce(fx.victim, fx.guess));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeasurementBulk);

void BM_EngineQuery(benchmark::State& state) {
  auto device = vrd::BuildDevice("M1");
  auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
  const dram::PhysicalRow row{100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->MinFlipHammerCount(
        0, row, 0x55, 0xAA, device->timing().tRAS, 50.0,
        device->encoding(), device->Now()));
    device->Sleep(units::kMillisecond);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineQuery);

// Thread scaling of the parallel campaign executor: a representative
// multi-device, multi-temperature campaign (8 shards) at 1..8 worker
// threads. Output is bit-identical across the arg values; only the
// wall clock changes.
void BM_CampaignThreads(benchmark::State& state) {
  core::CampaignConfig config;
  config.devices = {"M1", "S2", "H1", "H3"};
  config.temperatures = {50.0, 80.0};
  config.rows_per_device = 3;
  config.measurements = 200;
  config.scan_rows_per_region = 48;
  config.threads = static_cast<std::size_t>(state.range(0));
  std::size_t measurements = 0;
  for (auto _ : state) {
    const core::CampaignResult result = core::RunCampaign(config);
    measurements = 0;
    for (const core::SeriesRecord& record : result.records) {
      measurements += record.series.size();
    }
    benchmark::DoNotOptimize(measurements);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * measurements));
  state.counters["shards"] = static_cast<double>(
      config.devices.size() * config.temperatures.size());
}
BENCHMARK(BM_CampaignThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Raw pool overhead: fan tiny tasks out over the work-stealing pool.
void BM_ThreadPoolParallelFor(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sum{0};
  for (auto _ : state) {
    pool.ParallelFor(1024, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sum.load());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Bank-wide measurement fixture: one device and a contiguous span of
// physical rows measured together each "tick". The three strategies
// below produce bit-identical per-row hammer counts; only the work per
// value differs (fresh context / persistent scalar contexts / one
// batched SoA context). This trio is the PR6 perf gate: batched must
// beat the per-row baseline by >= 3x (BENCH_pr6.json).
struct BankFixture {
  static constexpr std::uint32_t kRows = 64;

  BankFixture() : device(vrd::BuildDevice("M1")) {
    engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
    VRD_FATAL_IF(engine == nullptr, "M1 must use the trap engine");
    rows.reserve(kRows);
    for (std::uint32_t r = 0; r < kRows; ++r) {
      rows.push_back(dram::PhysicalRow{100 + r});
    }
  }

  std::unique_ptr<dram::Device> device;
  vrd::TrapFaultEngine* engine = nullptr;
  std::vector<dram::PhysicalRow> rows;
};

// Baseline (pre-PR5 style): a fresh MeasureContext per row per tick —
// per-call row-state lookup, invariant recomputation, allocation.
void BM_BankMeasurePerRow(benchmark::State& state) {
  BankFixture fx;
  const Tick t_on = fx.device->timing().tRAS;
  double sum = 0.0;
  for (auto _ : state) {
    for (const dram::PhysicalRow row : fx.rows) {
      sum += fx.engine->MinFlipHammerCount(
          0, row, 0x55, 0xAA, t_on, 50.0, fx.device->encoding(),
          fx.device->Now());
    }
    benchmark::DoNotOptimize(sum);
    fx.device->Sleep(units::kMillisecond);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * BankFixture::kRows);
}
BENCHMARK(BM_BankMeasurePerRow);

// PR5 style: one persistent scalar MeasureContext per row, queried
// sequentially each tick.
void BM_BankMeasureScalarCtx(benchmark::State& state) {
  BankFixture fx;
  const Tick t_on = fx.device->timing().tRAS;
  std::vector<vrd::MeasureContext> contexts(BankFixture::kRows);
  for (std::uint32_t r = 0; r < BankFixture::kRows; ++r) {
    fx.engine->MakeMeasureContext(0, fx.rows[r], 0x55, 0xAA, t_on, 50.0,
                                  fx.device->encoding(),
                                  fx.device->Now(), contexts[r]);
  }
  double sum = 0.0;
  for (auto _ : state) {
    for (auto& ctx : contexts) {
      sum += fx.engine->MinFlipHammerCount(ctx, fx.device->Now());
    }
    benchmark::DoNotOptimize(sum);
    fx.device->Sleep(units::kMillisecond);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * BankFixture::kRows);
}
BENCHMARK(BM_BankMeasureScalarCtx);

// PR6 tentpole: one BatchMeasureContext advancing the whole bank span
// in lockstep — SIMD decay evaluation over the SoA arrays, arena-backed
// storage, zero steady-state allocation.
void BM_BankMeasureBatched(benchmark::State& state) {
  BankFixture fx;
  const Tick t_on = fx.device->timing().tRAS;
  MonotonicArena arena;
  vrd::BatchMeasureContext ctx = fx.engine->MakeBatchMeasureContext(
      0, fx.rows, 0x55, 0xAA, t_on, 50.0, fx.device->encoding(),
      fx.device->Now(), arena);
  std::vector<double> min_hc(BankFixture::kRows);
  double sum = 0.0;
  for (auto _ : state) {
    fx.engine->BatchMinFlipHammerCounts(ctx, fx.device->Now(), min_hc);
    for (const double hc : min_hc) {
      sum += hc;
    }
    benchmark::DoNotOptimize(sum);
    fx.device->Sleep(units::kMillisecond);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * BankFixture::kRows);
}
BENCHMARK(BM_BankMeasureBatched);

// Poisson draw throughput: row-state initialization is dominated by
// per-cell/per-trap count draws, all served by PoissonSampler.
void BM_SamplePoisson(benchmark::State& state) {
  Rng rng(0x9015);
  const vrd::PoissonSampler sampler(10.0);
  std::size_t sum = 0;
  for (auto _ : state) {
    sum += sampler(rng);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplePoisson);

void BM_MemsimRequests(benchmark::State& state) {
  const auto mixes = memsim::MakeHighMemoryIntensityMixes();
  for (auto _ : state) {
    memsim::SystemConfig config;
    config.requests_per_core = 2000;
    benchmark::DoNotOptimize(memsim::SimulateMix(mixes[0], config));
  }
  state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_MemsimRequests);

}  // namespace

/**
 * Custom main: unless the caller picks an output file, write the JSON
 * results to BENCH_perf.json in the working directory. That makes
 * `bench_perf_throughput` self-recording — local runs and the CI perf
 * job both produce a machine-readable snapshot to diff against the
 * committed BENCH_pr5.json baseline (see docs/API.md).
 */
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  static char out_flag[] = "--benchmark_out=BENCH_perf.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int our_argc = static_cast<int>(args.size());
  benchmark::Initialize(&our_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(our_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
