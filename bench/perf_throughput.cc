/**
 * @file
 * Throughput microbenchmarks (google-benchmark): how fast the
 * simulation substrate itself runs - analytic vs. bulk vs.
 * command-level RDT measurements, raw fault-engine queries, and
 * memory-system events. These quantify why the analytic fast path is
 * what makes 100,000-measurement campaigns tractable.
 */
#include <benchmark/benchmark.h>

#include "core/rdt_profiler.h"
#include "memsim/system.h"
#include "vrd/chip_catalog.h"

namespace {

using namespace vrddram;

struct ProfilerFixture {
  ProfilerFixture(core::SweepMode mode) {
    device = vrd::BuildDevice("M1");
    core::ProfilerConfig pc;
    pc.mode = mode;
    profiler = std::make_unique<core::RdtProfiler>(*device, pc);
    core::ProfilerConfig seed_pc;
    core::RdtProfiler seeder(*device, seed_pc);
    const auto found = seeder.FindVictim(1, 4000);
    victim = found->row;
    guess = found->rdt_guess;
  }
  std::unique_ptr<dram::Device> device;
  std::unique_ptr<core::RdtProfiler> profiler;
  dram::RowAddr victim = 0;
  std::uint64_t guess = 0;
};

void BM_MeasurementAnalytic(benchmark::State& state) {
  ProfilerFixture fx(core::SweepMode::kAnalytic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.profiler->MeasureOnce(fx.victim, fx.guess));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeasurementAnalytic);

void BM_MeasurementBulk(benchmark::State& state) {
  ProfilerFixture fx(core::SweepMode::kBulk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.profiler->MeasureOnce(fx.victim, fx.guess));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeasurementBulk);

void BM_EngineQuery(benchmark::State& state) {
  auto device = vrd::BuildDevice("M1");
  auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
  const dram::PhysicalRow row{100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->MinFlipHammerCount(
        0, row, 0x55, 0xAA, device->timing().tRAS, 50.0,
        device->encoding(), device->Now()));
    device->Sleep(units::kMillisecond);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineQuery);

void BM_MemsimRequests(benchmark::State& state) {
  const auto mixes = memsim::MakeHighMemoryIntensityMixes();
  for (auto _ : state) {
    memsim::SystemConfig config;
    config.requests_per_core = 2000;
    benchmark::DoNotOptimize(memsim::SimulateMix(mixes[0], config));
  }
  state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_MemsimRequests);

}  // namespace
