#include "common/experiment.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace vrddram::bench {

ExperimentRegistry& ExperimentRegistry::Instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::Register(ExperimentSpec spec) {
  VRD_FATAL_IF(spec.name.empty(), "experiment spec has no name");
  VRD_FATAL_IF(spec.analyze == nullptr,
               "experiment '" + spec.name + "' has no analyze function");
  VRD_FATAL_IF(Find(spec.name) != nullptr,
               "duplicate experiment name '" + spec.name + "'");
  specs_.push_back(std::move(spec));
}

const ExperimentSpec* ExperimentRegistry::Find(
    const std::string& name) const {
  for (const ExperimentSpec& spec : specs_) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

std::vector<const ExperimentSpec*> ExperimentRegistry::All() const {
  std::vector<const ExperimentSpec*> all;
  all.reserve(specs_.size());
  for (const ExperimentSpec& spec : specs_) {
    all.push_back(&spec);
  }
  std::sort(all.begin(), all.end(),
            [](const ExperimentSpec* a, const ExperimentSpec* b) {
              return a->name < b->name;
            });
  return all;
}

ExperimentRegistrar::ExperimentRegistrar(ExperimentSpec (*factory)()) {
  ExperimentRegistry::Instance().Register(factory());
}

std::vector<FlagSpec> CampaignFlagSpecs() {
  return {
      {"threads", "0",
       "campaign worker threads (0 = hardware concurrency)"},
      {"checkpoint", "", "persist completed shards to this file"},
      {"resume", "false", "restore completed shards from --checkpoint"},
      {"inject", "", "fault-injection plan (fi::FaultPlan grammar)"},
      {"max_attempts", "3", "attempts per shard before quarantine"},
  };
}

std::vector<FlagSpec> WithCampaignFlags(std::vector<FlagSpec> specs) {
  for (FlagSpec& spec : CampaignFlagSpecs()) {
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ApplyCampaignExecutionFlags(const Flags& flags,
                                 core::CampaignConfig* config) {
  config->threads = ResolveThreads(flags);
  ApplyResilienceFlags(flags, config);
}

}  // namespace vrddram::bench
