/**
 * @file
 * Declarative experiment registry for the figure/table reproductions.
 *
 * Each figure or table of the paper is one `ExperimentSpec`: a name,
 * a one-line description, the flag schema with defaults, an optional
 * campaign builder, and an analysis function that renders the tables
 * and CHECK lines. Specs live in `bench/experiments/*.cc` and
 * self-register at static-initialization time; the `vrdrepro` driver
 * (bench/common/driver.h) is the only main() over them.
 *
 * The split between `build_campaign` and `analyze` is what lets the
 * driver share measurement work: it resolves the campaign through a
 * `core::CampaignCache` keyed by the result-defining config hash, so
 * experiments whose configs intend the same records (same devices,
 * rows, patterns, temperatures, seed, ...) execute one campaign and
 * fan their analyses out over the cached `CampaignResult`.
 */
#ifndef VRDDRAM_BENCH_COMMON_EXPERIMENT_H
#define VRDDRAM_BENCH_COMMON_EXPERIMENT_H

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "core/campaign.h"

namespace vrddram::bench {

/// Destination for everything an experiment reports: the stream that
/// replaces the old per-binary stdout, plus the parsed flags so
/// analysis knobs (iteration counts, CSV paths, margins) stay
/// reachable from Analyze.
struct Report {
  std::ostream& out;
  const Flags& flags;
};

struct ExperimentSpec {
  /// Registry key, e.g. "fig10_data_pattern" — the old standalone
  /// binary name without the "bench_" prefix.
  std::string name;

  /// One-line summary shown by `vrdrepro list`.
  std::string description;

  /// Every knob the experiment accepts. Campaign experiments append
  /// CampaignFlagSpecs() for the shared execution flags.
  std::vector<FlagSpec> flags;

  /// Tiny-parameter invocation used by `vrdrepro run --smoke` and the
  /// ctest smoke entries ("--key=value" tokens).
  std::vector<std::string> smoke_args;

  /// Builds the campaign request from parsed flags. Experiments that
  /// measure nothing (catalog tables, single-device sweeps) leave
  /// this empty and receive an empty CampaignResult.
  std::function<core::CampaignConfig(const Flags&)> build_campaign;

  /// Renders the experiment's tables, figures, and CHECK lines from
  /// the (possibly cached) campaign result.
  std::function<void(const core::CampaignResult&, Report*)> analyze;
};

/**
 * The process-wide experiment registry. Specs register through
 * VRD_REGISTER_EXPERIMENT; lookups are by exact name and All() is
 * sorted by name, so `vrdrepro run --all` order is deterministic.
 */
class ExperimentRegistry {
 public:
  static ExperimentRegistry& Instance();

  /// Raises FatalError on a duplicate or empty name.
  void Register(ExperimentSpec spec);

  /// nullptr when no experiment has that name.
  const ExperimentSpec* Find(const std::string& name) const;

  /// All registered specs, sorted by name.
  std::vector<const ExperimentSpec*> All() const;

 private:
  std::vector<ExperimentSpec> specs_;
};

/// Registers the spec returned by `factory` (an `ExperimentSpec (*)()`)
/// at static-initialization time. Use at namespace scope in
/// bench/experiments/*.cc.
struct ExperimentRegistrar {
  explicit ExperimentRegistrar(ExperimentSpec (*factory)());
};

#define VRD_REGISTER_EXPERIMENT(factory)             \
  static const ::vrddram::bench::ExperimentRegistrar \
      vrd_experiment_registrar_##factory {           \
    (factory)                                        \
  }

/// The execution flags shared by every campaign experiment
/// (--threads, --checkpoint, --resume, --inject, --max_attempts).
/// Appended to a spec's own FlagSpecs; values are applied to the
/// built config by ApplyCampaignExecutionFlags.
std::vector<FlagSpec> CampaignFlagSpecs();

/// Convenience: `specs` followed by CampaignFlagSpecs().
std::vector<FlagSpec> WithCampaignFlags(std::vector<FlagSpec> specs);

/// Apply --threads and the resilience flags to a built config.
void ApplyCampaignExecutionFlags(const Flags& flags,
                                 core::CampaignConfig* config);

}  // namespace vrddram::bench

#endif  // VRDDRAM_BENCH_COMMON_EXPERIMENT_H
