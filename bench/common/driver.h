/**
 * @file
 * The `vrdrepro` driver: one binary over the experiment registry.
 *
 * Commands:
 *   vrdrepro list                — name + description of every experiment
 *   vrdrepro describe <name>     — full flag schema and smoke parameters
 *   vrdrepro run <name...>|--all — run experiments through the campaign
 *                                  cache
 *
 * `run` options consumed by the driver itself: `--all`, `--smoke`
 * (prepend each experiment's tiny smoke parameters), `--no-cache`
 * (bypass the campaign cache), `--cache_dir=DIR` (persist cache
 * entries on disk), `--out_dir=DIR` (write each report to
 * DIR/<name>.txt instead of stdout). Every other `--key=value` token
 * is forwarded to the selected experiments; a forwarded flag that no
 * selected experiment declares aborts with the real schema.
 *
 * Reports go to `out` (byte-identical to the pre-registry standalone
 * binaries); cache telemetry and errors go to `err`, so caching never
 * perturbs report bytes.
 */
#ifndef VRDDRAM_BENCH_COMMON_DRIVER_H
#define VRDDRAM_BENCH_COMMON_DRIVER_H

#include <iosfwd>

namespace vrddram::bench {

/// Entry point of the `vrdrepro` binary, parameterized over streams
/// so tests can drive it in-process. Returns the process exit code
/// (0 on success, 2 on usage/configuration errors).
int RunDriver(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace vrddram::bench

#endif  // VRDDRAM_BENCH_COMMON_DRIVER_H
