#include "common/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/experiment.h"
#include "core/campaign_cache.h"

namespace vrddram::bench {

namespace {

constexpr char kUsage[] =
    "usage: vrdrepro <command> [options]\n"
    "\n"
    "commands:\n"
    "  list                 list registered experiments\n"
    "  describe <name>      show an experiment's flags and smoke "
    "parameters\n"
    "  run <name...>        run experiments by name\n"
    "  run --all            run every registered experiment\n"
    "\n"
    "run options (consumed by the driver):\n"
    "  --all                select every experiment\n"
    "  --smoke              prepend each experiment's tiny smoke "
    "parameters\n"
    "  --no-cache           bypass the campaign cache\n"
    "  --cache_dir=DIR      persist campaign cache entries under DIR\n"
    "  --out_dir=DIR        write each report to DIR/<name>.txt instead "
    "of stdout\n"
    "\n"
    "any other --key=value option is forwarded to the selected\n"
    "experiments; a flag no selected experiment declares aborts with\n"
    "the experiment's schema.\n";

std::string FlagKey(const std::string& token) {
  const std::size_t eq = token.find('=');
  return eq == std::string::npos ? token.substr(2)
                                 : token.substr(2, eq - 2);
}

bool DeclaresFlag(const ExperimentSpec& spec, const std::string& key) {
  return std::any_of(
      spec.flags.begin(), spec.flags.end(),
      [&](const FlagSpec& flag) { return flag.name == key; });
}

std::string KnownExperimentNames() {
  std::string names;
  for (const ExperimentSpec* spec : ExperimentRegistry::Instance().All()) {
    names += "  " + spec->name + "\n";
  }
  return names;
}

const ExperimentSpec& FindExperiment(const std::string& name) {
  const ExperimentSpec* spec = ExperimentRegistry::Instance().Find(name);
  VRD_FATAL_IF(spec == nullptr, "unknown experiment '" + name +
                                    "'; registered experiments:\n" +
                                    KnownExperimentNames());
  return *spec;
}

int ListCommand(std::ostream& out) {
  const std::vector<const ExperimentSpec*> all =
      ExperimentRegistry::Instance().All();
  std::size_t width = 0;
  for (const ExperimentSpec* spec : all) {
    width = std::max(width, spec->name.size());
  }
  for (const ExperimentSpec* spec : all) {
    out << spec->name << std::string(width + 2 - spec->name.size(), ' ')
        << spec->description << '\n';
  }
  return 0;
}

int DescribeCommand(const std::vector<std::string>& names,
                    std::ostream& out) {
  VRD_FATAL_IF(names.empty(), "describe: expected an experiment name");
  for (std::size_t i = 0; i < names.size(); ++i) {
    const ExperimentSpec& spec = FindExperiment(names[i]);
    if (i > 0) {
      out << '\n';
    }
    out << spec.name << ": " << spec.description << '\n';
    out << Flags::Describe(spec.flags);
    if (!spec.smoke_args.empty()) {
      out << "smoke:";
      for (const std::string& arg : spec.smoke_args) {
        out << ' ' << arg;
      }
      out << '\n';
    }
  }
  return 0;
}

struct RunOptions {
  bool all = false;
  bool smoke = false;
  bool no_cache = false;
  std::string cache_dir;
  std::string out_dir;
  std::vector<std::string> names;
  std::vector<std::string> forwarded;
};

RunOptions ParseRunArgs(const std::vector<std::string>& args) {
  RunOptions options;
  for (const std::string& arg : args) {
    if (arg == "--all") {
      options.all = true;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--no-cache") {
      options.no_cache = true;
    } else if (arg.rfind("--cache_dir=", 0) == 0) {
      options.cache_dir = arg.substr(12);
    } else if (arg.rfind("--out_dir=", 0) == 0) {
      options.out_dir = arg.substr(10);
    } else if (arg.rfind("--", 0) == 0) {
      options.forwarded.push_back(arg);
    } else {
      options.names.push_back(arg);
    }
  }
  VRD_FATAL_IF(options.all && !options.names.empty(),
               "run: give experiment names or --all, not both");
  VRD_FATAL_IF(!options.all && options.names.empty(),
               "run: expected experiment names or --all\n" +
                   std::string(kUsage));
  return options;
}

int RunCommand(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  const RunOptions options = ParseRunArgs(args);

  std::vector<const ExperimentSpec*> selected;
  if (options.all) {
    selected = ExperimentRegistry::Instance().All();
  } else {
    for (const std::string& name : options.names) {
      selected.push_back(&FindExperiment(name));
    }
  }

  // Every forwarded flag must be declared by at least one selected
  // experiment; each experiment then receives only the flags it
  // declares, so shared knobs (--threads, --seed) fan out while an
  // unknown flag still aborts with the real schema.
  for (const std::string& token : options.forwarded) {
    const std::string key = FlagKey(token);
    const bool known = std::any_of(
        selected.begin(), selected.end(),
        [&](const ExperimentSpec* spec) { return DeclaresFlag(*spec, key); });
    if (!known && selected.size() == 1) {
      VRD_FATAL_IF(true, "unknown flag --" + key + "\n" +
                             Flags::Describe(selected[0]->flags));
    }
    VRD_FATAL_IF(!known, "unknown flag --" + key +
                             ": no selected experiment declares it");
  }

  core::CampaignCache cache(options.cache_dir);
  core::CampaignCache* cache_ptr = options.no_cache ? nullptr : &cache;
  if (!options.out_dir.empty()) {
    std::filesystem::create_directories(options.out_dir);
  }

  for (const ExperimentSpec* spec : selected) {
    std::vector<std::string> experiment_args;
    if (options.smoke) {
      experiment_args = spec->smoke_args;
    }
    for (const std::string& token : options.forwarded) {
      if (DeclaresFlag(*spec, FlagKey(token))) {
        experiment_args.push_back(token);
      }
    }
    const Flags flags(experiment_args, spec->flags);

    core::CampaignResult result;
    if (spec->build_campaign) {
      result = core::RunCampaignCached(spec->build_campaign(flags),
                                       cache_ptr, &err);
    }

    if (options.out_dir.empty()) {
      Report report{out, flags};
      spec->analyze(result, &report);
    } else {
      const std::string path = (std::filesystem::path(options.out_dir) /
                                (spec->name + ".txt"))
                                   .string();
      std::ofstream file(path, std::ios::trunc);
      VRD_FATAL_IF(!file,
                   "cannot open '" + path + "' for writing");
      Report report{file, flags};
      spec->analyze(result, &report);
      file.close();
      VRD_FATAL_IF(!file, "failed to finish writing '" + path + "'");
      err << "vrdrepro: " << spec->name << " -> " << path << '\n';
    }
  }

  if (cache_ptr != nullptr) {
    const core::CampaignCacheStats& stats = cache.stats();
    err << "vrdrepro: cache hits=" << stats.hits
        << " misses=" << stats.misses << " stores=" << stats.stores
        << '\n';
  }
  return 0;
}

}  // namespace

int RunDriver(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  try {
    if (argc < 2) {
      err << kUsage;
      return 2;
    }
    const std::string command = argv[1];
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i) {
      args.emplace_back(argv[i]);
    }
    if (command == "list") {
      return ListCommand(out);
    }
    if (command == "describe") {
      return DescribeCommand(args, out);
    }
    if (command == "run") {
      return RunCommand(args, out, err);
    }
    if (command == "--help" || command == "help") {
      out << kUsage;
      return 0;
    }
    err << "vrdrepro: unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const FatalError& e) {
    err << "vrdrepro: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace vrddram::bench
