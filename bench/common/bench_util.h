/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses: flag
 * parsing, series collection shortcuts, box-plot row formatting, and
 * the paper-vs-measured check lines recorded in EXPERIMENTS.md.
 */
#ifndef VRDDRAM_BENCH_COMMON_BENCH_UTIL_H
#define VRDDRAM_BENCH_COMMON_BENCH_UTIL_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/campaign.h"
#include "core/rdt_profiler.h"
#include "core/series_analysis.h"
#include "stats/descriptive.h"
#include "vrd/chip_catalog.h"

namespace vrddram::bench {

/// One documented knob of an experiment: its flag name (without the
/// leading "--"), the textual default, and a one-line description.
struct FlagSpec {
  std::string name;
  std::string default_value;
  std::string help;
};

/**
 * Tiny --key=value flag parser. Every experiment documents its knobs
 * through a FlagSpec schema: construction against a schema rejects
 * unknown flags with a FatalError whose message embeds Describe(), so
 * an abort always prints the real schema. The schema-less (argc,
 * argv) form is kept for ad-hoc tools and tests.
 */
class Flags {
 public:
  /// Schema-less: accepts any --key=value. Bad syntax exits(2).
  Flags(int argc, char** argv);

  /**
   * Schema-validating: `args` are raw "--key[=value]" tokens. A token
   * without "--", or a key absent from `schema`, raises FatalError
   * naming the offender and listing the schema via Describe().
   */
  Flags(const std::vector<std::string>& args,
        const std::vector<FlagSpec>& schema);

  std::uint64_t GetUint(const std::string& key,
                        std::uint64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Schema-default getters: the fallback is the FlagSpec default.
  /// Raise FatalError when no schema was given or `key` is not in it
  /// — an undocumented knob is a bug in the experiment spec.
  std::uint64_t GetUint(const std::string& key) const;
  double GetDouble(const std::string& key) const;
  std::string GetString(const std::string& key) const;
  bool GetBool(const std::string& key) const;

  /// Human-readable flag schema, one "--name=default  help" line per
  /// spec. Empty string when constructed without a schema.
  std::string Describe() const;
  static std::string Describe(const std::vector<FlagSpec>& schema);

 private:
  const FlagSpec& SpecFor(const std::string& key) const;

  std::map<std::string, std::string> values_;
  std::vector<FlagSpec> schema_;
};

/// Resolve a --devices= flag value: "all", "ddr4", "hbm2", or a
/// comma-separated list of catalog names.
std::vector<std::string> ResolveDevices(const std::string& spec);

/// Resolve the --threads= flag for the parallel campaign executor:
/// 0 (the default) selects hardware_concurrency, 1 forces the serial
/// path. Results are bit-identical for every value.
std::size_t ResolveThreads(const Flags& flags);

/**
 * Apply the campaign resilience flags shared by every campaign bench:
 * --checkpoint=FILE (persist completed shards), --resume (restore
 * shards from the checkpoint instead of re-running them),
 * --inject=SPEC (fault-injection plan, fi::FaultPlan grammar) and
 * --max_attempts=N (attempts per shard before quarantine).
 */
void ApplyResilienceFlags(const Flags& flags,
                          core::CampaignConfig* config);

/// Print the per-shard execution summary (ok/retried/quarantined
/// counts plus one line for each shard that did not run clean).
void PrintShardSummary(std::ostream& os,
                       const core::CampaignResult& result);

/// Per-manufacturer grouping shared by the figure benches: DDR4
/// records group under their manufacturer's display name, while the
/// HBM2 chips (all from Mfr. S) get their own "Mfr. S HBM2" bucket so
/// the two standards are never pooled.
std::string ManufacturerGroupName(const core::SeriesRecord& record);

/// One 100k-style single-row series: find a victim on the device per
/// Alg. 1 and measure it `measurements` times.
struct SingleRowSeries {
  std::string device;
  dram::RowAddr row = 0;
  std::uint64_t rdt_guess = 0;
  std::vector<std::int64_t> series;
};

/// Runs Alg. 1 on one device (Checkered0, min tRAS, 80 degC - the §4
/// foundational setup). Returns false if no victim row qualifies.
bool CollectSingleRowSeries(const std::string& device_name,
                            std::size_t measurements,
                            std::uint64_t seed, SingleRowSeries* out);

/// Append one box-and-whiskers row (min / Q1 / median / Q3 / max /
/// mean) to a table.
void AddBoxRow(TextTable& table, const std::string& label,
               const stats::BoxStats& box, int precision = 0);

/// Paper-vs-measured check line, greppable for EXPERIMENTS.md:
/// "CHECK <name>: paper=<paper> measured=<measured>".
void PrintCheck(std::ostream& os, const std::string& name,
                const std::string& paper, const std::string& measured);
void PrintCheck(std::ostream& os, const std::string& name, double paper,
                double measured, int precision = 3);
void PrintCheck(std::ostream& os, const std::string& name,
                const std::string& paper, double measured,
                int precision = 3);

/// Box stats over a vector<double>; convenience alias used by benches.
stats::BoxStats Box(const std::vector<double>& xs);

}  // namespace vrddram::bench

#endif  // VRDDRAM_BENCH_COMMON_BENCH_UTIL_H
