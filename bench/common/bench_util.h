/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses: flag
 * parsing, series collection shortcuts, box-plot row formatting, and
 * the paper-vs-measured check lines recorded in EXPERIMENTS.md.
 */
#ifndef VRDDRAM_BENCH_COMMON_BENCH_UTIL_H
#define VRDDRAM_BENCH_COMMON_BENCH_UTIL_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/campaign.h"
#include "core/rdt_profiler.h"
#include "core/series_analysis.h"
#include "stats/descriptive.h"
#include "vrd/chip_catalog.h"

namespace vrddram::bench {

/**
 * Tiny --key=value flag parser. Unknown flags abort with a usage
 * message; every bench documents its knobs through Describe().
 */
class Flags {
 public:
  Flags(int argc, char** argv);

  std::uint64_t GetUint(const std::string& key,
                        std::uint64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Resolve a --devices= flag value: "all", "ddr4", "hbm2", or a
/// comma-separated list of catalog names.
std::vector<std::string> ResolveDevices(const std::string& spec);

/// Resolve the --threads= flag for the parallel campaign executor:
/// 0 (the default) selects hardware_concurrency, 1 forces the serial
/// path. Results are bit-identical for every value.
std::size_t ResolveThreads(const Flags& flags);

/**
 * Apply the campaign resilience flags shared by every campaign bench:
 * --checkpoint=FILE (persist completed shards), --resume (restore
 * shards from the checkpoint instead of re-running them),
 * --inject=SPEC (fault-injection plan, fi::FaultPlan grammar) and
 * --max_attempts=N (attempts per shard before quarantine).
 */
void ApplyResilienceFlags(const Flags& flags,
                          core::CampaignConfig* config);

/// Print the per-shard execution summary (ok/retried/quarantined
/// counts plus one line for each shard that did not run clean).
void PrintShardSummary(const core::CampaignResult& result);

/// One 100k-style single-row series: find a victim on the device per
/// Alg. 1 and measure it `measurements` times.
struct SingleRowSeries {
  std::string device;
  dram::RowAddr row = 0;
  std::uint64_t rdt_guess = 0;
  std::vector<std::int64_t> series;
};

/// Runs Alg. 1 on one device (Checkered0, min tRAS, 80 degC - the §4
/// foundational setup). Returns false if no victim row qualifies.
bool CollectSingleRowSeries(const std::string& device_name,
                            std::size_t measurements,
                            std::uint64_t seed, SingleRowSeries* out);

/// Append one box-and-whiskers row (min / Q1 / median / Q3 / max /
/// mean) to a table.
void AddBoxRow(TextTable& table, const std::string& label,
               const stats::BoxStats& box, int precision = 0);

/// Paper-vs-measured check line, greppable for EXPERIMENTS.md:
/// "CHECK <name>: paper=<paper> measured=<measured>".
void PrintCheck(const std::string& name, const std::string& paper,
                const std::string& measured);
void PrintCheck(const std::string& name, double paper, double measured,
                int precision = 3);
void PrintCheck(const std::string& name, const std::string& paper,
                double measured, int precision = 3);

/// Box stats over a vector<double>; convenience alias used by benches.
stats::BoxStats Box(const std::vector<double>& xs);

}  // namespace vrddram::bench

#endif  // VRDDRAM_BENCH_COMMON_BENCH_UTIL_H
