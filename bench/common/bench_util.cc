#include "common/bench_util.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.h"

namespace vrddram::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unrecognized argument: " << arg
                << " (flags are --key=value)\n";
      std::exit(2);
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

std::uint64_t Flags::GetUint(const std::string& key,
                             std::uint64_t default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key,
                        double default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  return it->second == "true" || it->second == "1";
}

std::vector<std::string> ResolveDevices(const std::string& spec) {
  if (spec == "all") {
    return vrd::AllDeviceNames();
  }
  if (spec == "ddr4") {
    return vrd::Ddr4ModuleNames();
  }
  if (spec == "hbm2") {
    return vrd::Hbm2ChipNames();
  }
  std::vector<std::string> names;
  std::istringstream is(spec);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (!token.empty()) {
      names.push_back(token);
    }
  }
  VRD_FATAL_IF(names.empty(), "no devices in --devices spec");
  return names;
}

std::size_t ResolveThreads(const Flags& flags) {
  return static_cast<std::size_t>(flags.GetUint("threads", 0));
}

void ApplyResilienceFlags(const Flags& flags,
                          core::CampaignConfig* config) {
  config->checkpoint_path =
      flags.GetString("checkpoint", config->checkpoint_path);
  config->resume = flags.GetBool("resume", config->resume);
  config->inject = flags.GetString("inject", config->inject);
  config->max_attempts = static_cast<std::size_t>(
      flags.GetUint("max_attempts", config->max_attempts));
}

void PrintShardSummary(const core::CampaignResult& result) {
  if (result.shards.empty()) {
    return;
  }
  std::size_t ok = 0;
  std::size_t retried = 0;
  std::size_t quarantined = 0;
  for (const core::ShardStatus& status : result.shards) {
    switch (status.state) {
      case core::ShardState::kOk: ++ok; break;
      case core::ShardState::kRetried: ++retried; break;
      case core::ShardState::kQuarantined: ++quarantined; break;
    }
  }
  std::cout << "shards: " << result.shards.size() << " total, " << ok
            << " ok, " << retried << " retried, " << quarantined
            << " quarantined\n";
  for (const core::ShardStatus& status : result.shards) {
    if (status.state == core::ShardState::kOk) {
      continue;
    }
    std::cout << "shard " << status.device << " @ " << status.temperature
              << " degC: " << core::FormatShardStatus(status);
    if (!status.error.empty()) {
      std::cout << " (" << status.error << ')';
    }
    std::cout << '\n';
  }
}

bool CollectSingleRowSeries(const std::string& device_name,
                            std::size_t measurements,
                            std::uint64_t seed, SingleRowSeries* out) {
  auto device = vrd::BuildDevice(device_name, seed);
  if (device->config().has_on_die_ecc) {
    device->SetOnDieEccEnabled(false);  // §3.1
  }
  device->SetTemperature(80.0);

  core::ProfilerConfig pc;
  pc.pattern = dram::DataPattern::kCheckered0;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 8192);
  if (!victim) {
    return false;
  }
  out->device = device_name;
  out->row = victim->row;
  out->rdt_guess = victim->rdt_guess;
  out->series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, measurements);
  return true;
}

void AddBoxRow(TextTable& table, const std::string& label,
               const stats::BoxStats& box, int precision) {
  table.AddRow({label, Cell(box.min, precision), Cell(box.q1, precision),
                Cell(box.median, precision), Cell(box.q3, precision),
                Cell(box.max, precision), Cell(box.mean, precision)});
}

void PrintCheck(const std::string& name, const std::string& paper,
                const std::string& measured) {
  std::cout << "CHECK " << name << ": paper=" << paper
            << " measured=" << measured << '\n';
}

void PrintCheck(const std::string& name, double paper, double measured,
                int precision) {
  PrintCheck(name, Cell(paper, precision), Cell(measured, precision));
}

void PrintCheck(const std::string& name, const std::string& paper,
                double measured, int precision) {
  PrintCheck(name, paper, Cell(measured, precision));
}

stats::BoxStats Box(const std::vector<double>& xs) {
  return stats::ComputeBoxStats(xs);
}

}  // namespace vrddram::bench
