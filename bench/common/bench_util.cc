#include "common/bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.h"

namespace vrddram::bench {

namespace {

/// Split a "--key[=value]" token; a bare "--key" means "true".
bool SplitFlagToken(const std::string& arg, std::string* key,
                    std::string* value) {
  if (arg.rfind("--", 0) != 0) {
    return false;
  }
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos) {
    *key = arg.substr(2);
    *value = "true";
  } else {
    *key = arg.substr(2, eq - 2);
    *value = arg.substr(eq + 1);
  }
  return true;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string key;
    std::string value;
    if (!SplitFlagToken(arg, &key, &value)) {
      std::cerr << "unrecognized argument: " << arg
                << " (flags are --key=value)\n";
      std::exit(2);
    }
    values_[key] = value;
  }
}

Flags::Flags(const std::vector<std::string>& args,
             const std::vector<FlagSpec>& schema)
    : schema_(schema) {
  for (const std::string& arg : args) {
    std::string key;
    std::string value;
    VRD_FATAL_IF(!SplitFlagToken(arg, &key, &value),
                 "unrecognized argument: " + arg +
                     " (flags are --key=value)\n" + Describe(schema_));
    const bool known =
        std::any_of(schema_.begin(), schema_.end(),
                    [&](const FlagSpec& spec) { return spec.name == key; });
    VRD_FATAL_IF(!known, "unknown flag --" + key + "\n" + Describe(schema_));
    values_[key] = value;
  }
}

std::uint64_t Flags::GetUint(const std::string& key,
                             std::uint64_t default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key,
                        double default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return default_value;
  }
  return it->second == "true" || it->second == "1";
}

const FlagSpec& Flags::SpecFor(const std::string& key) const {
  for (const FlagSpec& spec : schema_) {
    if (spec.name == key) {
      return spec;
    }
  }
  VRD_FATAL_IF(true, "flag --" + key +
                         " is not in this experiment's schema\n" +
                         Describe(schema_));
  std::abort();  // unreachable: VRD_FATAL_IF threw
}

std::uint64_t Flags::GetUint(const std::string& key) const {
  return std::strtoull(
      GetString(key, SpecFor(key).default_value).c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key) const {
  return std::strtod(GetString(key, SpecFor(key).default_value).c_str(),
                     nullptr);
}

std::string Flags::GetString(const std::string& key) const {
  return GetString(key, SpecFor(key).default_value);
}

bool Flags::GetBool(const std::string& key) const {
  const std::string value = GetString(key, SpecFor(key).default_value);
  return value == "true" || value == "1";
}

std::string Flags::Describe() const { return Describe(schema_); }

std::string Flags::Describe(const std::vector<FlagSpec>& schema) {
  if (schema.empty()) {
    return "";
  }
  std::size_t width = 0;
  for (const FlagSpec& spec : schema) {
    width = std::max(width,
                     spec.name.size() + spec.default_value.size() + 3);
  }
  std::ostringstream os;
  os << "flags:\n";
  for (const FlagSpec& spec : schema) {
    const std::string left = "--" + spec.name + "=" + spec.default_value;
    os << "  " << left << std::string(width + 2 - left.size(), ' ')
       << spec.help << '\n';
  }
  return os.str();
}

std::vector<std::string> ResolveDevices(const std::string& spec) {
  if (spec == "all") {
    return vrd::AllDeviceNames();
  }
  if (spec == "ddr4") {
    return vrd::Ddr4ModuleNames();
  }
  if (spec == "hbm2") {
    return vrd::Hbm2ChipNames();
  }
  std::vector<std::string> names;
  std::istringstream is(spec);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (!token.empty()) {
      names.push_back(token);
    }
  }
  VRD_FATAL_IF(names.empty(), "no devices in --devices spec");
  return names;
}

std::size_t ResolveThreads(const Flags& flags) {
  return static_cast<std::size_t>(flags.GetUint("threads", 0));
}

void ApplyResilienceFlags(const Flags& flags,
                          core::CampaignConfig* config) {
  config->checkpoint_path =
      flags.GetString("checkpoint", config->checkpoint_path);
  config->resume = flags.GetBool("resume", config->resume);
  config->inject = flags.GetString("inject", config->inject);
  config->max_attempts = static_cast<std::size_t>(
      flags.GetUint("max_attempts", config->max_attempts));
}

void PrintShardSummary(std::ostream& os,
                       const core::CampaignResult& result) {
  if (result.shards.empty()) {
    return;
  }
  std::size_t ok = 0;
  std::size_t retried = 0;
  std::size_t quarantined = 0;
  for (const core::ShardStatus& status : result.shards) {
    switch (status.state) {
      case core::ShardState::kOk: ++ok; break;
      case core::ShardState::kRetried: ++retried; break;
      case core::ShardState::kQuarantined: ++quarantined; break;
    }
  }
  os << "shards: " << result.shards.size() << " total, " << ok << " ok, "
     << retried << " retried, " << quarantined << " quarantined\n";
  for (const core::ShardStatus& status : result.shards) {
    if (status.state == core::ShardState::kOk) {
      continue;
    }
    os << "shard " << status.device << " @ " << status.temperature
       << " degC: " << core::FormatShardStatus(status);
    if (!status.error.empty()) {
      os << " (" << status.error << ')';
    }
    os << '\n';
  }
}

std::string ManufacturerGroupName(const core::SeriesRecord& record) {
  if (record.standard == dram::Standard::kHbm2) {
    return "Mfr. S HBM2";
  }
  return ToString(record.mfr);
}

bool CollectSingleRowSeries(const std::string& device_name,
                            std::size_t measurements,
                            std::uint64_t seed, SingleRowSeries* out) {
  auto device = vrd::BuildDevice(device_name, seed);
  if (device->config().has_on_die_ecc) {
    device->SetOnDieEccEnabled(false);  // §3.1
  }
  device->SetTemperature(80.0);

  core::ProfilerConfig pc;
  pc.pattern = dram::DataPattern::kCheckered0;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 8192);
  if (!victim) {
    return false;
  }
  out->device = device_name;
  out->row = victim->row;
  out->rdt_guess = victim->rdt_guess;
  out->series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, measurements);
  return true;
}

void AddBoxRow(TextTable& table, const std::string& label,
               const stats::BoxStats& box, int precision) {
  table.AddRow({label, Cell(box.min, precision), Cell(box.q1, precision),
                Cell(box.median, precision), Cell(box.q3, precision),
                Cell(box.max, precision), Cell(box.mean, precision)});
}

void PrintCheck(std::ostream& os, const std::string& name,
                const std::string& paper, const std::string& measured) {
  os << "CHECK " << name << ": paper=" << paper
     << " measured=" << measured << '\n';
}

void PrintCheck(std::ostream& os, const std::string& name, double paper,
                double measured, int precision) {
  PrintCheck(os, name, Cell(paper, precision), Cell(measured, precision));
}

void PrintCheck(std::ostream& os, const std::string& name,
                const std::string& paper, double measured, int precision) {
  PrintCheck(os, name, paper, Cell(measured, precision));
}

stats::BoxStats Box(const std::vector<double>& xs) {
  return stats::ComputeBoxStats(xs);
}

}  // namespace vrddram::bench
