/**
 * @file
 * Figure 6 / Finding 4: the autocorrelation function of a series of
 * RDT measurements (module M1) compared against the ACF of a series of
 * normally distributed random numbers: no repeating patterns.
 *
 * Flags: --device=M1 --measurements=100000 --lags=40 --seed=2025
 */
#include <iostream>

#include "common/bench_util.h"
#include "common/rng.h"
#include "stats/autocorrelation.h"

using namespace vrddram;
using namespace vrddram::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string device = flags.GetString("device", "M1");
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements", 100000));
  const auto lags =
      static_cast<std::size_t>(flags.GetUint("lags", 40));
  const std::uint64_t seed = flags.GetUint("seed", 2025);

  PrintBanner(std::cout, "Figure 6: ACF of the RDT series of " + device +
                             " vs. ACF of white noise");

  SingleRowSeries data;
  if (!CollectSingleRowSeries(device, measurements, seed, &data)) {
    std::cerr << "no victim row found on " << device << '\n';
    return 1;
  }
  std::vector<double> values;
  for (const std::int64_t v : data.series) {
    if (v >= 0) {
      values.push_back(static_cast<double>(v));
    }
  }
  const std::vector<double> rdt_acf =
      stats::Autocorrelation(values, lags);

  // Reference: same-length normally distributed random series.
  Rng rng(seed ^ 0xac5);
  std::vector<double> noise(values.size());
  for (double& x : noise) {
    x = rng.NextGaussian();
  }
  const std::vector<double> noise_acf =
      stats::Autocorrelation(noise, lags);

  const double bound = stats::WhiteNoiseBound95(values.size());
  TextTable table({"lag", "ACF(RDT series)", "ACF(white noise)",
                   "95% band"});
  for (std::size_t lag = 0; lag <= lags; ++lag) {
    table.AddRow({Cell(static_cast<std::uint64_t>(lag)),
                  Cell(rdt_acf[lag], 4), Cell(noise_acf[lag], 4),
                  "+-" + Cell(bound, 4)});
  }
  table.Print(std::cout);

  const double rdt_sig =
      stats::FractionSignificantLags(rdt_acf, values.size());
  const double noise_sig =
      stats::FractionSignificantLags(noise_acf, noise.size());
  PrintBanner(std::cout, "Finding 4 check");
  PrintCheck("fig06.significant_lags_rdt_vs_noise",
             "comparable to white noise",
             Cell(rdt_sig, 3) + " vs " + Cell(noise_sig, 3));
  return 0;
}
