/**
 * @file
 * Figure 15 / §6.4: the probability of finding the minimum RDT within
 * a safety margin (10%..50%) using N < 1,000 measurements - mean
 * (circles) and minimum (bars) across all tested rows and parameter
 * combinations. Even N = 500 with a 50% margin does not guarantee the
 * minimum is identified.
 *
 * Flags: --devices=all --rows=6 --measurements=1000 --iters=4000
 *        --seed=2025
 */
#include <algorithm>
#include <iostream>

#include "common/bench_util.h"
#include "core/min_rdt_mc.h"

using namespace vrddram;
using namespace vrddram::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices", "all"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows", 6));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements", 1000));
  config.base_seed = flags.GetUint("seed", 2025);
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan", 96));
  config.threads = ResolveThreads(flags);
  ApplyResilienceFlags(flags, &config);
  // Two representative parameter combinations keep the run short; add
  // more with --patterns (the trend is unchanged).
  config.patterns = {dram::DataPattern::kCheckered0,
                     dram::DataPattern::kRowstripe1};

  core::MinRdtSettings settings;
  settings.sample_sizes = {1, 3, 5, 10, 50, 500};
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters", 4000));
  settings.margins = {0.10, 0.20, 0.30, 0.40, 0.50};

  PrintBanner(std::cout,
              "Figure 15: probability of finding the min RDT within a "
              "safety margin, vs. N measurements");

  const core::CampaignResult result = core::RunCampaign(config);
  PrintShardSummary(result);
  Rng rng(config.base_seed ^ 0xf15);

  // per (N index, margin index): list across rows.
  std::vector<std::vector<std::vector<double>>> probs(
      settings.sample_sizes.size(),
      std::vector<std::vector<double>>(settings.margins.size()));
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    for (std::size_t n = 0; n < settings.sample_sizes.size(); ++n) {
      for (std::size_t m = 0; m < settings.margins.size(); ++m) {
        probs[n][m].push_back(mc.per_n[n].prob_within_margin[m]);
      }
    }
  }

  TextTable table({"N", "margin", "mean P(within margin)",
                   "min P(within margin)"});
  double mean_n50_m10 = 0.0;
  double min_n50_m10 = 0.0;
  double min_n500_m50 = 0.0;
  for (std::size_t n = 0; n < settings.sample_sizes.size(); ++n) {
    for (std::size_t m = 0; m < settings.margins.size(); ++m) {
      const auto& values = probs[n][m];
      const double mean = stats::Mean(values);
      const double mn = *std::min_element(values.begin(), values.end());
      table.AddRow(
          {Cell(static_cast<std::uint64_t>(settings.sample_sizes[n])),
           Cell(settings.margins[m] * 100.0, 0) + "%", Cell(mean, 4),
           Cell(mn, 4)});
      if (settings.sample_sizes[n] == 50 && m == 0) {
        mean_n50_m10 = mean;
        min_n50_m10 = mn;
      }
      if (settings.sample_sizes[n] == 500 && m == 4) {
        min_n500_m50 = mn;
      }
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "§6.4 checks");
  PrintCheck("fig15.mean_prob_n50_margin10", 0.991, mean_n50_m10, 3);
  PrintCheck("fig15.min_prob_n50_margin10", 0.045, min_n50_m10, 3);
  PrintCheck("fig15.min_prob_n500_margin50", 0.749, min_n500_m50, 3);
  return 0;
}
