/**
 * @file
 * Extension: the near-future DDR5 regime (§6.3's "RDT of 1024") on a
 * PRAC-capable device. Runs Algorithm 1 on the hypothetical device,
 * shows that its VRD is as severe as Finding 11 predicts for advanced
 * nodes, and demonstrates the closed loop the paper's §6.5 calls for:
 * an online profiler feeding the device's PRAC threshold, keeping the
 * victim safe while hammered far past its minimum RDT.
 */
#include <iostream>

#include "bender/host.h"
#include "common/error.h"
#include "common/experiment.h"
#include "core/online_profiler.h"
#include "core/security_eval.h"

namespace vrddram::bench {
namespace {

void AnalyzeFutureDdr5(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  const std::uint64_t seed = flags.GetUint("seed");

  auto device = vrd::BuildFutureDdr5Device(seed);

  PrintBanner(out,
              "Near-future DDR5 (PRAC-capable, RDT ~1024 regime)");
  out << device->org().Describe() << "\n";

  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(8, 8192);
  VRD_FATAL_IF(!victim, "no victim row found");
  const auto series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, measurements);
  const core::SeriesAnalysis a = core::AnalyzeSeries(series);

  TextTable profile({"metric", "value"});
  profile.AddRow({"victim row", Cell(victim->row)});
  profile.AddRow({"RDT guess", Cell(victim->rdt_guess)});
  profile.AddRow({"min / max RDT",
                  Cell(a.min_rdt) + " / " + Cell(a.max_rdt)});
  profile.AddRow({"max/min", Cell(a.max_over_min, 3)});
  profile.AddRow({"CV", Cell(a.cv, 4)});
  profile.AddRow({"unique values", Cell(a.unique_values)});
  profile.Print(out);
  PrintCheck(out, "future.vrd_severe_at_advanced_node",
             "worse than today's chips (Finding 11 extrapolated)",
             Cell(a.cv, 4) + " CV");

  PrintBanner(out,
              "Closed loop: online profiler -> device PRAC threshold");
  core::OnlineRdtProfiler online(*device, victim->row);
  std::uint64_t reconfigurations = 0;
  for (int window = 0; window < 100; ++window) {
    if (online.RunMaintenanceWindow()) {
      const auto threshold = online.RecommendedThreshold();
      if (threshold) {
        device->SetPracThreshold(*threshold);
        ++reconfigurations;
      }
    }
    device->Sleep(units::kSecond);
  }
  const auto final_threshold = online.RecommendedThreshold();
  out << "maintenance windows: 100, reconfigurations: "
      << reconfigurations << ", final PRAC threshold: "
      << (final_threshold ? Cell(*final_threshold)
                          : std::string("none"))
      << "\n";

  if (final_threshold) {
    // PRAC is configured below the profiler's recommendation: the
    // counter fires early enough that in-flight activations cannot
    // carry the dose past the row's deepest observed states.
    const auto prac_threshold =
        static_cast<std::uint64_t>(*final_threshold * 0.6);
    device->SetPracThreshold(prac_threshold);

    // Initialize the victim neighbourhood, then attack well past the
    // observed minimum, servicing ALERT_n whenever the device raises
    // it (chunked hammering models the controller's reaction latency).
    bender::TestHost host(*device);
    host.InitializeNeighborhood(0, victim->row,
                                dram::DataPattern::kCheckered0);
    const std::uint64_t chunk = std::max<std::uint64_t>(
        1, prac_threshold / 4);
    for (int burst = 0; burst < 40; ++burst) {
      device->HammerDoubleSided(0, victim->row, chunk,
                                device->timing().tRAS);
      if (device->AlertPending()) {
        device->ServiceAlert();
      }
    }
    const auto flips = host.ReadAndCompareVictim(
        0, victim->row, dram::DataPattern::kCheckered0);
    PrintCheck(out, "future.prac_with_online_threshold_protects",
               "0 bitflips",
               Cell(static_cast<std::uint64_t>(flips.size())) +
                   " bitflips");
  }
}

ExperimentSpec FutureDdr5Spec() {
  ExperimentSpec spec;
  spec.name = "future_ddr5";
  spec.description =
      "Near-future DDR5 regime with an online-profiled PRAC loop";
  spec.flags = {
      {"measurements", "2000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--measurements=300"};
  spec.analyze = AnalyzeFutureDdr5;
  return spec;
}

VRD_REGISTER_EXPERIMENT(FutureDdr5Spec);

}  // namespace
}  // namespace vrddram::bench
