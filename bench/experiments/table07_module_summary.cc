/**
 * @file
 * Table 7 (Appendix B): per-module summary - the median and maximum
 * expected normalized value of the minimum RDT across rows for
 * N = 1, 5, 50, 500 measurements, and the minimum observed RDT across
 * all measurements for tAggOn = tRAS and tAggOn = tREFI.
 */
#include <algorithm>
#include <iostream>
#include <map>

#include "common/experiment.h"
#include "core/min_rdt_mc.h"

namespace vrddram::bench {
namespace {

core::CampaignConfig BuildTable07Campaign(const Flags& flags) {
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));
  ApplyCampaignExecutionFlags(flags, &config);
  config.t_ons = {core::TOnChoice::kMinTras, core::TOnChoice::kTrefi};
  return config;
}

void AnalyzeTable07(const core::CampaignResult& result, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const core::CampaignConfig config = BuildTable07Campaign(flags);

  core::MinRdtSettings settings;
  settings.sample_sizes = {1, 5, 50, 500};
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters"));

  PrintBanner(out, "Table 7: per-module VRD summary");

  PrintShardSummary(out, result);
  Rng rng(config.base_seed ^ 0x707);

  struct ModuleAgg {
    std::vector<std::vector<double>> norm_by_n;  // per N
    std::int64_t min_rdt_tras = -1;
    std::int64_t min_rdt_trefi = -1;
  };
  std::map<std::string, ModuleAgg> modules;
  for (const core::SeriesRecord& record : result.records) {
    ModuleAgg& agg = modules[record.device];
    if (agg.norm_by_n.empty()) {
      agg.norm_by_n.resize(settings.sample_sizes.size());
    }
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    for (std::size_t i = 0; i < mc.per_n.size(); ++i) {
      agg.norm_by_n[i].push_back(mc.per_n[i].expected_norm_min);
    }
    std::int64_t series_min = -1;
    for (const std::int64_t v : record.series) {
      if (v >= 0 && (series_min < 0 || v < series_min)) {
        series_min = v;
      }
    }
    std::int64_t& slot = (record.t_on == core::TOnChoice::kMinTras)
                             ? agg.min_rdt_tras
                             : agg.min_rdt_trefi;
    if (series_min >= 0 && (slot < 0 || series_min < slot)) {
      slot = series_min;
    }
  }

  TextTable table({"module", "N=1 med", "N=1 max", "N=5 med",
                   "N=5 max", "N=50 med", "N=50 max", "N=500 med",
                   "N=500 max", "minRDT tRAS", "minRDT tREFI"});
  for (const std::string& name : config.devices) {
    const auto it = modules.find(name);
    if (it == modules.end()) {
      continue;
    }
    const ModuleAgg& agg = it->second;
    std::vector<std::string> row = {name};
    for (std::size_t i = 0; i < settings.sample_sizes.size(); ++i) {
      const stats::BoxStats box = Box(agg.norm_by_n[i]);
      row.push_back(Cell(box.median, 2));
      row.push_back(Cell(box.max, 2));
    }
    row.push_back(Cell(agg.min_rdt_tras));
    row.push_back(Cell(agg.min_rdt_trefi));
    table.AddRow(row);
  }
  table.Print(out);

  PrintBanner(out, "Table 7 spot checks");
  auto spot = [&](const std::string& name, double paper_med_n1,
                  std::int64_t paper_min_tras,
                  std::int64_t paper_min_trefi) {
    const auto it = modules.find(name);
    if (it == modules.end()) {
      return;
    }
    PrintCheck(out, "table07." + name + ".median_n1", paper_med_n1,
               Box(it->second.norm_by_n[0]).median, 2);
    PrintCheck(out, "table07." + name + ".min_rdt_tras",
               Cell(paper_min_tras), Cell(it->second.min_rdt_tras));
    PrintCheck(out, "table07." + name + ".min_rdt_trefi",
               Cell(paper_min_trefi), Cell(it->second.min_rdt_trefi));
  };
  spot("H1", 1.07, 7835, 1941);
  spot("M1", 1.08, 4250, 1796);
  spot("S0", 1.04, 12152, 1965);
  spot("Chip0", 1.05, 45136, 1244);
}

ExperimentSpec Table07Spec() {
  ExperimentSpec spec;
  spec.name = "table07_module_summary";
  spec.description = "Table 7: per-module VRD summary (Appendix B)";
  spec.flags = WithCampaignFlags({
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "6", "victim rows per device"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
      {"iters", "4000", "Monte Carlo iterations per (row, N)"},
  });
  spec.smoke_args = {"--devices=M1,S2", "--rows=3", "--measurements=120",
                     "--iters=500"};
  spec.build_campaign = BuildTable07Campaign;
  spec.analyze = AnalyzeTable07;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Table07Spec);

}  // namespace
}  // namespace vrddram::bench
