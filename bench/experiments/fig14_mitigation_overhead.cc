/**
 * @file
 * Figure 14 / §6.3: four-core highly-memory-intensive workload
 * performance under Graphene, PRAC, PARA, and MINT, normalized to the
 * baseline system without read-disturbance mitigation, for two
 * threshold regimes (near-future RDT = 1024 and very-low RDT = 128)
 * each with 0%, 10%, 25%, and 50% safety margins.
 */
#include <iostream>
#include <map>

#include "common/experiment.h"
#include "memsim/system.h"

namespace vrddram::bench {
namespace {

using memsim::MakeHighMemoryIntensityMixes;
using memsim::MitigationKind;
using memsim::NormalizedPerformance;
using memsim::Scheduler;
using memsim::SimulateMix;
using memsim::SystemConfig;
using memsim::SystemResult;

void AnalyzeFig14(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const auto requests =
      static_cast<std::size_t>(flags.GetUint("requests"));
  const auto num_mixes =
      static_cast<std::size_t>(flags.GetUint("mixes"));
  const std::uint64_t seed = flags.GetUint("seed");
  const Scheduler scheduler = flags.GetBool("frfcfs")
                                  ? Scheduler::kFrFcfs
                                  : Scheduler::kInOrder;

  PrintBanner(out,
              "Figure 14: normalized performance of read-disturbance "
              "mitigations vs. configured RDT and guardband");

  struct Config {
    std::uint64_t base_rdt;
    double margin;
  };
  const Config configs[] = {{1024, 0.0},  {1024, 0.10}, {1024, 0.25},
                            {1024, 0.50}, {128, 0.0},   {128, 0.10},
                            {128, 0.25},  {128, 0.50}};
  const MitigationKind kinds[] = {
      MitigationKind::kGraphene, MitigationKind::kPrac,
      MitigationKind::kPara, MitigationKind::kMint};

  auto mixes = MakeHighMemoryIntensityMixes(42);
  if (mixes.size() > num_mixes) {
    mixes.resize(num_mixes);
  }

  // Baseline per mix.
  std::vector<SystemResult> baselines;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    SystemConfig sc;
    sc.requests_per_core = requests;
    sc.seed = seed + m;
    sc.scheduler = scheduler;
    baselines.push_back(SimulateMix(mixes[m], sc));
  }

  TextTable table({"RDT (margin)", "configured", "Graphene", "PRAC",
                   "PARA", "MINT"});
  std::map<std::pair<int, int>, double> cell;  // (config idx, kind idx)
  for (std::size_t c = 0; c < std::size(configs); ++c) {
    const auto configured = static_cast<std::uint64_t>(
        static_cast<double>(configs[c].base_rdt) *
        (1.0 - configs[c].margin));
    std::vector<std::string> row = {
        Cell(configs[c].base_rdt) + " (" +
            Cell(configs[c].margin * 100.0, 0) + "%)",
        Cell(configured)};
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      double sum = 0.0;
      for (std::size_t m = 0; m < mixes.size(); ++m) {
        SystemConfig sc;
        sc.requests_per_core = requests;
        sc.seed = seed + m;
        sc.scheduler = scheduler;
        sc.mitigation = kinds[k];
        sc.rdt = configured;
        const SystemResult result = SimulateMix(mixes[m], sc);
        sum += NormalizedPerformance(result, baselines[m]);
      }
      const double mean = sum / static_cast<double>(mixes.size());
      cell[{static_cast<int>(c), static_cast<int>(k)}] = mean;
      row.push_back(Cell(mean, 3));
    }
    table.AddRow(row);
  }
  table.Print(out);

  // Tail-latency view of the worst configuration.
  {
    SystemConfig sc;
    sc.requests_per_core = requests;
    sc.seed = seed;
    sc.scheduler = scheduler;
    const SystemResult base = SimulateMix(mixes[0], sc);
    sc.mitigation = MitigationKind::kMint;
    sc.rdt = 64;
    const SystemResult worst = SimulateMix(mixes[0], sc);
    PrintBanner(out, "Latency (mix0): baseline vs MINT @ RDT 64");
    TextTable latency({"config", "avg (ns)", "p50 (ns)", "p99 (ns)"});
    latency.AddRow({"baseline", Cell(base.AvgLatencyNs(), 1),
                    Cell(base.LatencyPercentileNs(50.0), 1),
                    Cell(base.LatencyPercentileNs(99.0), 1)});
    latency.AddRow({"MINT @ 64", Cell(worst.AvgLatencyNs(), 1),
                    Cell(worst.LatencyPercentileNs(50.0), 1),
                    Cell(worst.LatencyPercentileNs(99.0), 1)});
    latency.Print(out);
  }

  PrintBanner(out, "§6.3 checks (losses relative to no margin)");
  auto loss_vs_margin0 = [&](int kind, int margin_cfg, int base_cfg) {
    return 100.0 * (1.0 - cell[{margin_cfg, kind}] /
                              cell[{base_cfg, kind}]);
  };
  // At RDT = 128: 10% margin costs Graphene 1.0%, PRAC 0.0%,
  // PARA 5.9%, MINT 0.0%; 50% margin costs 8.5 / 7.6 / 35.0 / 45.0%.
  PrintCheck(out, "fig14.rdt128_margin10.graphene_loss_pct", 1.0,
             loss_vs_margin0(0, 5, 4), 1);
  PrintCheck(out, "fig14.rdt128_margin10.prac_loss_pct", 0.0,
             loss_vs_margin0(1, 5, 4), 1);
  PrintCheck(out, "fig14.rdt128_margin10.para_loss_pct", 5.9,
             loss_vs_margin0(2, 5, 4), 1);
  PrintCheck(out, "fig14.rdt128_margin10.mint_loss_pct", 0.0,
             loss_vs_margin0(3, 5, 4), 1);
  PrintCheck(out, "fig14.rdt128_margin50.graphene_loss_pct", 8.5,
             loss_vs_margin0(0, 7, 4), 1);
  PrintCheck(out, "fig14.rdt128_margin50.prac_loss_pct", 7.6,
             loss_vs_margin0(1, 7, 4), 1);
  PrintCheck(out, "fig14.rdt128_margin50.para_loss_pct", 35.0,
             loss_vs_margin0(2, 7, 4), 1);
  PrintCheck(out, "fig14.rdt128_margin50.mint_loss_pct", 45.0,
             loss_vs_margin0(3, 7, 4), 1);
}

ExperimentSpec Fig14Spec() {
  ExperimentSpec spec;
  spec.name = "fig14_mitigation_overhead";
  spec.description =
      "Figure 14: normalized performance of RD mitigations";
  spec.flags = {
      {"requests", "20000", "memory requests per core"},
      {"mixes", "15", "workload mixes to simulate"},
      {"seed", "2025", "base RNG seed"},
      {"frfcfs", "false", "use the FR-FCFS scheduler"},
  };
  spec.smoke_args = {"--requests=2000", "--mixes=2"};
  spec.analyze = AnalyzeFig14;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig14Spec);

}  // namespace
}  // namespace vrddram::bench
