/**
 * @file
 * Figure 13 / Finding 17: coefficient of variation across 1,000 RDT
 * measurements for rows with anti-cells vs. rows with true-cells in
 * module M0, across data patterns, temperature levels, and aggressor
 * row on times. The encoding of each row is reverse-engineered with
 * the retention-based methodology (write 0x00 / 0xFF, pause refresh
 * far beyond retention, observe the decay direction).
 */
#include <iostream>
#include <map>

#include "bender/host.h"
#include "common/experiment.h"

namespace vrddram::bench {
namespace {

void AnalyzeFig13(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const std::string device_name = flags.GetString("device");
  const auto want_anti =
      static_cast<std::size_t>(flags.GetUint("anti"));
  const auto want_true =
      static_cast<std::size_t>(flags.GetUint("true"));
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  const std::uint64_t seed = flags.GetUint("seed");

  PrintBanner(out,
              "Figure 13: CV of RDT for anti-cell vs. true-cell rows "
              "(" + device_name + ")");

  auto device = vrd::BuildDevice(device_name, seed);
  bender::TestHost host(*device);
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);

  // Reverse-engineer row encodings until enough of each class is
  // found; keep only rows that are also disturbance-vulnerable.
  std::vector<std::pair<dram::RowAddr, dram::CellEncoding>> rows;
  std::size_t anti_found = 0;
  std::size_t true_found = 0;
  Rng pick(seed ^ 0x13);
  const dram::RowAddr last = device->org().LargestRowAddress();
  for (int attempts = 0;
       attempts < 4000 &&
       (anti_found < want_anti || true_found < want_true);
       ++attempts) {
    const auto row = static_cast<dram::RowAddr>(
        1 + pick.NextBelow(last - 1));
    const dram::PhysicalRow phys = device->mapper().ToPhysical(row);
    if (phys.value == 0 || phys.value >= last) {
      continue;
    }
    const auto encoding =
        host.DiscoverRowEncoding(0, row, 1800 * units::kSecond);
    if (!encoding) {
      continue;  // no retention-weak cell betrays this row
    }
    if (*encoding == dram::CellEncoding::kAntiCell &&
        anti_found >= want_anti) {
      continue;
    }
    if (*encoding == dram::CellEncoding::kTrueCell &&
        true_found >= want_true) {
      continue;
    }
    if (!profiler.GuessRdt(row)) {
      continue;  // not disturbance-vulnerable under the base setup
    }
    rows.emplace_back(row, *encoding);
    (*encoding == dram::CellEncoding::kAntiCell ? anti_found
                                                : true_found)++;
  }
  out << "rows: " << anti_found << " anti-cell, " << true_found
      << " true-cell\n";

  // CV per (row, sweep dimension): patterns at 50 degC / min tRAS;
  // temperatures with Rowstripe1; tAggOn values with Rowstripe1.
  struct Sweep {
    std::string subplot;
    dram::DataPattern pattern;
    core::TOnChoice t_on;
    Celsius temp;
  };
  std::vector<Sweep> sweeps;
  for (const dram::DataPattern p : dram::kAllDataPatterns) {
    sweeps.push_back({"data pattern", p, core::TOnChoice::kMinTras,
                      50.0});
  }
  for (const Celsius t : {50.0, 65.0, 80.0}) {
    sweeps.push_back({"temperature", dram::DataPattern::kRowstripe1,
                      core::TOnChoice::kMinTras, t});
  }
  for (const core::TOnChoice t :
       {core::TOnChoice::kMinTras, core::TOnChoice::kTrefi,
        core::TOnChoice::kNineTrefi}) {
    sweeps.push_back(
        {"tAggOn", dram::DataPattern::kRowstripe1, t, 50.0});
  }

  std::map<std::string, std::map<bool, std::vector<double>>> cv;
  for (const Sweep& sweep : sweeps) {
    device->SetTemperature(sweep.temp);
    core::ProfilerConfig spc;
    spc.pattern = sweep.pattern;
    spc.t_on = core::ResolveTOn(sweep.t_on, device->timing());
    core::RdtProfiler sweep_profiler(*device, spc);
    for (const auto& [row, encoding] : rows) {
      const auto guess = sweep_profiler.GuessRdt(row);
      if (!guess) {
        continue;
      }
      const auto series =
          sweep_profiler.MeasureSeries(row, *guess, measurements);
      const auto analysis = core::AnalyzeSeries(series, 1);
      cv[sweep.subplot]
        [encoding == dram::CellEncoding::kAntiCell]
            .push_back(analysis.cv);
    }
  }

  TextTable table({"subplot", "cell type", "min", "Q1", "median", "Q3",
                   "max", "mean"});
  std::map<std::string, std::pair<double, double>> medians;
  for (const auto& [subplot, per_class] : cv) {
    for (const auto& [is_anti, values] : per_class) {
      const stats::BoxStats box = Box(values);
      table.AddRow({subplot, is_anti ? "anti-cell" : "true-cell",
                    Cell(box.min, 4), Cell(box.q1, 4),
                    Cell(box.median, 4), Cell(box.q3, 4),
                    Cell(box.max, 4), Cell(box.mean, 4)});
      if (is_anti) {
        medians[subplot].first = box.median;
      } else {
        medians[subplot].second = box.median;
      }
    }
  }
  table.Print(out);

  PrintBanner(out, "Finding 17 check");
  for (const auto& [subplot, pair] : medians) {
    const double ratio =
        (pair.second > 0.0) ? pair.first / pair.second : 0.0;
    PrintCheck(out, "fig13.anti_vs_true_median_cv_ratio." + subplot,
               "~1 (no significant difference)", ratio, 2);
  }
}

ExperimentSpec Fig13Spec() {
  ExperimentSpec spec;
  spec.name = "fig13_true_anti_cell";
  spec.description =
      "Figure 13: CV of RDT for anti-cell vs. true-cell rows";
  spec.flags = {
      {"device", "M0", "module whose rows are reverse-engineered"},
      {"anti", "12", "anti-cell rows to collect"},
      {"true", "18", "true-cell rows to collect"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--anti=3", "--true=3", "--measurements=120"};
  spec.analyze = AnalyzeFig13;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig13Spec);

}  // namespace
}  // namespace vrddram::bench
