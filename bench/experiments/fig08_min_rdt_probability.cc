/**
 * @file
 * Figure 8 (and its expanded version, Figure 25) / Findings 7-9:
 * Monte Carlo analysis of identifying the minimum RDT. Top panel:
 * distribution (across rows) of the probability of finding the series
 * minimum with N = 1, 3, 5, 10, 50, 500 uniformly drawn measurements.
 * Middle: distribution of the expected value of the minimum found,
 * normalized to the series minimum. Bottom: the (probability, expected
 * normalized minimum) scatter per row.
 */
#include <algorithm>
#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "core/min_rdt_mc.h"

namespace vrddram::bench {
namespace {

core::CampaignConfig BuildFig08Campaign(const Flags& flags) {
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));
  ApplyCampaignExecutionFlags(flags, &config);
  return config;
}

void AnalyzeFig08(const core::CampaignResult& result, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const core::CampaignConfig config = BuildFig08Campaign(flags);

  core::MinRdtSettings settings;
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters"));

  PrintBanner(out,
              "Figure 8: probability of finding the minimum RDT and "
              "expected normalized minimum vs. N measurements");

  PrintShardSummary(out, result);
  Rng rng(config.base_seed ^ 0xf18);

  // The Monte Carlo stage reuses the campaign's thread setting; the
  // per-N fan-out inside AnalyzeRowSeries is deterministic either way.
  std::unique_ptr<ThreadPool> pool;
  if (config.threads != 1) {
    pool = std::make_unique<ThreadPool>(config.threads);
  }

  std::vector<std::vector<double>> prob_by_n(
      settings.sample_sizes.size());
  std::vector<std::vector<double>> norm_by_n(
      settings.sample_sizes.size());
  // Hoisted result + scratch: the per-record Monte Carlo loop reuses
  // one set of buffers instead of reallocating per series.
  core::RowMinRdtResult mc;
  core::MinRdtScratch mc_scratch;
  for (const core::SeriesRecord& record : result.records) {
    core::AnalyzeRowSeries(record.series, settings, rng, mc, mc_scratch,
                           pool.get());
    for (std::size_t i = 0; i < mc.per_n.size(); ++i) {
      prob_by_n[i].push_back(mc.per_n[i].prob_find_min);
      norm_by_n[i].push_back(mc.per_n[i].expected_norm_min);
    }
  }

  PrintBanner(out, "Top: P(find min RDT) across rows");
  TextTable top({"N", "min", "Q1", "median", "Q3", "max", "mean"});
  for (std::size_t i = 0; i < settings.sample_sizes.size(); ++i) {
    AddBoxRow(top, Cell(static_cast<std::uint64_t>(
                       settings.sample_sizes[i])),
              Box(prob_by_n[i]), 4);
  }
  top.Print(out);

  PrintBanner(out,
              "Middle: expected normalized value of the minimum RDT");
  TextTable mid({"N", "min", "Q1", "median", "Q3", "max", "mean"});
  for (std::size_t i = 0; i < settings.sample_sizes.size(); ++i) {
    AddBoxRow(mid, Cell(static_cast<std::uint64_t>(
                       settings.sample_sizes[i])),
              Box(norm_by_n[i]), 4);
  }
  mid.Print(out);

  PrintBanner(out,
              "Bottom (Fig. 25): per-row scatter summary for N = 1");
  // Rows with low probability and high expected normalized minimum are
  // the worst VRD rows (top-left corner in the paper's plot).
  std::size_t low_prob_rows = 0;
  std::size_t high_prob_rows = 0;
  double worst_norm_low_prob = 1.0;
  double sum_norm_low_prob = 0.0;
  for (std::size_t r = 0; r < prob_by_n[0].size(); ++r) {
    if (prob_by_n[0][r] <= 0.001) {
      ++low_prob_rows;
      worst_norm_low_prob =
          std::max(worst_norm_low_prob, norm_by_n[0][r]);
      sum_norm_low_prob += norm_by_n[0][r];
    }
    if (prob_by_n[0][r] >= 0.999) {
      ++high_prob_rows;
    }
  }
  const auto total_rows = static_cast<double>(prob_by_n[0].size());
  out << "rows analyzed: " << prob_by_n[0].size() << "\n";

  PrintBanner(out, "Findings 7-9 checks");
  PrintCheck(out, "fig08.p50_prob_find_min_n1", 0.002,
             stats::Percentile(prob_by_n[0], 50.0), 4);
  PrintCheck(out, "fig08.p50_prob_find_min_n500", 0.753,
             stats::Percentile(prob_by_n.back(), 50.0), 3);
  PrintCheck(out, "fig08.rows_with_prob_le_0.1pct_n1", "22.4%",
             Cell(100.0 * static_cast<double>(low_prob_rows) /
                      total_rows, 1) + "%");
  PrintCheck(out, "fig08.rows_with_prob_ge_99.9pct_n1", "5.4%",
             Cell(100.0 * static_cast<double>(high_prob_rows) /
                      total_rows, 1) + "%");
  PrintCheck(out, "fig08.worst_norm_min_among_low_prob_rows", 1.9,
             worst_norm_low_prob, 2);
  if (low_prob_rows > 0) {
    PrintCheck(out, "fig08.mean_norm_min_among_low_prob_rows", 1.1,
               sum_norm_low_prob / static_cast<double>(low_prob_rows),
               2);
  }
}

ExperimentSpec Fig08Spec() {
  ExperimentSpec spec;
  spec.name = "fig08_min_rdt_probability";
  spec.description =
      "Figure 8: Monte Carlo probability of finding the minimum RDT";
  spec.flags = WithCampaignFlags({
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "9", "victim rows per device"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
      {"iters", "10000", "Monte Carlo iterations per (row, N)"},
  });
  spec.smoke_args = {"--devices=M1,S2", "--rows=3", "--measurements=150",
                     "--iters=500"};
  spec.build_campaign = BuildFig08Campaign;
  spec.analyze = AnalyzeFig08;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig08Spec);

}  // namespace
}  // namespace vrddram::bench
