/**
 * @file
 * Figure 15 / §6.4: the probability of finding the minimum RDT within
 * a safety margin (10%..50%) using N < 1,000 measurements - mean
 * (circles) and minimum (bars) across all tested rows and parameter
 * combinations. Even N = 500 with a 50% margin does not guarantee the
 * minimum is identified.
 */
#include <algorithm>
#include <iostream>

#include "common/experiment.h"
#include "core/min_rdt_mc.h"

namespace vrddram::bench {
namespace {

core::CampaignConfig BuildFig15Campaign(const Flags& flags) {
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));
  ApplyCampaignExecutionFlags(flags, &config);
  // Two representative parameter combinations keep the run short; add
  // more with --patterns (the trend is unchanged).
  config.patterns = {dram::DataPattern::kCheckered0,
                     dram::DataPattern::kRowstripe1};
  return config;
}

void AnalyzeFig15(const core::CampaignResult& result, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const core::CampaignConfig config = BuildFig15Campaign(flags);

  core::MinRdtSettings settings;
  settings.sample_sizes = {1, 3, 5, 10, 50, 500};
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters"));
  settings.margins = {0.10, 0.20, 0.30, 0.40, 0.50};

  PrintBanner(out,
              "Figure 15: probability of finding the min RDT within a "
              "safety margin, vs. N measurements");

  PrintShardSummary(out, result);
  Rng rng(config.base_seed ^ 0xf15);

  // per (N index, margin index): list across rows.
  std::vector<std::vector<std::vector<double>>> probs(
      settings.sample_sizes.size(),
      std::vector<std::vector<double>>(settings.margins.size()));
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    for (std::size_t n = 0; n < settings.sample_sizes.size(); ++n) {
      for (std::size_t m = 0; m < settings.margins.size(); ++m) {
        probs[n][m].push_back(mc.per_n[n].prob_within_margin[m]);
      }
    }
  }

  TextTable table({"N", "margin", "mean P(within margin)",
                   "min P(within margin)"});
  double mean_n50_m10 = 0.0;
  double min_n50_m10 = 0.0;
  double min_n500_m50 = 0.0;
  for (std::size_t n = 0; n < settings.sample_sizes.size(); ++n) {
    for (std::size_t m = 0; m < settings.margins.size(); ++m) {
      const auto& values = probs[n][m];
      const double mean = stats::Mean(values);
      const double mn = *std::min_element(values.begin(), values.end());
      table.AddRow(
          {Cell(static_cast<std::uint64_t>(settings.sample_sizes[n])),
           Cell(settings.margins[m] * 100.0, 0) + "%", Cell(mean, 4),
           Cell(mn, 4)});
      if (settings.sample_sizes[n] == 50 && m == 0) {
        mean_n50_m10 = mean;
        min_n50_m10 = mn;
      }
      if (settings.sample_sizes[n] == 500 && m == 4) {
        min_n500_m50 = mn;
      }
    }
  }
  table.Print(out);

  PrintBanner(out, "§6.4 checks");
  PrintCheck(out, "fig15.mean_prob_n50_margin10", 0.991, mean_n50_m10,
             3);
  PrintCheck(out, "fig15.min_prob_n50_margin10", 0.045, min_n50_m10, 3);
  PrintCheck(out, "fig15.min_prob_n500_margin50", 0.749, min_n500_m50,
             3);
}

ExperimentSpec Fig15Spec() {
  ExperimentSpec spec;
  spec.name = "fig15_guardband_probability";
  spec.description =
      "Figure 15: probability of finding the min RDT within a margin";
  spec.flags = WithCampaignFlags({
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "6", "victim rows per device"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
      {"iters", "4000", "Monte Carlo iterations per (row, N)"},
  });
  spec.smoke_args = {"--devices=M1,S2", "--rows=3", "--measurements=150",
                     "--iters=500"};
  spec.build_campaign = BuildFig15Campaign;
  spec.analyze = AnalyzeFig15;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig15Spec);

}  // namespace
}  // namespace vrddram::bench
