/**
 * @file
 * Figure 11 / Findings 14-15: the expected normalized value of the
 * minimum RDT after N measurements for the three aggressor-on-time
 * levels (minimum tRAS, tREFI, 9 x tREFI), per manufacturer. The VRD
 * profile can become better or worse as tAggOn increases.
 */
#include <algorithm>
#include <iostream>
#include <map>

#include "common/experiment.h"
#include "core/min_rdt_mc.h"

namespace vrddram::bench {
namespace {

core::CampaignConfig BuildFig11Campaign(const Flags& flags) {
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));
  ApplyCampaignExecutionFlags(flags, &config);
  config.t_ons = {core::TOnChoice::kMinTras, core::TOnChoice::kTrefi,
                  core::TOnChoice::kNineTrefi};
  return config;
}

void AnalyzeFig11(const core::CampaignResult& result, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const core::CampaignConfig config = BuildFig11Campaign(flags);

  core::MinRdtSettings settings;
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters"));

  PrintBanner(out,
              "Figure 11: expected normalized min RDT per tAggOn and "
              "manufacturer");

  PrintShardSummary(out, result);
  Rng rng(config.base_seed ^ 0xf1b);

  std::map<std::string,
           std::map<core::TOnChoice, std::vector<std::vector<double>>>>
      groups;
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    auto& per_ton = groups[ManufacturerGroupName(record)][record.t_on];
    if (per_ton.empty()) {
      per_ton.resize(settings.sample_sizes.size());
    }
    for (std::size_t i = 0; i < mc.per_n.size(); ++i) {
      per_ton[i].push_back(mc.per_n[i].expected_norm_min);
    }
  }

  TextTable table({"group", "tAggOn", "N", "median", "max", "mean"});
  std::map<std::string, std::map<core::TOnChoice, double>> median_n1;
  for (const auto& [group, per_ton_map] : groups) {
    for (const auto& [ton, per_n] : per_ton_map) {
      for (std::size_t i = 0; i < settings.sample_sizes.size(); ++i) {
        if (per_n[i].empty()) {
          continue;
        }
        const stats::BoxStats box = Box(per_n[i]);
        table.AddRow(
            {group, ToString(ton),
             Cell(static_cast<std::uint64_t>(settings.sample_sizes[i])),
             Cell(box.median, 4), Cell(box.max, 4), Cell(box.mean, 4)});
        if (settings.sample_sizes[i] == 1) {
          median_n1[group][ton] = box.median;
        }
      }
    }
  }
  table.Print(out);

  PrintBanner(out, "Findings 14-15 checks");
  for (const auto& [group, per_ton] : median_n1) {
    if (per_ton.size() < 2) {
      continue;
    }
    double mn = 2.0;
    double mx = 0.0;
    for (const auto& [ton, median] : per_ton) {
      mn = std::min(mn, median);
      mx = std::max(mx, median);
    }
    PrintCheck(out, "fig11.profile_changes_with_taggon." + group,
               "medians differ across tAggOn",
               Cell(mn, 4) + " .. " + Cell(mx, 4));
  }
}

ExperimentSpec Fig11Spec() {
  ExperimentSpec spec;
  spec.name = "fig11_taggon";
  spec.description =
      "Figure 11: expected normalized min RDT per tAggOn level";
  spec.flags = WithCampaignFlags({
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "6", "victim rows per device"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
      {"iters", "4000", "Monte Carlo iterations per (row, N)"},
  });
  spec.smoke_args = {"--devices=M1,S2", "--rows=3", "--measurements=120",
                     "--iters=500"};
  spec.build_campaign = BuildFig11Campaign;
  spec.analyze = AnalyzeFig11;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig11Spec);

}  // namespace
}  // namespace vrddram::bench
