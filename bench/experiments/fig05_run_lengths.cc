/**
 * @file
 * Figure 5 / Finding 3: histogram of the number of consecutive
 * measurements across which a row's RDT keeps the same value,
 * aggregated across all tested rows. The paper reports that 79.0% of
 * state changes happen after every measurement and that runs of 14
 * equal values are seen only once.
 */
#include <iostream>

#include "common/experiment.h"
#include "stats/run_length.h"

namespace vrddram::bench {
namespace {

void AnalyzeFig05(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  const std::uint64_t seed = flags.GetUint("seed");
  const auto devices = ResolveDevices(flags.GetString("devices"));

  PrintBanner(out,
              "Figure 5: run lengths of equal consecutive RDT "
              "measurements, aggregated across rows");

  stats::RunLengthHistogram aggregate;
  for (const std::string& name : devices) {
    SingleRowSeries data;
    if (!CollectSingleRowSeries(name, measurements, seed, &data)) {
      continue;
    }
    std::vector<std::int64_t> valid;
    for (const std::int64_t v : data.series) {
      if (v >= 0) {
        valid.push_back(v);
      }
    }
    stats::Merge(aggregate, stats::ComputeRunLengths(valid));
  }

  TextTable table({"consecutive equal measurements", "# of runs"});
  for (const auto& [length, count] : aggregate.counts) {
    table.AddRow({Cell(static_cast<std::uint64_t>(length)),
                  Cell(count)});
  }
  table.Print(out);

  PrintBanner(out, "Finding 3 checks");
  PrintCheck(out, "fig05.immediate_change_fraction", 0.790,
             aggregate.ImmediateChangeFraction(), 3);
  PrintCheck(out, "fig05.longest_run", "14 (observed once)",
             Cell(static_cast<std::uint64_t>(aggregate.LongestRun())));
}

ExperimentSpec Fig05Spec() {
  ExperimentSpec spec;
  spec.name = "fig05_run_lengths";
  spec.description =
      "Figure 5: run lengths of equal consecutive RDT measurements";
  spec.flags = {
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"measurements", "100000", "measurements per victim row"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--measurements=2000", "--devices=M1,S2"};
  spec.analyze = AnalyzeFig05;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig05Spec);

}  // namespace
}  // namespace vrddram::bench
