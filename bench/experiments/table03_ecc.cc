/**
 * @file
 * Table 3 / §6.4: probability of uncorrectable, undetectable, and
 * detectable-but-uncorrectable errors for SEC, SECDED, and
 * Chipkill-like SSC codes at the worst empirically observed bit error
 * rate (7.6e-5, from 5 unique bitflips in a 64 Kibit row at a 10% RDT
 * guardband). The analytic model is cross-checked against Monte Carlo
 * fault injection into the real codecs.
 */
#include <iostream>

#include "common/experiment.h"
#include "common/rng.h"
#include "ecc/analysis.h"
#include "ecc/chipkill.h"
#include "ecc/hamming.h"

namespace vrddram::bench {
namespace {

using namespace vrddram::ecc;

std::string Prob(double p) {
  if (p < 0.0) {
    return "N/A";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2e", p);
  return buffer;
}

void AnalyzeTable03(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const double ber = flags.GetDouble("ber");
  const auto mc_trials =
      static_cast<std::size_t>(flags.GetUint("mc_trials"));
  const std::uint64_t seed = flags.GetUint("seed");

  PrintBanner(out, "Table 3: error probabilities at BER " + Prob(ber));

  TextTable table({"Type of error", "SEC", "SECDED",
                   "Chipkill-like (SSC)"});
  const ErrorProbabilities sec = AnalyzeCode(CodeKind::kSec, ber);
  const ErrorProbabilities secded = AnalyzeCode(CodeKind::kSecded, ber);
  const ErrorProbabilities ssc = AnalyzeCode(CodeKind::kChipkill, ber);
  table.AddRow({"Uncorrectable", Prob(sec.uncorrectable),
                Prob(secded.uncorrectable), Prob(ssc.uncorrectable)});
  table.AddRow({"Undetectable", Prob(sec.undetectable),
                Prob(secded.undetectable), Prob(ssc.undetectable)});
  table.AddRow({"Detectable uncorrectable",
                Prob(sec.detectable_uncorrectable),
                Prob(secded.detectable_uncorrectable),
                Prob(ssc.detectable_uncorrectable)});
  table.Print(out);

  PrintBanner(out, "Paper values");
  PrintCheck(out, "table03.sec_uncorrectable", "1.48e-05",
             Prob(sec.uncorrectable));
  PrintCheck(out, "table03.secded_undetectable", "2.64e-08",
             Prob(secded.undetectable));
  PrintCheck(out, "table03.ssc_uncorrectable", "5.66e-05",
             Prob(ssc.uncorrectable));

  // Monte Carlo cross-check with the real codecs at the same BER.
  PrintBanner(out, "Monte Carlo cross-check (real codecs)");
  Rng rng(seed);
  const Hamming72 hamming;
  const ChipkillSsc chipkill;
  const std::uint64_t data64 = 0x0F0F33335555AAAAull;
  const Codeword72 clean72 = hamming.Encode(data64);
  std::array<std::uint8_t, 16> data16{};
  for (std::size_t i = 0; i < 16; ++i) {
    data16[i] = static_cast<std::uint8_t>(0x11 * i);
  }
  const CodewordSsc clean144 = chipkill.Encode(data16);

  std::uint64_t secded_uncorrectable = 0;
  std::uint64_t ssc_uncorrectable = 0;
  for (std::size_t t = 0; t < mc_trials; ++t) {
    Codeword72 word72 = clean72;
    bool any = false;
    for (std::size_t bit = 0; bit < 72; ++bit) {
      if (rng.NextBernoulli(ber)) {
        word72.FlipBit(bit);
        any = true;
      }
    }
    if (any) {
      const DecodeResult result = hamming.Decode(word72);
      if (result.status == DecodeStatus::kDetected ||
          result.data != data64) {
        ++secded_uncorrectable;
      }
    }

    CodewordSsc word144 = clean144;
    any = false;
    for (std::size_t symbol = 0; symbol < 18; ++symbol) {
      for (int bit = 0; bit < 8; ++bit) {
        if (rng.NextBernoulli(ber)) {
          word144.symbols[symbol] ^=
              static_cast<std::uint8_t>(1 << bit);
          any = true;
        }
      }
    }
    if (any) {
      const SscDecodeResult result = chipkill.Decode(word144);
      if (result.status == DecodeStatus::kDetected ||
          result.data != data16) {
        ++ssc_uncorrectable;
      }
    }
  }
  const auto trials = static_cast<double>(mc_trials);
  PrintCheck(out, "table03.mc_secded_uncorrectable",
             Prob(secded.uncorrectable),
             Prob(static_cast<double>(secded_uncorrectable) / trials));
  PrintCheck(out, "table03.mc_ssc_uncorrectable",
             Prob(ssc.uncorrectable),
             Prob(static_cast<double>(ssc_uncorrectable) / trials));
}

ExperimentSpec Table03Spec() {
  ExperimentSpec spec;
  spec.name = "table03_ecc";
  spec.description =
      "Table 3: ECC error probabilities at the worst observed BER";
  spec.flags = {
      {"ber", "7.62939453125e-05", "bit error rate under analysis"},
      {"mc_trials", "2000000", "Monte Carlo trials per codec"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--mc_trials=20000"};
  spec.analyze = AnalyzeTable03;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Table03Spec);

}  // namespace
}  // namespace vrddram::bench
