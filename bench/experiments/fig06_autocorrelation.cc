/**
 * @file
 * Figure 6 / Finding 4: the autocorrelation function of a series of
 * RDT measurements (module M1) compared against the ACF of a series of
 * normally distributed random numbers: no repeating patterns.
 */
#include <iostream>

#include "common/error.h"
#include "common/experiment.h"
#include "common/rng.h"
#include "stats/autocorrelation.h"

namespace vrddram::bench {
namespace {

void AnalyzeFig06(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const std::string device = flags.GetString("device");
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  const auto lags = static_cast<std::size_t>(flags.GetUint("lags"));
  const std::uint64_t seed = flags.GetUint("seed");

  PrintBanner(out, "Figure 6: ACF of the RDT series of " + device +
                       " vs. ACF of white noise");

  SingleRowSeries data;
  VRD_FATAL_IF(!CollectSingleRowSeries(device, measurements, seed, &data),
               "no victim row found on " + device);
  std::vector<double> values;
  for (const std::int64_t v : data.series) {
    if (v >= 0) {
      values.push_back(static_cast<double>(v));
    }
  }
  const std::vector<double> rdt_acf =
      stats::Autocorrelation(values, lags);

  // Reference: same-length normally distributed random series.
  Rng rng(seed ^ 0xac5);
  std::vector<double> noise(values.size());
  for (double& x : noise) {
    x = rng.NextGaussian();
  }
  const std::vector<double> noise_acf =
      stats::Autocorrelation(noise, lags);

  const double bound = stats::WhiteNoiseBound95(values.size());
  TextTable table({"lag", "ACF(RDT series)", "ACF(white noise)",
                   "95% band"});
  for (std::size_t lag = 0; lag <= lags; ++lag) {
    table.AddRow({Cell(static_cast<std::uint64_t>(lag)),
                  Cell(rdt_acf[lag], 4), Cell(noise_acf[lag], 4),
                  "+-" + Cell(bound, 4)});
  }
  table.Print(out);

  const double rdt_sig =
      stats::FractionSignificantLags(rdt_acf, values.size());
  const double noise_sig =
      stats::FractionSignificantLags(noise_acf, noise.size());
  PrintBanner(out, "Finding 4 check");
  PrintCheck(out, "fig06.significant_lags_rdt_vs_noise",
             "comparable to white noise",
             Cell(rdt_sig, 3) + " vs " + Cell(noise_sig, 3));
}

ExperimentSpec Fig06Spec() {
  ExperimentSpec spec;
  spec.name = "fig06_autocorrelation";
  spec.description =
      "Figure 6: ACF of an RDT series vs. white noise";
  spec.flags = {
      {"device", "M1", "device to measure"},
      {"measurements", "100000", "measurements of the victim row"},
      {"lags", "40", "maximum ACF lag"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--measurements=4000"};
  spec.analyze = AnalyzeFig06;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig06Spec);

}  // namespace
}  // namespace vrddram::bench
