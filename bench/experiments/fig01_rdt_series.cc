/**
 * @file
 * Figure 1: the read disturbance threshold of one DRAM row over
 * 100,000 repeated measurements. Left panel: per-1,000-measurement
 * chunks (mean and min/max range). Right panel: zoom on the last
 * 1,000 measurements. Also reports when the series minimum first
 * appears - the paper observes it after as many as 94,467
 * measurements across all tested rows (Finding 1 / §1).
 */
#include <algorithm>
#include <iostream>

#include "common/error.h"
#include "common/experiment.h"

namespace vrddram::bench {
namespace {

void AnalyzeFig01(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const std::string device = flags.GetString("device");
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  const std::uint64_t seed = flags.GetUint("seed");
  const std::string scan = flags.GetString("scan");

  PrintBanner(out, "Figure 1: RDT of one row over " +
                       std::to_string(measurements) +
                       " repeated measurements (" + device + ")");

  SingleRowSeries data;
  VRD_FATAL_IF(!CollectSingleRowSeries(device, measurements, seed, &data),
               "no victim row found on " + device);
  const core::SeriesAnalysis analysis = core::AnalyzeSeries(data.series);

  out << "victim row " << data.row << ", RDT_guess " << data.rdt_guess
      << "\n\n";

  // Left panel: one row per 1,000-measurement chunk.
  TextTable chunks({"measurements", "mean RDT", "min RDT", "max RDT"});
  const std::size_t chunk = 1000;
  for (std::size_t base = 0; base < data.series.size(); base += chunk) {
    const std::size_t end = std::min(base + chunk, data.series.size());
    double sum = 0.0;
    std::int64_t mn = -1;
    std::int64_t mx = -1;
    std::size_t n = 0;
    for (std::size_t i = base; i < end; ++i) {
      const std::int64_t v = data.series[i];
      if (v < 0) {
        continue;
      }
      sum += static_cast<double>(v);
      mn = (mn < 0) ? v : std::min(mn, v);
      mx = std::max(mx, v);
      ++n;
    }
    if (n == 0 || base % (chunk * 10) != 0) {
      continue;  // print every 10th chunk to keep the table readable
    }
    chunks.AddRow({Cell(base) + "-" + Cell(end - 1),
                   Cell(sum / static_cast<double>(n), 1), Cell(mn),
                   Cell(mx)});
  }
  chunks.Print(out);

  // Right panel: zoom on the last 1,000 measurements.
  PrintBanner(out, "Zoom: last 1,000 measurements");
  const std::size_t tail_base =
      data.series.size() > chunk ? data.series.size() - chunk : 0;
  std::vector<std::int64_t> tail(data.series.begin() +
                                     static_cast<std::ptrdiff_t>(tail_base),
                                 data.series.end());
  const core::SeriesAnalysis tail_analysis = core::AnalyzeSeries(tail);
  TextTable zoom({"metric", "value"});
  zoom.AddRow({"min", Cell(tail_analysis.min_rdt)});
  zoom.AddRow({"max", Cell(tail_analysis.max_rdt)});
  zoom.AddRow({"mean", Cell(tail_analysis.mean, 1)});
  zoom.AddRow({"unique values", Cell(tail_analysis.unique_values)});
  zoom.Print(out);

  PrintBanner(out, "Finding 1 summary");
  out << "series min " << analysis.min_rdt << ", max " << analysis.max_rdt
      << " (max/min " << Cell(analysis.max_over_min, 3) << ")\n";
  out << "minimum first appears at measurement #"
      << analysis.first_min_index << " (multiplicity "
      << analysis.min_multiplicity << ")\n";
  PrintCheck(out, "fig01.min_appears_after_many_measurements",
             "16,926 (example row)",
             Cell(static_cast<std::uint64_t>(analysis.first_min_index)));

  if (scan != "none") {
    PrintBanner(out, "Worst-case first-minimum index across devices");
    TextTable table(
        {"device", "row", "first min at", "min RDT", "max/min"});
    std::size_t worst = 0;
    const std::size_t scan_measurements =
        std::min<std::size_t>(measurements, 100000);
    for (const std::string& name : ResolveDevices(scan)) {
      SingleRowSeries scan_data;
      if (!CollectSingleRowSeries(name, scan_measurements, seed + 17,
                                  &scan_data)) {
        continue;
      }
      const auto a = core::AnalyzeSeries(scan_data.series);
      table.AddRow({name, Cell(scan_data.row),
                    Cell(static_cast<std::uint64_t>(a.first_min_index)),
                    Cell(a.min_rdt), Cell(a.max_over_min, 2)});
      worst = std::max(worst, a.first_min_index);
    }
    table.Print(out);
    PrintCheck(out, "fig01.worst_first_min_index", "94,467",
               Cell(static_cast<std::uint64_t>(worst)));
  }
}

ExperimentSpec Fig01Spec() {
  ExperimentSpec spec;
  spec.name = "fig01_rdt_series";
  spec.description =
      "Figure 1: RDT of one row over 100k repeated measurements";
  spec.flags = {
      {"device", "H1", "device to measure the headline row on"},
      {"measurements", "100000", "measurements of the victim row"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "all",
       "device set for the worst-case first-minimum scan (none skips)"},
  };
  spec.smoke_args = {"--measurements=2000", "--scan=none"};
  spec.analyze = AnalyzeFig01;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig01Spec);

}  // namespace
}  // namespace vrddram::bench
