/**
 * @file
 * Figure 16 / §6.4: repeatedly hammer each tested row at hammer counts
 * reduced by safety margins below its (few-measurement) minimum RDT,
 * and count the unique cells that still flip. The paper observes up to
 * 5 unique flipping cells per row at a 10% margin (spanning up to 4
 * chips, at most 1 per ECC codeword) and none at margins above 10%.
 */
#include <algorithm>
#include <iostream>

#include "common/experiment.h"
#include "core/guardband.h"
#include "ecc/analysis.h"

namespace vrddram::bench {
namespace {

void AnalyzeFig16(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  core::GuardbandConfig config;
  config.devices = ResolveDevices(flags.GetString("devices"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.trials = static_cast<std::size_t>(flags.GetUint("trials"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));

  PrintBanner(out,
              "Figure 16: unique bitflips per row when hammering below "
              "the measured min RDT with safety margins");

  const auto outcomes = core::RunGuardbandStudy(config);
  out << "tested " << outcomes.size()
      << " (row, pattern) combinations\n";

  for (const double margin : config.margins) {
    PrintBanner(out, "Margin " + Cell(margin * 100.0, 0) +
                         "%: histogram of unique bitflips per "
                         "row across " +
                         Cell(static_cast<std::uint64_t>(
                             config.trials)) +
                         " trials");
    TextTable table({"unique bitflips", "# of rows"});
    for (const auto& [bitflips, rows] :
         core::BitflipHistogramAtMargin(outcomes, margin)) {
      table.AddRow({Cell(static_cast<std::uint64_t>(bitflips)),
                    Cell(static_cast<std::uint64_t>(rows))});
    }
    table.Print(out);
  }

  // ECC-codeword placement of the 10%-margin flips.
  std::size_t max_flips_10 = 0;
  std::size_t max_chips_10 = 0;
  std::size_t max_secded_10 = 0;
  std::size_t max_chipkill_10 = 0;
  std::size_t max_flips_above_10 = 0;
  for (const auto& outcome : outcomes) {
    for (const auto& per : outcome.per_margin) {
      if (std::abs(per.margin - 0.10) < 1e-9) {
        max_flips_10 = std::max(max_flips_10, per.unique_bitflips);
        max_chips_10 = std::max(max_chips_10, per.chips_touched);
        max_secded_10 =
            std::max(max_secded_10, per.max_per_secded_codeword);
        max_chipkill_10 =
            std::max(max_chipkill_10, per.max_per_chipkill_codeword);
      } else if (per.margin > 0.10 + 1e-9) {
        max_flips_above_10 =
            std::max(max_flips_above_10, per.unique_bitflips);
      }
    }
  }

  PrintBanner(out, "§6.4 checks");
  PrintCheck(out, "fig16.max_unique_bitflips_at_10pct", "5",
             Cell(static_cast<std::uint64_t>(max_flips_10)));
  PrintCheck(out, "fig16.max_chips_touched_at_10pct", "4",
             Cell(static_cast<std::uint64_t>(max_chips_10)));
  PrintCheck(out, "fig16.max_bitflips_per_secded_codeword", "1",
             Cell(static_cast<std::uint64_t>(max_secded_10)));
  PrintCheck(out, "fig16.max_bitflips_per_chipkill_codeword", "1",
             Cell(static_cast<std::uint64_t>(max_chipkill_10)));
  PrintCheck(out, "fig16.max_unique_bitflips_above_10pct",
             "<= 1 (no more than one bitflip observed)",
             Cell(static_cast<std::uint64_t>(max_flips_above_10)));

  const double ber = core::WorstBitErrorRate(outcomes, 0.10, 65536);
  PrintCheck(out, "fig16.worst_bit_error_rate_at_10pct", 7.6e-5, ber, 6);
  out << "\n(That bit error rate feeds Table 3; see "
         "bench_table03_ecc.)\n";
}

ExperimentSpec Fig16Spec() {
  ExperimentSpec spec;
  spec.name = "fig16_guardband_bitflips";
  spec.description =
      "Figure 16: unique bitflips when hammering below min RDT";
  spec.flags = {
      {"devices", "ddr4", "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "9", "victim rows per device"},
      {"trials", "10000", "hammer trials per (row, margin)"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
  };
  spec.smoke_args = {"--devices=M1,S2", "--rows=3", "--trials=300"};
  spec.analyze = AnalyzeFig16;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig16Spec);

}  // namespace
}  // namespace vrddram::bench
