/**
 * @file
 * Figure 10 / Findings 12-13: the expected normalized value of the
 * minimum RDT after N measurements for the four Table 2 data patterns,
 * grouped per manufacturer (and the HBM2 chips). No single data
 * pattern causes the worst VRD profile across all chips.
 */
#include <iostream>
#include <map>

#include "common/experiment.h"
#include "core/min_rdt_mc.h"

namespace vrddram::bench {
namespace {

core::CampaignConfig BuildFig10Campaign(const Flags& flags) {
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));
  ApplyCampaignExecutionFlags(flags, &config);
  config.patterns.assign(std::begin(dram::kAllDataPatterns),
                         std::end(dram::kAllDataPatterns));
  return config;
}

void AnalyzeFig10(const core::CampaignResult& result, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const core::CampaignConfig config = BuildFig10Campaign(flags);

  core::MinRdtSettings settings;
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters"));

  PrintBanner(out,
              "Figure 10: expected normalized min RDT per data "
              "pattern and manufacturer");

  PrintShardSummary(out, result);
  Rng rng(config.base_seed ^ 0xf1a);

  // group -> pattern -> per-N list of expected normalized minima.
  std::map<std::string,
           std::map<dram::DataPattern, std::vector<std::vector<double>>>>
      groups;
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    auto& per_pattern =
        groups[ManufacturerGroupName(record)][record.pattern];
    if (per_pattern.empty()) {
      per_pattern.resize(settings.sample_sizes.size());
    }
    for (std::size_t i = 0; i < mc.per_n.size(); ++i) {
      per_pattern[i].push_back(mc.per_n[i].expected_norm_min);
    }
  }

  TextTable table(
      {"group", "pattern", "N", "median", "max", "mean"});
  std::map<std::string, dram::DataPattern> worst_pattern;
  std::map<std::string, double> worst_median;
  for (const auto& [group, per_pattern] : groups) {
    for (const auto& [pattern, per_n] : per_pattern) {
      for (std::size_t i = 0; i < settings.sample_sizes.size(); ++i) {
        if (per_n[i].empty()) {
          continue;
        }
        const stats::BoxStats box = Box(per_n[i]);
        table.AddRow(
            {group, ToString(pattern),
             Cell(static_cast<std::uint64_t>(settings.sample_sizes[i])),
             Cell(box.median, 4), Cell(box.max, 4), Cell(box.mean, 4)});
        if (settings.sample_sizes[i] == 1 &&
            box.median > worst_median[group]) {
          worst_median[group] = box.median;
          worst_pattern[group] = pattern;
        }
      }
    }
  }
  table.Print(out);

  PrintBanner(out, "Findings 12-13 checks");
  std::map<dram::DataPattern, int> worst_counts;
  for (const auto& [group, pattern] : worst_pattern) {
    PrintCheck(out, "fig10.worst_pattern." + group, "varies per mfr",
               ToString(pattern));
    ++worst_counts[pattern];
  }
  PrintCheck(out, "fig10.single_worst_pattern_across_chips", "no",
             worst_counts.size() > 1 ? "no" : "yes");
}

ExperimentSpec Fig10Spec() {
  ExperimentSpec spec;
  spec.name = "fig10_data_pattern";
  spec.description =
      "Figure 10: expected normalized min RDT per data pattern";
  spec.flags = WithCampaignFlags({
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "6", "victim rows per device"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
      {"iters", "4000", "Monte Carlo iterations per (row, N)"},
  });
  spec.smoke_args = {"--devices=M1,S2", "--rows=3", "--measurements=120",
                     "--iters=500"};
  spec.build_campaign = BuildFig10Campaign;
  spec.analyze = AnalyzeFig10;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig10Spec);

}  // namespace
}  // namespace vrddram::bench
