/**
 * @file
 * Table 1: the tested DDR4 modules and HBM2 chips. Prints the catalog
 * population this suite instantiates (one simulated individual per
 * module), plus the Table 2 data patterns used throughout.
 */
#include <iostream>

#include "common/experiment.h"

namespace vrddram::bench {
namespace {

void AnalyzeTable01(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const std::uint64_t seed = flags.GetUint("seed");

  PrintBanner(out, "Table 1: tested DDR4 modules and HBM2 chips");
  TextTable table({"Mfr.", "Module/Chip", "# of Chips",
                   "Density - Die Rev.", "Chip Org.", "Date (ww-yy)",
                   "Standard"});
  for (const std::string& name : vrd::AllDeviceNames()) {
    const vrd::TestedChip chip = vrd::MakeTestedChip(name, seed);
    const std::string density =
        Cell(std::uint64_t{chip.spec.density_gbit}) + "Gb - " +
        (chip.spec.die_rev == '?' ? std::string("N/A")
                                  : std::string(1, chip.spec.die_rev));
    table.AddRow({ToString(chip.spec.mfr), name,
                  Cell(std::uint64_t{chip.spec.chips_per_rank}), density,
                  "x" + Cell(std::uint64_t{chip.spec.dq_bits}),
                  chip.spec.date_code,
                  dram::ToString(chip.spec.standard)});
  }
  table.Print(out);

  PrintCheck(out, "table01.ddr4_chip_count", "160",
             Cell([&] {
               std::uint64_t chips = 0;
               for (const std::string& name : vrd::Ddr4ModuleNames()) {
                 chips += vrd::MakeTestedChip(name).spec.chips_per_rank;
               }
               return chips;
             }()));
  PrintCheck(out, "table01.hbm2_chip_count", "4",
             Cell(static_cast<std::uint64_t>(
                 vrd::Hbm2ChipNames().size())));

  PrintBanner(out, "Table 2: data patterns");
  TextTable patterns({"Row Addresses", "Rowstripe0", "Rowstripe1",
                      "Checkered0", "Checkered1"});
  auto hex = [](std::uint8_t byte) {
    char buffer[8];
    std::snprintf(buffer, sizeof(buffer), "0x%02X", byte);
    return std::string(buffer);
  };
  std::vector<std::string> victim = {"Victim (V)"};
  std::vector<std::string> aggr = {"Aggressors (V +- 1)"};
  std::vector<std::string> far = {"V +- [2:8]"};
  for (const dram::DataPattern p : dram::kAllDataPatterns) {
    victim.push_back(hex(dram::VictimByte(p)));
    aggr.push_back(hex(dram::AggressorByte(p)));
    far.push_back(hex(dram::SurroundByte(p)));
  }
  patterns.AddRow(victim);
  patterns.AddRow(aggr);
  patterns.AddRow(far);
  patterns.Print(out);
}

ExperimentSpec Table01Spec() {
  ExperimentSpec spec;
  spec.name = "table01_population";
  spec.description = "Table 1: tested DDR4 modules and HBM2 chips";
  spec.flags = {
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {};
  spec.analyze = AnalyzeTable01;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Table01Spec);

}  // namespace
}  // namespace vrddram::bench
