/**
 * @file
 * Extension study (paper §6.5 future-work directions 2-3): how secure
 * is a statically guardbanded threshold over time, and what does
 * *online* RDT profiling with a runtime-configurable threshold buy?
 *
 * Part 1 - static guardbands: profile each row's minimum RDT with a
 * few measurements, configure an idealized tracker at margins below
 * it, and count attack episodes in which the row could still flip
 * (the §6.1 insecurity the paper warns about).
 *
 * Part 2 - online profiling: an OnlineRdtProfiler keeps re-measuring
 * during maintenance windows and tightens its threshold whenever a new
 * minimum state surfaces; compare breach rates and the performance
 * proxy (configured threshold level) against the static approach.
 */
#include <iostream>
#include <map>

#include "common/experiment.h"
#include "core/campaign.h"
#include "core/online_profiler.h"
#include "core/security_eval.h"

namespace vrddram::bench {
namespace {

void AnalyzeAblationSecurity(const core::CampaignResult&,
                             Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const auto devices = ResolveDevices(flags.GetString("devices"));
  const auto rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  const auto episodes = flags.GetUint("episodes");
  const std::uint64_t seed = flags.GetUint("seed");
  const std::vector<double> margins = {0.0, 0.10, 0.25, 0.50};

  PrintBanner(out,
              "Part 1: breach rate of statically guardbanded "
              "thresholds (profile with 5 measurements, then " +
                  Cell(episodes) + " attack episodes)");

  TextTable static_table({"device", "row", "margin", "threshold",
                          "breached episodes", "first breach"});
  // margin -> (breached rows, total rows)
  std::map<double, std::pair<std::size_t, std::size_t>> by_margin;
  for (const std::string& name : devices) {
    auto device = vrd::BuildDevice(name, seed);
    auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
    const auto rows = core::SelectVulnerableRows(
        *device, *engine, 0, std::max<std::size_t>(1, rows_per_device / 2),
        64, dram::DataPattern::kCheckered0, device->timing().tRAS);
    std::size_t used = 0;
    for (const dram::RowAddr row : rows) {
      if (used++ >= rows_per_device) {
        break;
      }
      const auto results = core::EvaluateGuardbands(
          *device, *engine, row, /*profile_measurements=*/5, margins,
          episodes);
      for (std::size_t m = 0; m < margins.size(); ++m) {
        const core::SecurityResult& r = results[m];
        static_table.AddRow(
            {name, Cell(row), Cell(margins[m] * 100.0, 0) + "%",
             Cell(r.configured_threshold), Cell(r.breached_episodes),
             r.first_breach ? Cell(*r.first_breach) : "never"});
        auto& [breached, total] = by_margin[margins[m]];
        total += 1;
        breached += r.Secure() ? 0 : 1;
      }
    }
  }
  static_table.Print(out);

  PrintBanner(out, "Rows with at least one breach, per margin");
  TextTable summary({"margin", "breached rows", "total rows"});
  for (const auto& [margin, counts] : by_margin) {
    summary.AddRow({Cell(margin * 100.0, 0) + "%",
                    Cell(static_cast<std::uint64_t>(counts.first)),
                    Cell(static_cast<std::uint64_t>(counts.second))});
  }
  summary.Print(out);
  PrintCheck(out, "security.margin0_rows_eventually_breach",
             "expected (Takeaway 1: few measurements miss minima)",
             Cell(static_cast<std::uint64_t>(by_margin[0.0].first)) +
                 " of " +
                 Cell(static_cast<std::uint64_t>(by_margin[0.0].second)));

  PrintBanner(out,
              "Part 2: online profiling with adaptive guardband");
  TextTable online_table({"device", "row", "windows", "discoveries",
                          "final threshold", "final guardband",
                          "breaches after convergence"});
  for (const std::string& name : devices) {
    auto device = vrd::BuildDevice(name, seed);
    auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
    const auto rows = core::SelectVulnerableRows(
        *device, *engine, 0, 1, 64, dram::DataPattern::kCheckered0,
        device->timing().tRAS);
    if (rows.empty()) {
      continue;
    }
    const dram::RowAddr row = rows.front();
    core::OnlineRdtProfiler online(*device, row);
    for (int window = 0; window < 200; ++window) {
      online.RunMaintenanceWindow();
      device->Sleep(units::kSecond);  // production time between windows
    }
    const auto threshold = online.RecommendedThreshold();
    if (!threshold) {
      continue;
    }
    const core::SecurityResult verdict = core::EvaluateThreshold(
        *device, *engine, row, *threshold, episodes,
        100 * units::kMillisecond);
    online_table.AddRow(
        {name, Cell(row),
         Cell(static_cast<std::uint64_t>(online.windows_run())),
         Cell(static_cast<std::uint64_t>(online.discoveries())),
         Cell(*threshold), Cell(online.guardband(), 2),
         Cell(verdict.breached_episodes)});
  }
  online_table.Print(out);
  out << "\nOnline profiling keeps discovering lower RDT states"
      << " over time and tightens the configured threshold"
      << " accordingly - the remedy the paper's §6.5 calls"
      << " for.\n";
}

ExperimentSpec AblationSecuritySpec() {
  ExperimentSpec spec;
  spec.name = "ablation_security";
  spec.description =
      "Security of static vs. online-profiled RDT guardbands";
  spec.flags = {
      {"devices", "H3,M1,S2",
       "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "4", "victim rows per device"},
      {"episodes", "2000", "attack episodes per (row, margin)"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--devices=M1", "--rows=2", "--episodes=200"};
  spec.analyze = AnalyzeAblationSecurity;
  return spec;
}

VRD_REGISTER_EXPERIMENT(AblationSecuritySpec);

}  // namespace
}  // namespace vrddram::bench
