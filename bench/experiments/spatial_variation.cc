/**
 * @file
 * Spatial variation of RDT across rows (the premise the paper builds
 * on, [134]): the per-row minimum RDT measured once per row across a
 * bank region, as an S-curve. This is what makes exhaustive per-row
 * profiling necessary in the first place - and what VRD then shows to
 * be insufficient even per row.
 */
#include <algorithm>
#include <iostream>

#include "common/experiment.h"

namespace vrddram::bench {
namespace {

void AnalyzeSpatialVariation(const core::CampaignResult&,
                             Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const std::string device_name = flags.GetString("device");
  const auto rows = flags.GetUint("rows");
  const std::uint64_t seed = flags.GetUint("seed");

  auto device = vrd::BuildDevice(device_name, seed);
  auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());

  PrintBanner(out, "Spatial variation of RDT across the first " +
                       Cell(rows) + " rows of " + device_name);

  std::vector<double> rdts;
  std::size_t invulnerable = 0;
  const dram::RowAddr last = device->org().LargestRowAddress();
  for (dram::RowAddr row = 1; row < rows && row < last; ++row) {
    const double rdt = engine->MinFlipHammerCount(
        0, device->mapper().ToPhysical(row), 0x55, 0xAA,
        device->timing().tRAS, 50.0, device->encoding(),
        device->Now());
    device->Sleep(units::kMillisecond);
    if (rdt > 0.0) {
      rdts.push_back(rdt);
    } else {
      ++invulnerable;
    }
  }

  TextTable table({"percentile of rows", "RDT"});
  for (const double p :
       {0.0, 1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    table.AddRow({Cell(p, 0), Cell(stats::Percentile(rdts, p), 0)});
  }
  table.Print(out);
  out << "\nrows with no disturbance-prone cell: " << invulnerable
      << " of " << rows << "\n";
  PrintCheck(out, "spatial.p100_over_p0",
             "order-of-magnitude spread across rows ([134])",
             stats::Percentile(rdts, 100.0) /
                 stats::Percentile(rdts, 0.0),
             1);
}

ExperimentSpec SpatialVariationSpec() {
  ExperimentSpec spec;
  spec.name = "spatial_variation";
  spec.description = "Spatial variation of RDT across rows (S-curve)";
  spec.flags = {
      {"device", "M1", "device to profile"},
      {"rows", "2048", "rows to measure"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--rows=256"};
  spec.analyze = AnalyzeSpatialVariation;
  return spec;
}

VRD_REGISTER_EXPERIMENT(SpatialVariationSpec);

}  // namespace
}  // namespace vrddram::bench
