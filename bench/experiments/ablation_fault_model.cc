/**
 * @file
 * Ablation of the trap fault model (DESIGN.md §4): which component of
 * the model produces which paper phenomenon? Rebuilds an M1-like
 * device with individual components disabled and reports the headline
 * VRD statistics for each variant:
 *
 *  - full model
 *  - no analog measurement noise  (normal body disappears)
 *  - no fast traps                (multi-state structure shrinks)
 *  - no rare traps                (deep late minima disappear)
 *  - no heavy traps               (worst-case CV tail disappears)
 *  - deterministic (nothing)      (VRD disappears entirely)
 */
#include <functional>
#include <iostream>
#include <optional>

#include "common/experiment.h"

namespace vrddram::bench {
namespace {

struct Variant {
  const char* name;
  std::function<void(vrd::FaultProfile&)> tweak;
};

void AnalyzeAblationFaultModel(const core::CampaignResult&,
                               Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  const std::uint64_t seed = flags.GetUint("seed");

  const Variant variants[] = {
      {"full model", [](vrd::FaultProfile&) {}},
      {"no measurement noise",
       [](vrd::FaultProfile& p) { p.measurement_noise_sigma = 0.0; }},
      {"no fast traps",
       [](vrd::FaultProfile& p) { p.fast_trap_mean = 0.0; }},
      {"no rare traps",
       [](vrd::FaultProfile& p) { p.rare_trap_prob = 0.0; }},
      {"no heavy traps",
       [](vrd::FaultProfile& p) { p.heavy_trap_prob = 0.0; }},
      {"deterministic",
       [](vrd::FaultProfile& p) {
         p.measurement_noise_sigma = 0.0;
         p.fast_trap_mean = 0.0;
         p.rare_trap_prob = 0.0;
         p.heavy_trap_prob = 0.0;
       }},
  };

  PrintBanner(out,
              "Fault-model ablation on an M1-like device (" +
                  std::to_string(measurements) + " measurements)");
  TextTable table({"variant", "unique", "cv", "max/min",
                   "first-min idx", "imm change", "chi2 p"});

  for (const Variant& variant : variants) {
    vrd::TestedChip chip = vrd::MakeTestedChip("M1", seed);
    variant.tweak(chip.fault);
    auto engine = std::make_unique<vrd::TrapFaultEngine>(
        chip.fault, chip.device.seed, chip.device.org);
    dram::Device device(chip.device, std::move(engine));
    device.SetTemperature(80.0);

    core::ProfilerConfig pc;
    core::RdtProfiler profiler(device, pc);
    // Prefer a victim row that carries a rare (deep-minimum) trap so
    // the "no rare traps" variant has something to lose.
    auto* raw_engine =
        dynamic_cast<vrd::TrapFaultEngine*>(&device.model());
    std::optional<core::RdtProfiler::Victim> victim;
    dram::RowAddr begin = 1;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto candidate = profiler.FindVictim(begin, 8192);
      if (!candidate) {
        break;
      }
      bool has_rare = false;
      const auto phys = device.mapper().ToPhysical(candidate->row);
      const auto& state = raw_engine->RowStateOf(0, phys);
      for (const auto& cell : state.cells) {
        for (const auto& trap : state.CellTraps(cell)) {
          if (trap.occupancy < 0.01) {
            has_rare = true;
          }
        }
      }
      victim = candidate;
      if (has_rare) {
        break;
      }
      begin = candidate->row + 1;
    }
    if (!victim) {
      table.AddRow({variant.name, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const auto series = profiler.MeasureSeries(
        victim->row, victim->rdt_guess, measurements);
    const core::SeriesAnalysis a =
        core::AnalyzeSeries(series, 40, /*min_valid=*/1);
    if (a.valid < 8) {
      table.AddRow({variant.name, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow({variant.name, Cell(a.unique_values), Cell(a.cv, 4),
                  Cell(a.max_over_min, 3),
                  Cell(static_cast<std::uint64_t>(a.first_min_index)),
                  Cell(a.immediate_change_fraction, 2),
                  Cell(a.normal_fit.p_value, 3)});
  }
  table.Print(out);

  out << "\nReading guide:\n"
      << "  noise   -> the near-normal histogram body (Fig. 4)\n"
      << "  fast    -> extra discrete states / state churn\n"
      << "  rare    -> deep minima appearing only after many\n"
      << "             measurements (Fig. 1)\n"
      << "  heavy   -> the worst-case CV tail (Fig. 7 P100)\n"
      << "  deterministic -> a single repeated value: no VRD\n";
}

ExperimentSpec AblationFaultModelSpec() {
  ExperimentSpec spec;
  spec.name = "ablation_fault_model";
  spec.description =
      "Ablation of the trap fault model's components";
  spec.flags = {
      {"measurements", "20000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--measurements=2000"};
  spec.analyze = AnalyzeAblationFaultModel;
  return spec;
}

VRD_REGISTER_EXPERIMENT(AblationFaultModelSpec);

}  // namespace
}  // namespace vrddram::bench
