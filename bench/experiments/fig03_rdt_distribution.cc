/**
 * @file
 * Figure 3: box-and-whiskers distribution of 100,000 RDT measurements
 * of one victim row in each tested module and chip.
 */
#include <iostream>

#include "common/experiment.h"

namespace vrddram::bench {
namespace {

void AnalyzeFig03(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  const std::uint64_t seed = flags.GetUint("seed");
  const auto devices = ResolveDevices(flags.GetString("devices"));

  PrintBanner(out,
              "Figure 3: RDT distribution of a single victim row per "
              "module/chip (" + std::to_string(measurements) +
                  " measurements)");

  TextTable table(
      {"device", "min", "Q1", "median", "Q3", "max", "mean"});
  double worst_ratio = 1.0;
  std::string worst_device;
  for (const std::string& name : devices) {
    SingleRowSeries data;
    if (!CollectSingleRowSeries(name, measurements, seed, &data)) {
      std::cerr << "skipping " << name << ": no victim row\n";
      continue;
    }
    const core::SeriesAnalysis analysis = core::AnalyzeSeries(data.series);
    AddBoxRow(table, name, analysis.box);
    if (analysis.max_over_min > worst_ratio) {
      worst_ratio = analysis.max_over_min;
      worst_device = name;
    }
  }
  table.Print(out);

  PrintBanner(out, "Finding 1 check");
  // Paper: e.g. Chip0's largest measured RDT is 1.21x the smallest
  // across 100k measurements; every tested row varies.
  PrintCheck(out, "fig03.worst_max_over_min (" + worst_device + ")",
             "1.21 (Chip0 example; larger on other rows)", worst_ratio,
             3);
}

ExperimentSpec Fig03Spec() {
  ExperimentSpec spec;
  spec.name = "fig03_rdt_distribution";
  spec.description =
      "Figure 3: RDT distribution of one victim row per module/chip";
  spec.flags = {
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"measurements", "100000", "measurements per victim row"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {"--measurements=2000", "--devices=M1,S2"};
  spec.analyze = AnalyzeFig03;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig03Spec);

}  // namespace
}  // namespace vrddram::bench
