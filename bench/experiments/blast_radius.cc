/**
 * @file
 * Blast-radius characterization (the §3.1 methodology's premise and
 * prior work the paper builds on [165, 236]): hammer a single row at
 * increasing hammer counts and report which physical distances flip.
 * Distance-1 victims flip at the RDT; distance-2 victims need
 * ~1/d2_coupling times more activations; farther rows never flip.
 */
#include <iostream>

#include "bender/attack_patterns.h"
#include "common/error.h"
#include "common/experiment.h"

namespace vrddram::bench {
namespace {

void AnalyzeBlastRadius(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const std::string device_name = flags.GetString("device");
  const std::uint64_t seed = flags.GetUint("seed");

  auto device = vrd::BuildDevice(device_name, seed);
  auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());

  // An aggressor whose +-1 and +-2 neighbours all have weak cells, so
  // every distance has something to flip.
  dram::RowAddr aggressor = 0;
  for (dram::RowAddr row = 4; row < 4096; ++row) {
    const auto phys = device->mapper().ToPhysical(row);
    if (phys.value < 3 ||
        phys.value > device->org().LargestRowAddress() - 3) {
      continue;
    }
    bool all_weak = true;
    for (const std::int64_t d : {-2, -1, 1, 2}) {
      if (engine
              ->RowStateOf(0, dram::PhysicalRow{static_cast<dram::RowAddr>(
                                  phys.value + d)})
              .cells.empty()) {
        all_weak = false;
      }
    }
    if (all_weak) {
      aggressor = row;
      break;
    }
  }
  VRD_FATAL_IF(aggressor == 0, "no suitable aggressor found");

  PrintBanner(out, "Blast radius of single-sided hammering on " +
                       device_name + " (aggressor row " +
                       Cell(aggressor) + ")");

  const auto aggr_phys = device->mapper().ToPhysical(aggressor);
  const Tick t_ras = device->timing().tRAS;

  // Reference point: the distance-1 RDT.
  double rdt1 = -1.0;
  for (const std::int64_t d : {-1, 1}) {
    const double rdt = engine->MinFlipHammerCount(
        0, dram::PhysicalRow{static_cast<dram::RowAddr>(
               aggr_phys.value + d)},
        0x55, 0xAA, t_ras, 50.0, device->encoding(), device->Now());
    if (rdt > 0.0 && (rdt1 < 0.0 || rdt < rdt1)) {
      rdt1 = rdt;
    }
  }
  // Single-sided halves the coupling: scale the sweep accordingly.
  const auto base = static_cast<std::uint64_t>(rdt1 * 2.0);

  TextTable table({"hammer count (x d1 single-sided RDT)", "d=1 flips",
                   "d=2 flips", "d=3 flips"});
  for (const double factor : {0.5, 1.1, 4.0, 16.0, 64.0, 150.0}) {
    // Fresh device per step: cumulative dose would conflate rows.
    auto fresh = vrd::BuildDevice(device_name, seed);
    const auto hc = static_cast<std::uint64_t>(
        static_cast<double>(base) * factor);
    // Initialize the neighbourhood, hammer, read each distance.
    for (std::int64_t d = -3; d <= 3; ++d) {
      fresh->BulkInitializeRow(
          0,
          fresh->mapper().ToLogical(dram::PhysicalRow{
              static_cast<dram::RowAddr>(aggr_phys.value + d)}),
          d == 0 ? 0xAA : 0x55);
    }
    fresh->HammerSingleSided(0, aggressor, hc, t_ras);
    std::vector<std::string> row = {Cell(factor, 1) + "x"};
    for (const int distance : {1, 2, 3}) {
      int flips = 0;
      for (const std::int64_t sign : {-1, 1}) {
        const dram::RowAddr victim = fresh->mapper().ToLogical(
            dram::PhysicalRow{static_cast<dram::RowAddr>(
                aggr_phys.value + sign * distance)});
        fresh->Activate(0, victim);
        const auto data = fresh->ReadRow(0, victim);
        fresh->Precharge(0);
        flips += static_cast<int>(dram::CountDiffBits(data, 0x55));
      }
      row.push_back(Cell(flips));
    }
    table.AddRow(row);
  }
  table.Print(out);

  out << "\nThe blast radius: immediate neighbours flip first;"
      << " distance-2 rows need orders of magnitude more"
      << " activations (coupling ~" << Cell(1.0 / 0.02, 0)
      << "x weaker); distance-3 rows are out of reach.\n";
}

ExperimentSpec BlastRadiusSpec() {
  ExperimentSpec spec;
  spec.name = "blast_radius";
  spec.description =
      "Blast radius of single-sided hammering by physical distance";
  spec.flags = {
      {"device", "M1", "device to hammer"},
      {"seed", "2025", "base RNG seed"},
  };
  spec.smoke_args = {};
  spec.analyze = AnalyzeBlastRadius;
  return spec;
}

VRD_REGISTER_EXPERIMENT(BlastRadiusSpec);

}  // namespace
}  // namespace vrddram::bench
