/**
 * @file
 * Appendix A: RDT testing time and energy estimation from tightly
 * scheduled DDR5 command sequences. Reproduces the command listings of
 * Tables 4 and 5, the timing parameters of Table 6, and the series
 * behind Figs. 17-24 (single / 1K / 100K measurements, RowHammer
 * tAggOn = tRAS and RowPress tAggOn = 7.8 us, swept over hammer
 * counts, simultaneously tested banks, and victim-row counts).
 */
#include <iostream>

#include "common/experiment.h"
#include "core/test_time_model.h"

namespace vrddram::bench {
namespace {

std::string HumanTime(double seconds) {
  const double s = seconds;
  char buffer[64];
  if (s < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.3f ms", s * 1e3);
  } else if (s < 60.0) {
    std::snprintf(buffer, sizeof(buffer), "%.3f s", s);
  } else if (s < 86400.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f h", s / 3600.0);
  } else if (s < 365.0 * 86400.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f days", s / 86400.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f years",
                  s / (365.0 * 86400.0));
  }
  return buffer;
}

std::string HumanEnergy(double joules) {
  char buffer[64];
  if (joules < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f mJ", joules * 1e3);
  } else if (joules < 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.2f J", joules);
  } else if (joules < 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2f kJ", joules / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f MJ", joules / 1e6);
  }
  return buffer;
}

void AnalyzeAppendixTestTime(const core::CampaignResult&,
                             Report* report) {
  std::ostream& out = report->out;
  const core::TestTimeModel model;
  const Tick t_ras = model.timing().tRAS;
  const Tick t_press = units::FromUs(7.8);

  PrintBanner(out, "Table 6: DDR5 timing parameters (ns)");
  TextTable t6({"Timing Parameter", "Latency (ns)"});
  t6.AddRow({"tRRD_S", Cell(units::ToNs(model.timing().tRRD_S), 3)});
  t6.AddRow({"tCCD_S", Cell(units::ToNs(model.timing().tCCD_S), 3)});
  t6.AddRow({"tCCD_L", Cell(units::ToNs(model.timing().tCCD_L), 3)});
  t6.AddRow(
      {"tCCD_L_WR", Cell(units::ToNs(model.timing().tCCD_L_WR), 3)});
  t6.AddRow({"tRCD", Cell(units::ToNs(model.timing().tRCD), 3)});
  t6.AddRow({"tRP", Cell(units::ToNs(model.timing().tRP), 3)});
  t6.AddRow({"tRAS", Cell(units::ToNs(model.timing().tRAS), 3)});
  t6.AddRow({"tRTP", Cell(units::ToNs(model.timing().tRTP), 3)});
  t6.AddRow({"tWR", Cell(units::ToNs(model.timing().tWR), 3)});
  t6.Print(out);

  PrintBanner(out,
              "Table 4: commands for one RDT measurement, one bank");
  model.CommandTable(/*hammers=*/1000, /*banks=*/1).Print(out);
  PrintBanner(out,
              "Table 5: commands for one RDT measurement, 16 banks");
  model.CommandTable(/*hammers=*/1000, /*banks=*/16).Print(out);

  // Figs. 17 & 21: one measurement, varying hammers and banks.
  for (const auto& [label, t_on] :
       {std::pair<const char*, Tick>{"RowHammer (tAggOn = tRAS)",
                                     t_ras},
        std::pair<const char*, Tick>{"RowPress (tAggOn = 7.8 us)",
                                     t_press}}) {
    PrintBanner(out, std::string("Figs. 17/21: single RDT "
                                 "measurement cost, ") + label);
    TextTable table({"# hammers", "banks", "time", "energy"});
    for (const std::uint64_t hammers : {1000ull, 10000ull, 100000ull}) {
      for (const std::uint32_t banks : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const core::TestCost cost =
            model.MeasurementCost(hammers, t_on, banks);
        table.AddRow({Cell(hammers), Cell(std::uint64_t{banks}),
                      HumanTime(cost.seconds), HumanEnergy(cost.energy)});
      }
    }
    table.Print(out);
  }

  // Figs. 18 & 22: one measurement of N rows in one bank.
  PrintBanner(out,
              "Figs. 18/22: single measurement of many rows, one bank");
  TextTable rows_table(
      {"rows", "# hammers", "RowHammer time", "RowPress time"});
  for (const std::uint64_t rows : {1024ull, 65536ull, 131072ull}) {
    for (const std::uint64_t hammers : {1000ull, 10000ull}) {
      rows_table.AddRow(
          {Cell(rows), Cell(hammers),
           HumanTime(model.CampaignCost(rows, 1, hammers, t_ras).seconds),
           HumanTime(
               model.CampaignCost(rows, 1, hammers, t_press).seconds)});
    }
  }
  rows_table.Print(out);

  // Figs. 19/20 and 23/24: 1K and 100K measurements at hammer count 1K.
  PrintBanner(out,
              "Figs. 19/20/23/24: campaign cost, hammer count = 1K");
  TextTable campaign({"measurements", "rows/bank", "banks", "mode",
                      "time", "energy"});
  for (const std::uint64_t measurements : {1000ull, 100000ull}) {
    for (const std::uint32_t banks : {1u, 16u, 32u}) {
      for (const auto& [mode, t_on] :
           {std::pair<const char*, Tick>{"RowHammer", t_ras},
            std::pair<const char*, Tick>{"RowPress", t_press}}) {
        const core::TestCost cost = model.CampaignCost(
            1u << 17, measurements, 1000, t_on, banks);
        campaign.AddRow({Cell(measurements), Cell(1u << 17),
                         Cell(std::uint64_t{banks}), mode,
                         HumanTime(cost.seconds),
                         HumanEnergy(cost.energy)});
      }
    }
  }
  campaign.Print(out);

  PrintBanner(out, "Appendix A headline checks");
  // The paper quotes a 256K-row bank (footnote in §1).
  const core::TestCost rh_100k =
      model.CampaignCost(1u << 18, 100000, 1000, t_ras, 32);
  PrintCheck(out, "appendixA.rowhammer_100k_full_chip_time", "61 days",
             HumanTime(rh_100k.seconds));
  PrintCheck(out, "appendixA.rowhammer_100k_full_chip_energy", "13 MJ",
             HumanEnergy(rh_100k.energy));
  const core::TestCost rh_1k =
      model.CampaignCost(1u << 18, 1000, 1000, t_ras, 32);
  PrintCheck(out, "appendixA.rowhammer_1k_full_chip_time", "15 hours",
             HumanTime(rh_1k.seconds));
  const core::TestCost rp_1k =
      model.CampaignCost(1u << 18, 1000, 1000, t_press, 32);
  PrintCheck(out, "appendixA.rowpress_1k_full_chip_time", "48 days",
             HumanTime(rp_1k.seconds));
  const core::TestCost rp_100k =
      model.CampaignCost(1u << 18, 100000, 1000, t_press, 32);
  PrintCheck(out, "appendixA.rowpress_100k_full_chip_time", "13 years",
             HumanTime(rp_100k.seconds));

  // §1: 94,467 measurements of a single row with RDT ~1,000 take ~9.5s.
  const core::TestCost intro =
      model.CampaignCost(1, 94467, 1000, t_ras, 1);
  PrintCheck(out, "appendixA.94467_measurements_one_row", "9.5 s",
             HumanTime(intro.seconds));
  // §6.2: one measurement of every row of a 256K-row bank with hammer
  // count 8,000, 4 patterns, 3 temperatures: ~39 minutes.
  const core::TestCost profiling =
      model.CampaignCost(1u << 18, 1, 8000, t_ras, 1);
  PrintCheck(out, "appendixA.one_shot_bank_profile_4pat_3temp",
             "39 minutes",
             HumanTime(profiling.seconds * 4 * 3));
}

ExperimentSpec AppendixTestTimeSpec() {
  ExperimentSpec spec;
  spec.name = "appendix_test_time";
  spec.description =
      "Appendix A: RDT testing time and energy estimation";
  spec.flags = {};
  spec.smoke_args = {};
  spec.analyze = AnalyzeAppendixTestTime;
  return spec;
}

VRD_REGISTER_EXPERIMENT(AppendixTestTimeSpec);

}  // namespace
}  // namespace vrddram::bench
