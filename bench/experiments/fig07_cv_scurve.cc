/**
 * @file
 * Figure 7 / Findings 5-6: S-curve of the coefficient of variation of
 * RDT across all tested rows (max CV over all combinations of data
 * pattern, tAggOn, and temperature), plus the P50 and P100 example
 * rows and the fraction of rows exhibiting temporal variation under
 * all / at least one parameter combination.
 */
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>

#include "common/experiment.h"
#include "core/csv_export.h"

namespace vrddram::bench {
namespace {

core::CampaignConfig BuildFig07Campaign(const Flags& flags) {
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));
  ApplyCampaignExecutionFlags(flags, &config);

  const auto n_patterns = flags.GetUint("patterns");
  const auto n_tons = flags.GetUint("tons");
  const auto n_temps = flags.GetUint("temps");
  config.patterns.assign(dram::kAllDataPatterns,
                         dram::kAllDataPatterns +
                             std::min<std::uint64_t>(n_patterns, 4));
  const core::TOnChoice all_tons[] = {core::TOnChoice::kMinTras,
                                      core::TOnChoice::kTrefi,
                                      core::TOnChoice::kNineTrefi};
  config.t_ons.assign(all_tons,
                      all_tons + std::min<std::uint64_t>(n_tons, 3));
  const Celsius all_temps[] = {50.0, 65.0, 80.0};
  config.temperatures.assign(
      all_temps, all_temps + std::min<std::uint64_t>(n_temps, 3));
  return config;
}

void AnalyzeFig07(const core::CampaignResult& result, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const core::CampaignConfig config = BuildFig07Campaign(flags);

  PrintBanner(out,
              "Figure 7: temporal variation of RDT across DRAM rows");
  out << config.devices.size() << " devices x "
      << config.rows_per_device << " rows x "
      << config.patterns.size() * config.t_ons.size() *
             config.temperatures.size()
      << " parameter combinations x " << config.measurements
      << " measurements\n";

  PrintShardSummary(out, result);

  const std::string csv_path = flags.GetString("csv");
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    core::WriteSummaryCsv(csv, result);
    out << "wrote per-series summary CSV to " << csv_path << "\n";
  }

  // Per (device, row): max CV across combinations, plus per-combo CVs
  // for the Finding 6 fractions and the worst max/min ratio.
  struct RowAgg {
    double max_cv = 0.0;
    double max_ratio = 1.0;
    bool varies_under_all = true;
    bool varies_under_any = false;
  };
  std::map<std::pair<std::string, dram::RowAddr>, RowAgg> rows;
  for (const core::SeriesRecord& record : result.records) {
    const core::SeriesAnalysis a =
        core::AnalyzeSeries(record.series, /*acf_max_lag=*/1);
    RowAgg& agg = rows[{record.device, record.row}];
    agg.max_cv = std::max(agg.max_cv, a.cv);
    agg.max_ratio = std::max(agg.max_ratio, a.max_over_min);
    if (a.unique_values > 1) {
      agg.varies_under_any = true;
    } else {
      agg.varies_under_all = false;
    }
  }

  std::vector<double> cvs;
  double max_ratio = 1.0;
  std::size_t all_combo_count = 0;
  std::size_t any_combo_count = 0;
  for (const auto& [key, agg] : rows) {
    cvs.push_back(agg.max_cv);
    max_ratio = std::max(max_ratio, agg.max_ratio);
    if (agg.varies_under_all) {
      ++all_combo_count;
    }
    if (agg.varies_under_any) {
      ++any_combo_count;
    }
  }
  std::sort(cvs.begin(), cvs.end());

  TextTable scurve({"percentile of rows", "max CV across combos"});
  for (const double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0,
                         100.0}) {
    scurve.AddRow({Cell(p, 0),
                   Cell(stats::Percentile(cvs, p), 4)});
  }
  scurve.Print(out);

  PrintBanner(out, "Findings 5 and 6 checks");
  PrintCheck(out, "fig07.p50_cv", 0.03, stats::Percentile(cvs, 50.0), 4);
  PrintCheck(out, "fig07.max_cv", 0.52, cvs.back(), 4);
  PrintCheck(out, "fig07.max_max_over_min", 3.5, max_ratio, 2);
  PrintCheck(
      out, "fig07.rows_with_vrd_under_all_combos", "97.1%",
      Cell(100.0 * static_cast<double>(all_combo_count) /
               static_cast<double>(rows.size()), 1) + "%");
  PrintCheck(
      out, "fig07.rows_with_vrd_under_some_combo", "100%",
      Cell(100.0 * static_cast<double>(any_combo_count) /
               static_cast<double>(rows.size()), 1) + "%");
}

ExperimentSpec Fig07Spec() {
  ExperimentSpec spec;
  spec.name = "fig07_cv_scurve";
  spec.description =
      "Figure 7: S-curve of RDT coefficient of variation across rows";
  spec.flags = WithCampaignFlags({
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "9", "victim rows per device"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
      {"patterns", "4", "number of data patterns (1-4)"},
      {"tons", "3", "number of tAggOn levels (1-3)"},
      {"temps", "3", "number of temperature levels (1-3)"},
      {"csv", "", "write the per-series summary CSV to this path"},
  });
  spec.smoke_args = {"--devices=M1,S2", "--rows=3", "--measurements=120",
                     "--patterns=2", "--tons=2", "--temps=2"};
  spec.build_campaign = BuildFig07Campaign;
  spec.analyze = AnalyzeFig07;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig07Spec);

}  // namespace
}  // namespace vrddram::bench
