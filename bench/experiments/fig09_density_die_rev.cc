/**
 * @file
 * Figure 9 / Findings 10-11: the expected normalized value of the
 * minimum RDT after N measurements, grouped per manufacturer and per
 * (die density, die revision) combination. The VRD profile worsens
 * with density and with more advanced technology nodes.
 */
#include <algorithm>
#include <iostream>
#include <map>

#include "common/experiment.h"
#include "core/min_rdt_mc.h"

namespace vrddram::bench {
namespace {

core::CampaignConfig BuildFig09Campaign(const Flags& flags) {
  core::CampaignConfig config;
  config.devices = vrd::Ddr4ModuleNames();
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));
  ApplyCampaignExecutionFlags(flags, &config);
  return config;
}

void AnalyzeFig09(const core::CampaignResult& result, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const core::CampaignConfig config = BuildFig09Campaign(flags);

  core::MinRdtSettings settings;
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters"));

  PrintBanner(out,
              "Figure 9: expected normalized min RDT by die density "
              "and die revision");

  PrintShardSummary(out, result);
  Rng rng(config.base_seed ^ 0xf19);

  // Group rows by (manufacturer, density, die revision).
  struct GroupKey {
    vrd::Manufacturer mfr;
    std::uint32_t density;
    char rev;
    bool operator<(const GroupKey& other) const {
      return std::tie(mfr, density, rev) <
             std::tie(other.mfr, other.density, other.rev);
    }
  };
  std::map<GroupKey, std::vector<std::vector<double>>> groups;
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    auto& group =
        groups[GroupKey{record.mfr, record.density_gbit,
                        record.die_rev}];
    if (group.empty()) {
      group.resize(settings.sample_sizes.size());
    }
    for (std::size_t i = 0; i < mc.per_n.size(); ++i) {
      group[i].push_back(mc.per_n[i].expected_norm_min);
    }
  }

  TextTable table({"mfr", "density/rev", "N", "median", "max", "mean"});
  std::map<GroupKey, double> median_n1;
  for (const auto& [key, per_n] : groups) {
    for (std::size_t i = 0; i < settings.sample_sizes.size(); ++i) {
      const stats::BoxStats box = Box(per_n[i]);
      table.AddRow(
          {ToString(key.mfr),
           Cell(std::uint64_t{key.density}) + "Gb-" + key.rev,
           Cell(static_cast<std::uint64_t>(settings.sample_sizes[i])),
           Cell(box.median, 4), Cell(box.max, 4), Cell(box.mean, 4)});
      if (settings.sample_sizes[i] == 1) {
        median_n1[key] = box.median;
      }
    }
  }
  table.Print(out);

  PrintBanner(out, "Finding 11 check (Mfr. M trend)");
  // Paper: Mfr. M worsens from 1.06x (least advanced, 16Gb-E) to
  // 1.08x (most advanced, 16Gb-F) for the median row at N = 1.
  const GroupKey least{vrd::Manufacturer::kMfrM, 16, 'E'};
  const GroupKey most{vrd::Manufacturer::kMfrM, 16, 'F'};
  if (median_n1.contains(least) && median_n1.contains(most)) {
    PrintCheck(out, "fig09.mfr_m_least_advanced_median_n1", 1.06,
               median_n1[least], 3);
    PrintCheck(out, "fig09.mfr_m_most_advanced_median_n1", 1.08,
               median_n1[most], 3);
    PrintCheck(out, "fig09.vrd_worsens_with_technology", "yes",
               median_n1[most] > median_n1[least] ? "yes" : "no");
  }
}

ExperimentSpec Fig09Spec() {
  ExperimentSpec spec;
  spec.name = "fig09_density_die_rev";
  spec.description =
      "Figure 9: expected normalized min RDT by density and die rev";
  spec.flags = WithCampaignFlags({
      {"rows", "9", "victim rows per device"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
      {"iters", "4000", "Monte Carlo iterations per (row, N)"},
  });
  spec.smoke_args = {"--rows=3", "--measurements=120", "--iters=500"};
  spec.build_campaign = BuildFig09Campaign;
  spec.analyze = AnalyzeFig09;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig09Spec);

}  // namespace
}  // namespace vrddram::bench
