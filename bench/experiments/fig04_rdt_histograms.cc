/**
 * @file
 * Figure 4 + §4.1: histogram of the measured RDT values of one victim
 * row per device, with the number of bins equal to the number of
 * unique measured values (Finding 2: multiple states, most
 * distributions unimodal around a mean, HBM Chip1 bimodal), and the
 * chi-square goodness-of-fit test against a fitted normal (Finding 4:
 * an RDT measurement likely samples a normally distributed random
 * variable).
 */
#include <algorithm>
#include <iostream>

#include "common/experiment.h"
#include "stats/histogram.h"

namespace vrddram::bench {
namespace {

void AnalyzeFig04(const core::CampaignResult&, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  const std::uint64_t seed = flags.GetUint("seed");
  const auto devices = ResolveDevices(flags.GetString("devices"));
  const std::string bars_device = flags.GetString("bars");

  PrintBanner(out,
              "Figure 4: RDT histograms (bins = unique values) and "
              "chi-square normality per device");

  TextTable table({"device", "unique values", "modes", "chi2 p-value",
                   "normal at alpha=0.05", "mean", "stddev"});
  double min_p_unimodal = 1.0;
  std::vector<double> unimodal_ps;
  std::size_t m1_unique = 0;
  std::size_t chip1_modes = 0;
  for (const std::string& name : devices) {
    SingleRowSeries data;
    if (!CollectSingleRowSeries(name, measurements, seed, &data)) {
      continue;
    }
    const core::SeriesAnalysis a = core::AnalyzeSeries(data.series);
    table.AddRow({name, Cell(a.unique_values),
                  Cell(a.histogram_modes), Cell(a.normal_fit.p_value, 4),
                  a.normal_fit.NormalAt(0.05) ? "yes" : "no",
                  Cell(a.mean, 1), Cell(a.stddev, 1)});
    if (a.histogram_modes <= 1) {
      min_p_unimodal = std::min(min_p_unimodal, a.normal_fit.p_value);
      unimodal_ps.push_back(a.normal_fit.p_value);
    }
    if (name == "M1") {
      m1_unique = a.unique_values;
    }
    if (name == "Chip1") {
      chip1_modes = a.histogram_modes;
    }

    if (name == bars_device) {
      PrintBanner(out, "Histogram of " + name);
      std::vector<double> values;
      for (const std::int64_t v : data.series) {
        if (v >= 0) {
          values.push_back(static_cast<double>(v));
        }
      }
      const stats::Histogram hist =
          stats::BuildUniqueValueHistogram(values);
      const auto peak = hist.bins[hist.ModeBin()].count;
      for (const stats::HistogramBin& bin : hist.bins) {
        const auto width = static_cast<std::size_t>(
            60.0 * static_cast<double>(bin.count) /
            static_cast<double>(peak));
        out << Cell(bin.lo, 0) << "\t" << bin.count << "\t"
            << std::string(width, '#') << '\n';
      }
      out << '\n';
    }
  }
  table.Print(out);

  PrintBanner(out, "Findings 2 and 4 checks");
  PrintCheck(out, "fig04.m1_unique_values", "21",
             Cell(static_cast<std::uint64_t>(m1_unique)));
  PrintCheck(out, "fig04.chip1_bimodal", "2 modes",
             Cell(static_cast<std::uint64_t>(chip1_modes)) + " modes");
  PrintCheck(out, "fig04.min_p_value_unimodal_chips", 0.18,
             min_p_unimodal, 3);
  // Devices whose single tested row carries a strong rare deep-minimum
  // trap reject normality (the deep states form a left tail); the
  // majority are consistent with the paper's normal-fit observation.
  std::size_t passing = 0;
  for (const double p : unimodal_ps) {
    if (p > 0.05) {
      ++passing;
    }
  }
  PrintCheck(out, "fig04.unimodal_chips_consistent_with_normal",
             "all tested chips",
             Cell(static_cast<std::uint64_t>(passing)) + " of " +
                 Cell(static_cast<std::uint64_t>(unimodal_ps.size())));
}

ExperimentSpec Fig04Spec() {
  ExperimentSpec spec;
  spec.name = "fig04_rdt_histograms";
  spec.description =
      "Figure 4: per-device RDT histograms and chi-square normality";
  spec.flags = {
      {"devices", "all", "device set: all, ddr4, hbm2, or comma list"},
      {"measurements", "100000", "measurements per victim row"},
      {"seed", "2025", "base RNG seed"},
      {"bars", "M1",
       "device whose full ASCII histogram is printed (none skips)"},
  };
  spec.smoke_args = {"--measurements=4000", "--devices=M1,Chip1",
                     "--bars=none"};
  spec.analyze = AnalyzeFig04;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig04Spec);

}  // namespace
}  // namespace vrddram::bench
