/**
 * @file
 * Figure 12 / Finding 16: the expected normalized value of the minimum
 * RDT with one RDT measurement at 50, 65, and 80 degC for six example
 * chips (two per manufacturer), using the Rowstripe1 data pattern and
 * tAggOn = minimum tRAS. The temperature sweep runs through the
 * simulated heater-pad + PID rig.
 */
#include <iostream>
#include <map>

#include "common/experiment.h"
#include "core/min_rdt_mc.h"

namespace vrddram::bench {
namespace {

core::CampaignConfig BuildFig12Campaign(const Flags& flags) {
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows"));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements"));
  config.base_seed = flags.GetUint("seed");
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan"));
  ApplyCampaignExecutionFlags(flags, &config);
  config.patterns = {dram::DataPattern::kRowstripe1};
  config.t_ons = {core::TOnChoice::kMinTras};
  config.temperatures = {50.0, 65.0, 80.0};
  config.use_thermal_rig = flags.GetBool("rig");
  return config;
}

void AnalyzeFig12(const core::CampaignResult& result, Report* report) {
  const Flags& flags = report->flags;
  std::ostream& out = report->out;
  const core::CampaignConfig config = BuildFig12Campaign(flags);

  core::MinRdtSettings settings;
  settings.sample_sizes = {1};
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters"));

  PrintBanner(out,
              "Figure 12: expected normalized min RDT (N = 1) vs. "
              "temperature, Rowstripe1, tAggOn = min tRAS");

  PrintShardSummary(out, result);
  Rng rng(config.base_seed ^ 0xf1c);

  std::map<std::string, std::map<int, std::vector<double>>> groups;
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    groups[record.device][static_cast<int>(record.temperature)]
        .push_back(mc.per_n[0].expected_norm_min);
  }

  TextTable table({"device", "temperature", "min", "Q1", "median",
                   "Q3", "max", "mean"});
  std::size_t devices_with_change = 0;
  for (const auto& [device, per_temp] : groups) {
    double lo_median = 10.0;
    double hi_median = 0.0;
    for (const auto& [temp, values] : per_temp) {
      const stats::BoxStats box = Box(values);
      table.AddRow({device, Cell(temp) + " degC", Cell(box.min, 4),
                    Cell(box.q1, 4), Cell(box.median, 4),
                    Cell(box.q3, 4), Cell(box.max, 4),
                    Cell(box.mean, 4)});
      lo_median = std::min(lo_median, box.median);
      hi_median = std::max(hi_median, box.median);
    }
    if (hi_median > lo_median) {
      ++devices_with_change;
    }
  }
  table.Print(out);

  PrintBanner(out, "Finding 16 check");
  PrintCheck(out,
             "fig12.devices_whose_profile_changes_with_temperature",
             "all",
             Cell(static_cast<std::uint64_t>(devices_with_change)) +
                 " of " +
                 Cell(static_cast<std::uint64_t>(groups.size())));
}

ExperimentSpec Fig12Spec() {
  ExperimentSpec spec;
  spec.name = "fig12_temperature";
  spec.description =
      "Figure 12: expected normalized min RDT vs. temperature";
  spec.flags = WithCampaignFlags({
      {"devices", "M0,M1,S0,S2,H1,H3",
       "device set: all, ddr4, hbm2, or comma list"},
      {"rows", "6", "victim rows per device"},
      {"measurements", "1000", "measurements per series"},
      {"seed", "2025", "base RNG seed"},
      {"scan", "96", "rows scanned per region when selecting victims"},
      {"iters", "4000", "Monte Carlo iterations per (row, N)"},
      {"rig", "true", "run the simulated heater-pad + PID thermal rig"},
  });
  spec.smoke_args = {"--devices=M1,S2", "--rows=3", "--measurements=120",
                     "--iters=500"};
  spec.build_campaign = BuildFig12Campaign;
  spec.analyze = AnalyzeFig12;
  return spec;
}

VRD_REGISTER_EXPERIMENT(Fig12Spec);

}  // namespace
}  // namespace vrddram::bench
