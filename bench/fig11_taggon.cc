/**
 * @file
 * Figure 11 / Findings 14-15: the expected normalized value of the
 * minimum RDT after N measurements for the three aggressor-on-time
 * levels (minimum tRAS, tREFI, 9 x tREFI), per manufacturer. The VRD
 * profile can become better or worse as tAggOn increases.
 *
 * Flags: --rows=6 --measurements=1000 --iters=4000 --seed=2025
 */
#include <iostream>
#include <map>

#include "common/bench_util.h"
#include "core/min_rdt_mc.h"

using namespace vrddram;
using namespace vrddram::bench;

namespace {

std::string GroupName(const core::SeriesRecord& record) {
  if (record.standard == dram::Standard::kHbm2) {
    return "Mfr. S HBM2";
  }
  return ToString(record.mfr);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  core::CampaignConfig config;
  config.devices = ResolveDevices(flags.GetString("devices", "all"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows", 6));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements", 1000));
  config.base_seed = flags.GetUint("seed", 2025);
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan", 96));
  config.threads = ResolveThreads(flags);
  ApplyResilienceFlags(flags, &config);
  config.t_ons = {core::TOnChoice::kMinTras, core::TOnChoice::kTrefi,
                  core::TOnChoice::kNineTrefi};

  core::MinRdtSettings settings;
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters", 4000));

  PrintBanner(std::cout,
              "Figure 11: expected normalized min RDT per tAggOn and "
              "manufacturer");

  const core::CampaignResult result = core::RunCampaign(config);
  PrintShardSummary(result);
  Rng rng(config.base_seed ^ 0xf1b);

  std::map<std::string,
           std::map<core::TOnChoice, std::vector<std::vector<double>>>>
      groups;
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    auto& per_ton = groups[GroupName(record)][record.t_on];
    if (per_ton.empty()) {
      per_ton.resize(settings.sample_sizes.size());
    }
    for (std::size_t i = 0; i < mc.per_n.size(); ++i) {
      per_ton[i].push_back(mc.per_n[i].expected_norm_min);
    }
  }

  TextTable table({"group", "tAggOn", "N", "median", "max", "mean"});
  std::map<std::string, std::map<core::TOnChoice, double>> median_n1;
  for (const auto& [group, per_ton_map] : groups) {
    for (const auto& [ton, per_n] : per_ton_map) {
      for (std::size_t i = 0; i < settings.sample_sizes.size(); ++i) {
        if (per_n[i].empty()) {
          continue;
        }
        const stats::BoxStats box = Box(per_n[i]);
        table.AddRow(
            {group, ToString(ton),
             Cell(static_cast<std::uint64_t>(settings.sample_sizes[i])),
             Cell(box.median, 4), Cell(box.max, 4), Cell(box.mean, 4)});
        if (settings.sample_sizes[i] == 1) {
          median_n1[group][ton] = box.median;
        }
      }
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Findings 14-15 checks");
  for (const auto& [group, per_ton] : median_n1) {
    if (per_ton.size() < 2) {
      continue;
    }
    double mn = 2.0;
    double mx = 0.0;
    for (const auto& [ton, median] : per_ton) {
      mn = std::min(mn, median);
      mx = std::max(mx, median);
    }
    PrintCheck("fig11.profile_changes_with_taggon." + group,
               "medians differ across tAggOn",
               Cell(mn, 4) + " .. " + Cell(mx, 4));
  }
  return 0;
}
