/**
 * @file
 * Figure 12 / Finding 16: the expected normalized value of the minimum
 * RDT with one RDT measurement at 50, 65, and 80 degC for six example
 * chips (two per manufacturer), using the Rowstripe1 data pattern and
 * tAggOn = minimum tRAS. The temperature sweep runs through the
 * simulated heater-pad + PID rig.
 *
 * Flags: --devices=M0,M1,S0,S2,H1,H3 --rows=6 --measurements=1000
 *        --iters=4000 --seed=2025 --rig=true
 */
#include <iostream>
#include <map>

#include "common/bench_util.h"
#include "core/min_rdt_mc.h"

using namespace vrddram;
using namespace vrddram::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  core::CampaignConfig config;
  config.devices =
      ResolveDevices(flags.GetString("devices", "M0,M1,S0,S2,H1,H3"));
  config.rows_per_device =
      static_cast<std::size_t>(flags.GetUint("rows", 6));
  config.measurements =
      static_cast<std::size_t>(flags.GetUint("measurements", 1000));
  config.base_seed = flags.GetUint("seed", 2025);
  config.scan_rows_per_region =
      static_cast<std::size_t>(flags.GetUint("scan", 96));
  config.threads = ResolveThreads(flags);
  ApplyResilienceFlags(flags, &config);
  config.patterns = {dram::DataPattern::kRowstripe1};
  config.t_ons = {core::TOnChoice::kMinTras};
  config.temperatures = {50.0, 65.0, 80.0};
  config.use_thermal_rig = flags.GetBool("rig", true);

  core::MinRdtSettings settings;
  settings.sample_sizes = {1};
  settings.iterations =
      static_cast<std::size_t>(flags.GetUint("iters", 4000));

  PrintBanner(std::cout,
              "Figure 12: expected normalized min RDT (N = 1) vs. "
              "temperature, Rowstripe1, tAggOn = min tRAS");

  const core::CampaignResult result = core::RunCampaign(config);
  PrintShardSummary(result);
  Rng rng(config.base_seed ^ 0xf1c);

  std::map<std::string, std::map<int, std::vector<double>>> groups;
  for (const core::SeriesRecord& record : result.records) {
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    groups[record.device][static_cast<int>(record.temperature)]
        .push_back(mc.per_n[0].expected_norm_min);
  }

  TextTable table({"device", "temperature", "min", "Q1", "median",
                   "Q3", "max", "mean"});
  std::size_t devices_with_change = 0;
  for (const auto& [device, per_temp] : groups) {
    double lo_median = 10.0;
    double hi_median = 0.0;
    for (const auto& [temp, values] : per_temp) {
      const stats::BoxStats box = Box(values);
      table.AddRow({device, Cell(temp) + " degC", Cell(box.min, 4),
                    Cell(box.q1, 4), Cell(box.median, 4),
                    Cell(box.q3, 4), Cell(box.max, 4),
                    Cell(box.mean, 4)});
      lo_median = std::min(lo_median, box.median);
      hi_median = std::max(hi_median, box.median);
    }
    if (hi_median > lo_median) {
      ++devices_with_change;
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Finding 16 check");
  PrintCheck("fig12.devices_whose_profile_changes_with_temperature",
             "all",
             Cell(static_cast<std::uint64_t>(devices_with_change)) +
                 " of " +
                 Cell(static_cast<std::uint64_t>(groups.size())));
  return 0;
}
