/**
 * @file
 * Figure 14 / §6.3: four-core highly-memory-intensive workload
 * performance under Graphene, PRAC, PARA, and MINT, normalized to the
 * baseline system without read-disturbance mitigation, for two
 * threshold regimes (near-future RDT = 1024 and very-low RDT = 128)
 * each with 0%, 10%, 25%, and 50% safety margins.
 *
 * Flags: --requests=20000 --mixes=15 --seed=2025
 */
#include <iostream>
#include <map>

#include "common/bench_util.h"
#include "memsim/system.h"

using namespace vrddram;
using namespace vrddram::bench;
using namespace vrddram::memsim;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto requests =
      static_cast<std::size_t>(flags.GetUint("requests", 20000));
  const auto num_mixes =
      static_cast<std::size_t>(flags.GetUint("mixes", 15));
  const std::uint64_t seed = flags.GetUint("seed", 2025);
  const Scheduler scheduler = flags.GetBool("frfcfs", false)
                                  ? Scheduler::kFrFcfs
                                  : Scheduler::kInOrder;

  PrintBanner(std::cout,
              "Figure 14: normalized performance of read-disturbance "
              "mitigations vs. configured RDT and guardband");

  struct Config {
    std::uint64_t base_rdt;
    double margin;
  };
  const Config configs[] = {{1024, 0.0},  {1024, 0.10}, {1024, 0.25},
                            {1024, 0.50}, {128, 0.0},   {128, 0.10},
                            {128, 0.25},  {128, 0.50}};
  const MitigationKind kinds[] = {
      MitigationKind::kGraphene, MitigationKind::kPrac,
      MitigationKind::kPara, MitigationKind::kMint};

  auto mixes = MakeHighMemoryIntensityMixes(42);
  if (mixes.size() > num_mixes) {
    mixes.resize(num_mixes);
  }

  // Baseline per mix.
  std::vector<SystemResult> baselines;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    SystemConfig sc;
    sc.requests_per_core = requests;
    sc.seed = seed + m;
    sc.scheduler = scheduler;
    baselines.push_back(SimulateMix(mixes[m], sc));
  }

  TextTable table({"RDT (margin)", "configured", "Graphene", "PRAC",
                   "PARA", "MINT"});
  std::map<std::pair<int, int>, double> cell;  // (config idx, kind idx)
  for (std::size_t c = 0; c < std::size(configs); ++c) {
    const auto configured = static_cast<std::uint64_t>(
        static_cast<double>(configs[c].base_rdt) *
        (1.0 - configs[c].margin));
    std::vector<std::string> row = {
        Cell(configs[c].base_rdt) + " (" +
            Cell(configs[c].margin * 100.0, 0) + "%)",
        Cell(configured)};
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      double sum = 0.0;
      for (std::size_t m = 0; m < mixes.size(); ++m) {
        SystemConfig sc;
        sc.requests_per_core = requests;
        sc.seed = seed + m;
        sc.scheduler = scheduler;
        sc.mitigation = kinds[k];
        sc.rdt = configured;
        const SystemResult result = SimulateMix(mixes[m], sc);
        sum += NormalizedPerformance(result, baselines[m]);
      }
      const double mean = sum / static_cast<double>(mixes.size());
      cell[{static_cast<int>(c), static_cast<int>(k)}] = mean;
      row.push_back(Cell(mean, 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  // Tail-latency view of the worst configuration.
  {
    SystemConfig sc;
    sc.requests_per_core = requests;
    sc.seed = seed;
    sc.scheduler = scheduler;
    const SystemResult base = SimulateMix(mixes[0], sc);
    sc.mitigation = MitigationKind::kMint;
    sc.rdt = 64;
    const SystemResult worst = SimulateMix(mixes[0], sc);
    PrintBanner(std::cout, "Latency (mix0): baseline vs MINT @ RDT 64");
    TextTable latency({"config", "avg (ns)", "p50 (ns)", "p99 (ns)"});
    latency.AddRow({"baseline", Cell(base.AvgLatencyNs(), 1),
                    Cell(base.LatencyPercentileNs(50.0), 1),
                    Cell(base.LatencyPercentileNs(99.0), 1)});
    latency.AddRow({"MINT @ 64", Cell(worst.AvgLatencyNs(), 1),
                    Cell(worst.LatencyPercentileNs(50.0), 1),
                    Cell(worst.LatencyPercentileNs(99.0), 1)});
    latency.Print(std::cout);
  }

  PrintBanner(std::cout, "§6.3 checks (losses relative to no margin)");
  auto loss_vs_margin0 = [&](int kind, int margin_cfg, int base_cfg) {
    return 100.0 * (1.0 - cell[{margin_cfg, kind}] /
                              cell[{base_cfg, kind}]);
  };
  // At RDT = 128: 10% margin costs Graphene 1.0%, PRAC 0.0%,
  // PARA 5.9%, MINT 0.0%; 50% margin costs 8.5 / 7.6 / 35.0 / 45.0%.
  PrintCheck("fig14.rdt128_margin10.graphene_loss_pct", 1.0,
             loss_vs_margin0(0, 5, 4), 1);
  PrintCheck("fig14.rdt128_margin10.prac_loss_pct", 0.0,
             loss_vs_margin0(1, 5, 4), 1);
  PrintCheck("fig14.rdt128_margin10.para_loss_pct", 5.9,
             loss_vs_margin0(2, 5, 4), 1);
  PrintCheck("fig14.rdt128_margin10.mint_loss_pct", 0.0,
             loss_vs_margin0(3, 5, 4), 1);
  PrintCheck("fig14.rdt128_margin50.graphene_loss_pct", 8.5,
             loss_vs_margin0(0, 7, 4), 1);
  PrintCheck("fig14.rdt128_margin50.prac_loss_pct", 7.6,
             loss_vs_margin0(1, 7, 4), 1);
  PrintCheck("fig14.rdt128_margin50.para_loss_pct", 35.0,
             loss_vs_margin0(2, 7, 4), 1);
  PrintCheck("fig14.rdt128_margin50.mint_loss_pct", 45.0,
             loss_vs_margin0(3, 7, 4), 1);
  return 0;
}
