/**
 * @file
 * `vrdrepro` — the unified driver over the experiment registry. All
 * figure/table reproductions are `vrdrepro run <name>`; see
 * bench/common/driver.h for the command grammar.
 */
#include <iostream>

#include "common/driver.h"

int main(int argc, char** argv) {
  return vrddram::bench::RunDriver(argc, argv, std::cout, std::cerr);
}
