/**
 * @file
 * Figure 5 / Finding 3: histogram of the number of consecutive
 * measurements across which a row's RDT keeps the same value,
 * aggregated across all tested rows. The paper reports that 79.0% of
 * state changes happen after every measurement and that runs of 14
 * equal values are seen only once.
 *
 * Flags: --devices=all --measurements=100000 --seed=2025
 */
#include <iostream>

#include "common/bench_util.h"
#include "stats/run_length.h"

using namespace vrddram;
using namespace vrddram::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto measurements =
      static_cast<std::size_t>(flags.GetUint("measurements", 100000));
  const std::uint64_t seed = flags.GetUint("seed", 2025);
  const auto devices = ResolveDevices(flags.GetString("devices", "all"));

  PrintBanner(std::cout,
              "Figure 5: run lengths of equal consecutive RDT "
              "measurements, aggregated across rows");

  stats::RunLengthHistogram aggregate;
  for (const std::string& name : devices) {
    SingleRowSeries data;
    if (!CollectSingleRowSeries(name, measurements, seed, &data)) {
      continue;
    }
    std::vector<std::int64_t> valid;
    for (const std::int64_t v : data.series) {
      if (v >= 0) {
        valid.push_back(v);
      }
    }
    stats::Merge(aggregate, stats::ComputeRunLengths(valid));
  }

  TextTable table({"consecutive equal measurements", "# of runs"});
  for (const auto& [length, count] : aggregate.counts) {
    table.AddRow({Cell(static_cast<std::uint64_t>(length)),
                  Cell(count)});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Finding 3 checks");
  PrintCheck("fig05.immediate_change_fraction", 0.790,
             aggregate.ImmediateChangeFraction(), 3);
  PrintCheck("fig05.longest_run", "14 (observed once)",
             Cell(static_cast<std::uint64_t>(aggregate.LongestRun())));
  return 0;
}
