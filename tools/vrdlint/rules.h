/**
 * @file
 * Internal interface between the vrdlint driver (vrdlint.cc) and the
 * rule families (rules_core.cc, rules_rng_flow.cc, rules_float.cc,
 * rules_lock.cc). Not part of the public vrdlint.h API.
 */
#ifndef VRDDRAM_TOOLS_VRDLINT_RULES_H
#define VRDDRAM_TOOLS_VRDLINT_RULES_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "symbol_index.h"
#include "tokenizer.h"
#include "vrdlint.h"

namespace vrdlint {

/// Everything a rule needs to scan one file in pass 2.
struct RuleContext {
  const std::string& path;
  const FileView& view;
  const FileSymbols& symbols;
  const SymbolIndex& index;
  const Config& config;
  /// Extra unordered-container names from the paired header, or null.
  const std::vector<std::string>* extra_unordered = nullptr;
};

bool IsHeaderPath(std::string_view path);
bool RuleSuppressedForPath(const Config& config, std::string_view rule,
                           std::string_view path);

/// An Rng object declared in this file (rules_core.cc collects them;
/// rng-discipline and rng-flow both consume them).
struct RngDecl {
  std::string name;
  std::size_t pos = 0;  // flat offset of the declaration
};

/// One `ParallelFor`/`Submit` call carrying an inline lambda.
struct DispatchLambda {
  std::string_view keyword;    // "ParallelFor" or "Submit"
  std::size_t kw = 0;          // flat offset of the keyword
  std::size_t open = 0;        // '(' of the dispatch call
  std::size_t close = 0;       // matching ')'
  std::size_t intro = 0;       // '[' of the lambda introducer
  std::size_t intro_close = 0; // matching ']'
  std::size_t body_open = 0;   // '{' of the lambda body
  std::size_t body_close = 0;  // matching '}'
};

std::vector<DispatchLambda> FindDispatchLambdas(const FileView& view);

/// Start-of-enclosing-scope heuristic: the nearest preceding line that
/// begins at column 0 with an identifier or '}'.
std::size_t EnclosingScopeStart(const FileView& view, std::size_t line);

/// True when a Fork(...) call appears between the enclosing scope
/// start and `before` — the pre-forked-streams excusal shared by
/// rng-discipline and rng-flow.
bool ForkedInEnclosingScope(const FileView& view, std::size_t before);

/// A seed expression: empty, pure literal arithmetic, seed-named, or
/// rooted in a registered seed-call (MixSeed/HashLabel/... + config).
bool IsSeedExpression(std::string_view args, const Config& config);

/// Names declared with an unordered container type in the file.
std::vector<std::string> CollectUnorderedNames(const FileView& view);

/// Run the v1 rule families (banned-api, unordered-iteration,
/// rng-discipline, catch-all-swallow, campaign-discipline,
/// kernel-allocation, header-hygiene), returning the Rng declarations
/// for the rng-flow family to reuse.
std::vector<RngDecl> RunCoreRules(const RuleContext& ctx,
                                  std::vector<Diagnostic>* diagnostics);

/// rng-flow: by-ref capture of an Rng into a dispatch lambda, a
/// non-const Rng& passed across a function boundary inside one, and
/// re-seeding from a non-seed expression.
void CheckRngFlow(const RuleContext& ctx,
                  const std::vector<RngDecl>& decls,
                  std::vector<Diagnostic>* diagnostics);

/// float-determinism: FMA-contractable shapes in bit-equality kernel
/// files and float accumulation across ParallelFor tasks anywhere.
void CheckFloatDeterminism(const RuleContext& ctx,
                           std::vector<Diagnostic>* diagnostics);

/// One nested lock acquisition (outer, inner) observed in a function,
/// fed to the global ordering check.
struct LockOrderEdge {
  std::string first;   // mutex locked first
  std::string second;  // mutex locked while `first` is held
  std::string file;
  std::size_t line = 0;  // line of the inner acquisition
  bool allowed = false;  // suppressed via allow(lock-discipline)
};

/// lock-discipline per-file pass: guarded_by coverage inside methods,
/// plus collection of nested-acquisition edges for the global check.
void CheckLockDiscipline(const RuleContext& ctx,
                         std::vector<LockOrderEdge>* edges,
                         std::vector<Diagnostic>* diagnostics);

/// lock-discipline global pass: a mutex pair acquired in both orders
/// anywhere in the tree is a deadlock-shaped inconsistency.
void CheckLockOrdering(const std::vector<LockOrderEdge>& edges,
                       std::vector<Diagnostic>* diagnostics);

}  // namespace vrdlint

#endif  // VRDDRAM_TOOLS_VRDLINT_RULES_H
