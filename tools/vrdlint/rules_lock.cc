/**
 * @file
 * Rule family: lock-discipline — the annotation-driven concurrency
 * contract for shared mutable state (landing ahead of the fleet-scale
 * online profiling service, ROADMAP item 1):
 *
 *  - a member annotated `// vrdlint: guarded_by(mu_)` may only be
 *    touched inside methods of its class while `mu_` is held — held
 *    meaning a lock_guard/scoped_lock/unique_lock/shared_lock naming
 *    the mutex earlier in the method (still-open block), an explicit
 *    `mu_.lock()`, or a `// vrdlint: requires_lock(mu_)` annotation
 *    on the method head declaring the caller-holds contract;
 *  - every pair of distinctly-named mutexes must be acquired in one
 *    consistent order across the whole tree: observing both (A then
 *    B) and (B then A) nestings is deadlock-shaped.
 *
 * Constructors and destructors are exempt from coverage (no
 * concurrent access before/after the object's lifetime).
 */
#include <algorithm>
#include <map>
#include <set>

#include "rules.h"

namespace vrdlint {
namespace {

constexpr std::string_view kRaiiGuards[] = {
    "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};

/// One observed lock acquisition inside a function body.
struct Acquisition {
  std::string mutex;        // normalized mutex expression text
  std::size_t pos = 0;      // flat offset of the acquisition
  std::size_t hold_end = 0; // flat offset where the hold lexically ends
  bool no_edges = false;    // std::lock(...): simultaneous, unordered
};

std::string NormalizeMutexExpr(std::string_view expr) {
  std::string out = Trim(expr);
  if (out.rfind("this->", 0) == 0) {
    out = out.substr(6);
  }
  if (!out.empty() && out.front() == '&') {
    out = Trim(out.substr(1));
  }
  return out;
}

/// True when the acquisition expression reaches the mutex member
/// `name`: exactly, or as the final member of an accessor chain.
bool MutexMatches(std::string_view expr, std::string_view name) {
  if (expr == name) {
    return true;
  }
  if (expr.size() > name.size() + 1 &&
      expr.ends_with(name)) {
    const std::size_t cut = expr.size() - name.size();
    if (expr[cut - 1] == '.') {
      return true;
    }
    if (cut >= 2 && expr[cut - 2] == '-' && expr[cut - 1] == '>') {
      return true;
    }
  }
  return false;
}

std::vector<std::string_view> SplitTopLevel(std::string_view args) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}' || c == '>') {
      --depth;
    } else if (c == ',' && depth == 0) {
      out.push_back(args.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  out.push_back(args.substr(begin));
  return out;
}

/// Collect every acquisition inside [begin, end) of the flat text.
std::vector<Acquisition> CollectAcquisitions(const RuleContext& ctx,
                                             std::size_t begin,
                                             std::size_t end) {
  const std::string_view flat = ctx.view.flat;
  std::vector<Acquisition> acquisitions;

  for (const std::string_view guard : kRaiiGuards) {
    std::size_t pos = begin;
    while ((pos = FindWord(flat, guard, pos)) != std::string_view::npos &&
           pos < end) {
      const std::size_t here = pos;
      pos += guard.size();
      std::size_t p = SkipSpace(flat, here + guard.size());
      if (p < flat.size() && flat[p] == '<') {
        const std::size_t close = MatchBracket(flat, p, '<', '>');
        if (close == std::string_view::npos) {
          continue;
        }
        p = SkipSpace(flat, close + 1);
      }
      // Skip the guard variable's name.
      while (p < flat.size() && IsIdentChar(flat[p])) {
        ++p;
      }
      p = SkipSpace(flat, p);
      if (p >= flat.size() || (flat[p] != '(' && flat[p] != '{')) {
        continue;  // a type mention, not a construction
      }
      const char close_char = flat[p] == '(' ? ')' : '}';
      const std::size_t close = MatchBracket(flat, p, flat[p], close_char);
      if (close == std::string_view::npos) {
        continue;
      }
      const std::string_view args = flat.substr(p + 1, close - p - 1);
      if (args.find("defer_lock") != std::string_view::npos) {
        continue;  // constructed unlocked
      }
      const int scope = ctx.symbols.ScopeAt(here);
      const std::size_t hold_end =
          scope >= 0
              ? ctx.symbols.scopes[static_cast<std::size_t>(scope)].close
              : end;
      for (const std::string_view arg : SplitTopLevel(args)) {
        const std::string expr = NormalizeMutexExpr(arg);
        if (expr.empty() ||
            expr.find("adopt_lock") != std::string::npos ||
            expr.find("try_to_lock") != std::string::npos) {
          continue;
        }
        acquisitions.push_back(
            Acquisition{expr, here, std::min(hold_end, end), false});
      }
    }
  }

  // Explicit .lock() / ->lock() and std::lock(a, b, ...).
  std::size_t pos = begin;
  while ((pos = FindWord(flat, "lock", pos)) != std::string_view::npos &&
         pos < end) {
    const std::size_t here = pos;
    pos += 4;
    const std::size_t open = SkipSpace(flat, here + 4);
    if (open >= flat.size() || flat[open] != '(') {
      continue;
    }
    const std::string_view obj = ObjectExpressionBefore(flat, here);
    if (!obj.empty()) {
      acquisitions.push_back(
          Acquisition{NormalizeMutexExpr(obj), here, end, false});
      continue;
    }
    if (here >= 2 && flat[here - 2] == ':' && flat[here - 1] == ':') {
      // std::lock(m1, m2): simultaneous deadlock-free acquisition —
      // coverage counts it, the ordering check must not.
      const std::size_t close = MatchBracket(flat, open, '(', ')');
      if (close == std::string_view::npos) {
        continue;
      }
      for (const std::string_view arg :
           SplitTopLevel(flat.substr(open + 1, close - open - 1))) {
        const std::string expr = NormalizeMutexExpr(arg);
        if (!expr.empty()) {
          acquisitions.push_back(Acquisition{expr, here, end, true});
        }
      }
    }
  }

  std::sort(acquisitions.begin(), acquisitions.end(),
            [](const Acquisition& a, const Acquisition& b) {
              return a.pos < b.pos;
            });
  return acquisitions;
}

bool IsCtorOrDtor(const Scope& scope) {
  return scope.name.empty() || scope.name.front() == '~' ||
         scope.name == scope.class_name;
}

}  // namespace

void CheckLockDiscipline(const RuleContext& ctx,
                         std::vector<LockOrderEdge>* edges,
                         std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(ctx.config, "lock-discipline", ctx.path)) {
    return;
  }
  const std::string_view flat = ctx.view.flat;

  for (const Scope& scope : ctx.symbols.scopes) {
    if (scope.kind != Scope::Kind::kFunction) {
      continue;
    }
    const std::vector<Acquisition> acquisitions =
        CollectAcquisitions(ctx, scope.open, scope.close);

    // Ordering edges: B acquired while A's hold is lexically open.
    for (std::size_t a = 0; a < acquisitions.size(); ++a) {
      for (std::size_t b = a + 1; b < acquisitions.size(); ++b) {
        const Acquisition& outer = acquisitions[a];
        const Acquisition& inner = acquisitions[b];
        if (outer.no_edges || inner.no_edges ||
            outer.mutex == inner.mutex ||
            inner.pos >= outer.hold_end) {
          continue;
        }
        const std::size_t line = ctx.view.LineOf(inner.pos);
        edges->push_back(LockOrderEdge{
            outer.mutex, inner.mutex, ctx.path, line,
            ctx.view.Allowed(line, {"lock-discipline"})});
      }
    }

    // guarded_by coverage: only methods of a class with annotations.
    if (scope.class_name.empty() || IsCtorOrDtor(scope)) {
      continue;
    }
    const auto members_it = ctx.index.members.find(scope.class_name);
    if (members_it == ctx.index.members.end()) {
      continue;
    }
    for (const MemberVar& member : members_it->second) {
      if (member.guarded_by.empty()) {
        continue;
      }
      const std::string& guard = member.guarded_by;
      const bool method_holds =
          std::find(scope.requires_locks.begin(),
                    scope.requires_locks.end(),
                    guard) != scope.requires_locks.end();
      if (method_holds) {
        continue;
      }
      std::set<std::size_t> reported_lines;
      std::size_t pos = scope.open;
      while ((pos = FindWord(flat, member.name, pos)) !=
                 std::string_view::npos &&
             pos < scope.close) {
        const std::size_t here = pos;
        pos += member.name.size();
        bool covered = false;
        for (const Acquisition& acq : acquisitions) {
          if (acq.pos < here && here < acq.hold_end &&
              MutexMatches(acq.mutex, guard)) {
            covered = true;
            break;
          }
        }
        if (covered) {
          continue;
        }
        const std::size_t line = ctx.view.LineOf(here);
        if (ctx.view.Allowed(line, {"lock-discipline"}) ||
            !reported_lines.insert(line).second) {
          continue;
        }
        diagnostics->push_back(Diagnostic{
            ctx.path, line, "lock-discipline",
            "member '" + member.name + "' is guarded_by(" + guard +
                ") (" + member.file + ":" +
                std::to_string(member.line) + ") but '" +
                scope.class_name + "::" + scope.name +
                "' touches it without holding '" + guard +
                "'; lock the mutex, annotate the method with "
                "// vrdlint: requires_lock(" + guard +
                "), or annotate with // vrdlint: allow(lock-discipline)"});
      }
    }
  }
}

void CheckLockOrdering(const std::vector<LockOrderEdge>& edges,
                       std::vector<Diagnostic>* diagnostics) {
  // First-seen edge per ordered pair (edges arrive in sorted file
  // order, so "first-seen" is deterministic).
  std::map<std::pair<std::string, std::string>, const LockOrderEdge*>
      first_seen;
  for (const LockOrderEdge& edge : edges) {
    first_seen.emplace(std::make_pair(edge.first, edge.second), &edge);
  }
  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [key, edge] : first_seen) {
    const auto& [a, b] = key;
    if (a >= b) {
      continue;  // visit each unordered pair once, from its (a<b) side
    }
    const auto reverse = first_seen.find(std::make_pair(b, a));
    if (reverse == first_seen.end()) {
      continue;
    }
    const LockOrderEdge* forward = edge;
    if (forward->allowed || reverse->second->allowed) {
      continue;
    }
    if (!reported.insert(std::make_pair(a, b)).second) {
      continue;
    }
    // At the reverse site, `a` is the inner acquisition (taken while
    // `b` is held); at the forward site it is the outer one.
    diagnostics->push_back(Diagnostic{
        reverse->second->file, reverse->second->line, "lock-discipline",
        "mutexes '" + a + "' and '" + b +
            "' are acquired in inconsistent order: '" + a +
            "' is taken while '" + b + "' is held here, but '" + b +
            "' is taken while '" + a + "' is held at " + forward->file +
            ":" + std::to_string(forward->line) +
            "; pick one order (or std::scoped_lock both) so the "
            "nesting cannot deadlock"});
  }
}

}  // namespace vrdlint
