/**
 * vrdlint CLI.
 *
 *   vrdlint [--root DIR] [--config FILE] [--sarif FILE]
 *           [--baseline FILE [--stale-check]]
 *           [--write-baseline FILE] [file...]
 *
 * With file arguments, lints exactly those files; otherwise walks the
 * configured scan directories under --root (default: the current
 * directory). The config defaults to <root>/tools/vrdlint/vrdlint.conf
 * when that file exists.
 *
 * --baseline suppresses findings recorded in the given baseline file
 * (keyed by rule, file, and line content — see baseline.h);
 * --stale-check additionally fails when the baseline holds entries no
 * finding consumed. --write-baseline snapshots the current findings
 * (pre-suppression) and exits 0. --sarif writes the surviving
 * findings as SARIF 2.1.0 for GitHub code-scanning upload.
 *
 * Exit status: 0 clean, 1 diagnostics emitted, 2 usage/IO error,
 * 3 stale baseline (1 wins when both apply).
 */
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "sarif.h"
#include "vrdlint.h"

namespace {

int Usage(std::ostream& out) {
  out << "usage: vrdlint [--root DIR] [--config FILE] [--sarif FILE]\n"
         "               [--baseline FILE [--stale-check]]\n"
         "               [--write-baseline FILE] [file...]\n";
  return 2;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool stale_check = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    }
    if (arg == "--root") {
      if (++i >= argc) {
        return Usage(std::cerr);
      }
      root = argv[i];
    } else if (arg == "--config") {
      if (++i >= argc) {
        return Usage(std::cerr);
      }
      config_path = argv[i];
    } else if (arg == "--sarif") {
      if (++i >= argc) {
        return Usage(std::cerr);
      }
      sarif_path = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) {
        return Usage(std::cerr);
      }
      baseline_path = argv[i];
    } else if (arg == "--write-baseline") {
      if (++i >= argc) {
        return Usage(std::cerr);
      }
      write_baseline_path = argv[i];
    } else if (arg == "--stale-check") {
      stale_check = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "vrdlint: unknown option: " << arg << '\n';
      return Usage(std::cerr);
    } else {
      files.push_back(arg);
    }
  }
  if (stale_check && baseline_path.empty()) {
    std::cerr << "vrdlint: --stale-check requires --baseline\n";
    return Usage(std::cerr);
  }

  vrdlint::Config config;
  std::string error;
  if (config_path.empty()) {
    const std::filesystem::path fallback =
        std::filesystem::path(root) / "tools" / "vrdlint" / "vrdlint.conf";
    if (std::filesystem::exists(fallback)) {
      config_path = fallback.string();
    }
  }
  if (!config_path.empty() &&
      !vrdlint::LoadConfigFile(config_path, &config, &error)) {
    std::cerr << "vrdlint: " << error << '\n';
    return 2;
  }

  std::vector<vrdlint::Diagnostic> diagnostics;
  std::size_t scanned = 0;
  if (!files.empty()) {
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "vrdlint: cannot read " << file << '\n';
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      ++scanned;
      for (vrdlint::Diagnostic& d :
           vrdlint::LintSource(file, buffer.str(), config)) {
        diagnostics.push_back(std::move(d));
      }
    }
  } else {
    scanned = vrdlint::CollectFiles(root, config).size();
    diagnostics = vrdlint::LintTree(root, config);
  }

  if (!write_baseline_path.empty()) {
    if (!WriteFile(write_baseline_path,
                   vrdlint::BaselineText(diagnostics))) {
      std::cerr << "vrdlint: cannot write baseline: "
                << write_baseline_path << '\n';
      return 2;
    }
    std::cerr << "vrdlint: baseline with " << diagnostics.size()
              << " finding(s) written to " << write_baseline_path
              << '\n';
    return 0;
  }

  std::size_t suppressed = 0;
  bool stale = false;
  if (!baseline_path.empty()) {
    vrdlint::Baseline baseline;
    if (!vrdlint::LoadBaselineFile(baseline_path, &baseline, &error)) {
      std::cerr << "vrdlint: " << error << '\n';
      return 2;
    }
    const std::size_t before = diagnostics.size();
    diagnostics =
        vrdlint::FilterBaseline(diagnostics, baseline, &stale);
    suppressed = before - diagnostics.size();
  }

  if (!sarif_path.empty() &&
      !WriteFile(sarif_path, vrdlint::SarifReport(diagnostics))) {
    std::cerr << "vrdlint: cannot write SARIF: " << sarif_path << '\n';
    return 2;
  }

  for (const vrdlint::Diagnostic& d : diagnostics) {
    std::cout << d.ToString() << '\n';
  }
  std::cerr << "vrdlint: " << diagnostics.size() << " issue(s)";
  if (!baseline_path.empty()) {
    std::cerr << " (" << suppressed << " suppressed by baseline)";
  }
  std::cerr << " in " << scanned << " file(s) scanned\n";
  if (stale && stale_check) {
    std::cerr << "vrdlint: baseline is stale: it records findings that "
                 "no longer fire; refresh it with --write-baseline\n";
  }
  if (!diagnostics.empty()) {
    return 1;
  }
  return (stale && stale_check) ? 3 : 0;
}
