/**
 * vrdlint CLI.
 *
 *   vrdlint [--root DIR] [--config FILE] [file...]
 *
 * With file arguments, lints exactly those files; otherwise walks the
 * configured scan directories under --root (default: the current
 * directory). The config defaults to <root>/tools/vrdlint/vrdlint.conf
 * when that file exists.
 *
 * Exit status: 0 clean, 1 diagnostics emitted, 2 usage/IO error.
 */
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "vrdlint.h"

namespace {

int Usage(std::ostream& out) {
  out << "usage: vrdlint [--root DIR] [--config FILE] [file...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    }
    if (arg == "--root") {
      if (++i >= argc) {
        return Usage(std::cerr);
      }
      root = argv[i];
    } else if (arg == "--config") {
      if (++i >= argc) {
        return Usage(std::cerr);
      }
      config_path = argv[i];
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "vrdlint: unknown option: " << arg << '\n';
      return Usage(std::cerr);
    } else {
      files.push_back(arg);
    }
  }

  vrdlint::Config config;
  std::string error;
  if (config_path.empty()) {
    const std::filesystem::path fallback =
        std::filesystem::path(root) / "tools" / "vrdlint" / "vrdlint.conf";
    if (std::filesystem::exists(fallback)) {
      config_path = fallback.string();
    }
  }
  if (!config_path.empty() &&
      !vrdlint::LoadConfigFile(config_path, &config, &error)) {
    std::cerr << "vrdlint: " << error << '\n';
    return 2;
  }

  std::vector<vrdlint::Diagnostic> diagnostics;
  std::size_t scanned = 0;
  if (!files.empty()) {
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "vrdlint: cannot read " << file << '\n';
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      ++scanned;
      for (vrdlint::Diagnostic& d :
           vrdlint::LintSource(file, buffer.str(), config)) {
        diagnostics.push_back(std::move(d));
      }
    }
  } else {
    scanned = vrdlint::CollectFiles(root, config).size();
    diagnostics = vrdlint::LintTree(root, config);
  }

  for (const vrdlint::Diagnostic& d : diagnostics) {
    std::cout << d.ToString() << '\n';
  }
  std::cerr << "vrdlint: " << diagnostics.size() << " issue(s) in "
            << scanned << " file(s) scanned\n";
  return diagnostics.empty() ? 0 : 1;
}
