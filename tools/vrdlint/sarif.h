/**
 * @file
 * SARIF 2.1.0 output for vrdlint, the shape GitHub code scanning
 * ingests to annotate PR diffs. One run, one driver ("vrdlint"), one
 * result per diagnostic; paths are emitted repo-relative with a
 * SRCROOT uriBaseId, and the line-content hash rides along as a
 * partial fingerprint so annotations survive line-number churn.
 */
#ifndef VRDDRAM_TOOLS_VRDLINT_SARIF_H
#define VRDDRAM_TOOLS_VRDLINT_SARIF_H

#include <string>
#include <vector>

#include "vrdlint.h"

namespace vrdlint {

/// Serialize diagnostics as a SARIF 2.1.0 JSON document.
std::string SarifReport(const std::vector<Diagnostic>& diagnostics);

}  // namespace vrdlint

#endif  // VRDDRAM_TOOLS_VRDLINT_SARIF_H
