/**
 * @file
 * vrdlint — the vrddram determinism-contract linter.
 *
 * A standalone token/line-level scanner (no libclang) that enforces
 * the DESIGN.md §6 determinism rules as machine-checked invariants
 * over src/, tests/, bench/, and examples/:
 *
 *  - banned-api            nondeterministic sources (std::random_device,
 *                          rand/srand, time(), std::chrono::*_clock::now)
 *                          outside annotated telemetry
 *  - unordered-iteration   range-for over std::unordered_{map,set}
 *                          unless laundered through SortedByKey()/
 *                          SortedKeys() or annotated
 *  - rng-discipline        Rng must be constructed from a seed
 *                          expression; a captured Rng touched inside a
 *                          ThreadPool::Submit/ParallelFor lambda needs
 *                          a preceding Fork(...) in the enclosing scope
 *  - catch-all-swallow     `catch (...)` / `catch (std::exception&)`
 *                          handlers must rethrow, capture the
 *                          exception (std::current_exception), or
 *                          convert it to a typed vrddram error
 *                          (TransientError/FatalError/PanicError) —
 *                          silently swallowing breaks the error.h
 *                          retry/quarantine contract
 *  - header-hygiene        include guards / #pragma once present and
 *                          no `using namespace` in headers
 *  - campaign-discipline   direct RunCampaign(...) calls in files under
 *                          bench/ — experiments must route execution
 *                          through the registry driver's cached path
 *                          (core::RunCampaignCached) so `vrdrepro run
 *                          --all` executes each unique campaign once
 *  - kernel-allocation     heap allocation in measurement-kernel files
 *                          (the `kernel-path` entries of the config):
 *                          `new` expressions, make_unique/make_shared,
 *                          and container growth (push_back /
 *                          emplace_back / resize) on an object with no
 *                          earlier `.reserve(...)` in the file — the
 *                          hot path must stay allocation-free
 *                          (DESIGN.md §10); construction-time growth
 *                          is excused by pairing it with a reserve or
 *                          by annotation
 *
 * v2 adds a symbol-aware layer: pass 1 tokenizes every scanned file
 * and builds a tree-wide symbol index (function signatures, class
 * members and their types, mutex members, scope nesting); pass 2 runs
 * the rules with cross-file resolution in hand. That enables three
 * rule families a line-level scan cannot express:
 *
 *  - rng-flow              an Rng captured by reference into a
 *                          ParallelFor/Submit lambda, passed by
 *                          non-const reference across a function
 *                          boundary into per-shard code (the callee
 *                          may live in another file), or re-seeded
 *                          from a non-seed expression
 *  - float-determinism     FMA-contractable shapes (`a*b + c`,
 *                          `acc += a*b`) in bit-equality kernel files
 *                          (the `float-path` entries of the config),
 *                          and float accumulation across ParallelFor
 *                          tasks anywhere — both break the §6
 *                          bit-identical-at-any-thread-count contract
 *  - lock-discipline       members annotated
 *                          `// vrdlint: guarded_by(mu_)` must only be
 *                          touched while `mu_` is held (or under a
 *                          `// vrdlint: requires_lock(mu_)` method
 *                          contract), and every mutex pair must be
 *                          acquired in one consistent order tree-wide
 *
 * Suppressions are written in the source, next to the code they
 * excuse: `// vrdlint: allow(<rule-or-token>[, ...])` on the flagged
 * line or on a comment line immediately above it. The `wall-clock`
 * token allows the clock-read subset of banned-api without allowing
 * the rest of the rule; the `catch-all` token is shorthand for
 * catch-all-swallow.
 *
 * Diagnostics print as `file:line: rule: message`, and the scan exits
 * nonzero when anything fires — which is what lets ctest gate the
 * tree (see the `vrdlint_tree` test). The CLI can additionally emit
 * SARIF 2.1.0 (`--sarif`, see sarif.h) and suppress accepted findings
 * through a checked-in baseline (`--baseline`, see baseline.h).
 */
#ifndef VRDDRAM_TOOLS_VRDLINT_H
#define VRDDRAM_TOOLS_VRDLINT_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vrdlint {

/// One lint finding, addressed to a 1-based source line.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  /// FNV-1a 64 hash of the trimmed source line, the line-number-churn-
  /// resistant key used by the baseline and SARIF fingerprints.
  std::uint64_t content_hash = 0;

  /// "file:line: rule: message" — the stable output format.
  std::string ToString() const;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/**
 * Linter configuration, read from a plain-text file of
 * `key = value` lines with `[rule]` sections and `#` comments:
 *
 *   scan = src
 *   exclude = tests/vrdlint/fixtures
 *   [banned-api]
 *   allow-path = bench/legacy_timer
 *   [rng-discipline]
 *   seed-call = MixSeed
 *   [unordered-iteration]
 *   ordering-call = SortedByKey
 *
 * `exclude` and `allow-path` values match as substrings of the
 * repo-relative path; `seed-call`/`ordering-call` values extend the
 * built-in defaults rather than replacing them.
 */
struct Config {
  /// Directories (relative to the lint root) walked by LintTree.
  std::vector<std::string> scan_dirs = {"src", "tests", "bench",
                                        "examples"};
  /// Path substrings excluded from the walk (e.g. lint fixtures).
  std::vector<std::string> exclude_paths;
  /// Functions whose call makes an Rng constructor argument a valid
  /// seed expression.
  std::vector<std::string> seed_calls = {"MixSeed", "HashLabel",
                                         "SplitMix64", "Fork"};
  /// Functions that turn an unordered container into a deterministic
  /// sequence, making range-for over the call result legal.
  std::vector<std::string> ordering_calls = {"SortedByKey", "SortedKeys"};
  /// Path substrings naming measurement-kernel files: only these are
  /// subject to the kernel-allocation rule. Empty by default (the rule
  /// is opt-in per file).
  std::vector<std::string> kernel_paths;
  /// Path substrings naming bit-equality kernel files: only these are
  /// subject to the FMA-shape half of float-determinism (the
  /// ParallelFor-accumulation half applies everywhere).
  std::vector<std::string> float_paths;
  /// rule name -> path substrings where the rule is suppressed.
  std::map<std::string, std::vector<std::string>> allow_paths;
  /// Internal: set once the first `scan =` line replaces the default
  /// scan_dirs (subsequent lines append).
  bool scan_dirs_overridden = false;
};

/// Parse config text into *config (on top of the defaults already in
/// it). Returns false and sets *error on malformed input.
bool ParseConfigText(std::string_view text, Config* config,
                     std::string* error);

/// LoadConfigFile = read file + ParseConfigText.
bool LoadConfigFile(const std::string& path, Config* config,
                    std::string* error);

/// Lint one translation unit's text. `path` is the name used in
/// diagnostics and for allow-path matching.
std::vector<Diagnostic> LintSource(const std::string& path,
                                   std::string_view text,
                                   const Config& config);

/// Enumerate the files LintTree would scan: every *.h/.hh/.hpp/.cc/
/// .cpp/.cxx under config.scan_dirs, minus excludes, as sorted
/// root-relative paths.
std::vector<std::string> CollectFiles(const std::string& root,
                                      const Config& config);

/// Lint the tree rooted at `root`; diagnostics are sorted by
/// (file, line, rule).
std::vector<Diagnostic> LintTree(const std::string& root,
                                 const Config& config);

}  // namespace vrdlint

#endif  // VRDDRAM_TOOLS_VRDLINT_H
