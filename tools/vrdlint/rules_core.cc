/**
 * @file
 * The v1 rule families: banned-api, unordered-iteration,
 * rng-discipline, catch-all-swallow, campaign-discipline,
 * kernel-allocation (scope-aware since v2), and header-hygiene.
 * Shared pass-2 helpers (dispatch-lambda enumeration, the pre-forked
 * excusal, seed-expression classification) also live here.
 */
#include <algorithm>
#include <cctype>
#include <set>

#include "rules.h"

namespace vrdlint {

bool IsHeaderPath(std::string_view path) {
  return path.ends_with(".h") || path.ends_with(".hh") ||
         path.ends_with(".hpp");
}

bool RuleSuppressedForPath(const Config& config, std::string_view rule,
                           std::string_view path) {
  const auto it = config.allow_paths.find(std::string(rule));
  if (it == config.allow_paths.end()) {
    return false;
  }
  for (const std::string& fragment : it->second) {
    if (path.find(fragment) != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

std::vector<DispatchLambda> FindDispatchLambdas(const FileView& view) {
  std::vector<DispatchLambda> lambdas;
  const std::string_view flat = view.flat;
  for (const std::string_view dispatch : {"ParallelFor", "Submit"}) {
    std::size_t pos = 0;
    while ((pos = FindWord(flat, dispatch, pos)) !=
           std::string_view::npos) {
      const std::size_t kw = pos;
      pos += dispatch.size();
      const std::size_t open = SkipSpace(flat, kw + dispatch.size());
      if (open >= flat.size() || flat[open] != '(') {
        continue;
      }
      const std::size_t close = MatchBracket(flat, open, '(', ')');
      if (close == std::string_view::npos) {
        continue;
      }
      // Find a lambda among the arguments.
      const std::size_t intro = flat.find('[', open);
      if (intro == std::string_view::npos || intro > close) {
        continue;
      }
      const std::size_t intro_close = MatchBracket(flat, intro, '[', ']');
      if (intro_close == std::string_view::npos || intro_close > close) {
        continue;
      }
      const std::size_t body_open = flat.find('{', intro_close);
      if (body_open == std::string_view::npos || body_open > close) {
        continue;
      }
      const std::size_t body_close =
          MatchBracket(flat, body_open, '{', '}');
      if (body_close == std::string_view::npos) {
        continue;
      }
      lambdas.push_back(DispatchLambda{dispatch, kw, open, close, intro,
                                       intro_close, body_open,
                                       body_close});
    }
  }
  return lambdas;
}

std::size_t EnclosingScopeStart(const FileView& view, std::size_t line) {
  for (std::size_t l = line; l > 0; --l) {
    const std::string& code = view.code[l - 1];
    if (!code.empty() && (IsIdentStart(code[0]) || code[0] == '}')) {
      return view.line_start[l - 1];
    }
  }
  return 0;
}

bool ForkedInEnclosingScope(const FileView& view, std::size_t before) {
  const std::size_t start =
      EnclosingScopeStart(view, view.LineOf(before));
  return ContainsCall(view.flat.substr(start, before - start), "Fork");
}

bool IsSeedExpression(std::string_view args, const Config& config) {
  const std::string trimmed = Trim(args);
  if (trimmed.empty()) {
    return true;
  }
  if (ToLower(trimmed).find("seed") != std::string::npos) {
    return true;
  }
  for (const std::string& call : config.seed_calls) {
    if (ContainsCall(trimmed, call)) {
      return true;
    }
  }
  bool has_digit = false;
  for (const char c : trimmed) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    }
    if (IsIdentChar(c) || std::isspace(static_cast<unsigned char>(c)) ||
        std::string_view("^|&+-*~%()<>,'").find(c) !=
            std::string_view::npos) {
      continue;
    }
    return false;
  }
  if (!has_digit) {
    return false;
  }
  // "Pure literal arithmetic": digit-led tokens (0x1234ull) and
  // operators only; any identifier (which starts with a letter or
  // underscore) disqualifies.
  std::size_t i = 0;
  while (i < trimmed.size()) {
    if (std::isdigit(static_cast<unsigned char>(trimmed[i]))) {
      while (i < trimmed.size() &&
             (IsIdentChar(trimmed[i]) || trimmed[i] == '\'')) {
        ++i;
      }
      continue;
    }
    if (IsIdentStart(trimmed[i])) {
      return false;
    }
    ++i;
  }
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// Rule: banned-api
// ---------------------------------------------------------------------------

struct BannedPattern {
  const char* needle;       // substring or word to search
  bool word;                // match with identifier boundaries
  bool call;                // require a following '('
  const char* allow_token;  // extra allow() token besides the rule name
  const char* message;
};

constexpr BannedPattern kBannedPatterns[] = {
    {"random_device", true, false, nullptr,
     "std::random_device is nondeterministic; construct vrddram::Rng "
     "from a seed expression"},
    {"srand", true, true, nullptr,
     "srand() is banned; vrddram::Rng streams are seeded explicitly"},
    {"rand", true, true, nullptr,
     "rand() is banned; draw from a seeded vrddram::Rng stream"},
    {"time", true, true, nullptr,
     "time() is banned in result-producing code; use simulated Ticks "
     "(Device::Now) or common/telemetry.h"},
    {"steady_clock::now", false, false, "wall-clock",
     "wall-clock read outside telemetry; use common/telemetry.h "
     "Stopwatch or annotate with // vrdlint: allow(wall-clock)"},
    {"system_clock::now", false, false, "wall-clock",
     "wall-clock read outside telemetry; use common/telemetry.h "
     "Stopwatch or annotate with // vrdlint: allow(wall-clock)"},
    {"high_resolution_clock::now", false, false, "wall-clock",
     "wall-clock read outside telemetry; use common/telemetry.h "
     "Stopwatch or annotate with // vrdlint: allow(wall-clock)"},
};

void CheckBannedApi(const std::string& path, const FileView& view,
                    const Config& config,
                    std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(config, "banned-api", path)) {
    return;
  }
  for (const BannedPattern& pattern : kBannedPatterns) {
    const std::string_view needle = pattern.needle;
    std::size_t pos = 0;
    while ((pos = view.flat.find(needle, pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += needle.size();
      if (pattern.word && !IsWordAt(view.flat, here, needle)) {
        continue;
      }
      if (pattern.call) {
        const std::size_t after = SkipSpace(view.flat, here + needle.size());
        if (after >= view.flat.size() || view.flat[after] != '(') {
          continue;
        }
      }
      const std::size_t line = view.LineOf(here);
      if (pattern.allow_token != nullptr
              ? view.Allowed(line, {"banned-api", pattern.allow_token})
              : view.Allowed(line, {"banned-api"})) {
        continue;
      }
      diagnostics->push_back(
          Diagnostic{path, line, "banned-api", pattern.message});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------------

constexpr std::string_view kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void CheckUnorderedIteration(const std::string& path, const FileView& view,
                             const Config& config,
                             const std::vector<std::string>& extra_names,
                             std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(config, "unordered-iteration", path)) {
    return;
  }
  std::vector<std::string> names = CollectUnorderedNames(view);
  names.insert(names.end(), extra_names.begin(), extra_names.end());
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  const std::string_view flat = view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, "for", pos)) != std::string_view::npos) {
    const std::size_t kw = pos;
    pos += 3;
    const std::size_t open = SkipSpace(flat, kw + 3);
    if (open >= flat.size() || flat[open] != '(') {
      continue;
    }
    const std::size_t close = MatchBracket(flat, open, '(', ')');
    if (close == std::string_view::npos) {
      continue;
    }
    // Top-level ':' that is not part of '::' marks a range-for.
    std::size_t colon = std::string_view::npos;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const char c = flat[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}' || c == '>') {
        --depth;
      } else if (c == ':' && depth == 0) {
        const bool prev_colon = i > 0 && flat[i - 1] == ':';
        const bool next_colon = i + 1 < close && flat[i + 1] == ':';
        if (!prev_colon && !next_colon) {
          colon = i;
          break;
        }
      }
    }
    if (colon == std::string_view::npos) {
      continue;
    }
    const std::string_view range = flat.substr(colon + 1, close - colon - 1);
    bool laundered = false;
    for (const std::string& call : config.ordering_calls) {
      if (ContainsCall(range, call)) {
        laundered = true;
        break;
      }
    }
    if (laundered) {
      continue;
    }
    std::string offender;
    if (range.find("unordered_") != std::string_view::npos) {
      offender = "an unordered container expression";
    } else {
      for (const std::string& name : names) {
        if (ContainsWord(range, name)) {
          offender = "'" + name + "'";
          break;
        }
      }
    }
    if (offender.empty()) {
      continue;
    }
    const std::size_t line = view.LineOf(kw);
    if (view.Allowed(line, {"unordered-iteration"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "unordered-iteration",
        "range-for over " + offender +
            ": hash order leaks into results; iterate a SortedByKey()/"
            "SortedKeys() snapshot or annotate with "
            "// vrdlint: allow(unordered-iteration)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: rng-discipline
// ---------------------------------------------------------------------------

/// Heuristic: constructor arguments are value expressions; two
/// adjacent bare identifiers ("std::uint64_t seed") mean we are
/// looking at a function parameter list, not a construction.
bool LooksLikeParameterList(std::string_view args) {
  std::size_t i = 0;
  while (i < args.size()) {
    if (!IsIdentStart(args[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < args.size() && IsIdentChar(args[end])) {
      ++end;
    }
    std::size_t next = SkipSpace(args, end);
    if (next > end && next < args.size() && IsIdentStart(args[next])) {
      return true;
    }
    i = end + 1;
  }
  return false;
}

/// Collect Rng declarations and check construction arguments.
std::vector<RngDecl> CheckRngConstruction(
    const std::string& path, const FileView& view, const Config& config,
    bool emit, std::vector<Diagnostic>* diagnostics) {
  std::vector<RngDecl> decls;
  const std::string_view flat = view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, "Rng", pos)) != std::string_view::npos) {
    const std::size_t here = pos;
    pos += 3;
    // Template arguments (vector<Rng>) fall out naturally: the token
    // after them is '>' or ',', which no branch below accepts.
    const std::string_view prev = PreviousWord(flat, here);
    if (prev == "class" || prev == "struct" || prev == "typename" ||
        prev == "using" || prev == "friend") {
      continue;
    }
    std::size_t p = SkipSpace(flat, here + 3);
    if (p >= flat.size()) {
      continue;
    }
    if (flat[p] == ':') {
      continue;  // Rng::member
    }
    std::string args;
    std::size_t args_pos = here;
    std::string name;
    if (flat[p] == '(') {
      // Temporary: Rng(<args>)
      const std::size_t close = MatchBracket(flat, p, '(', ')');
      if (close == std::string_view::npos) {
        continue;
      }
      args = std::string(flat.substr(p + 1, close - p - 1));
      args_pos = p;
    } else if (flat[p] == '&' || IsIdentStart(flat[p])) {
      if (flat[p] == '&') {
        p = SkipSpace(flat, p + 1);
      }
      if (p >= flat.size() || !IsIdentStart(flat[p])) {
        continue;
      }
      std::size_t end = p;
      while (end < flat.size() && IsIdentChar(flat[end])) {
        ++end;
      }
      name = std::string(flat.substr(p, end - p));
      std::size_t after = SkipSpace(flat, end);
      if (after + 1 < flat.size() && flat[after] == ':' &&
          flat[after + 1] == ':') {
        continue;  // qualified definition: Rng Rng::Fork(...)
      }
      if (after < flat.size() && (flat[after] == '(' || flat[after] == '{')) {
        const char open_char = flat[after];
        const char close_char = open_char == '(' ? ')' : '}';
        const std::size_t close =
            MatchBracket(flat, after, open_char, close_char);
        if (close == std::string_view::npos) {
          continue;
        }
        args = std::string(flat.substr(after + 1, close - after - 1));
        args_pos = after;
        if (LooksLikeParameterList(args)) {
          continue;  // function declaration returning Rng, not a decl
        }
        decls.push_back(RngDecl{name, here});
        if (open_char == '{' && SkipSpace(args, 0) == args.size()) {
          continue;  // empty brace init: default seed
        }
      } else {
        decls.push_back(RngDecl{name, here});
        continue;  // plain declaration or reference bind, default seed
      }
    } else {
      continue;
    }
    if (LooksLikeParameterList(args)) {
      continue;  // e.g. `explicit Rng(std::uint64_t seed = ...)`
    }
    if (emit && !IsSeedExpression(args, config)) {
      const std::size_t line = view.LineOf(args_pos);
      if (!view.Allowed(line, {"rng-discipline"})) {
        diagnostics->push_back(Diagnostic{
            path, line, "rng-discipline",
            "Rng constructed from a non-seed expression (" + Trim(args) +
                "); derive the seed via MixSeed/HashLabel or a *seed* "
                "value so the stream is reproducible"});
      }
    }
  }
  return decls;
}

/// Constructor-initializer discipline: an identifier that is
/// rng-named and member-shaped (`rng_`, `powerup_rng_`) initialized
/// with non-seed arguments. The declared type lives in the header, so
/// this is name-convention-based — which the codebase follows.
void CheckRngMemberInit(const std::string& path, const FileView& view,
                        const Config& config,
                        std::vector<Diagnostic>* diagnostics) {
  const std::string_view flat = view.flat;
  std::size_t i = 0;
  while (i < flat.size()) {
    if (!IsIdentStart(flat[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < flat.size() && IsIdentChar(flat[end])) {
      ++end;
    }
    const std::string word(flat.substr(i, end - i));
    const std::size_t start = i;
    i = end;
    if (word.size() < 4 || word.back() != '_' ||
        ToLower(word).find("rng") == std::string::npos) {
      continue;
    }
    const std::size_t open = SkipSpace(flat, end);
    if (open >= flat.size() || (flat[open] != '(' && flat[open] != '{')) {
      continue;
    }
    const char close_char = flat[open] == '(' ? ')' : '}';
    const std::size_t close =
        MatchBracket(flat, open, flat[open], close_char);
    if (close == std::string_view::npos) {
      continue;
    }
    const std::string args(flat.substr(open + 1, close - open - 1));
    if (LooksLikeParameterList(args) || IsSeedExpression(args, config)) {
      continue;
    }
    const std::size_t line = view.LineOf(start);
    if (view.Allowed(line, {"rng-discipline"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "rng-discipline",
        "Rng member '" + word + "' initialized from a non-seed "
        "expression (" + Trim(args) + "); derive the seed via MixSeed/"
        "HashLabel or a *seed* value so the stream is reproducible"});
  }
}

void CheckRngInDispatchLambdas(const std::string& path,
                               const FileView& view, const Config& config,
                               const std::vector<RngDecl>& decls,
                               std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(config, "rng-discipline", path)) {
    return;
  }
  const std::string_view flat = view.flat;
  for (const DispatchLambda& dl : FindDispatchLambdas(view)) {
    const std::string_view body =
        flat.substr(dl.body_open, dl.body_close - dl.body_open + 1);
    if (ForkedInEnclosingScope(view, dl.kw)) {
      continue;  // streams were pre-forked in this scope
    }
    // The same stream name can be declared more than once before the
    // dispatch (e.g. as a parameter of several functions); one
    // diagnostic per (dispatch, name) is enough.
    std::set<std::string> flagged_names;
    for (const RngDecl& decl : decls) {
      if (decl.pos >= dl.open ||
          flagged_names.count(decl.name) != 0) {
        continue;  // declared after (or inside) the dispatch
      }
      // Re-declared inside the body -> the body name is local.
      bool local = false;
      for (const RngDecl& other : decls) {
        if (other.name == decl.name && other.pos > dl.body_open &&
            other.pos < dl.body_close) {
          local = true;
          break;
        }
      }
      if (local) {
        continue;
      }
      const std::size_t use = FindWord(body, decl.name);
      if (use == std::string_view::npos) {
        continue;
      }
      flagged_names.insert(decl.name);
      const std::size_t line = view.LineOf(dl.body_open + use);
      if (view.Allowed(line, {"rng-discipline"})) {
        continue;
      }
      diagnostics->push_back(Diagnostic{
          path, line, "rng-discipline",
          "captured Rng '" + decl.name + "' touched inside a " +
              std::string(dl.keyword) +
              " lambda without a preceding Fork(...) in the enclosing "
              "scope; fork per-task streams before dispatch "
              "(DESIGN.md §6)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: catch-all-swallow
// ---------------------------------------------------------------------------

/// Body constructs that count as preserving the caught exception:
/// rethrowing (any `throw`), capturing it (`std::current_exception`),
/// or converting it into a typed vrddram error.
constexpr std::string_view kPreservingWords[] = {
    "throw",         "TransientError", "FatalError",
    "PanicError",    "ThrowFatal",     "ThrowPanic",
    "VRD_FATAL_IF",  "VRD_ASSERT",     "VRD_ASSERT_MSG",
};

bool BodyPreservesException(std::string_view body) {
  for (const std::string_view word : kPreservingWords) {
    if (ContainsWord(body, word)) {
      return true;
    }
  }
  return ContainsCall(body, "current_exception");
}

/// A handler is a swallow candidate when it catches everything:
/// `catch (...)` or any `std::exception&` spelling.
bool IsCatchAllParam(std::string_view params) {
  const std::string trimmed = Trim(params);
  if (trimmed.find("...") != std::string::npos) {
    return true;
  }
  return ContainsWord(trimmed, "exception");
}

void CheckCatchAllSwallow(const std::string& path, const FileView& view,
                          const Config& config,
                          std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(config, "catch-all-swallow", path)) {
    return;
  }
  const std::string_view flat = view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, "catch", pos)) != std::string_view::npos) {
    const std::size_t kw = pos;
    pos += 5;
    const std::size_t open = SkipSpace(flat, kw + 5);
    if (open >= flat.size() || flat[open] != '(') {
      continue;
    }
    const std::size_t close = MatchBracket(flat, open, '(', ')');
    if (close == std::string_view::npos) {
      continue;
    }
    if (!IsCatchAllParam(flat.substr(open + 1, close - open - 1))) {
      continue;
    }
    const std::size_t body_open = SkipSpace(flat, close + 1);
    if (body_open >= flat.size() || flat[body_open] != '{') {
      continue;
    }
    const std::size_t body_close =
        MatchBracket(flat, body_open, '{', '}');
    if (body_close == std::string_view::npos) {
      continue;
    }
    if (BodyPreservesException(
            flat.substr(body_open + 1, body_close - body_open - 1))) {
      continue;
    }
    const std::size_t line = view.LineOf(kw);
    if (view.Allowed(line, {"catch-all-swallow", "catch-all"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "catch-all-swallow",
        "catch-all handler swallows the exception: rethrow, capture it "
        "via std::current_exception, convert it to a typed vrddram "
        "error (TransientError/FatalError/PanicError), or annotate "
        "with // vrdlint: allow(catch-all)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: campaign-discipline
// ---------------------------------------------------------------------------

/// True for repo-relative paths inside the bench/ layer.
bool IsBenchPath(std::string_view path) {
  return path.starts_with("bench/") ||
         path.find("/bench/") != std::string_view::npos;
}

/// Experiments must not run campaigns themselves: the registry driver
/// owns execution (and its cache). The word-boundary match leaves
/// RunCampaignCached alone, and requiring the '(' leaves non-call
/// mentions (e.g. a function pointer) alone.
void CheckCampaignDiscipline(const std::string& path, const FileView& view,
                             const Config& config,
                             std::vector<Diagnostic>* diagnostics) {
  if (!IsBenchPath(path) ||
      RuleSuppressedForPath(config, "campaign-discipline", path)) {
    return;
  }
  constexpr std::string_view kCall = "RunCampaign";
  const std::string_view flat = view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, kCall, pos)) != std::string_view::npos) {
    const std::size_t here = pos;
    pos += kCall.size();
    const std::size_t open = SkipSpace(flat, here + kCall.size());
    if (open >= flat.size() || flat[open] != '(') {
      continue;
    }
    const std::size_t line = view.LineOf(here);
    if (view.Allowed(line, {"campaign-discipline"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "campaign-discipline",
        "direct RunCampaign call under bench/: experiments must route "
        "execution through the registry driver's cached path "
        "(core::RunCampaignCached) so `vrdrepro run --all` executes "
        "each unique campaign once, or annotate with "
        "// vrdlint: allow(campaign-discipline)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: kernel-allocation (scope-aware since v2)
// ---------------------------------------------------------------------------

/// True for files designated as measurement kernels in the config.
bool IsKernelPath(const Config& config, std::string_view path) {
  for (const std::string& fragment : config.kernel_paths) {
    if (path.find(fragment) != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

/// Scope-aware reserve matching: a `<obj>.reserve(...)` in the *same*
/// function scope excuses growth only when it precedes it textually
/// (the v1 rule); a reserve in a *different* function scope — the
/// constructor provisioning a member the kernel later grows into —
/// excuses it regardless of where the two functions sit in the file.
bool ReserveExcusesGrowth(const FileSymbols& symbols,
                          std::string_view flat, std::string_view obj,
                          std::size_t growth_pos) {
  if (obj.empty()) {
    return false;
  }
  const int growth_scope =
      symbols.EnclosingFunction(symbols.ScopeAt(growth_pos));
  for (const std::string_view accessor : {".reserve", "->reserve"}) {
    std::string needle(obj);
    needle += accessor;
    std::size_t pos = 0;
    while ((pos = flat.find(needle, pos)) != std::string_view::npos) {
      const std::size_t here = pos;
      ++pos;
      if (here > 0 && IsIdentChar(flat[here - 1])) {
        continue;
      }
      const int reserve_scope =
          symbols.EnclosingFunction(symbols.ScopeAt(here));
      if (reserve_scope != growth_scope || here < growth_pos) {
        return true;
      }
    }
  }
  return false;
}

/// The measurement kernel must stay allocation-free end to end
/// (DESIGN.md §10): in kernel-path files, flag `new` expressions,
/// make_unique/make_shared, and container growth whose capacity was
/// not provisioned by a reserve (same scope before the growth, or any
/// other function scope — typically the constructor). Construction-
/// time growth is excused by pairing it with a reserve or by
/// `// vrdlint: allow(kernel-allocation)`.
void CheckKernelAllocation(const std::string& path, const FileView& view,
                           const FileSymbols& symbols, const Config& config,
                           std::vector<Diagnostic>* diagnostics) {
  if (!IsKernelPath(config, path) ||
      RuleSuppressedForPath(config, "kernel-allocation", path)) {
    return;
  }
  const std::string_view flat = view.flat;

  std::size_t pos = 0;
  while ((pos = FindWord(flat, "new", pos)) != std::string_view::npos) {
    const std::size_t here = pos;
    pos += 3;
    const std::size_t after = SkipSpace(flat, here + 3);
    if (after >= flat.size() ||
        (!IsIdentStart(flat[after]) && flat[after] != '(')) {
      continue;  // not an allocation expression
    }
    const std::size_t line = view.LineOf(here);
    if (view.Allowed(line, {"kernel-allocation"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "kernel-allocation",
        "`new` in a kernel path: the measurement kernel must stay "
        "allocation-free (DESIGN.md §10); allocate at construction or "
        "annotate with // vrdlint: allow(kernel-allocation)"});
  }

  for (const std::string_view maker : {"make_unique", "make_shared"}) {
    pos = 0;
    while ((pos = FindWord(flat, maker, pos)) != std::string_view::npos) {
      const std::size_t here = pos;
      pos += maker.size();
      std::size_t p = SkipSpace(flat, here + maker.size());
      if (p < flat.size() && flat[p] == '<') {
        const std::size_t close = MatchBracket(flat, p, '<', '>');
        if (close == std::string_view::npos) {
          continue;
        }
        p = SkipSpace(flat, close + 1);
      }
      if (p >= flat.size() || flat[p] != '(') {
        continue;
      }
      const std::size_t line = view.LineOf(here);
      if (view.Allowed(line, {"kernel-allocation"})) {
        continue;
      }
      diagnostics->push_back(Diagnostic{
          path, line, "kernel-allocation",
          std::string(maker) +
              " in a kernel path: the measurement kernel must stay "
              "allocation-free (DESIGN.md §10); allocate at construction "
              "or annotate with // vrdlint: allow(kernel-allocation)"});
    }
  }

  for (const std::string_view method :
       {"push_back", "emplace_back", "resize"}) {
    pos = 0;
    while ((pos = FindWord(flat, method, pos)) != std::string_view::npos) {
      const std::size_t here = pos;
      pos += method.size();
      const std::size_t after = SkipSpace(flat, here + method.size());
      if (after >= flat.size() || flat[after] != '(') {
        continue;
      }
      const std::string_view obj = ObjectExpressionBefore(flat, here);
      if (obj.empty() ||
          ReserveExcusesGrowth(symbols, flat, obj, here)) {
        continue;
      }
      const std::size_t line = view.LineOf(here);
      if (view.Allowed(line, {"kernel-allocation"})) {
        continue;
      }
      diagnostics->push_back(Diagnostic{
          path, line, "kernel-allocation",
          "'" + std::string(obj) + "." + std::string(method) +
              "' with no earlier '" + std::string(obj) +
              ".reserve(...)': growth in a kernel path allocates "
              "(DESIGN.md §10); reserve the capacity at construction or "
              "annotate with // vrdlint: allow(kernel-allocation)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: header-hygiene
// ---------------------------------------------------------------------------

void CheckHeaderHygiene(const std::string& path, const FileView& view,
                        const Config& config,
                        std::vector<Diagnostic>* diagnostics) {
  if (!IsHeaderPath(path) ||
      RuleSuppressedForPath(config, "header-hygiene", path)) {
    return;
  }
  const bool pragma_once =
      view.flat.find("#pragma once") != std::string::npos;
  const bool guard =
      view.flat.find("#ifndef") != std::string::npos &&
      view.flat.find("#define") != std::string::npos;
  if (!pragma_once && !guard && !view.Allowed(1, {"header-hygiene"})) {
    diagnostics->push_back(Diagnostic{
        path, 1, "header-hygiene",
        "header has no include guard (#ifndef/#define) or #pragma once"});
  }
  std::size_t pos = 0;
  while ((pos = FindWord(view.flat, "using", pos)) !=
         std::string_view::npos) {
    const std::size_t kw = pos;
    pos += 5;
    const std::size_t next = SkipSpace(view.flat, kw + 5);
    if (!IsWordAt(view.flat, next, "namespace")) {
      continue;
    }
    const std::size_t line = view.LineOf(kw);
    if (view.Allowed(line, {"header-hygiene"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "header-hygiene",
        "`using namespace` in a header leaks into every includer; "
        "qualify names instead"});
  }
}

}  // namespace

std::vector<std::string> CollectUnorderedNames(const FileView& view) {
  std::vector<std::string> names;
  const std::string_view flat = view.flat;
  for (const std::string_view type : kUnorderedTypes) {
    std::size_t pos = 0;
    while ((pos = FindWord(flat, type, pos)) != std::string_view::npos) {
      std::size_t p = SkipSpace(flat, pos + type.size());
      pos += type.size();
      if (p >= flat.size() || flat[p] != '<') {
        continue;  // e.g. an #include or a comment-adjacent mention
      }
      const std::size_t close = MatchBracket(flat, p, '<', '>');
      if (close == std::string_view::npos) {
        continue;
      }
      p = SkipSpace(flat, close + 1);
      if (p < flat.size() && flat[p] == '&') {
        p = SkipSpace(flat, p + 1);
      }
      if (p >= flat.size() || !IsIdentStart(flat[p])) {
        continue;
      }
      std::size_t end = p;
      while (end < flat.size() && IsIdentChar(flat[end])) {
        ++end;
      }
      names.emplace_back(flat.substr(p, end - p));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<RngDecl> RunCoreRules(const RuleContext& ctx,
                                  std::vector<Diagnostic>* diagnostics) {
  static const std::vector<std::string> kNoExtra;
  const std::vector<std::string>& extra =
      ctx.extra_unordered != nullptr ? *ctx.extra_unordered : kNoExtra;
  CheckBannedApi(ctx.path, ctx.view, ctx.config, diagnostics);
  CheckUnorderedIteration(ctx.path, ctx.view, ctx.config, extra,
                          diagnostics);
  const bool rng_suppressed =
      RuleSuppressedForPath(ctx.config, "rng-discipline", ctx.path);
  std::vector<RngDecl> decls = CheckRngConstruction(
      ctx.path, ctx.view, ctx.config, /*emit=*/!rng_suppressed,
      diagnostics);
  if (!rng_suppressed) {
    CheckRngMemberInit(ctx.path, ctx.view, ctx.config, diagnostics);
  }
  CheckRngInDispatchLambdas(ctx.path, ctx.view, ctx.config, decls,
                            diagnostics);
  CheckCatchAllSwallow(ctx.path, ctx.view, ctx.config, diagnostics);
  CheckCampaignDiscipline(ctx.path, ctx.view, ctx.config, diagnostics);
  CheckKernelAllocation(ctx.path, ctx.view, ctx.symbols, ctx.config,
                        diagnostics);
  CheckHeaderHygiene(ctx.path, ctx.view, ctx.config, diagnostics);
  return decls;
}

}  // namespace vrdlint
