/**
 * @file
 * vrdlint pass-1 symbol index.
 *
 * AnalyzeFile() walks one file's token stream and recovers the
 * structure the rules need: brace-scope nesting classified as
 * namespace / class / function / lambda / control / block, function
 * and method signatures with parameter types (definitions *and*
 * prototypes, so cross-file callers can be resolved), and class
 * members with their declared types, mutex-ness, and `guarded_by`
 * annotations.
 *
 * SymbolIndex aggregates the per-file results across the whole tree:
 * pass 2 rules resolve a call by name to every known signature and a
 * field by name to every known member, which is what makes the
 * rng-flow / float-determinism / lock-discipline families cross-file.
 *
 * This is deliberately not a C++ front end: classification is
 * heuristic over tokens, tuned to this codebase's style, and rules
 * treat "not found in the index" as "no claim" rather than an error.
 */
#ifndef VRDDRAM_TOOLS_VRDLINT_SYMBOL_INDEX_H
#define VRDDRAM_TOOLS_VRDLINT_SYMBOL_INDEX_H

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tokenizer.h"

namespace vrdlint {

/// One function/method parameter, recovered from the token stream.
struct Param {
  std::string type;  // space-joined type tokens, e.g. "const Rng &"
  std::string name;  // empty when unnamed
  bool is_ref = false;
  bool is_const = false;
};

/// One brace scope of a file, classified by what introduced it.
struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kLambda, kControl,
                    kBlock };
  Kind kind = Kind::kBlock;
  std::string name;        // function/class/namespace name, "" otherwise
  std::string class_name;  // kFunction: qualifying or enclosing class
  std::size_t open = 0;    // flat offset of '{'
  std::size_t close = 0;   // flat offset of the matching '}'
  int parent = -1;         // index into FileSymbols::scopes, -1 = file
  std::vector<Param> params;  // kFunction / kLambda parameter list
  std::size_t head_pos = 0;   // flat offset of the introducing token
  std::size_t head_line = 0;  // 1-based line of head_pos
  /// Mutex names from a `requires_lock(...)` annotation on the head
  /// line (the caller-holds-the-lock contract).
  std::vector<std::string> requires_locks;
};

/// One class member declaration.
struct MemberVar {
  std::string class_name;
  std::string name;
  std::string type;  // space-joined type tokens
  std::string file;
  std::size_t line = 0;  // 1-based declaration line
  bool is_mutex = false;
  /// Mutex name from a `guarded_by(...)` annotation, or empty.
  std::string guarded_by;
};

/// One callable signature known to the tree (definition or prototype).
struct FunctionSig {
  std::string name;
  std::string class_name;  // empty for free functions
  std::string file;
  std::size_t line = 0;
  std::vector<Param> params;
};

/// Everything pass 1 recovers from one file.
struct FileSymbols {
  std::vector<Scope> scopes;       // ordered by open position
  std::vector<MemberVar> members;  // class members declared here
  /// Function prototypes (`... name(params);` at namespace/class
  /// scope) — definitions live in `scopes` as kFunction entries.
  std::vector<FunctionSig> prototypes;
  /// Names declared with a floating-point type anywhere in the file
  /// (declaration-shaped scan: `double x`, `float* dst`,
  /// `std::vector<double> v`), sorted and deduplicated.
  std::vector<std::string> float_names;

  /// Innermost scope containing flat offset `pos`, or -1 (file scope).
  int ScopeAt(std::size_t pos) const;

  /// Nearest function or lambda scope at or above scope `s`, or -1.
  int EnclosingFunction(int s) const;
};

/// Analyze one file's stripped text. `path` is recorded in members.
FileSymbols AnalyzeFile(const std::string& path, const FileView& view);

/// Tree-wide symbol resolution for pass 2.
struct SymbolIndex {
  /// function name -> every known signature with that name.
  std::map<std::string, std::vector<FunctionSig>> functions;
  /// class name -> members of that class.
  std::map<std::string, std::vector<MemberVar>> members;

  void AddFile(const std::string& path, const FileView& view,
               const FileSymbols& symbols);

  const std::vector<FunctionSig>* FindFunctions(
      std::string_view name) const;

  /// First member named `name`; restricted to `class_name` when that
  /// is non-empty, across every class otherwise. Null when unknown.
  const MemberVar* FindMember(std::string_view class_name,
                              std::string_view name) const;
};

/// True when a recovered type string names a floating-point type.
bool IsFloatType(std::string_view type);

}  // namespace vrdlint

#endif  // VRDDRAM_TOOLS_VRDLINT_SYMBOL_INDEX_H
