/**
 * @file
 * Baseline suppression for vrdlint: a checked-in snapshot of accepted
 * findings that lets the tree adopt new rules without a flag day.
 *
 * Findings are keyed by (rule, file, content-hash-of-line) rather than
 * line number, so unrelated edits that shift lines do not invalidate
 * the baseline, while editing the offending line itself does. Counts
 * are per key: a baseline entry suppresses at most `count` findings
 * with that key, and any unconsumed entry marks the baseline stale
 * (debt that has been paid down but not recorded).
 */
#ifndef VRDDRAM_TOOLS_VRDLINT_BASELINE_H
#define VRDDRAM_TOOLS_VRDLINT_BASELINE_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "vrdlint.h"

namespace vrdlint {

/// (rule, file, content hash) -> number of accepted findings.
using Baseline =
    std::map<std::tuple<std::string, std::string, std::uint64_t>,
             std::size_t>;

/// FNV-1a 64-bit hash of the trimmed source line — the content key
/// that survives line-number churn.
std::uint64_t HashLineContent(std::string_view line);

/// Parse baseline text. Returns false (with a message in `error`) on
/// an unrecognized header or a malformed record.
bool ParseBaselineText(std::string_view text, Baseline* baseline,
                       std::string* error);

/// Load a baseline file from disk. A missing file is an error.
bool LoadBaselineFile(const std::string& path, Baseline* baseline,
                      std::string* error);

/// Serialize diagnostics as baseline text (sorted, TAB-separated).
std::string BaselineText(const std::vector<Diagnostic>& diagnostics);

/// Drop every diagnostic covered by the baseline, consuming at most
/// `count` findings per key. Returns the surviving diagnostics;
/// `stale` (optional) is set when the baseline still holds unconsumed
/// entries afterwards — the recorded debt overstates reality.
std::vector<Diagnostic> FilterBaseline(
    const std::vector<Diagnostic>& diagnostics, const Baseline& baseline,
    bool* stale);

}  // namespace vrdlint

#endif  // VRDDRAM_TOOLS_VRDLINT_BASELINE_H
