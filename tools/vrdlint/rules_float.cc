/**
 * @file
 * Rule family: float-determinism — guards the PR 6 scalar-vs-AVX2
 * bit-equality contract against silent floating-point reassociation:
 *
 *  (A) in bit-equality kernel files (the `float-path` entries of the
 *      config), FMA-contractable shapes: `a*b + c` with the multiply
 *      and the add at the same parenthesis depth, and `acc += a*b`
 *      compound accumulation — `-ffp-contract` may fuse either into
 *      one rounding, diverging from the element-exact SIMD mirror;
 *  (B) anywhere in the tree, a float accumulator written with
 *      `+=`/`-=` inside a ParallelFor/Submit lambda when the
 *      accumulator is declared outside the lambda — cross-task
 *      accumulation order is pool order, not canonical order.
 *
 * Typedness is resolved through declaration-shaped float names in the
 * file and the tree-wide member index, with a float literal in the
 * statement as the shortcut.
 */
#include <algorithm>
#include <cctype>

#include "rules.h"

namespace vrdlint {
namespace {

bool IsFloatPath(const Config& config, std::string_view path) {
  for (const std::string& fragment : config.float_paths) {
    if (path.find(fragment) != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

/// Previous non-space character strictly before `pos`, or '\0'.
char PrevNonSpace(std::string_view text, std::size_t pos,
                  std::size_t* where = nullptr) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) {
      if (where != nullptr) {
        *where = pos;
      }
      return text[pos];
    }
  }
  return '\0';
}

/// True when the '+'/'-' at `pos` is the sign of a literal exponent
/// (`1.5e-3`): glued to an e/E/p/P that is itself glued to a digit.
bool IsExponentSign(std::string_view text, std::size_t pos) {
  if (pos < 2) {
    return false;
  }
  const char e = text[pos - 1];
  if (e != 'e' && e != 'E' && e != 'p' && e != 'P') {
    return false;
  }
  const char d = text[pos - 2];
  return std::isdigit(static_cast<unsigned char>(d)) || d == '.';
}

/// True when the operator character at `pos` is a binary use: the
/// previous non-space character ends a value expression.
bool IsBinaryUse(std::string_view text, std::size_t pos) {
  const char prev = PrevNonSpace(text, pos);
  return IsIdentChar(prev) || prev == ')' || prev == ']';
}

/// True when `stmt` contains a floating-point literal (a numeric
/// token with a '.' or a decimal exponent; hex literals excluded).
bool HasFloatLiteral(std::string_view stmt) {
  std::size_t i = 0;
  while (i < stmt.size()) {
    if (!std::isdigit(static_cast<unsigned char>(stmt[i])) ||
        (i > 0 && IsIdentChar(stmt[i - 1]))) {
      ++i;
      continue;
    }
    const bool hex = stmt[i] == '0' && i + 1 < stmt.size() &&
                     (stmt[i + 1] == 'x' || stmt[i + 1] == 'X');
    bool floaty = false;
    std::size_t end = i;
    while (end < stmt.size() &&
           (IsIdentChar(stmt[end]) || stmt[end] == '.' ||
            stmt[end] == '\'')) {
      if (stmt[end] == '.') {
        floaty = true;
      }
      if (!hex && (stmt[end] == 'e' || stmt[end] == 'E') &&
          end + 1 < stmt.size() &&
          (std::isdigit(static_cast<unsigned char>(stmt[end + 1])) ||
           stmt[end + 1] == '+' || stmt[end + 1] == '-')) {
        floaty = true;
      }
      ++end;
    }
    if (!hex && floaty) {
      return true;
    }
    i = end;
  }
  return false;
}

/// True when some identifier in `stmt` resolves to a floating-point
/// type: a declaration-shaped float name in this file, or a member of
/// a float type anywhere in the tree (for `obj.field` accesses).
bool HasFloatIdentifier(const RuleContext& ctx, std::string_view stmt) {
  std::size_t i = 0;
  while (i < stmt.size()) {
    if (!IsIdentStart(stmt[i]) || (i > 0 && IsIdentChar(stmt[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < stmt.size() && IsIdentChar(stmt[end])) {
      ++end;
    }
    const std::string_view name = stmt.substr(i, end - i);
    const std::size_t start = i;
    i = end;
    if (std::binary_search(ctx.symbols.float_names.begin(),
                           ctx.symbols.float_names.end(),
                           std::string(name))) {
      return true;
    }
    // Field access: resolve through the tree-wide member index.
    const bool is_field =
        (start >= 1 && stmt[start - 1] == '.') ||
        (start >= 2 && stmt[start - 2] == '-' && stmt[start - 1] == '>');
    if (is_field) {
      const MemberVar* member = ctx.index.FindMember("", name);
      if (member != nullptr && IsFloatType(member->type)) {
        return true;
      }
    }
  }
  return false;
}

bool StmtIsFloatTyped(const RuleContext& ctx, std::string_view stmt) {
  return HasFloatLiteral(stmt) || HasFloatIdentifier(ctx, stmt);
}

/// (A) one statement of a bit-equality kernel file: report the first
/// FMA-contractable shape, if any.
void CheckKernelStatement(const RuleContext& ctx, std::size_t stmt_begin,
                          std::size_t stmt_end,
                          std::vector<Diagnostic>* diagnostics) {
  const std::string_view flat = ctx.view.flat;
  const std::string_view stmt = flat.substr(stmt_begin,
                                            stmt_end - stmt_begin);
  if (stmt.find('*') == std::string_view::npos &&
      stmt.find("+=") == std::string_view::npos &&
      stmt.find("-=") == std::string_view::npos) {
    return;
  }

  // Compound accumulation: `acc += ...*...` / `acc -= ...*...` with
  // the product at the top level of the right-hand side.
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    if ((stmt[i] != '+' && stmt[i] != '-') || stmt[i + 1] != '=') {
      continue;
    }
    int depth = 0;
    for (std::size_t j = i + 2; j < stmt.size(); ++j) {
      const char c = stmt[j];
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}') {
        --depth;
      } else if (c == '*' && depth == 0 &&
                 IsBinaryUse(stmt, j) &&
                 (j + 1 >= stmt.size() || stmt[j + 1] != '=')) {
        if (!StmtIsFloatTyped(ctx, stmt)) {
          return;
        }
        const std::size_t line = ctx.view.LineOf(stmt_begin + i);
        if (ctx.view.Allowed(line, {"float-determinism"})) {
          return;
        }
        diagnostics->push_back(Diagnostic{
            ctx.path, line, "float-determinism",
            "float accumulation with a product on the right-hand side "
            "is FMA-contractable: -ffp-contract may fuse it into one "
            "rounding and break scalar-vs-AVX2 bit-equality "
            "(DESIGN.md §6); compute the product into an explicit "
            "temporary first or annotate with "
            "// vrdlint: allow(float-determinism)"});
        return;
      }
    }
  }

  // `a*b + c` shape: a binary multiply and a binary add/subtract at
  // the same parenthesis depth in one statement.
  std::vector<std::pair<int, char>> muls;  // (depth, _) positions
  std::vector<std::pair<int, std::size_t>> adds;  // (depth, pos)
  int depth = 0;
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const char c = stmt[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
      continue;
    }
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      continue;
    }
    if (c == '*') {
      if ((i + 1 < stmt.size() && stmt[i + 1] == '=') ||
          !IsBinaryUse(stmt, i)) {
        continue;  // *= handled above; unary deref/pointer type
      }
      muls.emplace_back(depth, c);
      continue;
    }
    if (c == '+' || c == '-') {
      if (i + 1 < stmt.size() &&
          (stmt[i + 1] == '=' || stmt[i + 1] == c ||
           (c == '-' && stmt[i + 1] == '>'))) {
        continue;  // +=, ++, --, ->
      }
      if (i > 0 && stmt[i - 1] == c) {
        continue;  // second char of ++/--
      }
      if (IsExponentSign(stmt, i) || !IsBinaryUse(stmt, i)) {
        continue;  // literal exponent or unary sign
      }
      adds.emplace_back(depth, i);
    }
  }
  for (const auto& [add_depth, add_pos] : adds) {
    for (const auto& [mul_depth, unused] : muls) {
      if (mul_depth != add_depth) {
        continue;
      }
      if (!StmtIsFloatTyped(ctx, stmt)) {
        return;
      }
      const std::size_t line = ctx.view.LineOf(stmt_begin + add_pos);
      if (ctx.view.Allowed(line, {"float-determinism"})) {
        return;
      }
      diagnostics->push_back(Diagnostic{
          ctx.path, line, "float-determinism",
          "FMA-contractable `a*b + c` shape (multiply and add at the "
          "same depth): -ffp-contract may fuse them into one rounding "
          "and break scalar-vs-AVX2 bit-equality (DESIGN.md §6); "
          "split the product into an explicit temporary or annotate "
          "with // vrdlint: allow(float-determinism)"});
      return;
    }
  }
}

/// (A) driver: segment a kernel file into statements at ';', '{', '}'.
void CheckKernelFile(const RuleContext& ctx,
                     std::vector<Diagnostic>* diagnostics) {
  const std::string_view flat = ctx.view.flat;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const char c = flat[i];
    if (c == ';' || c == '{' || c == '}') {
      if (i > begin) {
        CheckKernelStatement(ctx, begin, i, diagnostics);
      }
      begin = i + 1;
    }
  }
  if (flat.size() > begin) {
    CheckKernelStatement(ctx, begin, flat.size(), diagnostics);
  }
}

/// True when `name` is declared with a float type inside [begin, end)
/// of the flat text — a per-task local accumulator, which is fine.
bool DeclaredFloatWithin(std::string_view flat, std::string_view name,
                         std::size_t begin, std::size_t end) {
  for (const std::string_view type : {"double", "float", "auto"}) {
    std::size_t pos = begin;
    while ((pos = FindWord(flat, type, pos)) != std::string_view::npos &&
           pos < end) {
      std::size_t p = pos + type.size();
      pos += type.size();
      while (p < end &&
             (flat[p] == '>' || flat[p] == '*' || flat[p] == '&' ||
              std::isspace(static_cast<unsigned char>(flat[p])))) {
        ++p;
      }
      if (IsWordAt(flat, p, name)) {
        return true;
      }
    }
  }
  return false;
}

/// (B) float accumulation across dispatch-lambda tasks, any file.
void CheckDispatchAccumulation(const RuleContext& ctx,
                               std::vector<Diagnostic>* diagnostics) {
  const std::string_view flat = ctx.view.flat;
  for (const DispatchLambda& dl : FindDispatchLambdas(ctx.view)) {
    for (std::size_t i = dl.body_open + 1; i + 1 < dl.body_close; ++i) {
      if ((flat[i] != '+' && flat[i] != '-') || flat[i + 1] != '=') {
        continue;
      }
      if (i > 0 && flat[i - 1] == flat[i]) {
        continue;  // ++= is not a thing; guard anyway
      }
      // The left-hand side must be a plain identifier: an indexed or
      // member target (`out[i] +=`, `s.total +=`) writes per-task or
      // per-object state, which is the caller's contract to order.
      std::size_t p = i;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(flat[p - 1]))) {
        --p;
      }
      if (p == 0 || !IsIdentChar(flat[p - 1])) {
        continue;
      }
      std::size_t start = p;
      while (start > 0 && IsIdentChar(flat[start - 1])) {
        --start;
      }
      if (start > 0 &&
          (flat[start - 1] == '.' ||
           (start >= 2 && flat[start - 2] == '-' &&
            flat[start - 1] == '>'))) {
        continue;
      }
      const std::string name(flat.substr(start, p - start));
      const bool is_float =
          std::binary_search(ctx.symbols.float_names.begin(),
                             ctx.symbols.float_names.end(), name);
      if (!is_float) {
        continue;
      }
      if (DeclaredFloatWithin(flat, name, dl.body_open, dl.body_close)) {
        continue;  // per-task local accumulator
      }
      const std::size_t line = ctx.view.LineOf(i);
      if (ctx.view.Allowed(line, {"float-determinism"})) {
        continue;
      }
      diagnostics->push_back(Diagnostic{
          ctx.path, line, "float-determinism",
          "float accumulator '" + name + "' written with `" +
              std::string(1, flat[i]) + "=` across " +
              std::string(dl.keyword) +
              " tasks: accumulation order is pool order, not canonical "
              "order (DESIGN.md §6); accumulate into a per-task local "
              "and merge in canonical order, or annotate with "
              "// vrdlint: allow(float-determinism)"});
    }
  }
}

}  // namespace

void CheckFloatDeterminism(const RuleContext& ctx,
                           std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(ctx.config, "float-determinism", ctx.path)) {
    return;
  }
  if (IsFloatPath(ctx.config, ctx.path)) {
    CheckKernelFile(ctx, diagnostics);
  }
  CheckDispatchAccumulation(ctx, diagnostics);
}

}  // namespace vrdlint
