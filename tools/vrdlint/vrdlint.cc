/**
 * @file
 * vrdlint driver: config parsing, file collection, and the two-pass
 * lint pipeline. Pass 1 builds a FileView + FileSymbols for every
 * scanned file and folds them into a tree-wide SymbolIndex; pass 2
 * runs the rule families (rules_core.cc, rules_rng_flow.cc,
 * rules_float.cc, rules_lock.cc) per file with the index in hand;
 * pass 3 runs the global lock-ordering check over the nested-
 * acquisition edges collected in pass 2.
 */
#include "vrdlint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "baseline.h"
#include "rules.h"
#include "symbol_index.h"
#include "tokenizer.h"

namespace vrdlint {
namespace {

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::sort(diagnostics->begin(), diagnostics->end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

/// Key diagnostics to their source line's content (baseline / SARIF
/// fingerprints survive pure line-number churn this way).
void StampContentHashes(const FileView& view,
                        std::vector<Diagnostic>* diagnostics,
                        std::size_t from) {
  for (std::size_t i = from; i < diagnostics->size(); ++i) {
    Diagnostic& diag = (*diagnostics)[i];
    if (diag.line >= 1 && diag.line <= view.raw.size()) {
      diag.content_hash = HashLineContent(view.raw[diag.line - 1]);
    }
  }
}

/// Pass-2 body for one file: every per-file rule family.
void RunFileRules(const RuleContext& ctx,
                  std::vector<LockOrderEdge>* edges,
                  std::vector<Diagnostic>* diagnostics) {
  const std::size_t before = diagnostics->size();
  const std::vector<RngDecl> decls = RunCoreRules(ctx, diagnostics);
  CheckRngFlow(ctx, decls, diagnostics);
  CheckFloatDeterminism(ctx, diagnostics);
  CheckLockDiscipline(ctx, edges, diagnostics);
  StampContentHashes(ctx.view, diagnostics, before);
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream out;
  out << file << ':' << line << ": " << rule << ": " << message;
  return out.str();
}

bool ParseConfigText(std::string_view text, Config* config,
                     std::string* error) {
  std::string section;
  std::size_t lineno = 0;
  for (const std::string& raw : SplitLines(text)) {
    ++lineno;
    std::string line = Trim(raw);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = Trim(line.substr(0, hash));
    }
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') {
        *error = "config line " + std::to_string(lineno) +
                 ": unterminated section header";
        return false;
      }
      section = Trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = "config line " + std::to_string(lineno) +
               ": expected key = value";
      return false;
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (value.empty()) {
      *error = "config line " + std::to_string(lineno) + ": empty value";
      return false;
    }
    if (section.empty()) {
      if (key == "scan") {
        if (!config->scan_dirs_overridden) {
          config->scan_dirs.clear();
          config->scan_dirs_overridden = true;
        }
        config->scan_dirs.push_back(value);
      } else if (key == "exclude") {
        config->exclude_paths.push_back(value);
      } else {
        *error = "config line " + std::to_string(lineno) +
                 ": unknown key '" + key + "'";
        return false;
      }
      continue;
    }
    if (key == "allow-path") {
      config->allow_paths[section].push_back(value);
    } else if (section == "rng-discipline" && key == "seed-call") {
      config->seed_calls.push_back(value);
    } else if (section == "unordered-iteration" &&
               key == "ordering-call") {
      config->ordering_calls.push_back(value);
    } else if (section == "kernel-allocation" && key == "kernel-path") {
      config->kernel_paths.push_back(value);
    } else if (section == "float-determinism" && key == "float-path") {
      config->float_paths.push_back(value);
    } else {
      *error = "config line " + std::to_string(lineno) +
               ": unknown key '" + key + "' in section [" + section + "]";
      return false;
    }
  }
  return true;
}

bool LoadConfigFile(const std::string& path, Config* config,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read config file: " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseConfigText(buffer.str(), config, error);
}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   std::string_view text,
                                   const Config& config) {
  const FileView view = BuildView(text);
  const FileSymbols symbols = AnalyzeFile(path, view);
  SymbolIndex index;
  index.AddFile(path, view, symbols);
  const RuleContext ctx{path, view, symbols, index, config, nullptr};
  std::vector<Diagnostic> diagnostics;
  std::vector<LockOrderEdge> edges;
  RunFileRules(ctx, &edges, &diagnostics);
  const std::size_t before = diagnostics.size();
  CheckLockOrdering(edges, &diagnostics);
  StampContentHashes(view, &diagnostics, before);
  SortDiagnostics(&diagnostics);
  return diagnostics;
}

std::vector<std::string> CollectFiles(const std::string& root,
                                      const Config& config) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& dir : config.scan_dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::is_directory(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hh" && ext != ".hpp" && ext != ".cc" &&
          ext != ".cpp" && ext != ".cxx") {
        continue;
      }
      const std::string relative =
          fs::relative(entry.path(), root).generic_string();
      bool excluded = false;
      for (const std::string& fragment : config.exclude_paths) {
        if (relative.find(fragment) != std::string::npos) {
          excluded = true;
          break;
        }
      }
      if (!excluded) {
        files.push_back(relative);
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Diagnostic> LintTree(const std::string& root,
                                 const Config& config) {
  namespace fs = std::filesystem;
  const std::vector<std::string> files = CollectFiles(root, config);

  // Pass 1: read every file once, build its view and symbols, fold
  // them into the tree-wide index. Views must outlive pass 2 (the
  // index stores string_views into member/type text), so everything
  // is kept in file order for the duration.
  struct ScannedFile {
    std::string path;
    std::string text;
    FileView view;
    FileSymbols symbols;
  };
  std::vector<ScannedFile> scanned;
  scanned.reserve(files.size());
  SymbolIndex index;
  // Per-header unordered member names, so a .cc iterating a member
  // declared in its paired header (device.cc over a map from
  // device.h) is still caught. The pairing is by path stem, not a
  // global name pool — `rows_` being unordered in device.h must not
  // taint an unrelated vector member of the same name elsewhere.
  std::map<std::string, std::vector<std::string>> header_names;
  for (const std::string& relative : files) {
    std::ifstream in(fs::path(root) / relative);
    if (!in) {
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    scanned.push_back(ScannedFile{relative, buffer.str(), {}, {}});
    ScannedFile& file = scanned.back();
    file.view = BuildView(file.text);
    file.symbols = AnalyzeFile(file.path, file.view);
    index.AddFile(file.path, file.view, file.symbols);
    if (IsHeaderPath(relative)) {
      std::vector<std::string> names = CollectUnorderedNames(file.view);
      if (!names.empty()) {
        const std::string stem = relative.substr(0, relative.rfind('.'));
        header_names[stem] = std::move(names);
      }
    }
  }

  // Pass 2: rules, with cross-file symbol resolution available.
  std::vector<Diagnostic> diagnostics;
  std::vector<LockOrderEdge> edges;
  for (const ScannedFile& file : scanned) {
    const std::vector<std::string>* extra = nullptr;
    if (!IsHeaderPath(file.path)) {
      const std::string stem =
          file.path.substr(0, file.path.rfind('.'));
      const auto it = header_names.find(stem);
      if (it != header_names.end()) {
        extra = &it->second;
      }
    }
    const RuleContext ctx{file.path, file.view, file.symbols,
                          index,     config,    extra};
    RunFileRules(ctx, &edges, &diagnostics);
  }

  // Pass 3: global lock-ordering over the collected edges.
  const std::size_t before = diagnostics.size();
  CheckLockOrdering(edges, &diagnostics);
  for (std::size_t i = before; i < diagnostics.size(); ++i) {
    Diagnostic& diag = diagnostics[i];
    for (const ScannedFile& file : scanned) {
      if (file.path == diag.file) {
        if (diag.line >= 1 && diag.line <= file.view.raw.size()) {
          diag.content_hash =
              HashLineContent(file.view.raw[diag.line - 1]);
        }
        break;
      }
    }
  }

  SortDiagnostics(&diagnostics);
  return diagnostics;
}

}  // namespace vrdlint
