#include "vrdlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

namespace vrdlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// True when `text[pos, pos+word)` is `word` bounded by non-identifier
/// characters on both sides.
bool IsWordAt(std::string_view text, std::size_t pos,
              std::string_view word) {
  if (pos + word.size() > text.size() ||
      text.compare(pos, word.size(), word) != 0) {
    return false;
  }
  if (pos > 0 && IsIdentChar(text[pos - 1])) {
    return false;
  }
  const std::size_t end = pos + word.size();
  return end >= text.size() || !IsIdentChar(text[end]);
}

/// First word occurrence of `word` in [from, to) of `text`, or npos.
std::size_t FindWord(std::string_view text, std::string_view word,
                     std::size_t from = 0,
                     std::size_t to = std::string_view::npos) {
  const std::size_t limit = std::min(to, text.size());
  std::size_t pos = from;
  while (pos < limit) {
    pos = text.find(word, pos);
    if (pos == std::string_view::npos || pos >= limit) {
      return std::string_view::npos;
    }
    if (IsWordAt(text, pos, word)) {
      return pos;
    }
    ++pos;
  }
  return std::string_view::npos;
}

bool ContainsWord(std::string_view text, std::string_view word) {
  return FindWord(text, word) != std::string_view::npos;
}

/// True when `word` appears followed (after whitespace) by '('.
bool ContainsCall(std::string_view text, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = FindWord(text, word, pos)) != std::string_view::npos) {
    std::size_t p = pos + word.size();
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p]))) {
      ++p;
    }
    if (p < text.size() && text[p] == '(') {
      return true;
    }
    pos += word.size();
  }
  return false;
}

std::size_t SkipSpace(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

/// Matching close position for the bracket at `open` (pos of the
/// closer), or npos when unbalanced. Works on comment/string-stripped
/// text, so bracket characters are structural.
std::size_t MatchBracket(std::string_view text, std::size_t open,
                         char open_char, char close_char) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_char) {
      ++depth;
    } else if (text[i] == close_char) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return std::string_view::npos;
}

/**
 * The per-file scanning substrate: raw lines, a comment/string-
 * stripped mirror (stripped chars become spaces, so columns line up),
 * the stripped lines joined into one string for cross-line matching,
 * and the `vrdlint: allow(...)` tokens attached to each line.
 */
struct FileView {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::vector<std::string>> allows;
  std::string flat;                      // code lines joined with '\n'
  std::vector<std::size_t> line_start;   // flat offset of each line

  /// 1-based line of a flat offset.
  std::size_t LineOf(std::size_t pos) const {
    const auto it = std::upper_bound(line_start.begin(), line_start.end(),
                                     pos);
    return static_cast<std::size_t>(it - line_start.begin());
  }

  /// True when the diagnostic rule (or one of its tokens) is allowed
  /// on the given 1-based line.
  bool Allowed(std::size_t line,
               std::initializer_list<std::string_view> tokens) const {
    if (line == 0 || line > allows.size()) {
      return false;
    }
    for (const std::string& have : allows[line - 1]) {
      for (const std::string_view want : tokens) {
        if (have == want) {
          return true;
        }
      }
    }
    return false;
  }
};

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      lines.emplace_back(text.substr(begin));
      break;
    }
    lines.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

/// Strip comments and string/character literals from the source,
/// replacing them with spaces so offsets and line numbers survive.
std::string StripCommentsAndStrings(std::string_view text) {
  std::string out(text);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"' && i > 0 && text[i - 1] == 'R' &&
                   (i < 2 || !IsIdentChar(text[i - 2]))) {
          // Raw string literal: R"delim( ... )delim"
          raw_delim = ")";
          for (std::size_t j = i + 1;
               j < text.size() && text[j] != '(' && j < i + 20; ++j) {
            raw_delim += text[j];
          }
          raw_delim += '"';
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && !(i > 0 && IsIdentChar(text[i - 1]))) {
          // Skip digit separators (1'000'000) via the ident-char test.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < text.size()) {
              out[i + 1] = ' ';
            }
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size()) {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) {
            out[i + j] = ' ';
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// Parse `vrdlint: allow(tok, tok)` annotations out of the raw lines.
/// A trailing annotation covers its own line; an annotation on a
/// comment-only line also covers the next line.
void CollectAllows(FileView* view) {
  view->allows.assign(view->raw.size(), {});
  for (std::size_t i = 0; i < view->raw.size(); ++i) {
    const std::string& line = view->raw[i];
    const std::size_t tag = line.find("vrdlint:");
    if (tag == std::string::npos) {
      continue;
    }
    std::size_t p = SkipSpace(line, tag + 8);
    if (line.compare(p, 5, "allow") != 0) {
      continue;
    }
    p = SkipSpace(line, p + 5);
    if (p >= line.size() || line[p] != '(') {
      continue;
    }
    const std::size_t close = line.find(')', p);
    if (close == std::string::npos) {
      continue;
    }
    std::vector<std::string> tokens;
    std::stringstream list(line.substr(p + 1, close - p - 1));
    std::string token;
    while (std::getline(list, token, ',')) {
      token = Trim(token);
      if (!token.empty()) {
        tokens.push_back(token);
      }
    }
    for (const std::string& t : tokens) {
      view->allows[i].push_back(t);
    }
    // Comment-only line: the annotation also covers the next line.
    if (Trim(view->code[i]).empty() && i + 1 < view->raw.size()) {
      for (const std::string& t : tokens) {
        view->allows[i + 1].push_back(t);
      }
    }
  }
}

FileView BuildView(std::string_view text) {
  FileView view;
  view.raw = SplitLines(text);
  const std::string stripped = StripCommentsAndStrings(text);
  view.code = SplitLines(stripped);
  CollectAllows(&view);
  view.line_start.reserve(view.code.size());
  for (const std::string& line : view.code) {
    view.line_start.push_back(view.flat.size());
    view.flat += line;
    view.flat += '\n';
  }
  return view;
}

bool IsHeaderPath(std::string_view path) {
  return path.ends_with(".h") || path.ends_with(".hh") ||
         path.ends_with(".hpp");
}

bool RuleSuppressedForPath(const Config& config, std::string_view rule,
                           std::string_view path) {
  const auto it = config.allow_paths.find(std::string(rule));
  if (it == config.allow_paths.end()) {
    return false;
  }
  for (const std::string& fragment : it->second) {
    if (path.find(fragment) != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule: banned-api
// ---------------------------------------------------------------------------

struct BannedPattern {
  const char* needle;       // substring or word to search
  bool word;                // match with identifier boundaries
  bool call;                // require a following '('
  const char* allow_token;  // extra allow() token besides the rule name
  const char* message;
};

constexpr BannedPattern kBannedPatterns[] = {
    {"random_device", true, false, nullptr,
     "std::random_device is nondeterministic; construct vrddram::Rng "
     "from a seed expression"},
    {"srand", true, true, nullptr,
     "srand() is banned; vrddram::Rng streams are seeded explicitly"},
    {"rand", true, true, nullptr,
     "rand() is banned; draw from a seeded vrddram::Rng stream"},
    {"time", true, true, nullptr,
     "time() is banned in result-producing code; use simulated Ticks "
     "(Device::Now) or common/telemetry.h"},
    {"steady_clock::now", false, false, "wall-clock",
     "wall-clock read outside telemetry; use common/telemetry.h "
     "Stopwatch or annotate with // vrdlint: allow(wall-clock)"},
    {"system_clock::now", false, false, "wall-clock",
     "wall-clock read outside telemetry; use common/telemetry.h "
     "Stopwatch or annotate with // vrdlint: allow(wall-clock)"},
    {"high_resolution_clock::now", false, false, "wall-clock",
     "wall-clock read outside telemetry; use common/telemetry.h "
     "Stopwatch or annotate with // vrdlint: allow(wall-clock)"},
};

void CheckBannedApi(const std::string& path, const FileView& view,
                    const Config& config,
                    std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(config, "banned-api", path)) {
    return;
  }
  for (const BannedPattern& pattern : kBannedPatterns) {
    const std::string_view needle = pattern.needle;
    std::size_t pos = 0;
    while ((pos = view.flat.find(needle, pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += needle.size();
      if (pattern.word && !IsWordAt(view.flat, here, needle)) {
        continue;
      }
      if (pattern.call) {
        const std::size_t after = SkipSpace(view.flat, here + needle.size());
        if (after >= view.flat.size() || view.flat[after] != '(') {
          continue;
        }
      }
      const std::size_t line = view.LineOf(here);
      if (pattern.allow_token != nullptr
              ? view.Allowed(line, {"banned-api", pattern.allow_token})
              : view.Allowed(line, {"banned-api"})) {
        continue;
      }
      diagnostics->push_back(
          Diagnostic{path, line, "banned-api", pattern.message});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------------

constexpr std::string_view kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Names declared with an unordered container type in this file
/// (locals and members alike — the scan is declaration-shaped, not
/// scope-aware).
std::vector<std::string> CollectUnorderedNames(const FileView& view) {
  std::vector<std::string> names;
  const std::string_view flat = view.flat;
  for (const std::string_view type : kUnorderedTypes) {
    std::size_t pos = 0;
    while ((pos = FindWord(flat, type, pos)) != std::string_view::npos) {
      std::size_t p = SkipSpace(flat, pos + type.size());
      pos += type.size();
      if (p >= flat.size() || flat[p] != '<') {
        continue;  // e.g. an #include or a comment-adjacent mention
      }
      const std::size_t close = MatchBracket(flat, p, '<', '>');
      if (close == std::string_view::npos) {
        continue;
      }
      p = SkipSpace(flat, close + 1);
      if (p < flat.size() && flat[p] == '&') {
        p = SkipSpace(flat, p + 1);
      }
      if (p >= flat.size() || !IsIdentStart(flat[p])) {
        continue;
      }
      std::size_t end = p;
      while (end < flat.size() && IsIdentChar(flat[end])) {
        ++end;
      }
      names.emplace_back(flat.substr(p, end - p));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void CheckUnorderedIteration(const std::string& path, const FileView& view,
                             const Config& config,
                             const std::vector<std::string>& extra_names,
                             std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(config, "unordered-iteration", path)) {
    return;
  }
  std::vector<std::string> names = CollectUnorderedNames(view);
  names.insert(names.end(), extra_names.begin(), extra_names.end());
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  const std::string_view flat = view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, "for", pos)) != std::string_view::npos) {
    const std::size_t kw = pos;
    pos += 3;
    const std::size_t open = SkipSpace(flat, kw + 3);
    if (open >= flat.size() || flat[open] != '(') {
      continue;
    }
    const std::size_t close = MatchBracket(flat, open, '(', ')');
    if (close == std::string_view::npos) {
      continue;
    }
    // Top-level ':' that is not part of '::' marks a range-for.
    std::size_t colon = std::string_view::npos;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const char c = flat[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}' || c == '>') {
        --depth;
      } else if (c == ':' && depth == 0) {
        const bool prev_colon = i > 0 && flat[i - 1] == ':';
        const bool next_colon = i + 1 < close && flat[i + 1] == ':';
        if (!prev_colon && !next_colon) {
          colon = i;
          break;
        }
      }
    }
    if (colon == std::string_view::npos) {
      continue;
    }
    const std::string_view range = flat.substr(colon + 1, close - colon - 1);
    bool laundered = false;
    for (const std::string& call : config.ordering_calls) {
      if (ContainsCall(range, call)) {
        laundered = true;
        break;
      }
    }
    if (laundered) {
      continue;
    }
    std::string offender;
    if (range.find("unordered_") != std::string_view::npos) {
      offender = "an unordered container expression";
    } else {
      for (const std::string& name : names) {
        if (ContainsWord(range, name)) {
          offender = "'" + name + "'";
          break;
        }
      }
    }
    if (offender.empty()) {
      continue;
    }
    const std::size_t line = view.LineOf(kw);
    if (view.Allowed(line, {"unordered-iteration"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "unordered-iteration",
        "range-for over " + offender +
            ": hash order leaks into results; iterate a SortedByKey()/"
            "SortedKeys() snapshot or annotate with "
            "// vrdlint: allow(unordered-iteration)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: rng-discipline
// ---------------------------------------------------------------------------

struct RngDecl {
  std::string name;
  std::size_t pos = 0;  // flat offset of the declaration
};

/// Heuristic: constructor arguments are value expressions; two
/// adjacent bare identifiers ("std::uint64_t seed") mean we are
/// looking at a function parameter list, not a construction.
bool LooksLikeParameterList(std::string_view args) {
  std::size_t i = 0;
  while (i < args.size()) {
    if (!IsIdentStart(args[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < args.size() && IsIdentChar(args[end])) {
      ++end;
    }
    std::size_t next = SkipSpace(args, end);
    if (next > end && next < args.size() && IsIdentStart(args[next])) {
      return true;
    }
    i = end + 1;
  }
  return false;
}

/// A seed expression: empty (default seed), pure literal arithmetic,
/// mentions of something seed-named, or a call to a seed-deriving
/// function (MixSeed/HashLabel/SplitMix64/Fork + config additions).
bool IsSeedExpression(std::string_view args, const Config& config) {
  const std::string trimmed = Trim(args);
  if (trimmed.empty()) {
    return true;
  }
  if (ToLower(trimmed).find("seed") != std::string::npos) {
    return true;
  }
  for (const std::string& call : config.seed_calls) {
    if (ContainsCall(trimmed, call)) {
      return true;
    }
  }
  bool has_digit = false;
  for (const char c : trimmed) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    }
    if (IsIdentChar(c) || std::isspace(static_cast<unsigned char>(c)) ||
        std::string_view("^|&+-*~%()<>,'").find(c) !=
            std::string_view::npos) {
      continue;
    }
    return false;
  }
  if (!has_digit) {
    return false;
  }
  // "Pure literal arithmetic": digit-led tokens (0x1234ull) and
  // operators only; any identifier (which starts with a letter or
  // underscore) disqualifies.
  std::size_t i = 0;
  while (i < trimmed.size()) {
    if (std::isdigit(static_cast<unsigned char>(trimmed[i]))) {
      while (i < trimmed.size() &&
             (IsIdentChar(trimmed[i]) || trimmed[i] == '\'')) {
        ++i;
      }
      continue;
    }
    if (IsIdentStart(trimmed[i])) {
      return false;
    }
    ++i;
  }
  return true;
}

std::string_view PreviousWord(std::string_view text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(text[i - 1]))) {
    --i;
  }
  std::size_t end = i;
  while (i > 0 && IsIdentChar(text[i - 1])) {
    --i;
  }
  return text.substr(i, end - i);
}

/// Collect Rng declarations and check construction arguments.
std::vector<RngDecl> CheckRngConstruction(
    const std::string& path, const FileView& view, const Config& config,
    bool emit, std::vector<Diagnostic>* diagnostics) {
  std::vector<RngDecl> decls;
  const std::string_view flat = view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, "Rng", pos)) != std::string_view::npos) {
    const std::size_t here = pos;
    pos += 3;
    // Template arguments (vector<Rng>) fall out naturally: the token
    // after them is '>' or ',', which no branch below accepts.
    const std::string_view prev = PreviousWord(flat, here);
    if (prev == "class" || prev == "struct" || prev == "typename" ||
        prev == "using" || prev == "friend") {
      continue;
    }
    std::size_t p = SkipSpace(flat, here + 3);
    if (p >= flat.size()) {
      continue;
    }
    if (flat[p] == ':') {
      continue;  // Rng::member
    }
    std::string args;
    std::size_t args_pos = here;
    std::string name;
    if (flat[p] == '(') {
      // Temporary: Rng(<args>)
      const std::size_t close = MatchBracket(flat, p, '(', ')');
      if (close == std::string_view::npos) {
        continue;
      }
      args = std::string(flat.substr(p + 1, close - p - 1));
      args_pos = p;
    } else if (flat[p] == '&' || IsIdentStart(flat[p])) {
      if (flat[p] == '&') {
        p = SkipSpace(flat, p + 1);
      }
      if (p >= flat.size() || !IsIdentStart(flat[p])) {
        continue;
      }
      std::size_t end = p;
      while (end < flat.size() && IsIdentChar(flat[end])) {
        ++end;
      }
      name = std::string(flat.substr(p, end - p));
      std::size_t after = SkipSpace(flat, end);
      if (after + 1 < flat.size() && flat[after] == ':' &&
          flat[after + 1] == ':') {
        continue;  // qualified definition: Rng Rng::Fork(...)
      }
      if (after < flat.size() && (flat[after] == '(' || flat[after] == '{')) {
        const char open_char = flat[after];
        const char close_char = open_char == '(' ? ')' : '}';
        const std::size_t close =
            MatchBracket(flat, after, open_char, close_char);
        if (close == std::string_view::npos) {
          continue;
        }
        args = std::string(flat.substr(after + 1, close - after - 1));
        args_pos = after;
        if (LooksLikeParameterList(args)) {
          continue;  // function declaration returning Rng, not a decl
        }
        decls.push_back(RngDecl{name, here});
        if (open_char == '{' && SkipSpace(args, 0) == args.size()) {
          continue;  // empty brace init: default seed
        }
      } else {
        decls.push_back(RngDecl{name, here});
        continue;  // plain declaration or reference bind, default seed
      }
    } else {
      continue;
    }
    if (LooksLikeParameterList(args)) {
      continue;  // e.g. `explicit Rng(std::uint64_t seed = ...)`
    }
    if (emit && !IsSeedExpression(args, config)) {
      const std::size_t line = view.LineOf(args_pos);
      if (!view.Allowed(line, {"rng-discipline"})) {
        diagnostics->push_back(Diagnostic{
            path, line, "rng-discipline",
            "Rng constructed from a non-seed expression (" + Trim(args) +
                "); derive the seed via MixSeed/HashLabel or a *seed* "
                "value so the stream is reproducible"});
      }
    }
  }
  return decls;
}

/// Constructor-initializer discipline: an identifier that is
/// rng-named and member-shaped (`rng_`, `powerup_rng_`) initialized
/// with non-seed arguments. The declared type lives in the header, so
/// this is name-convention-based — which the codebase follows.
void CheckRngMemberInit(const std::string& path, const FileView& view,
                        const Config& config,
                        std::vector<Diagnostic>* diagnostics) {
  const std::string_view flat = view.flat;
  std::size_t i = 0;
  while (i < flat.size()) {
    if (!IsIdentStart(flat[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < flat.size() && IsIdentChar(flat[end])) {
      ++end;
    }
    const std::string word(flat.substr(i, end - i));
    const std::size_t start = i;
    i = end;
    if (word.size() < 4 || word.back() != '_' ||
        ToLower(word).find("rng") == std::string::npos) {
      continue;
    }
    const std::size_t open = SkipSpace(flat, end);
    if (open >= flat.size() || (flat[open] != '(' && flat[open] != '{')) {
      continue;
    }
    const char close_char = flat[open] == '(' ? ')' : '}';
    const std::size_t close =
        MatchBracket(flat, open, flat[open], close_char);
    if (close == std::string_view::npos) {
      continue;
    }
    const std::string args(flat.substr(open + 1, close - open - 1));
    if (LooksLikeParameterList(args) || IsSeedExpression(args, config)) {
      continue;
    }
    const std::size_t line = view.LineOf(start);
    if (view.Allowed(line, {"rng-discipline"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "rng-discipline",
        "Rng member '" + word + "' initialized from a non-seed "
        "expression (" + Trim(args) + "); derive the seed via MixSeed/"
        "HashLabel or a *seed* value so the stream is reproducible"});
  }
}

/// Start-of-enclosing-scope heuristic: the nearest preceding line that
/// begins at column 0 with an identifier or '}' (function signatures
/// and TEST( macros both do, in this codebase's style).
std::size_t EnclosingScopeStart(const FileView& view, std::size_t line) {
  for (std::size_t l = line; l > 0; --l) {
    const std::string& code = view.code[l - 1];
    if (!code.empty() && (IsIdentStart(code[0]) || code[0] == '}')) {
      return view.line_start[l - 1];
    }
  }
  return 0;
}

void CheckRngInDispatchLambdas(const std::string& path,
                               const FileView& view, const Config& config,
                               const std::vector<RngDecl>& decls,
                               std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(config, "rng-discipline", path)) {
    return;
  }
  const std::string_view flat = view.flat;
  for (const std::string_view dispatch : {"ParallelFor", "Submit"}) {
    std::size_t pos = 0;
    while ((pos = FindWord(flat, dispatch, pos)) !=
           std::string_view::npos) {
      const std::size_t kw = pos;
      pos += dispatch.size();
      const std::size_t open = SkipSpace(flat, kw + dispatch.size());
      if (open >= flat.size() || flat[open] != '(') {
        continue;
      }
      const std::size_t close = MatchBracket(flat, open, '(', ')');
      if (close == std::string_view::npos) {
        continue;
      }
      // Find a lambda among the arguments.
      const std::size_t intro = flat.find('[', open);
      if (intro == std::string_view::npos || intro > close) {
        continue;
      }
      const std::size_t intro_close = MatchBracket(flat, intro, '[', ']');
      if (intro_close == std::string_view::npos || intro_close > close) {
        continue;
      }
      const std::size_t body_open = flat.find('{', intro_close);
      if (body_open == std::string_view::npos || body_open > close) {
        continue;
      }
      const std::size_t body_close =
          MatchBracket(flat, body_open, '{', '}');
      if (body_close == std::string_view::npos) {
        continue;
      }
      const std::string_view body =
          flat.substr(body_open, body_close - body_open + 1);

      const bool forked_before =
          ContainsCall(
              flat.substr(EnclosingScopeStart(view, view.LineOf(kw)),
                          kw - EnclosingScopeStart(view, view.LineOf(kw))),
              "Fork");
      if (forked_before) {
        continue;  // streams were pre-forked in this scope
      }
      for (const RngDecl& decl : decls) {
        if (decl.pos >= open) {
          continue;  // declared after (or inside) the dispatch
        }
        // Re-declared inside the body -> the body name is local.
        bool local = false;
        for (const RngDecl& other : decls) {
          if (other.name == decl.name && other.pos > body_open &&
              other.pos < body_close) {
            local = true;
            break;
          }
        }
        if (local) {
          continue;
        }
        const std::size_t use = FindWord(body, decl.name);
        if (use == std::string_view::npos) {
          continue;
        }
        const std::size_t line = view.LineOf(body_open + use);
        if (view.Allowed(line, {"rng-discipline"})) {
          continue;
        }
        diagnostics->push_back(Diagnostic{
            path, line, "rng-discipline",
            "captured Rng '" + decl.name + "' touched inside a " +
                std::string(dispatch) +
                " lambda without a preceding Fork(...) in the enclosing "
                "scope; fork per-task streams before dispatch "
                "(DESIGN.md §6)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: catch-all-swallow
// ---------------------------------------------------------------------------

/// Body constructs that count as preserving the caught exception:
/// rethrowing (any `throw`), capturing it (`std::current_exception`),
/// or converting it into a typed vrddram error.
constexpr std::string_view kPreservingWords[] = {
    "throw",         "TransientError", "FatalError",
    "PanicError",    "ThrowFatal",     "ThrowPanic",
    "VRD_FATAL_IF",  "VRD_ASSERT",     "VRD_ASSERT_MSG",
};

bool BodyPreservesException(std::string_view body) {
  for (const std::string_view word : kPreservingWords) {
    if (ContainsWord(body, word)) {
      return true;
    }
  }
  return ContainsCall(body, "current_exception");
}

/// A handler is a swallow candidate when it catches everything:
/// `catch (...)` or any `std::exception&` spelling.
bool IsCatchAllParam(std::string_view params) {
  const std::string trimmed = Trim(params);
  if (trimmed.find("...") != std::string::npos) {
    return true;
  }
  return ContainsWord(trimmed, "exception");
}

void CheckCatchAllSwallow(const std::string& path, const FileView& view,
                          const Config& config,
                          std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(config, "catch-all-swallow", path)) {
    return;
  }
  const std::string_view flat = view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, "catch", pos)) != std::string_view::npos) {
    const std::size_t kw = pos;
    pos += 5;
    const std::size_t open = SkipSpace(flat, kw + 5);
    if (open >= flat.size() || flat[open] != '(') {
      continue;
    }
    const std::size_t close = MatchBracket(flat, open, '(', ')');
    if (close == std::string_view::npos) {
      continue;
    }
    if (!IsCatchAllParam(flat.substr(open + 1, close - open - 1))) {
      continue;
    }
    const std::size_t body_open = SkipSpace(flat, close + 1);
    if (body_open >= flat.size() || flat[body_open] != '{') {
      continue;
    }
    const std::size_t body_close =
        MatchBracket(flat, body_open, '{', '}');
    if (body_close == std::string_view::npos) {
      continue;
    }
    if (BodyPreservesException(
            flat.substr(body_open + 1, body_close - body_open - 1))) {
      continue;
    }
    const std::size_t line = view.LineOf(kw);
    if (view.Allowed(line, {"catch-all-swallow", "catch-all"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "catch-all-swallow",
        "catch-all handler swallows the exception: rethrow, capture it "
        "via std::current_exception, convert it to a typed vrddram "
        "error (TransientError/FatalError/PanicError), or annotate "
        "with // vrdlint: allow(catch-all)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: campaign-discipline
// ---------------------------------------------------------------------------

/// True for repo-relative paths inside the bench/ layer.
bool IsBenchPath(std::string_view path) {
  return path.starts_with("bench/") ||
         path.find("/bench/") != std::string_view::npos;
}

/// Experiments must not run campaigns themselves: the registry driver
/// owns execution (and its cache). The word-boundary match leaves
/// RunCampaignCached alone, and requiring the '(' leaves non-call
/// mentions (e.g. a function pointer) alone.
void CheckCampaignDiscipline(const std::string& path, const FileView& view,
                             const Config& config,
                             std::vector<Diagnostic>* diagnostics) {
  if (!IsBenchPath(path) ||
      RuleSuppressedForPath(config, "campaign-discipline", path)) {
    return;
  }
  constexpr std::string_view kCall = "RunCampaign";
  const std::string_view flat = view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, kCall, pos)) != std::string_view::npos) {
    const std::size_t here = pos;
    pos += kCall.size();
    const std::size_t open = SkipSpace(flat, here + kCall.size());
    if (open >= flat.size() || flat[open] != '(') {
      continue;
    }
    const std::size_t line = view.LineOf(here);
    if (view.Allowed(line, {"campaign-discipline"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "campaign-discipline",
        "direct RunCampaign call under bench/: experiments must route "
        "execution through the registry driver's cached path "
        "(core::RunCampaignCached) so `vrdrepro run --all` executes "
        "each unique campaign once, or annotate with "
        "// vrdlint: allow(campaign-discipline)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: kernel-allocation
// ---------------------------------------------------------------------------

/// True for files designated as measurement kernels in the config.
bool IsKernelPath(const Config& config, std::string_view path) {
  for (const std::string& fragment : config.kernel_paths) {
    if (path.find(fragment) != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

/// Object expression preceding a `.method` / `->method` use: walks
/// back over identifier characters and member accessors, so
/// `state.traps.push_back` yields "state.traps" and
/// `slot->decay.resize` yields "slot->decay". Empty when the method
/// is not reached through a plain accessor chain.
std::string_view ObjectExpressionBefore(std::string_view text,
                                        std::size_t method_pos) {
  std::size_t i = method_pos;
  if (i >= 1 && text[i - 1] == '.') {
    i -= 1;
  } else if (i >= 2 && text[i - 2] == '-' && text[i - 1] == '>') {
    i -= 2;
  } else {
    return {};
  }
  const std::size_t end = i;
  while (i > 0) {
    if (IsIdentChar(text[i - 1])) {
      --i;
    } else if (text[i - 1] == '.') {
      --i;
    } else if (i >= 2 && text[i - 2] == '-' && text[i - 1] == '>') {
      i -= 2;
    } else {
      break;
    }
  }
  while (i < end && !IsIdentStart(text[i])) {
    ++i;
  }
  return text.substr(i, end - i);
}

/// True when `<obj>.reserve` / `<obj>->reserve` appears before flat
/// offset `before` — the capacity was provisioned, so the growth call
/// is not a steady-state allocation.
bool HasEarlierReserve(std::string_view flat, std::string_view obj,
                       std::size_t before) {
  if (obj.empty()) {
    return false;
  }
  for (const std::string_view accessor : {".reserve", "->reserve"}) {
    std::string needle(obj);
    needle += accessor;
    std::size_t pos = 0;
    while ((pos = flat.find(needle, pos)) != std::string_view::npos &&
           pos < before) {
      if (pos == 0 || !IsIdentChar(flat[pos - 1])) {
        return true;
      }
      ++pos;
    }
  }
  return false;
}

/// The measurement kernel must stay allocation-free end to end
/// (DESIGN.md §10): in kernel-path files, flag `new` expressions,
/// make_unique/make_shared, and container growth whose capacity was
/// not provisioned by an earlier reserve. Construction-time growth is
/// excused by pairing it with a reserve or by
/// `// vrdlint: allow(kernel-allocation)`.
void CheckKernelAllocation(const std::string& path, const FileView& view,
                           const Config& config,
                           std::vector<Diagnostic>* diagnostics) {
  if (!IsKernelPath(config, path) ||
      RuleSuppressedForPath(config, "kernel-allocation", path)) {
    return;
  }
  const std::string_view flat = view.flat;

  std::size_t pos = 0;
  while ((pos = FindWord(flat, "new", pos)) != std::string_view::npos) {
    const std::size_t here = pos;
    pos += 3;
    const std::size_t after = SkipSpace(flat, here + 3);
    if (after >= flat.size() ||
        (!IsIdentStart(flat[after]) && flat[after] != '(')) {
      continue;  // not an allocation expression
    }
    const std::size_t line = view.LineOf(here);
    if (view.Allowed(line, {"kernel-allocation"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "kernel-allocation",
        "`new` in a kernel path: the measurement kernel must stay "
        "allocation-free (DESIGN.md §10); allocate at construction or "
        "annotate with // vrdlint: allow(kernel-allocation)"});
  }

  for (const std::string_view maker : {"make_unique", "make_shared"}) {
    pos = 0;
    while ((pos = FindWord(flat, maker, pos)) != std::string_view::npos) {
      const std::size_t here = pos;
      pos += maker.size();
      std::size_t p = SkipSpace(flat, here + maker.size());
      if (p < flat.size() && flat[p] == '<') {
        const std::size_t close = MatchBracket(flat, p, '<', '>');
        if (close == std::string_view::npos) {
          continue;
        }
        p = SkipSpace(flat, close + 1);
      }
      if (p >= flat.size() || flat[p] != '(') {
        continue;
      }
      const std::size_t line = view.LineOf(here);
      if (view.Allowed(line, {"kernel-allocation"})) {
        continue;
      }
      diagnostics->push_back(Diagnostic{
          path, line, "kernel-allocation",
          std::string(maker) +
              " in a kernel path: the measurement kernel must stay "
              "allocation-free (DESIGN.md §10); allocate at construction "
              "or annotate with // vrdlint: allow(kernel-allocation)"});
    }
  }

  for (const std::string_view method :
       {"push_back", "emplace_back", "resize"}) {
    pos = 0;
    while ((pos = FindWord(flat, method, pos)) != std::string_view::npos) {
      const std::size_t here = pos;
      pos += method.size();
      const std::size_t after = SkipSpace(flat, here + method.size());
      if (after >= flat.size() || flat[after] != '(') {
        continue;
      }
      const std::string_view obj = ObjectExpressionBefore(flat, here);
      if (obj.empty() || HasEarlierReserve(flat, obj, here)) {
        continue;
      }
      const std::size_t line = view.LineOf(here);
      if (view.Allowed(line, {"kernel-allocation"})) {
        continue;
      }
      diagnostics->push_back(Diagnostic{
          path, line, "kernel-allocation",
          "'" + std::string(obj) + "." + std::string(method) +
              "' with no earlier '" + std::string(obj) +
              ".reserve(...)': growth in a kernel path allocates "
              "(DESIGN.md §10); reserve the capacity at construction or "
              "annotate with // vrdlint: allow(kernel-allocation)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: header-hygiene
// ---------------------------------------------------------------------------

void CheckHeaderHygiene(const std::string& path, const FileView& view,
                        const Config& config,
                        std::vector<Diagnostic>* diagnostics) {
  if (!IsHeaderPath(path) ||
      RuleSuppressedForPath(config, "header-hygiene", path)) {
    return;
  }
  const bool pragma_once =
      view.flat.find("#pragma once") != std::string::npos;
  const bool guard =
      view.flat.find("#ifndef") != std::string::npos &&
      view.flat.find("#define") != std::string::npos;
  if (!pragma_once && !guard && !view.Allowed(1, {"header-hygiene"})) {
    diagnostics->push_back(Diagnostic{
        path, 1, "header-hygiene",
        "header has no include guard (#ifndef/#define) or #pragma once"});
  }
  std::size_t pos = 0;
  while ((pos = FindWord(view.flat, "using", pos)) !=
         std::string_view::npos) {
    const std::size_t kw = pos;
    pos += 5;
    const std::size_t next = SkipSpace(view.flat, kw + 5);
    if (!IsWordAt(view.flat, next, "namespace")) {
      continue;
    }
    const std::size_t line = view.LineOf(kw);
    if (view.Allowed(line, {"header-hygiene"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        path, line, "header-hygiene",
        "`using namespace` in a header leaks into every includer; "
        "qualify names instead"});
  }
}

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::sort(diagnostics->begin(), diagnostics->end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

std::vector<Diagnostic> LintSourceImpl(
    const std::string& path, std::string_view text, const Config& config,
    const std::vector<std::string>& extra_unordered_names) {
  const FileView view = BuildView(text);
  std::vector<Diagnostic> diagnostics;
  CheckBannedApi(path, view, config, &diagnostics);
  CheckUnorderedIteration(path, view, config, extra_unordered_names,
                          &diagnostics);
  const bool rng_suppressed =
      RuleSuppressedForPath(config, "rng-discipline", path);
  const std::vector<RngDecl> decls = CheckRngConstruction(
      path, view, config, /*emit=*/!rng_suppressed, &diagnostics);
  if (!rng_suppressed) {
    CheckRngMemberInit(path, view, config, &diagnostics);
  }
  CheckRngInDispatchLambdas(path, view, config, decls, &diagnostics);
  CheckCatchAllSwallow(path, view, config, &diagnostics);
  CheckCampaignDiscipline(path, view, config, &diagnostics);
  CheckKernelAllocation(path, view, config, &diagnostics);
  CheckHeaderHygiene(path, view, config, &diagnostics);
  SortDiagnostics(&diagnostics);
  return diagnostics;
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream out;
  out << file << ':' << line << ": " << rule << ": " << message;
  return out.str();
}

bool ParseConfigText(std::string_view text, Config* config,
                     std::string* error) {
  std::string section;
  std::size_t lineno = 0;
  for (const std::string& raw : SplitLines(text)) {
    ++lineno;
    std::string line = Trim(raw);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = Trim(line.substr(0, hash));
    }
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') {
        *error = "config line " + std::to_string(lineno) +
                 ": unterminated section header";
        return false;
      }
      section = Trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = "config line " + std::to_string(lineno) +
               ": expected key = value";
      return false;
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (value.empty()) {
      *error = "config line " + std::to_string(lineno) + ": empty value";
      return false;
    }
    if (section.empty()) {
      if (key == "scan") {
        if (!config->scan_dirs_overridden) {
          config->scan_dirs.clear();
          config->scan_dirs_overridden = true;
        }
        config->scan_dirs.push_back(value);
      } else if (key == "exclude") {
        config->exclude_paths.push_back(value);
      } else {
        *error = "config line " + std::to_string(lineno) +
                 ": unknown key '" + key + "'";
        return false;
      }
      continue;
    }
    if (key == "allow-path") {
      config->allow_paths[section].push_back(value);
    } else if (section == "rng-discipline" && key == "seed-call") {
      config->seed_calls.push_back(value);
    } else if (section == "unordered-iteration" &&
               key == "ordering-call") {
      config->ordering_calls.push_back(value);
    } else if (section == "kernel-allocation" && key == "kernel-path") {
      config->kernel_paths.push_back(value);
    } else {
      *error = "config line " + std::to_string(lineno) +
               ": unknown key '" + key + "' in section [" + section + "]";
      return false;
    }
  }
  return true;
}

bool LoadConfigFile(const std::string& path, Config* config,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read config file: " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseConfigText(buffer.str(), config, error);
}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   std::string_view text,
                                   const Config& config) {
  return LintSourceImpl(path, text, config, {});
}

std::vector<std::string> CollectFiles(const std::string& root,
                                      const Config& config) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& dir : config.scan_dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::is_directory(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hh" && ext != ".hpp" && ext != ".cc" &&
          ext != ".cpp" && ext != ".cxx") {
        continue;
      }
      const std::string relative =
          fs::relative(entry.path(), root).generic_string();
      bool excluded = false;
      for (const std::string& fragment : config.exclude_paths) {
        if (relative.find(fragment) != std::string::npos) {
          excluded = true;
          break;
        }
      }
      if (!excluded) {
        files.push_back(relative);
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Diagnostic> LintTree(const std::string& root,
                                 const Config& config) {
  namespace fs = std::filesystem;
  const std::vector<std::string> files = CollectFiles(root, config);

  // First pass: per-header unordered member names, so a .cc iterating
  // a member declared in its paired header (device.cc over a map from
  // device.h) is still caught. The pairing is by path, not a global
  // name pool — `rows_` being unordered in device.h must not taint an
  // unrelated vector member of the same name elsewhere.
  std::vector<std::pair<std::string, std::string>> sources;
  std::map<std::string, std::vector<std::string>> header_names;
  sources.reserve(files.size());
  for (const std::string& relative : files) {
    std::ifstream in(fs::path(root) / relative);
    if (!in) {
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.emplace_back(relative, buffer.str());
    if (IsHeaderPath(relative)) {
      const FileView view = BuildView(sources.back().second);
      std::vector<std::string> names = CollectUnorderedNames(view);
      if (!names.empty()) {
        const std::string stem =
            relative.substr(0, relative.rfind('.'));
        header_names[stem] = std::move(names);
      }
    }
  }

  std::vector<Diagnostic> diagnostics;
  for (const auto& [relative, text] : sources) {
    std::vector<std::string> extra;
    if (!IsHeaderPath(relative)) {
      const std::string stem = relative.substr(0, relative.rfind('.'));
      const auto it = header_names.find(stem);
      if (it != header_names.end()) {
        extra = it->second;
      }
    }
    std::vector<Diagnostic> found =
        LintSourceImpl(relative, text, config, extra);
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(found.begin()),
                       std::make_move_iterator(found.end()));
  }
  SortDiagnostics(&diagnostics);
  return diagnostics;
}

}  // namespace vrdlint
