#include "baseline.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "tokenizer.h"

namespace vrdlint {
namespace {

constexpr std::string_view kHeader = "# vrdlint baseline v1";

std::string HexHash(std::uint64_t hash) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

bool ParseHexHash(std::string_view text, std::uint64_t* hash) {
  if (text.size() != 16) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *hash = value;
  return true;
}

std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t tab = line.find('\t', begin);
    if (tab == std::string_view::npos) {
      out.push_back(line.substr(begin));
      return out;
    }
    out.push_back(line.substr(begin, tab - begin));
    begin = tab + 1;
  }
}

}  // namespace

std::uint64_t HashLineContent(std::string_view line) {
  const std::string trimmed = Trim(line);
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (const char c : trimmed) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV-1a 64 prime
  }
  return hash;
}

bool ParseBaselineText(std::string_view text, Baseline* baseline,
                       std::string* error) {
  baseline->clear();
  std::size_t line_no = 0;
  bool saw_header = false;
  for (const std::string& raw : SplitLines(text)) {
    ++line_no;
    const std::string line = Trim(raw);
    if (line.empty()) {
      continue;
    }
    if (!saw_header) {
      if (line != kHeader) {
        *error = "baseline line 1: expected header '" +
                 std::string(kHeader) + "'";
        return false;
      }
      saw_header = true;
      continue;
    }
    if (line[0] == '#') {
      continue;
    }
    const std::vector<std::string_view> fields = SplitTabs(line);
    std::uint64_t hash = 0;
    std::size_t count = 0;
    bool count_ok = !fields.empty();
    if (fields.size() == 4) {
      for (const char c : fields[3]) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          count_ok = false;
          break;
        }
        count = count * 10 + static_cast<std::size_t>(c - '0');
      }
    }
    if (fields.size() != 4 || fields[0].empty() || fields[1].empty() ||
        !ParseHexHash(fields[2], &hash) || !count_ok || count == 0) {
      *error = "baseline line " + std::to_string(line_no) +
               ": expected 'rule<TAB>file<TAB>hash16<TAB>count'";
      return false;
    }
    (*baseline)[std::make_tuple(std::string(fields[0]),
                                std::string(fields[1]), hash)] += count;
  }
  if (!saw_header && !Trim(text).empty()) {
    *error = "baseline: missing header '" + std::string(kHeader) + "'";
    return false;
  }
  return true;
}

bool LoadBaselineFile(const std::string& path, Baseline* baseline,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open baseline file: " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseBaselineText(text.str(), baseline, error);
}

std::string BaselineText(const std::vector<Diagnostic>& diagnostics) {
  Baseline counts;
  for (const Diagnostic& diag : diagnostics) {
    counts[std::make_tuple(diag.rule, diag.file, diag.content_hash)] += 1;
  }
  std::string out(kHeader);
  out += "\n";
  for (const auto& [key, count] : counts) {
    const auto& [rule, file, hash] = key;
    out += rule + "\t" + file + "\t" + HexHash(hash) + "\t" +
           std::to_string(count) + "\n";
  }
  return out;
}

std::vector<Diagnostic> FilterBaseline(
    const std::vector<Diagnostic>& diagnostics, const Baseline& baseline,
    bool* stale) {
  Baseline remaining = baseline;
  std::vector<Diagnostic> surviving;
  for (const Diagnostic& diag : diagnostics) {
    const auto it = remaining.find(
        std::make_tuple(diag.rule, diag.file, diag.content_hash));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      continue;
    }
    surviving.push_back(diag);
  }
  if (stale != nullptr) {
    *stale = false;
    for (const auto& [key, count] : remaining) {
      if (count > 0) {
        *stale = true;
        break;
      }
    }
  }
  return surviving;
}

}  // namespace vrdlint
