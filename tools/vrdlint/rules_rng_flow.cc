/**
 * @file
 * Rule family: rng-flow — symbol-aware RNG dataflow checks that see
 * past the literal construction line the v1 rng-discipline rule
 * pattern-matches:
 *
 *  (a) an Rng captured by reference (`[&rng]`) into a ParallelFor/
 *      Submit lambda without pre-forked per-task streams;
 *  (b) an Rng passed by non-const reference across a function
 *      boundary into per-shard code — resolved against the tree-wide
 *      symbol index, so the callee may live in another file;
 *  (c) an Rng re-seeded (`Reseed(...)`) from an expression not rooted
 *      in a registered seed-call.
 *
 * All three share the pre-forked excusal with rng-discipline: a
 * Fork(...) in the enclosing scope before the dispatch means the
 * shard streams were derived deterministically.
 */
#include <algorithm>

#include "rules.h"

namespace vrdlint {
namespace {

/// Split a call argument list into top-level comma-separated pieces.
std::vector<std::string_view> SplitArgs(std::string_view args) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    } else if (c == ',' && depth == 0) {
      out.push_back(args.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  if (begin < args.size() || !out.empty()) {
    out.push_back(args.substr(begin));
  } else if (!Trim(args).empty()) {
    out.push_back(args);
  }
  return out;
}

/// True when `text` trims to a single plain identifier.
bool IsPlainIdentifier(std::string_view text, std::string* name) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty() || !IsIdentStart(trimmed[0])) {
    return false;
  }
  for (const char c : trimmed) {
    if (!IsIdentChar(c)) {
      return false;
    }
  }
  *name = trimmed;
  return true;
}

/// Rng streams visible to a dispatch at `dl`: file-level declarations
/// before the dispatch, minus names re-declared inside the body, plus
/// non-const Rng-typed parameters of the enclosing function.
std::vector<std::string> OuterRngNames(const RuleContext& ctx,
                                       const std::vector<RngDecl>& decls,
                                       const DispatchLambda& dl) {
  std::vector<std::string> names;
  for (const RngDecl& decl : decls) {
    if (decl.pos >= dl.open) {
      continue;
    }
    bool local = false;
    for (const RngDecl& other : decls) {
      if (other.name == decl.name && other.pos > dl.body_open &&
          other.pos < dl.body_close) {
        local = true;
        break;
      }
    }
    if (!local) {
      names.push_back(decl.name);
    }
  }
  const int fn = ctx.symbols.EnclosingFunction(ctx.symbols.ScopeAt(dl.kw));
  if (fn >= 0) {
    for (const Param& param :
         ctx.symbols.scopes[static_cast<std::size_t>(fn)].params) {
      if (!param.name.empty() && !param.is_const &&
          ContainsWord(param.type, "Rng")) {
        names.push_back(param.name);
      }
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// (a) explicit by-reference capture of an Rng into the lambda.
void CheckRefCaptures(const RuleContext& ctx, const DispatchLambda& dl,
                      const std::vector<std::string>& rng_names,
                      std::vector<Diagnostic>* diagnostics) {
  const std::string_view intro = ctx.view.flat.substr(
      dl.intro + 1, dl.intro_close - dl.intro - 1);
  for (const std::string_view entry : SplitArgs(intro)) {
    const std::string trimmed = Trim(entry);
    if (trimmed.size() < 2 || trimmed[0] != '&') {
      continue;  // default captures and by-value captures
    }
    std::string name;
    if (!IsPlainIdentifier(trimmed.substr(1), &name)) {
      continue;
    }
    if (std::find(rng_names.begin(), rng_names.end(), name) ==
        rng_names.end()) {
      continue;
    }
    const std::size_t line = ctx.view.LineOf(dl.intro);
    if (ctx.view.Allowed(line, {"rng-flow"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        ctx.path, line, "rng-flow",
        "Rng '" + name + "' captured by reference into a " +
            std::string(dl.keyword) +
            " lambda: every task advances the same stream in pool "
            "order; fork per-task streams before dispatch "
            "(DESIGN.md §6) or annotate with "
            "// vrdlint: allow(rng-flow)"});
  }
}

/// (b) non-const Rng& across a function boundary inside the lambda.
void CheckBoundaryCalls(const RuleContext& ctx, const DispatchLambda& dl,
                        const std::vector<std::string>& rng_names,
                        std::vector<Diagnostic>* diagnostics) {
  const std::string_view flat = ctx.view.flat;
  std::size_t i = dl.body_open + 1;
  while (i < dl.body_close) {
    if (!IsIdentStart(flat[i]) || (i > 0 && IsIdentChar(flat[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < dl.body_close && IsIdentChar(flat[end])) {
      ++end;
    }
    const std::string name(flat.substr(i, end - i));
    const std::size_t name_pos = i;
    i = end;
    // Method calls dispatch on their object, not the index; keywords
    // and the registered seed-deriving calls are not boundaries.
    if (name_pos >= 1 && flat[name_pos - 1] == '.') {
      continue;
    }
    if (name_pos >= 2 && flat[name_pos - 2] == '-' &&
        flat[name_pos - 1] == '>') {
      continue;
    }
    const std::size_t open = SkipSpace(flat, end);
    if (open >= dl.body_close || flat[open] != '(') {
      continue;
    }
    bool is_seed_call = false;
    for (const std::string& call : ctx.config.seed_calls) {
      if (name == call) {
        is_seed_call = true;
        break;
      }
    }
    if (is_seed_call) {
      continue;
    }
    const std::vector<FunctionSig>* sigs = ctx.index.FindFunctions(name);
    if (sigs == nullptr) {
      continue;
    }
    const std::size_t close = MatchBracket(flat, open, '(', ')');
    if (close == std::string_view::npos || close > dl.body_close) {
      continue;
    }
    const std::vector<std::string_view> call_args =
        SplitArgs(flat.substr(open + 1, close - open - 1));
    for (const FunctionSig& sig : *sigs) {
      bool flagged = false;
      for (std::size_t j = 0;
           j < sig.params.size() && j < call_args.size(); ++j) {
        const Param& param = sig.params[j];
        if (param.is_const || !param.is_ref ||
            !ContainsWord(param.type, "Rng")) {
          continue;
        }
        std::string arg_name;
        if (!IsPlainIdentifier(call_args[j], &arg_name)) {
          continue;  // e.g. streams[i]: an indexed per-task stream
        }
        if (std::find(rng_names.begin(), rng_names.end(), arg_name) ==
            rng_names.end()) {
          continue;
        }
        const std::size_t line = ctx.view.LineOf(name_pos);
        if (ctx.view.Allowed(line, {"rng-flow"})) {
          continue;
        }
        diagnostics->push_back(Diagnostic{
            ctx.path, line, "rng-flow",
            "Rng '" + arg_name + "' passed by non-const reference into "
            "'" + name + "' (declared at " + sig.file + ":" +
                std::to_string(sig.line) + ") inside a " +
                std::string(dl.keyword) +
                " lambda: the callee advances a stream shared across "
                "tasks; pass a forked per-task stream instead "
                "(DESIGN.md §6)"});
        flagged = true;
        break;
      }
      if (flagged) {
        break;  // one diagnostic per call site, not per signature
      }
    }
  }
}

/// (c) re-seeding from an expression not rooted in a seed-call.
void CheckReseed(const RuleContext& ctx,
                 std::vector<Diagnostic>* diagnostics) {
  const std::string_view flat = ctx.view.flat;
  std::size_t pos = 0;
  while ((pos = FindWord(flat, "Reseed", pos)) !=
         std::string_view::npos) {
    const std::size_t here = pos;
    pos += 6;
    if (here >= 2 && flat[here - 2] == ':' && flat[here - 1] == ':') {
      continue;  // qualified definition: Rng::Reseed
    }
    const std::size_t open = SkipSpace(flat, here + 6);
    if (open >= flat.size() || flat[open] != '(') {
      continue;
    }
    const std::size_t close = MatchBracket(flat, open, '(', ')');
    if (close == std::string_view::npos) {
      continue;
    }
    const std::string args(flat.substr(open + 1, close - open - 1));
    const std::string trimmed = Trim(args);
    // Declarations (`void Reseed(std::uint64_t seed)`) pass the seed
    // test through their parameter name; call sites pass it when the
    // argument expression is seed-rooted.
    if (IsSeedExpression(args, ctx.config)) {
      continue;
    }
    const std::size_t line = ctx.view.LineOf(here);
    if (ctx.view.Allowed(line, {"rng-flow"})) {
      continue;
    }
    diagnostics->push_back(Diagnostic{
        ctx.path, line, "rng-flow",
        "Rng re-seeded from a non-seed expression (" + trimmed +
            "): root the new seed in MixSeed/HashLabel/Fork or a "
            "*seed* value so the stream stays reproducible, or "
            "annotate with // vrdlint: allow(rng-flow)"});
  }
}

}  // namespace

void CheckRngFlow(const RuleContext& ctx,
                  const std::vector<RngDecl>& decls,
                  std::vector<Diagnostic>* diagnostics) {
  if (RuleSuppressedForPath(ctx.config, "rng-flow", ctx.path)) {
    return;
  }
  for (const DispatchLambda& dl : FindDispatchLambdas(ctx.view)) {
    if (ForkedInEnclosingScope(ctx.view, dl.kw)) {
      continue;  // per-task streams were pre-forked in this scope
    }
    const std::vector<std::string> rng_names =
        OuterRngNames(ctx, decls, dl);
    if (rng_names.empty()) {
      continue;
    }
    CheckRefCaptures(ctx, dl, rng_names, diagnostics);
    CheckBoundaryCalls(ctx, dl, rng_names, diagnostics);
  }
  CheckReseed(ctx, diagnostics);
}

}  // namespace vrdlint
