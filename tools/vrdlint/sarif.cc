#include "sarif.h"

#include <cstdint>
#include <map>

namespace vrdlint {
namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kDigits[] = "0123456789abcdef";
          out += "\\u00";
          out += kDigits[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kDigits[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HexHash(std::uint64_t hash) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace

std::string SarifReport(const std::vector<Diagnostic>& diagnostics) {
  // Stable rule table: rule ids in sorted order, indexed by results.
  std::map<std::string, std::size_t> rule_index;
  for (const Diagnostic& diag : diagnostics) {
    rule_index.emplace(diag.rule, 0);
  }
  std::size_t next = 0;
  for (auto& [rule, index] : rule_index) {
    index = next++;
  }

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"vrdlint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/vrddram/tools/vrdlint\",\n"
      "          \"rules\": [\n";
  bool first = true;
  for (const auto& [rule, index] : rule_index) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "            {\"id\": \"" + JsonEscape(rule) + "\"}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  first = true;
  for (const Diagnostic& diag : diagnostics) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "        {\n";
    out += "          \"ruleId\": \"" + JsonEscape(diag.rule) + "\",\n";
    out += "          \"ruleIndex\": " +
           std::to_string(rule_index[diag.rule]) + ",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" +
           JsonEscape(diag.message) + "\"},\n";
    out +=
        "          \"locations\": [\n"
        "            {\n"
        "              \"physicalLocation\": {\n"
        "                \"artifactLocation\": {\n"
        "                  \"uri\": \"" +
        JsonEscape(diag.file) +
        "\",\n"
        "                  \"uriBaseId\": \"SRCROOT\"\n"
        "                },\n"
        "                \"region\": {\"startLine\": " +
        std::to_string(diag.line) +
        "}\n"
        "              }\n"
        "            }\n"
        "          ],\n";
    out += "          \"partialFingerprints\": "
           "{\"vrdlintContentHash\": \"" +
           HexHash(diag.content_hash) + "\"}\n";
    out += "        }";
  }
  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace vrdlint
