#include "tokenizer.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace vrdlint {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsWordAt(std::string_view text, std::size_t pos,
              std::string_view word) {
  if (pos + word.size() > text.size() ||
      text.compare(pos, word.size(), word) != 0) {
    return false;
  }
  if (pos > 0 && IsIdentChar(text[pos - 1])) {
    return false;
  }
  const std::size_t end = pos + word.size();
  return end >= text.size() || !IsIdentChar(text[end]);
}

std::size_t FindWord(std::string_view text, std::string_view word,
                     std::size_t from, std::size_t to) {
  const std::size_t limit = std::min(to, text.size());
  std::size_t pos = from;
  while (pos < limit) {
    pos = text.find(word, pos);
    if (pos == std::string_view::npos || pos >= limit) {
      return std::string_view::npos;
    }
    if (IsWordAt(text, pos, word)) {
      return pos;
    }
    ++pos;
  }
  return std::string_view::npos;
}

bool ContainsWord(std::string_view text, std::string_view word) {
  return FindWord(text, word) != std::string_view::npos;
}

bool ContainsCall(std::string_view text, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = FindWord(text, word, pos)) != std::string_view::npos) {
    std::size_t p = pos + word.size();
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p]))) {
      ++p;
    }
    if (p < text.size() && text[p] == '(') {
      return true;
    }
    pos += word.size();
  }
  return false;
}

std::size_t SkipSpace(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

std::size_t MatchBracket(std::string_view text, std::size_t open,
                         char open_char, char close_char) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_char) {
      ++depth;
    } else if (text[i] == close_char) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return std::string_view::npos;
}

std::string_view PreviousWord(std::string_view text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(text[i - 1]))) {
    --i;
  }
  std::size_t end = i;
  while (i > 0 && IsIdentChar(text[i - 1])) {
    --i;
  }
  return text.substr(i, end - i);
}

std::string_view ObjectExpressionBefore(std::string_view text,
                                        std::size_t method_pos) {
  std::size_t i = method_pos;
  if (i >= 1 && text[i - 1] == '.') {
    i -= 1;
  } else if (i >= 2 && text[i - 2] == '-' && text[i - 1] == '>') {
    i -= 2;
  } else {
    return {};
  }
  const std::size_t end = i;
  while (i > 0) {
    if (IsIdentChar(text[i - 1])) {
      --i;
    } else if (text[i - 1] == '.') {
      --i;
    } else if (i >= 2 && text[i - 2] == '-' && text[i - 1] == '>') {
      i -= 2;
    } else {
      break;
    }
  }
  while (i < end && !IsIdentStart(text[i])) {
    ++i;
  }
  return text.substr(i, end - i);
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      lines.emplace_back(text.substr(begin));
      break;
    }
    lines.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

std::string StripCommentsAndStrings(std::string_view text) {
  std::string out(text);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"' && i > 0 && text[i - 1] == 'R' &&
                   (i < 2 || !IsIdentChar(text[i - 2]))) {
          // Raw string literal: R"delim( ... )delim"
          raw_delim = ")";
          for (std::size_t j = i + 1;
               j < text.size() && text[j] != '(' && j < i + 20; ++j) {
            raw_delim += text[j];
          }
          raw_delim += '"';
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && !(i > 0 && IsIdentChar(text[i - 1]))) {
          // Skip digit separators (1'000'000) via the ident-char test.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < text.size()) {
              out[i + 1] = ' ';
            }
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size()) {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) {
            out[i + j] = ' ';
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

namespace {

/// Split a parenthesized annotation list ("a, b") into trimmed tokens.
std::vector<std::string> SplitAnnotationList(std::string_view list_text) {
  std::vector<std::string> tokens;
  std::stringstream list{std::string(list_text)};
  std::string token;
  while (std::getline(list, token, ',')) {
    token = Trim(token);
    if (!token.empty()) {
      tokens.push_back(token);
    }
  }
  return tokens;
}

/// Parse one `vrdlint: <verb>(a, b)` annotation out of a raw line,
/// returning the list tokens, or empty when the verb is not present.
std::vector<std::string> ParseAnnotation(const std::string& line,
                                         std::string_view verb) {
  const std::size_t tag = line.find("vrdlint:");
  if (tag == std::string::npos) {
    return {};
  }
  std::size_t p = SkipSpace(line, tag + 8);
  if (line.compare(p, verb.size(), verb) != 0) {
    return {};
  }
  p = SkipSpace(line, p + verb.size());
  if (p >= line.size() || line[p] != '(') {
    return {};
  }
  const std::size_t close = line.find(')', p);
  if (close == std::string::npos) {
    return {};
  }
  return SplitAnnotationList(
      std::string_view(line).substr(p + 1, close - p - 1));
}

/// Collect one annotation verb for every line, with the comment-only
/// propagation rule: a trailing annotation covers its own line; an
/// annotation on a comment-only line also covers the next line.
void CollectAnnotations(const FileView& view, std::string_view verb,
                        std::vector<std::vector<std::string>>* out) {
  out->assign(view.raw.size(), {});
  for (std::size_t i = 0; i < view.raw.size(); ++i) {
    const std::vector<std::string> tokens =
        ParseAnnotation(view.raw[i], verb);
    if (tokens.empty()) {
      continue;
    }
    for (const std::string& t : tokens) {
      (*out)[i].push_back(t);
    }
    if (Trim(view.code[i]).empty() && i + 1 < view.raw.size()) {
      for (const std::string& t : tokens) {
        (*out)[i + 1].push_back(t);
      }
    }
  }
}

const std::vector<std::string> kNoNames;

}  // namespace

std::size_t FileView::LineOf(std::size_t pos) const {
  const auto it =
      std::upper_bound(line_start.begin(), line_start.end(), pos);
  return static_cast<std::size_t>(it - line_start.begin());
}

bool FileView::Allowed(
    std::size_t line,
    std::initializer_list<std::string_view> tokens) const {
  if (line == 0 || line > allows.size()) {
    return false;
  }
  for (const std::string& have : allows[line - 1]) {
    for (const std::string_view want : tokens) {
      if (have == want) {
        return true;
      }
    }
  }
  return false;
}

const std::vector<std::string>& FileView::GuardedBy(
    std::size_t line) const {
  if (line == 0 || line > guarded_by.size()) {
    return kNoNames;
  }
  return guarded_by[line - 1];
}

const std::vector<std::string>& FileView::RequiresLock(
    std::size_t line) const {
  if (line == 0 || line > requires_lock.size()) {
    return kNoNames;
  }
  return requires_lock[line - 1];
}

FileView BuildView(std::string_view text) {
  FileView view;
  view.raw = SplitLines(text);
  const std::string stripped = StripCommentsAndStrings(text);
  view.code = SplitLines(stripped);
  CollectAnnotations(view, "allow", &view.allows);
  CollectAnnotations(view, "guarded_by", &view.guarded_by);
  CollectAnnotations(view, "requires_lock", &view.requires_lock);
  view.line_start.reserve(view.code.size());
  for (const std::string& line : view.code) {
    view.line_start.push_back(view.flat.size());
    view.flat += line;
    view.flat += '\n';
  }
  return view;
}

namespace {

/// Compound punctuators, longest first so maximal munch wins.
constexpr std::string_view kPuncts3[] = {"<<=", ">>=", "->*", "..."};
constexpr std::string_view kPuncts2[] = {
    "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "==",
    "!=", "<=", ">=", "&&", "||", "<<", ">>", "&=", "|=", "^=",
};

}  // namespace

std::vector<Token> Tokenize(std::string_view flat) {
  std::vector<Token> tokens;
  tokens.reserve(flat.size() / 4);
  std::size_t i = 0;
  while (i < flat.size()) {
    const char c = flat[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t end = i;
      while (end < flat.size() && IsIdentChar(flat[end])) {
        ++end;
      }
      tokens.push_back(
          Token{Token::Kind::kIdent, flat.substr(i, end - i), i});
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < flat.size() &&
         std::isdigit(static_cast<unsigned char>(flat[i + 1])))) {
      // Numeric literal: digits, ident chars (hex, suffixes), '.', and
      // exponent signs directly after e/E/p/P.
      std::size_t end = i;
      while (end < flat.size()) {
        const char d = flat[end];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++end;
          continue;
        }
        if ((d == '+' || d == '-') && end > i) {
          const char prev = flat[end - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++end;
            continue;
          }
        }
        break;
      }
      tokens.push_back(
          Token{Token::Kind::kNumber, flat.substr(i, end - i), i});
      i = end;
      continue;
    }
    std::string_view text;
    if (i + 3 <= flat.size()) {
      for (const std::string_view p : kPuncts3) {
        if (flat.compare(i, 3, p) == 0) {
          text = flat.substr(i, 3);
          break;
        }
      }
    }
    if (text.empty() && i + 2 <= flat.size()) {
      for (const std::string_view p : kPuncts2) {
        if (flat.compare(i, 2, p) == 0) {
          text = flat.substr(i, 2);
          break;
        }
      }
    }
    if (text.empty()) {
      text = flat.substr(i, 1);
    }
    tokens.push_back(Token{Token::Kind::kPunct, text, i});
    i += text.size();
  }
  return tokens;
}

}  // namespace vrdlint
