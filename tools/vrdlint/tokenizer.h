/**
 * @file
 * vrdlint pass-1 substrate: text helpers, the comment/string-stripped
 * FileView, the token stream, and structural annotations.
 *
 * Everything here is shared by the symbol indexer (symbol_index.h) and
 * the rule families (rules_*.cc). The FileView keeps raw and stripped
 * lines column-aligned so flat offsets translate directly to 1-based
 * source lines, and the annotation maps carry the three in-source
 * contracts:
 *
 *   // vrdlint: allow(rule-or-token, ...)   suppress on this/next line
 *   // vrdlint: guarded_by(mu_)             member guarded by mutex mu_
 *   // vrdlint: requires_lock(mu_)          method runs with mu_ held
 */
#ifndef VRDDRAM_TOOLS_VRDLINT_TOKENIZER_H
#define VRDDRAM_TOOLS_VRDLINT_TOKENIZER_H

#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace vrdlint {

bool IsIdentStart(char c);
bool IsIdentChar(char c);
std::string Trim(std::string_view s);
std::string ToLower(std::string_view s);

/// True when `text[pos, pos+word)` is `word` bounded by non-identifier
/// characters on both sides.
bool IsWordAt(std::string_view text, std::size_t pos, std::string_view word);

/// First word occurrence of `word` in [from, to) of `text`, or npos.
std::size_t FindWord(std::string_view text, std::string_view word,
                     std::size_t from = 0,
                     std::size_t to = std::string_view::npos);

bool ContainsWord(std::string_view text, std::string_view word);

/// True when `word` appears followed (after whitespace) by '('.
bool ContainsCall(std::string_view text, std::string_view word);

std::size_t SkipSpace(std::string_view text, std::size_t pos);

/// Matching close position for the bracket at `open` (pos of the
/// closer), or npos when unbalanced. Works on comment/string-stripped
/// text, so bracket characters are structural.
std::size_t MatchBracket(std::string_view text, std::size_t open,
                         char open_char, char close_char);

/// Identifier word ending at (whitespace before) `pos`, or empty.
std::string_view PreviousWord(std::string_view text, std::size_t pos);

/// Object expression preceding a `.method` / `->method` use: walks
/// back over identifier characters and member accessors, so
/// `state.traps.push_back` yields "state.traps" and
/// `slot->decay.resize` yields "slot->decay". Empty when the method
/// is not reached through a plain accessor chain.
std::string_view ObjectExpressionBefore(std::string_view text,
                                        std::size_t method_pos);

std::vector<std::string> SplitLines(std::string_view text);

/// Strip comments and string/character literals from the source,
/// replacing them with spaces so offsets and line numbers survive.
std::string StripCommentsAndStrings(std::string_view text);

/**
 * The per-file scanning substrate: raw lines, a comment/string-
 * stripped mirror (stripped chars become spaces, so columns line up),
 * the stripped lines joined into one string for cross-line matching,
 * and the `vrdlint:` annotations attached to each line.
 */
struct FileView {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::vector<std::string>> allows;
  /// Per 1-based-line-minus-one: mutex names from `guarded_by(...)`.
  std::vector<std::vector<std::string>> guarded_by;
  /// Per 1-based-line-minus-one: mutex names from `requires_lock(...)`.
  std::vector<std::vector<std::string>> requires_lock;
  std::string flat;                      // code lines joined with '\n'
  std::vector<std::size_t> line_start;   // flat offset of each line

  /// 1-based line of a flat offset.
  std::size_t LineOf(std::size_t pos) const;

  /// True when the diagnostic rule (or one of its tokens) is allowed
  /// on the given 1-based line.
  bool Allowed(std::size_t line,
               std::initializer_list<std::string_view> tokens) const;

  /// guarded_by(...) names attached to the given 1-based line.
  const std::vector<std::string>& GuardedBy(std::size_t line) const;

  /// requires_lock(...) names attached to the given 1-based line.
  const std::vector<std::string>& RequiresLock(std::size_t line) const;
};

FileView BuildView(std::string_view text);

/// One lexical token of the stripped source. `text` views into the
/// flat buffer of the FileView the token was cut from.
struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string_view text;
  std::size_t pos = 0;  // flat offset of the first character
};

/// Tokenize stripped source text: identifiers, numeric literals
/// (including hex and exponent forms), and punctuators with compound
/// operators (`::`, `->`, `+=`, `<<=`, ...) kept as single tokens.
std::vector<Token> Tokenize(std::string_view flat);

}  // namespace vrdlint

#endif  // VRDDRAM_TOOLS_VRDLINT_TOKENIZER_H
