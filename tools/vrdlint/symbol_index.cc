#include "symbol_index.h"

#include <algorithm>

namespace vrdlint {
namespace {

using Toks = std::vector<Token>;

bool TokIs(const Toks& toks, int i, std::string_view text) {
  return i >= 0 && i < static_cast<int>(toks.size()) &&
         toks[static_cast<std::size_t>(i)].text == text;
}

bool TokIdent(const Toks& toks, int i) {
  return i >= 0 && i < static_cast<int>(toks.size()) &&
         toks[static_cast<std::size_t>(i)].kind == Token::Kind::kIdent;
}

std::string_view TokText(const Toks& toks, int i) {
  if (i < 0 || i >= static_cast<int>(toks.size())) {
    return {};
  }
  return toks[static_cast<std::size_t>(i)].text;
}

bool IsAnyOf(std::string_view text,
             std::initializer_list<std::string_view> set) {
  for (const std::string_view s : set) {
    if (text == s) {
      return true;
    }
  }
  return false;
}

/// Index of the '(' matching the ')' at `close`, or -1.
int MatchParenBack(const Toks& toks, int close) {
  int depth = 0;
  for (int j = close; j >= 0; --j) {
    const std::string_view t = TokText(toks, j);
    if (t == ")") {
      ++depth;
    } else if (t == "(") {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return -1;
}

/// Index of the opener matching the closer at `close`, or -1.
int MatchBack(const Toks& toks, int close, std::string_view open_text,
              std::string_view close_text) {
  int depth = 0;
  for (int j = close; j >= 0; --j) {
    const std::string_view t = TokText(toks, j);
    if (t == close_text) {
      ++depth;
    } else if (t == open_text) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return -1;
}

/// Index of the ')' matching the '(' at `open`, or -1.
int MatchParenForward(const Toks& toks, int open) {
  int depth = 0;
  for (int j = open; j < static_cast<int>(toks.size()); ++j) {
    const std::string_view t = TokText(toks, j);
    if (t == "(") {
      ++depth;
    } else if (t == ")") {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return -1;
}

constexpr std::string_view kCvQuals[] = {"const", "noexcept", "override",
                                         "final", "mutable"};

bool IsCvQual(std::string_view text) {
  for (const std::string_view q : kCvQuals) {
    if (text == q) {
      return true;
    }
  }
  return false;
}

/// Parse the comma-separated parameter list between token indices
/// (open, close) exclusive — `open` is the '(' and `close` its ')'.
std::vector<Param> ParseParams(const Toks& toks, int open, int close) {
  std::vector<Param> params;
  std::vector<std::vector<int>> segments(1);
  int depth = 0;
  for (int j = open + 1; j < close; ++j) {
    const std::string_view t = TokText(toks, j);
    if (t == "(" || t == "[" || t == "{" || t == "<") {
      ++depth;
    } else if (t == ")" || t == "]" || t == "}" || t == ">") {
      --depth;
    } else if (t == "," && depth == 0) {
      segments.emplace_back();
      continue;
    }
    segments.back().push_back(j);
  }
  for (const std::vector<int>& seg : segments) {
    if (seg.empty()) {
      continue;
    }
    // Cut a default argument at the first top-level '='.
    std::vector<int> decl;
    int d = 0;
    for (const int j : seg) {
      const std::string_view t = TokText(toks, j);
      if (t == "(" || t == "[" || t == "{" || t == "<") {
        ++d;
      } else if (t == ")" || t == "]" || t == "}" || t == ">") {
        --d;
      } else if (t == "=" && d == 0) {
        break;
      }
      decl.push_back(j);
    }
    if (decl.empty()) {
      continue;
    }
    if (decl.size() == 1 && (TokText(toks, decl[0]) == "void" ||
                             TokText(toks, decl[0]) == "...")) {
      continue;
    }
    Param prm;
    // The declared name is the last bracket-depth-0 identifier not
    // glued to a preceding '::' (which would make it a type segment).
    int name_tok = -1;
    int ident_count = 0;
    d = 0;
    for (std::size_t s = 0; s < decl.size(); ++s) {
      const int j = decl[s];
      const std::string_view t = TokText(toks, j);
      if (t == "[" || t == "<" || t == "(" || t == "{") {
        ++d;
        continue;
      }
      if (t == "]" || t == ">" || t == ")" || t == "}") {
        --d;
        continue;
      }
      if (t == "&" || t == "&&") {
        prm.is_ref = true;
        continue;
      }
      if (d != 0 || !TokIdent(toks, j)) {
        continue;
      }
      if (t == "const") {
        prm.is_const = true;
        continue;
      }
      ++ident_count;
      if (s > 0 && TokText(toks, decl[s - 1]) != "::") {
        name_tok = j;
      }
    }
    if (ident_count < 2) {
      name_tok = -1;  // single-identifier type, unnamed param
    }
    std::string type;
    for (const int j : decl) {
      if (j == name_tok) {
        continue;
      }
      if (!type.empty()) {
        type += ' ';
      }
      type += TokText(toks, j);
    }
    prm.type = std::move(type);
    if (name_tok >= 0) {
      prm.name = TokText(toks, name_tok);
    }
    params.push_back(std::move(prm));
  }
  return params;
}

/// Qualified-name context: given the index of a function name token,
/// return the nearest `Class::` qualifier segment, or empty.
std::string QualifierClass(const Toks& toks, int name_tok) {
  if (TokIs(toks, name_tok - 1, "::") && TokIdent(toks, name_tok - 2)) {
    return std::string(TokText(toks, name_tok - 2));
  }
  return {};
}

struct BraceInfo {
  Scope::Kind kind = Scope::Kind::kBlock;
  std::string name;
  std::string class_name;  // from an explicit qualifier only
  std::vector<Param> params;
  std::size_t head_pos = 0;
};

/// Walk a constructor initializer list backwards from the token at
/// `k` (a ',' or ':' just before a member-init element). Returns the
/// token index of the constructor's name, or -1 when the shape does
/// not match an init list.
int FindCtorThroughInitList(const Toks& toks, int k) {
  for (int steps = 0; steps < 64; ++steps) {
    const std::string_view t = TokText(toks, k);
    if (t == ":") {
      if (TokIs(toks, k - 1, "::")) {
        return -1;  // actually a qualified name, not an init list
      }
      int j = k - 1;
      while (j >= 0 && TokIdent(toks, j) && IsCvQual(TokText(toks, j))) {
        --j;
      }
      if (!TokIs(toks, j, ")")) {
        return -1;
      }
      const int open = MatchParenBack(toks, j);
      if (open <= 0 || !TokIdent(toks, open - 1)) {
        return -1;
      }
      return open - 1;
    }
    if (t != ",") {
      return -1;
    }
    // Step over the previous element: name(...) or name{...}.
    int j = k - 1;
    int opener;
    if (TokIs(toks, j, ")")) {
      opener = MatchParenBack(toks, j);
    } else if (TokIs(toks, j, "}")) {
      opener = MatchBack(toks, j, "{", "}");
    } else {
      return -1;
    }
    if (opener <= 0 || !TokIdent(toks, opener - 1)) {
      return -1;
    }
    k = opener - 2;  // token before the element's name
  }
  return -1;
}

/// Classify the '{' at token index `i` by looking backwards.
BraceInfo ClassifyBrace(const Toks& toks, int i) {
  BraceInfo info;
  info.head_pos = toks[static_cast<std::size_t>(i)].pos;
  int p = i - 1;
  while (p >= 0 && TokIdent(toks, p) && IsCvQual(TokText(toks, p))) {
    --p;
  }
  // Trailing return type: back over type-ish tokens to a '->'.
  {
    int q = p;
    bool arrow = false;
    for (int steps = 0; q >= 0 && steps < 16; ++steps, --q) {
      const std::string_view t = TokText(toks, q);
      if (t == "->") {
        arrow = true;
        break;
      }
      if (TokIdent(toks, q) ||
          toks[static_cast<std::size_t>(q)].kind ==
              Token::Kind::kNumber ||
          IsAnyOf(t, {"::", "<", ">", "*", "&", ",", "[", "]"})) {
        continue;
      }
      break;
    }
    if (arrow) {
      p = q - 1;
      while (p >= 0 && TokIdent(toks, p) && IsCvQual(TokText(toks, p))) {
        --p;
      }
    }
  }
  if (p < 0) {
    return info;
  }
  const std::string_view t = TokText(toks, p);

  if (t == ")") {
    const int open = MatchParenBack(toks, p);
    if (open <= 0) {
      return info;
    }
    int b = open - 1;
    const std::string_view before = TokText(toks, b);
    if (IsAnyOf(before, {"for", "while", "if", "switch", "catch"})) {
      info.kind = Scope::Kind::kControl;
      return info;
    }
    if (before == "constexpr" && TokIs(toks, b - 1, "if")) {
      info.kind = Scope::Kind::kControl;
      return info;
    }
    if (before == "]") {
      info.kind = Scope::Kind::kLambda;
      info.params = ParseParams(toks, open, p);
      return info;
    }
    if (before == ")") {
      // operator(): `... operator()(params)` — the matched parens are
      // the parameter list; the pair before them names the operator.
      const int op_open = MatchParenBack(toks, b);
      if (op_open > 0 && TokIs(toks, op_open - 1, "operator")) {
        info.kind = Scope::Kind::kFunction;
        info.name = "operator()";
        info.class_name = QualifierClass(toks, op_open - 1);
        info.params = ParseParams(toks, open, p);
        info.head_pos = toks[static_cast<std::size_t>(op_open - 1)].pos;
      }
      return info;
    }
    if (TokIdent(toks, b)) {
      if (before == "operator") {
        info.kind = Scope::Kind::kFunction;
        info.name = "operator";
        info.params = ParseParams(toks, open, p);
        info.head_pos = toks[static_cast<std::size_t>(b)].pos;
        return info;
      }
      // Constructor initializer list: the matched parens belong to the
      // last member initializer, and the real head is further back.
      if (TokIs(toks, b - 1, ",") || TokIs(toks, b - 1, ":")) {
        const int ctor = FindCtorThroughInitList(toks, b - 1);
        if (ctor >= 0) {
          info.kind = Scope::Kind::kFunction;
          info.name = TokText(toks, ctor);
          info.class_name = QualifierClass(toks, ctor);
          const int ctor_open = ctor + 1;
          info.params =
              ParseParams(toks, ctor_open, MatchParenForward(toks, ctor_open));
          info.head_pos = toks[static_cast<std::size_t>(ctor)].pos;
          return info;
        }
      }
      info.kind = Scope::Kind::kFunction;
      info.name = TokText(toks, b);
      info.head_pos = toks[static_cast<std::size_t>(b)].pos;
      if (TokIs(toks, b - 1, "~")) {
        info.name = "~" + info.name;
        b -= 1;
        info.head_pos = toks[static_cast<std::size_t>(b)].pos;
      }
      info.class_name = QualifierClass(toks, b);
      info.params = ParseParams(toks, open, p);
      return info;
    }
    if (before == "]") {
      info.kind = Scope::Kind::kLambda;
      info.params = ParseParams(toks, open, p);
    }
    return info;
  }

  if (t == "]") {
    // `[captures] { ... }` — a lambda with no parameter list; but an
    // identifier before the '[' means an array declarator instead.
    const int open = MatchBack(toks, p, "[", "]");
    if (open > 0 && !TokIdent(toks, open - 1)) {
      info.kind = Scope::Kind::kLambda;
    }
    return info;
  }

  if (t == "namespace") {
    info.kind = Scope::Kind::kNamespace;
    return info;
  }

  if (TokIdent(toks, p)) {
    const std::string word(t);
    if (word == "do" || word == "else" || word == "try") {
      info.kind = Scope::Kind::kControl;
      return info;
    }
    if (TokIs(toks, p - 1, "namespace")) {
      info.kind = Scope::Kind::kNamespace;
      info.name = word;
      return info;
    }
    // Window scan for a class/struct head (handles base clauses).
    for (int k = p; k >= 0 && p - k < 16; --k) {
      const std::string_view tk = TokText(toks, k);
      if (tk == "enum") {
        return info;  // enum body: plain block
      }
      if (tk == "class" || tk == "struct" || tk == "union") {
        if (TokIs(toks, k - 1, "enum")) {
          return info;
        }
        if (TokIdent(toks, k + 1)) {
          info.kind = Scope::Kind::kClass;
          info.name = TokText(toks, k + 1);
          info.head_pos = toks[static_cast<std::size_t>(k + 1)].pos;
        }
        return info;
      }
      if (TokIdent(toks, k) ||
          IsAnyOf(tk, {"::", ":", ",", "<", ">"})) {
        continue;
      }
      break;
    }
  }
  return info;
}

constexpr std::string_view kStmtKeywords[] = {
    "if",     "for",    "while",  "switch",   "return", "sizeof",
    "catch",  "new",    "delete", "throw",    "alignof", "decltype",
    "static_assert", "case", "goto", "co_await", "co_return",
};

bool IsStmtKeyword(std::string_view text) {
  for (const std::string_view k : kStmtKeywords) {
    if (text == k) {
      return true;
    }
  }
  return false;
}

/// Parse one class-body statement (token indices at class depth) into
/// a member declaration, or return false when it is not one.
bool ParseMemberStatement(const Toks& toks, const std::vector<int>& stmt,
                          MemberVar* member) {
  if (stmt.size() < 2) {
    return false;
  }
  const std::string_view first = TokText(toks, stmt[0]);
  if (IsAnyOf(first, {"using", "typedef", "friend", "static_assert",
                      "template", "enum", "class", "struct", "public",
                      "private", "protected", "operator", "explicit",
                      "virtual", "return"})) {
    return false;
  }
  // Cut the initializer; a '(' before any '=' means a function shape.
  std::vector<int> decl;
  int depth = 0;
  for (const int j : stmt) {
    const std::string_view t = TokText(toks, j);
    if (t == "(") {
      return false;
    }
    if (t == "=" && depth == 0) {
      break;
    }
    if (t == "[" || t == "<" || t == "{") {
      ++depth;
    } else if (t == "]" || t == ">" || t == "}") {
      --depth;
    }
    decl.push_back(j);
  }
  if (decl.size() < 2) {
    return false;
  }
  // Name: last bracket-depth-0 identifier not preceded by '::'.
  int name_tok = -1;
  int ident_count = 0;
  depth = 0;
  for (std::size_t s = 0; s < decl.size(); ++s) {
    const int j = decl[s];
    const std::string_view t = TokText(toks, j);
    if (t == "[" || t == "<" || t == "{") {
      ++depth;
      continue;
    }
    if (t == "]" || t == ">" || t == "}") {
      --depth;
      continue;
    }
    if (depth != 0 || !TokIdent(toks, j)) {
      continue;
    }
    if (IsAnyOf(t, {"static", "mutable", "constexpr", "inline",
                    "volatile", "const"})) {
      continue;
    }
    ++ident_count;
    if (s > 0 && TokText(toks, decl[s - 1]) != "::") {
      name_tok = j;
    }
  }
  if (name_tok < 0 || ident_count < 2) {
    return false;
  }
  std::string type;
  for (const int j : decl) {
    if (j == name_tok) {
      continue;
    }
    if (!type.empty()) {
      type += ' ';
    }
    type += TokText(toks, j);
  }
  member->name = TokText(toks, name_tok);
  member->type = std::move(type);
  member->is_mutex = member->type.find("mutex") != std::string::npos;
  member->guarded_by.clear();
  // `line` carries the name token index out; the caller converts it
  // to a source line via the token's flat position.
  member->line = static_cast<std::size_t>(name_tok);
  return true;
}

/// Declaration-shaped float names: `double x`, `float* dst`,
/// `std::vector<double> v` — mirrors CollectUnorderedNames' approach.
std::vector<std::string> CollectFloatNames(const FileView& view) {
  std::vector<std::string> names;
  const std::string_view flat = view.flat;
  for (const std::string_view type : {"double", "float"}) {
    std::size_t pos = 0;
    while ((pos = FindWord(flat, type, pos)) != std::string_view::npos) {
      std::size_t p = pos + type.size();
      pos += type.size();
      // Skip template closers, pointers, references, and spaces:
      // `vector<double> v`, `double* dst`, `double& x`.
      while (p < flat.size() &&
             (flat[p] == '>' || flat[p] == '*' || flat[p] == '&' ||
              std::isspace(static_cast<unsigned char>(flat[p])))) {
        ++p;
      }
      if (p >= flat.size() || !IsIdentStart(flat[p])) {
        continue;
      }
      std::size_t end = p;
      while (end < flat.size() && IsIdentChar(flat[end])) {
        ++end;
      }
      const std::string_view name = flat.substr(p, end - p);
      if (IsAnyOf(name, {"const", "constexpr", "static"})) {
        continue;
      }
      names.emplace_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace

int FileSymbols::ScopeAt(std::size_t pos) const {
  int best = -1;
  std::size_t best_span = 0;
  for (std::size_t s = 0; s < scopes.size(); ++s) {
    const Scope& scope = scopes[s];
    if (scope.open < pos && pos < scope.close) {
      const std::size_t span = scope.close - scope.open;
      if (best < 0 || span < best_span) {
        best = static_cast<int>(s);
        best_span = span;
      }
    }
  }
  return best;
}

int FileSymbols::EnclosingFunction(int s) const {
  while (s >= 0) {
    const Scope& scope = scopes[static_cast<std::size_t>(s)];
    if (scope.kind == Scope::Kind::kFunction ||
        scope.kind == Scope::Kind::kLambda) {
      return s;
    }
    s = scope.parent;
  }
  return -1;
}

FileSymbols AnalyzeFile(const std::string& path, const FileView& view) {
  FileSymbols symbols;
  const Toks toks = Tokenize(view.flat);

  // Scope tree: classify every '{' and pair it with its '}'.
  std::vector<int> stack;  // indices into symbols.scopes
  for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
    const std::string_view t = toks[static_cast<std::size_t>(i)].text;
    if (t == "{") {
      BraceInfo info = ClassifyBrace(toks, i);
      Scope scope;
      scope.kind = info.kind;
      scope.name = std::move(info.name);
      scope.class_name = std::move(info.class_name);
      scope.open = toks[static_cast<std::size_t>(i)].pos;
      scope.close = view.flat.size();  // patched when the '}' arrives
      scope.parent = stack.empty() ? -1 : stack.back();
      scope.params = std::move(info.params);
      scope.head_pos = info.head_pos;
      scope.head_line = view.LineOf(info.head_pos);
      scope.requires_locks = view.RequiresLock(scope.head_line);
      // An inline method picks up its class from the enclosing scope.
      if (scope.kind == Scope::Kind::kFunction &&
          scope.class_name.empty() && scope.parent >= 0) {
        const Scope& up =
            symbols.scopes[static_cast<std::size_t>(scope.parent)];
        if (up.kind == Scope::Kind::kClass) {
          scope.class_name = up.name;
        }
      }
      stack.push_back(static_cast<int>(symbols.scopes.size()));
      symbols.scopes.push_back(std::move(scope));
    } else if (t == "}") {
      if (!stack.empty()) {
        symbols.scopes[static_cast<std::size_t>(stack.back())].close =
            toks[static_cast<std::size_t>(i)].pos;
        stack.pop_back();
      }
    }
  }

  // Members: statements at depth 0 of each class body.
  for (const Scope& scope : symbols.scopes) {
    if (scope.kind != Scope::Kind::kClass) {
      continue;
    }
    int depth = 0;
    std::vector<int> stmt;
    for (int j = 0; j < static_cast<int>(toks.size()); ++j) {
      const Token& tok = toks[static_cast<std::size_t>(j)];
      if (tok.pos <= scope.open) {
        continue;
      }
      if (tok.pos >= scope.close) {
        break;
      }
      const std::string_view t = tok.text;
      if (t == "{") {
        // Nested body or brace initializer: skip to the matching '}'.
        int d = 0;
        int k = j;
        for (; k < static_cast<int>(toks.size()); ++k) {
          const std::string_view u = TokText(toks, k);
          if (u == "{") {
            ++d;
          } else if (u == "}") {
            if (--d == 0) {
              break;
            }
          }
        }
        if (TokIs(toks, k + 1, ";")) {
          j = k;  // brace initializer: the ';' will close the stmt
          continue;
        }
        stmt.clear();  // function definition body
        j = k;
        continue;
      }
      if (t == ";") {
        MemberVar member;
        if (ParseMemberStatement(toks, stmt, &member)) {
          const int name_tok = static_cast<int>(member.line);
          const std::size_t name_pos =
              toks[static_cast<std::size_t>(name_tok)].pos;
          member.class_name = scope.name;
          member.file = path;
          member.line = view.LineOf(name_pos);
          const std::vector<std::string>& guards =
              view.GuardedBy(member.line);
          if (!guards.empty()) {
            member.guarded_by = guards.front();
          }
          symbols.members.push_back(std::move(member));
        }
        stmt.clear();
        continue;
      }
      if (t == ":" && stmt.size() == 1 &&
          IsAnyOf(TokText(toks, stmt[0]),
                  {"public", "private", "protected"})) {
        stmt.clear();
        continue;
      }
      stmt.push_back(j);
      (void)depth;
    }
  }

  // Prototypes: `name(params)` at file/namespace/class scope followed
  // by ';' (or '= 0;' / '= default;' / '= delete;').
  for (int j = 0; j + 1 < static_cast<int>(toks.size()); ++j) {
    if (!TokIdent(toks, j) || !TokIs(toks, j + 1, "(")) {
      continue;
    }
    const std::string_view name = TokText(toks, j);
    if (IsStmtKeyword(name) || IsCvQual(name)) {
      continue;
    }
    const int scope_idx =
        symbols.ScopeAt(toks[static_cast<std::size_t>(j)].pos);
    if (scope_idx >= 0) {
      const Scope::Kind kind =
          symbols.scopes[static_cast<std::size_t>(scope_idx)].kind;
      if (kind != Scope::Kind::kNamespace &&
          kind != Scope::Kind::kClass) {
        continue;
      }
    }
    // Expression contexts are not declarations.
    const std::string_view prev = TokText(toks, j - 1);
    if (IsAnyOf(prev, {"=", "return", ",", "(", "+", "-", "/", "!",
                       "&&", "||", "<", "."})) {
      continue;
    }
    const int close = MatchParenForward(toks, j + 1);
    if (close < 0) {
      continue;
    }
    int k = close + 1;
    while (TokIdent(toks, k) && IsCvQual(TokText(toks, k))) {
      ++k;
    }
    if (!TokIs(toks, k, ";") && !TokIs(toks, k, "=")) {
      continue;
    }
    FunctionSig sig;
    sig.name = name;
    sig.class_name = QualifierClass(toks, j);
    if (sig.class_name.empty() && scope_idx >= 0) {
      const Scope& scope =
          symbols.scopes[static_cast<std::size_t>(scope_idx)];
      if (scope.kind == Scope::Kind::kClass) {
        sig.class_name = scope.name;
      }
    }
    sig.file = path;
    sig.line = view.LineOf(toks[static_cast<std::size_t>(j)].pos);
    sig.params = ParseParams(toks, j + 1, close);
    symbols.prototypes.push_back(std::move(sig));
  }

  symbols.float_names = CollectFloatNames(view);
  return symbols;
}

void SymbolIndex::AddFile(const std::string& path, const FileView& view,
                          const FileSymbols& symbols) {
  for (const Scope& scope : symbols.scopes) {
    if (scope.kind != Scope::Kind::kFunction || scope.name.empty()) {
      continue;
    }
    FunctionSig sig;
    sig.name = scope.name;
    sig.class_name = scope.class_name;
    sig.file = path;
    sig.line = view.LineOf(scope.head_pos);
    sig.params = scope.params;
    functions[sig.name].push_back(std::move(sig));
  }
  for (const FunctionSig& sig : symbols.prototypes) {
    functions[sig.name].push_back(sig);
  }
  for (const MemberVar& member : symbols.members) {
    members[member.class_name].push_back(member);
  }
}

const std::vector<FunctionSig>* SymbolIndex::FindFunctions(
    std::string_view name) const {
  const auto it = functions.find(std::string(name));
  if (it == functions.end()) {
    return nullptr;
  }
  return &it->second;
}

const MemberVar* SymbolIndex::FindMember(std::string_view class_name,
                                         std::string_view name) const {
  if (!class_name.empty()) {
    const auto it = members.find(std::string(class_name));
    if (it == members.end()) {
      return nullptr;
    }
    for (const MemberVar& member : it->second) {
      if (member.name == name) {
        return &member;
      }
    }
    return nullptr;
  }
  for (const auto& [cls, vars] : members) {
    for (const MemberVar& member : vars) {
      if (member.name == name) {
        return &member;
      }
    }
  }
  return nullptr;
}

bool IsFloatType(std::string_view type) {
  return ContainsWord(type, "double") || ContainsWord(type, "float");
}

}  // namespace vrdlint
