#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

CI perf gate (DESIGN.md section 10): the perf job runs
bench_perf_throughput (which self-records BENCH_perf.json) and this
script diffs it against the committed BENCH_pr<N>.json snapshot. A
benchmark that got more than --tolerance slower than the baseline
fails the gate.

Both inputs may be either a raw google-benchmark JSON file or a
committed BENCH_pr<N>.json wrapper (with "before"/"after" sections);
for wrappers the "after" section is the baseline. Only benchmarks
present in both files are compared, and each side is reduced to the
minimum real_time across its repetitions -- on shared CI boxes the
minimum is the least-interference estimate, so the gate measures the
code, not the neighbours.

Usage:
  bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.15]
"""

import argparse
import json
import sys


def load_runs(path):
    """Map benchmark name -> minimum real_time (ns) across repetitions."""
    with open(path) as f:
        doc = json.load(f)
    if "after" in doc and "benchmarks" not in doc:
        doc = doc["after"]
    runs = {}
    for bench in doc.get("benchmarks", []):
        # Skip _mean/_median/_stddev aggregate rows; keep iteration runs.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("run_name", bench["name"])
        time = float(bench["real_time"])
        runs[name] = min(runs.get(name, float("inf")), time)
    return runs


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", help="fresh BENCH_perf.json run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed slowdown fraction before failing (default 0.15)",
    )
    args = parser.parse_args(argv)

    baseline = load_runs(args.baseline)
    candidate = load_runs(args.candidate)
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("bench_compare: no shared benchmarks between "
              f"{args.baseline} and {args.candidate}", file=sys.stderr)
        return 2

    width = max(len(name) for name in shared)
    regressions = []
    for name in shared:
        base = baseline[name]
        cand = candidate[name]
        ratio = cand / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0:
            verdict = "faster"
        print(f"{name:<{width}}  base {base:>12.0f} ns  "
              f"cand {cand:>12.0f} ns  x{ratio:.2f}  {verdict}")

    extra = sorted(set(candidate) - set(baseline))
    if extra:
        print(f"bench_compare: not in baseline, skipped: "
              f"{', '.join(extra)}")
    # A baseline benchmark with no candidate counterpart usually means
    # a benchmark was renamed or silently dropped — a gap the
    # regression gate cannot see through, so it gets its own exit code
    # (3) distinct from a measured regression (1).
    missing = sorted(set(baseline) - set(candidate))
    if missing:
        print(f"bench_compare: {len(missing)} baseline benchmark(s) "
              f"missing from candidate: {', '.join(missing)}",
              file=sys.stderr)
    if regressions:
        print(f"bench_compare: {len(regressions)} benchmark(s) regressed "
              f"beyond {args.tolerance:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    if missing:
        return 3
    print(f"bench_compare: {len(shared)} benchmark(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
