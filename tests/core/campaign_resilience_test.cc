/**
 * Golden determinism-under-faults tests (DESIGN.md "Failure
 * semantics"): checkpoint → interrupt → resume reproduces an
 * uninterrupted campaign bit for bit at any worker count, and a
 * seeded fault schedule quarantines or retries exactly the targeted
 * shards while every surviving shard stays byte-identical to the
 * fault-free run.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/campaign.h"
#include "core/campaign_checkpoint.h"

namespace vrddram::core {
namespace {

CampaignConfig TinyConfig() {
  CampaignConfig config;
  config.devices = {"M1", "S2"};
  config.rows_per_device = 3;
  config.measurements = 15;
  config.temperatures = {50.0, 80.0};
  config.scan_rows_per_region = 32;
  config.threads = 1;
  return config;
}

std::string TempCheckpointPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) /
          ("vrddram_" + name + ".ckpt"))
      .string();
}

void ExpectRecordsIdentical(const std::vector<SeriesRecord>& expected,
                            const std::vector<SeriesRecord>& actual,
                            const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const SeriesRecord& a = expected[i];
    const SeriesRecord& b = actual[i];
    EXPECT_EQ(a.device, b.device) << context << " record " << i;
    EXPECT_EQ(a.mfr, b.mfr);
    EXPECT_EQ(a.standard, b.standard);
    EXPECT_EQ(a.density_gbit, b.density_gbit);
    EXPECT_EQ(a.die_rev, b.die_rev);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.pattern, b.pattern);
    EXPECT_EQ(a.t_on, b.t_on);
    EXPECT_EQ(a.temperature, b.temperature);
    EXPECT_EQ(a.rdt_guess, b.rdt_guess);
    ASSERT_EQ(a.series, b.series) << context << " record " << i;
  }
}

TEST(CampaignCheckpointTest, RoundTripPreservesEverything) {
  CampaignCheckpoint checkpoint;
  checkpoint.config_hash = 0xdeadbeefcafef00dull;
  CampaignCheckpoint::ShardEntry entry;
  entry.index = 2;
  entry.status.device = "M1";
  entry.status.temperature = 80.0;
  entry.status.state = ShardState::kRetried;
  entry.status.attempts = 2;
  entry.status.backoff_ticks = 12345;
  entry.status.error = "thermal rig: PID sensor dropout (injected)";
  SeriesRecord record;
  record.device = "M1";
  record.mfr = vrd::Manufacturer::kMfrM;
  record.density_gbit = 8;
  record.die_rev = 'B';
  record.row = 77;
  record.pattern = dram::DataPattern::kRowstripe1;
  record.t_on = TOnChoice::kNineTrefi;
  record.temperature = 80.0;
  record.rdt_guess = 42000;
  record.series = {41000, -1, 43000};
  entry.records.push_back(record);
  checkpoint.shards.push_back(entry);

  std::stringstream buffer;
  WriteCheckpoint(buffer, checkpoint);
  const CampaignCheckpoint loaded = ReadCheckpoint(buffer);

  EXPECT_EQ(loaded.config_hash, checkpoint.config_hash);
  ASSERT_EQ(loaded.shards.size(), 1u);
  const CampaignCheckpoint::ShardEntry& out = loaded.shards[0];
  EXPECT_EQ(out.index, 2u);
  EXPECT_EQ(out.status.device, "M1");
  EXPECT_EQ(out.status.temperature, 80.0);
  EXPECT_EQ(out.status.state, ShardState::kRetried);
  EXPECT_EQ(out.status.attempts, 2u);
  EXPECT_EQ(out.status.backoff_ticks, 12345);
  EXPECT_EQ(out.status.error, entry.status.error);
  ExpectRecordsIdentical(entry.records, out.records, "round trip");
}

TEST(CampaignCheckpointTest, RejectsVersionAndGarbage) {
  std::stringstream future_version(
      "vrddram-campaign-checkpoint 999\n"
      "config 0000000000000000\nshards 0\nend\n");
  EXPECT_THROW(ReadCheckpoint(future_version), FatalError);
  std::stringstream garbage("not a checkpoint at all\n");
  EXPECT_THROW(ReadCheckpoint(garbage), FatalError);
}

TEST(CampaignCheckpointTest, ConfigHashTracksResultsNotExecution) {
  const CampaignConfig base = TinyConfig();
  const std::uint64_t hash = HashCampaignConfig(base);

  // Execution knobs must not change the hash: a campaign interrupted
  // under fault injection resumes cleanly without it.
  CampaignConfig execution = base;
  execution.threads = 8;
  execution.inject = "core.campaign.shard:p=1";
  execution.max_attempts = 1;
  execution.quarantine = false;
  execution.checkpoint_path = "/tmp/somewhere.ckpt";
  execution.resume = true;
  EXPECT_EQ(HashCampaignConfig(execution), hash);

  // Result-defining fields must.
  CampaignConfig results = base;
  results.measurements += 1;
  EXPECT_NE(HashCampaignConfig(results), hash);
  CampaignConfig temps = base;
  temps.temperatures = {50.0, 85.0};
  EXPECT_NE(HashCampaignConfig(temps), hash);
}

TEST(CampaignCheckpointTest, LoadReturnsFalseForMissingFile) {
  CampaignCheckpoint out;
  EXPECT_FALSE(
      LoadCheckpoint(TempCheckpointPath("does_not_exist"), &out));
}

TEST(CampaignResilienceTest, ResumeAfterInterruptIsBitIdentical) {
  // Golden test (a): run to completion, then replay the same campaign
  // with an injected hard failure in the last canonical shard
  // (checkpointing as it goes), then resume without injection. The
  // resumed records must be bit-identical to the uninterrupted run at
  // 1 and 8 workers.
  const CampaignConfig base = TinyConfig();
  const CampaignResult baseline = RunCampaign(base);
  ASSERT_FALSE(baseline.records.empty());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    const std::string path = TempCheckpointPath(
        "resume_" + std::to_string(workers));
    std::filesystem::remove(path);

    CampaignConfig interrupted = base;
    interrupted.threads = workers;
    interrupted.checkpoint_path = path;
    interrupted.inject = "core.campaign.shard:p=1,match=S2@80";
    interrupted.quarantine = false;  // fail hard, like a kill
    interrupted.max_attempts = 1;
    EXPECT_THROW(RunCampaign(interrupted), TransientError)
        << "workers=" << workers;

    // The interrupt left a loadable checkpoint of whatever shards
    // completed before the failure. At one worker that is exactly the
    // three shards preceding S2@80 in canonical order; at eight the
    // abort races shard startup, so anything from zero (no file yet)
    // to three is legitimate — resume handles every case.
    CampaignCheckpoint snapshot;
    const bool have_snapshot = LoadCheckpoint(path, &snapshot);
    if (workers == 1) {
      ASSERT_TRUE(have_snapshot);
      EXPECT_EQ(snapshot.shards.size(), 3u);
    }
    if (have_snapshot) {
      EXPECT_LT(snapshot.shards.size(), 4u) << "failed shard checkpointed?";
    }

    CampaignConfig resumed = base;
    resumed.threads = workers;
    resumed.checkpoint_path = path;
    resumed.resume = true;  // no injection this time
    const CampaignResult result = RunCampaign(resumed);

    ExpectRecordsIdentical(baseline.records, result.records,
                           "workers=" + std::to_string(workers));
    ASSERT_EQ(result.shards.size(), 4u);
    std::size_t restored = 0;
    for (const ShardStatus& status : result.shards) {
      EXPECT_NE(status.state, ShardState::kQuarantined);
      restored += status.from_checkpoint ? 1u : 0u;
    }
    EXPECT_EQ(restored, have_snapshot ? snapshot.shards.size() : 0u)
        << "workers=" << workers;
    std::filesystem::remove(path);
  }
}

TEST(CampaignResilienceTest, QuarantineLeavesSurvivorsByteIdentical) {
  // Golden test (b): a seeded fault schedule that always kills the M1
  // shards quarantines exactly those, reports them in ShardStatus,
  // and leaves every surviving record byte-identical to the
  // fault-free run.
  const CampaignConfig base = TinyConfig();
  const CampaignResult baseline = RunCampaign(base);
  std::vector<SeriesRecord> surviving_baseline;
  for (const SeriesRecord& record : baseline.records) {
    if (record.device == "S2") {
      surviving_baseline.push_back(record);
    }
  }
  ASSERT_FALSE(surviving_baseline.empty());

  const std::string path = TempCheckpointPath("quarantine");
  std::filesystem::remove(path);
  CampaignConfig faulty = base;
  faulty.inject = "core.campaign.shard:p=1,match=M1";
  faulty.max_attempts = 2;
  faulty.checkpoint_path = path;
  const CampaignResult result = RunCampaign(faulty);

  ExpectRecordsIdentical(surviving_baseline, result.records, "survivors");
  ASSERT_EQ(result.shards.size(), 4u);
  for (const ShardStatus& status : result.shards) {
    if (status.device == "M1") {
      EXPECT_EQ(status.state, ShardState::kQuarantined);
      EXPECT_EQ(status.attempts, 2u);
      EXPECT_FALSE(status.error.empty());
      EXPECT_EQ(FormatShardStatus(status), "quarantined");
    } else {
      EXPECT_EQ(status.state, ShardState::kOk);
      EXPECT_EQ(FormatShardStatus(status), "ok");
    }
  }

  // Quarantined shards are never checkpointed: a later resume
  // re-attempts them (and succeeds once the fault is gone).
  CampaignCheckpoint snapshot;
  ASSERT_TRUE(LoadCheckpoint(path, &snapshot));
  EXPECT_EQ(snapshot.shards.size(), 2u);
  CampaignConfig healed = base;
  healed.checkpoint_path = path;
  healed.resume = true;
  const CampaignResult recovered = RunCampaign(healed);
  ExpectRecordsIdentical(baseline.records, recovered.records,
                         "recovered");
  std::filesystem::remove(path);
}

TEST(CampaignResilienceTest, RetriedShardIsBitIdenticalToCleanRun) {
  // attempt_lt=1 makes the fault fire on attempt 0 only: the shard
  // fails once, backs off (in simulated ticks), and succeeds on the
  // retry with records bit-identical to a never-failed run.
  const CampaignConfig base = TinyConfig();
  const CampaignResult baseline = RunCampaign(base);

  CampaignConfig flaky = base;
  flaky.inject = "core.campaign.shard:p=1,match=M1@50,attempt_lt=1";
  const CampaignResult result = RunCampaign(flaky);

  ExpectRecordsIdentical(baseline.records, result.records, "retried");
  ASSERT_EQ(result.shards.size(), 4u);
  const ShardStatus& retried = result.shards[0];
  EXPECT_EQ(retried.device, "M1");
  EXPECT_EQ(retried.temperature, 50.0);
  EXPECT_EQ(retried.state, ShardState::kRetried);
  EXPECT_EQ(retried.attempts, 2u);
  EXPECT_EQ(retried.backoff_ticks, base.retry_backoff_base);
  EXPECT_FALSE(retried.error.empty());
  EXPECT_EQ(FormatShardStatus(retried), "retried-1");
  for (std::size_t i = 1; i < result.shards.size(); ++i) {
    EXPECT_EQ(result.shards[i].state, ShardState::kOk);
  }
}

TEST(CampaignResilienceTest, ThermalFaultsRetryThroughTheRig) {
  // Faults injected deeper in the stack (the thermal rig, not the
  // shard wrapper) surface as TransientError and ride the same
  // retry machinery to a bit-identical result.
  CampaignConfig base = TinyConfig();
  base.devices = {"S2"};
  base.use_thermal_rig = true;
  const CampaignResult baseline = RunCampaign(base);

  CampaignConfig flaky = base;
  flaky.inject = "bender.thermal.sensor:p=1,attempt_lt=1,max=1";
  const CampaignResult result = RunCampaign(flaky);
  ExpectRecordsIdentical(baseline.records, result.records, "thermal");
  ASSERT_EQ(result.shards.size(), 2u);
  EXPECT_EQ(result.shards[0].state, ShardState::kRetried);
}

TEST(CampaignResilienceTest, ResumeRejectsConfigHashMismatch) {
  const std::string path = TempCheckpointPath("hash_mismatch");
  std::filesystem::remove(path);
  CampaignConfig first = TinyConfig();
  first.checkpoint_path = path;
  RunCampaign(first);

  CampaignConfig different = TinyConfig();
  different.measurements += 5;
  different.checkpoint_path = path;
  different.resume = true;
  EXPECT_THROW(RunCampaign(different), FatalError);
  std::filesystem::remove(path);
}

TEST(CampaignResilienceTest, ResumeRequiresCheckpointPath) {
  CampaignConfig config = TinyConfig();
  config.resume = true;
  EXPECT_THROW(RunCampaign(config), FatalError);
  CampaignConfig no_attempts = TinyConfig();
  no_attempts.max_attempts = 0;
  EXPECT_THROW(RunCampaign(no_attempts), FatalError);
}

}  // namespace
}  // namespace vrddram::core
