#include "core/guardband.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vrddram::core {
namespace {

GuardbandConfig TinyConfig() {
  GuardbandConfig config;
  config.devices = {"M1"};
  config.rows_per_device = 3;
  config.trials = 400;
  config.patterns = {dram::DataPattern::kCheckered0};
  config.scan_rows_per_region = 32;
  return config;
}

TEST(GuardbandTest, SmallerMarginsFlipAtLeastAsManyCells) {
  const auto outcomes = RunGuardbandStudy(TinyConfig());
  ASSERT_FALSE(outcomes.empty());
  std::size_t at_largest_margin = 0;
  std::size_t at_smallest_margin = 0;
  for (const RowGuardbandOutcome& outcome : outcomes) {
    EXPECT_GT(outcome.min_rdt, 0u);
    ASSERT_EQ(outcome.per_margin.size(), 5u);
    // Margins are ordered 0.5 ... 0.1: in aggregate, shrinking the
    // margin (hammering closer to the min RDT) flips at least as many
    // unique cells.
    at_largest_margin += outcome.per_margin.front().unique_bitflips;
    at_smallest_margin += outcome.per_margin.back().unique_bitflips;
  }
  EXPECT_GE(at_smallest_margin, at_largest_margin);
}

TEST(GuardbandTest, HammerCountsMatchMargins) {
  const auto outcomes = RunGuardbandStudy(TinyConfig());
  ASSERT_FALSE(outcomes.empty());
  for (const RowGuardbandOutcome& outcome : outcomes) {
    for (const MarginOutcome& per : outcome.per_margin) {
      const auto expected = static_cast<std::uint64_t>(
          static_cast<double>(outcome.min_rdt) * (1.0 - per.margin));
      EXPECT_EQ(per.hammer_count, expected);
    }
  }
}

TEST(GuardbandTest, CodewordCountsBoundedByBitflips) {
  const auto outcomes = RunGuardbandStudy(TinyConfig());
  for (const RowGuardbandOutcome& outcome : outcomes) {
    for (const MarginOutcome& per : outcome.per_margin) {
      EXPECT_LE(per.max_per_secded_codeword, per.unique_bitflips);
      EXPECT_LE(per.max_per_chipkill_codeword, per.unique_bitflips);
      EXPECT_LE(per.chips_touched, per.unique_bitflips);
      if (per.unique_bitflips > 0) {
        EXPECT_GE(per.chips_touched, 1u);
        EXPECT_GE(per.max_per_secded_codeword, 1u);
      }
    }
  }
}

TEST(GuardbandTest, HistogramAndBerHelpers) {
  const auto outcomes = RunGuardbandStudy(TinyConfig());
  const auto hist = BitflipHistogramAtMargin(outcomes, 0.10);
  std::size_t rows_in_hist = 0;
  for (const auto& [bitflips, count] : hist) {
    rows_in_hist += count;
  }
  EXPECT_EQ(rows_in_hist, outcomes.size());

  const double ber = WorstBitErrorRate(outcomes, 0.10, 65536);
  EXPECT_GE(ber, 0.0);
  EXPECT_LT(ber, 0.01);
  EXPECT_THROW(WorstBitErrorRate(outcomes, 0.10, 0), FatalError);
}

TEST(GuardbandTest, InvalidConfigsThrow) {
  GuardbandConfig bad;
  EXPECT_THROW(RunGuardbandStudy(bad), FatalError);
  GuardbandConfig no_trials = TinyConfig();
  no_trials.trials = 0;
  EXPECT_THROW(RunGuardbandStudy(no_trials), FatalError);
}

}  // namespace
}  // namespace vrddram::core
