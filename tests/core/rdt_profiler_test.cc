#include "core/rdt_profiler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/series_analysis.h"
#include "vrd/chip_catalog.h"

namespace vrddram::core {
namespace {

struct ProfilerRig {
  explicit ProfilerRig(double noise_sigma = 0.015) {
    vrd::FaultProfile profile;
    profile.median_rdt = 8000.0;
    profile.sigma_rdt = 0.3;
    profile.weak_cells_mean = 6.0;
    profile.t_ras = dram::MakeDdr4_3200().tRAS;
    profile.measurement_noise_sigma = noise_sigma;
    profile.fast_trap_mean = 2.0;
    profile.rare_trap_prob = 0.0;

    dram::DeviceConfig config;
    config.org.num_banks = 2;
    config.org.rows_per_bank = 256;
    config.org.row_bytes = 256;
    config.seed = 909;
    config.has_trr = false;
    device = std::make_unique<dram::Device>(
        config, std::make_unique<vrd::TrapFaultEngine>(
                    profile, config.seed, config.org));
  }
  std::unique_ptr<dram::Device> device;
};

TEST(RdtProfilerTest, FindVictimRespectsThreshold) {
  ProfilerRig rig;
  ProfilerConfig pc;
  pc.find_victim_threshold = 40000;
  RdtProfiler profiler(*rig.device, pc);
  const auto victim = profiler.FindVictim(1, 255);
  ASSERT_TRUE(victim.has_value());
  EXPECT_LT(victim->rdt_guess, 40000u);
  EXPECT_GT(victim->rdt_guess, 0u);
}

TEST(RdtProfilerTest, MeasurementsLandOnTheSweepGrid) {
  ProfilerRig rig;
  ProfilerConfig pc;
  RdtProfiler profiler(*rig.device, pc);
  const auto victim = profiler.FindVictim(1, 255);
  ASSERT_TRUE(victim.has_value());

  const std::uint64_t guess = victim->rdt_guess;
  const std::uint64_t lo = guess / 2;
  const std::uint64_t step = std::max<std::uint64_t>(1, guess / 100);
  const auto series = profiler.MeasureSeries(victim->row, guess, 200);
  ASSERT_EQ(series.size(), 200u);
  for (const std::int64_t rdt : series) {
    if (rdt == kNoFlip) {
      continue;
    }
    EXPECT_GE(static_cast<std::uint64_t>(rdt), lo);
    EXPECT_LT(static_cast<std::uint64_t>(rdt), guess * 3);
    EXPECT_EQ((static_cast<std::uint64_t>(rdt) - lo) % step, 0u)
        << "observed RDT must be a sweep grid point";
  }
}

TEST(RdtProfilerTest, SeriesShowsTemporalVariation) {
  ProfilerRig rig;
  ProfilerConfig pc;
  RdtProfiler profiler(*rig.device, pc);
  const auto victim = profiler.FindVictim(1, 255);
  ASSERT_TRUE(victim.has_value());
  const auto series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 500);
  const SeriesAnalysis analysis = AnalyzeSeries(series);
  EXPECT_GT(analysis.unique_values, 1u) << "VRD must be visible";
  EXPECT_GT(analysis.cv, 0.0);
}

TEST(RdtProfilerTest, TimeAdvancesWithMeasurements) {
  ProfilerRig rig;
  ProfilerConfig pc;
  RdtProfiler profiler(*rig.device, pc);
  const auto victim = profiler.FindVictim(1, 255);
  ASSERT_TRUE(victim.has_value());
  const Tick t0 = rig.device->Now();
  profiler.MeasureSeries(victim->row, victim->rdt_guess, 10);
  const Tick elapsed = rig.device->Now() - t0;
  // 10 sweeps of thousands of hammers each take milliseconds+.
  EXPECT_GT(elapsed, units::kMillisecond);
}

TEST(RdtProfilerTest, BulkModeAgreesWithAnalyticStatistically) {
  // Two identical rigs, one profiled per sweep step through device
  // commands, one through the analytic fast path: the RDT estimates
  // must agree within a few percent.
  ProfilerRig bulk_rig;
  ProfilerRig analytic_rig;
  const auto victim_row = [&] {
    ProfilerConfig pc;
    RdtProfiler probe(*analytic_rig.device, pc);
    const auto victim = probe.FindVictim(1, 255);
    EXPECT_TRUE(victim.has_value());
    return *victim;
  }();

  ProfilerConfig bulk_pc;
  bulk_pc.mode = SweepMode::kBulk;
  RdtProfiler bulk(*bulk_rig.device, bulk_pc);
  ProfilerConfig analytic_pc;
  analytic_pc.mode = SweepMode::kAnalytic;
  RdtProfiler analytic(*analytic_rig.device, analytic_pc);

  const auto bulk_series =
      bulk.MeasureSeries(victim_row.row, victim_row.rdt_guess, 40);
  const auto analytic_series =
      analytic.MeasureSeries(victim_row.row, victim_row.rdt_guess, 40);
  const double bulk_mean =
      AnalyzeSeries(bulk_series, 10).mean;
  const double analytic_mean =
      AnalyzeSeries(analytic_series, 10).mean;
  EXPECT_NEAR(bulk_mean / analytic_mean, 1.0, 0.05);
}

TEST(RdtProfilerTest, CommandLevelModeAgreesOnDeterministicDevice) {
  // Without measurement noise the per-command and bulk paths follow
  // identical trap trajectories and must agree exactly.
  ProfilerRig exact_rig(0.0);
  ProfilerRig bulk_rig(0.0);
  ProfilerRig analytic_rig(0.0);

  ProfilerConfig seed_pc;
  RdtProfiler probe(*analytic_rig.device, seed_pc);
  const auto victim = probe.FindVictim(1, 255);
  ASSERT_TRUE(victim.has_value());

  ProfilerConfig pc;
  pc.mode = SweepMode::kCommandLevel;
  RdtProfiler exact(*exact_rig.device, pc);
  pc.mode = SweepMode::kBulk;
  RdtProfiler bulk(*bulk_rig.device, pc);

  const std::int64_t exact_rdt =
      exact.MeasureOnce(victim->row, victim->rdt_guess);
  const std::int64_t bulk_rdt =
      bulk.MeasureOnce(victim->row, victim->rdt_guess);
  EXPECT_EQ(exact_rdt, bulk_rdt);
}

TEST(RdtProfilerTest, GuessIsCloseToSeriesMean) {
  ProfilerRig rig;
  ProfilerConfig pc;
  RdtProfiler profiler(*rig.device, pc);
  const auto victim = profiler.FindVictim(1, 255);
  ASSERT_TRUE(victim.has_value());
  const auto series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 300);
  const double mean = AnalyzeSeries(series).mean;
  EXPECT_NEAR(mean / static_cast<double>(victim->rdt_guess), 1.0, 0.15);
}

TEST(RdtProfilerTest, InvalidConfigsThrow) {
  ProfilerRig rig;
  ProfilerConfig bad;
  bad.sweep_lo_frac = 0.0;
  EXPECT_THROW(RdtProfiler(*rig.device, bad), FatalError);
  ProfilerConfig inverted;
  inverted.sweep_lo_frac = 2.0;
  inverted.sweep_hi_frac = 1.0;
  EXPECT_THROW(RdtProfiler(*rig.device, inverted), FatalError);
  ProfilerConfig bad_bank;
  bad_bank.bank = 99;
  EXPECT_THROW(RdtProfiler(*rig.device, bad_bank), FatalError);

  // Analytic mode requires a trap engine.
  dram::DeviceConfig plain_config;
  plain_config.org.num_banks = 1;
  plain_config.org.rows_per_bank = 64;
  plain_config.org.row_bytes = 128;
  dram::Device plain(plain_config);
  ProfilerConfig analytic;
  analytic.mode = SweepMode::kAnalytic;
  EXPECT_THROW(RdtProfiler(plain, analytic), FatalError);
}

TEST(RdtProfilerTest, MeasureOnceRejectsZeroGuess) {
  ProfilerRig rig;
  ProfilerConfig pc;
  RdtProfiler profiler(*rig.device, pc);
  EXPECT_THROW(profiler.MeasureOnce(5, 0), FatalError);
}

}  // namespace
}  // namespace vrddram::core

namespace vrddram::core {
namespace {

TEST(RdtProfilerTest, NoFlipRecordedWhenGridTooLow) {
  // A deliberately absurd guess places the whole sweep grid far below
  // any flipping count: every measurement records kNoFlip, and device
  // time still advances by the full sweep duration.
  ProfilerRig rig;
  ProfilerConfig pc;
  RdtProfiler profiler(*rig.device, pc);
  const auto victim = profiler.FindVictim(1, 255);
  ASSERT_TRUE(victim.has_value());

  const Tick t0 = rig.device->Now();
  const std::int64_t rdt = profiler.MeasureOnce(victim->row, 4);
  EXPECT_EQ(rdt, kNoFlip);
  EXPECT_GT(rig.device->Now(), t0);
}

TEST(RdtProfilerTest, GuessRdtNulloptForInvulnerableRow) {
  // A row whose physical neighbourhood has no weak cells never flips.
  ProfilerRig rig;
  auto* engine =
      dynamic_cast<vrd::TrapFaultEngine*>(&rig.device->model());
  ProfilerConfig pc;
  RdtProfiler profiler(*rig.device, pc);
  for (dram::RowAddr row = 1; row < 255; ++row) {
    const auto phys = rig.device->mapper().ToPhysical(row);
    if (phys.value == 0 || phys.value >= 255) {
      continue;
    }
    if (engine->RowStateOf(0, phys).cells.empty()) {
      EXPECT_FALSE(profiler.GuessRdt(row).has_value());
      return;
    }
  }
  GTEST_SKIP() << "every scanned row had weak cells";
}

TEST(RdtProfilerTest, RowPressProfilerUsesConfiguredTOn) {
  ProfilerRig rig;
  ProfilerConfig fast_pc;
  RdtProfiler fast(*rig.device, fast_pc);
  const auto victim = fast.FindVictim(1, 255);
  ASSERT_TRUE(victim.has_value());

  ProfilerConfig press_pc;
  press_pc.t_on = rig.device->timing().tREFI;
  RdtProfiler press(*rig.device, press_pc);
  EXPECT_EQ(press.EffectiveTOn(), rig.device->timing().tREFI);
  const auto press_guess = press.GuessRdt(victim->row);
  ASSERT_TRUE(press_guess.has_value());
  EXPECT_LT(*press_guess, victim->rdt_guess);
}

}  // namespace
}  // namespace vrddram::core
