#include "core/campaign.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/error.h"

namespace vrddram::core {
namespace {

TEST(CampaignTest, TOnResolution) {
  const dram::TimingParams t = dram::MakeDdr4_3200();
  EXPECT_EQ(ResolveTOn(TOnChoice::kMinTras, t), t.tRAS);
  EXPECT_EQ(ResolveTOn(TOnChoice::kTrefi, t), t.tREFI);
  EXPECT_EQ(ResolveTOn(TOnChoice::kNineTrefi, t), 9 * t.tREFI);
  EXPECT_EQ(ToString(TOnChoice::kMinTras), "min-tRAS");
  EXPECT_EQ(ToString(TOnChoice::kNineTrefi), "9xtREFI");
}

TEST(CampaignTest, UnknownTOnChoiceIsAUserError) {
  // An out-of-range enum typically arrives from a parsed flag or file,
  // so it reports as FatalError (bad input) with the offending value,
  // not PanicError (library bug).
  const dram::TimingParams t = dram::MakeDdr4_3200();
  const auto bogus = static_cast<TOnChoice>(250);
  try {
    ToString(bogus);
    FAIL() << "expected FatalError";
  } catch (const FatalError& error) {
    EXPECT_NE(std::string(error.what()).find("250"), std::string::npos);
  }
  EXPECT_THROW(ResolveTOn(bogus, t), FatalError);
}

TEST(CampaignTest, FormatShardStatusCoversEveryState) {
  ShardStatus status;
  EXPECT_EQ(FormatShardStatus(status), "ok");
  status.state = ShardState::kRetried;
  status.attempts = 3;
  EXPECT_EQ(FormatShardStatus(status), "retried-2");
  status.state = ShardState::kQuarantined;
  EXPECT_EQ(FormatShardStatus(status), "quarantined");
}

TEST(CampaignTest, RowSelectionPicksVulnerableRows) {
  auto device = vrd::BuildDevice("M1");
  auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
  ASSERT_NE(engine, nullptr);
  const auto rows = SelectVulnerableRows(
      *device, *engine, 0, /*per_region=*/4, /*scan_per_region=*/64,
      dram::DataPattern::kCheckered0, device->timing().tRAS);
  EXPECT_LE(rows.size(), 12u);
  EXPECT_GE(rows.size(), 3u);
  // Rows must come from the three regions of the bank.
  const dram::RowAddr bank_rows = device->org().rows_per_bank;
  bool in_first = false;
  bool in_last = false;
  for (const dram::RowAddr row : rows) {
    if (row < 64) {
      in_first = true;
    }
    if (row >= bank_rows - 64) {
      in_last = true;
    }
  }
  EXPECT_TRUE(in_first);
  EXPECT_TRUE(in_last);
}

TEST(CampaignTest, TinyCampaignProducesAllCombinations) {
  CampaignConfig config;
  config.devices = {"M1"};
  config.rows_per_device = 3;
  config.measurements = 60;
  config.patterns = {dram::DataPattern::kCheckered0,
                     dram::DataPattern::kRowstripe1};
  config.t_ons = {TOnChoice::kMinTras, TOnChoice::kTrefi};
  config.temperatures = {50.0, 80.0};
  config.scan_rows_per_region = 48;

  const CampaignResult result = RunCampaign(config);
  EXPECT_FALSE(result.records.empty());

  std::set<std::tuple<dram::RowAddr, int, int, int>> combos;
  for (const SeriesRecord& record : result.records) {
    EXPECT_EQ(record.device, "M1");
    EXPECT_EQ(record.series.size(), 60u);
    EXPECT_GT(record.rdt_guess, 0u);
    combos.insert({record.row, static_cast<int>(record.pattern),
                   static_cast<int>(record.t_on),
                   static_cast<int>(record.temperature)});
  }
  // Rows x patterns x t_ons x temps, all distinct.
  EXPECT_EQ(combos.size(), result.records.size());
  // 3 rows selected (1 per region), up to 3*2*2*2 = 24 records.
  EXPECT_GE(result.records.size(), 8u);
}

TEST(CampaignTest, DeterministicAcrossRuns) {
  CampaignConfig config;
  config.devices = {"S2"};
  config.rows_per_device = 3;
  config.measurements = 20;
  config.scan_rows_per_region = 32;
  const CampaignResult a = RunCampaign(config);
  const CampaignResult b = RunCampaign(config);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].row, b.records[i].row);
    EXPECT_EQ(a.records[i].series, b.records[i].series);
  }
}

TEST(CampaignTest, MetadataCarriedThrough) {
  CampaignConfig config;
  config.devices = {"H1"};
  config.rows_per_device = 3;
  config.measurements = 20;
  config.scan_rows_per_region = 32;
  const CampaignResult result = RunCampaign(config);
  ASSERT_FALSE(result.records.empty());
  EXPECT_EQ(result.records[0].mfr, vrd::Manufacturer::kMfrH);
  EXPECT_EQ(result.records[0].density_gbit, 16u);
  EXPECT_EQ(result.records[0].die_rev, 'C');
}

TEST(CampaignTest, ParallelOutputBitIdenticalToSerial) {
  // The golden determinism contract of the parallel executor: every
  // worker count produces the same records, in the same order, with
  // the same series values, bit for bit.
  CampaignConfig config;
  config.devices = {"M1", "S2"};
  config.rows_per_device = 3;
  config.measurements = 25;
  config.t_ons = {TOnChoice::kMinTras, TOnChoice::kTrefi};
  config.temperatures = {50.0, 80.0};
  config.scan_rows_per_region = 32;

  config.threads = 1;
  const CampaignResult serial = RunCampaign(config);
  ASSERT_FALSE(serial.records.empty());

  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    config.threads = workers;
    const CampaignResult parallel = RunCampaign(config);
    ASSERT_EQ(parallel.records.size(), serial.records.size())
        << "workers=" << workers;
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      const SeriesRecord& a = serial.records[i];
      const SeriesRecord& b = parallel.records[i];
      EXPECT_EQ(a.device, b.device);
      EXPECT_EQ(a.mfr, b.mfr);
      EXPECT_EQ(a.standard, b.standard);
      EXPECT_EQ(a.density_gbit, b.density_gbit);
      EXPECT_EQ(a.die_rev, b.die_rev);
      EXPECT_EQ(a.row, b.row);
      EXPECT_EQ(a.pattern, b.pattern);
      EXPECT_EQ(a.t_on, b.t_on);
      EXPECT_EQ(a.temperature, b.temperature);
      EXPECT_EQ(a.rdt_guess, b.rdt_guess);
      ASSERT_EQ(a.series, b.series)
          << "workers=" << workers << " record=" << i;
    }
  }
}

TEST(CampaignTest, RecordsMergeInCanonicalOrder) {
  // Device-major, temperature-minor, regardless of which shard
  // finishes first.
  CampaignConfig config;
  config.devices = {"S2", "M1"};
  config.rows_per_device = 3;
  config.measurements = 15;
  config.temperatures = {80.0, 50.0};
  config.scan_rows_per_region = 32;
  config.threads = 4;
  const CampaignResult result = RunCampaign(config);
  ASSERT_FALSE(result.records.empty());
  std::vector<std::pair<std::string, int>> keys;
  for (const SeriesRecord& record : result.records) {
    const std::pair<std::string, int> key{
        record.device, static_cast<int>(record.temperature)};
    if (keys.empty() || keys.back() != key) {
      keys.push_back(key);
    }
  }
  // Each (device, temperature) block appears exactly once, in the
  // configured order.
  const std::vector<std::pair<std::string, int>> expected = {
      {"S2", 80}, {"S2", 50}, {"M1", 80}, {"M1", 50}};
  EXPECT_EQ(keys, expected);
}

TEST(CampaignTest, InvalidConfigsThrow) {
  CampaignConfig no_devices;
  EXPECT_THROW(RunCampaign(no_devices), FatalError);
  CampaignConfig no_measurements;
  no_measurements.devices = {"M1"};
  no_measurements.measurements = 0;
  EXPECT_THROW(RunCampaign(no_measurements), FatalError);
}

}  // namespace
}  // namespace vrddram::core

namespace vrddram::core {
namespace {

TEST(CampaignTest, ThermalRigPathSettlesEachTemperature) {
  CampaignConfig config;
  config.devices = {"S2"};
  config.rows_per_device = 3;
  config.measurements = 15;
  config.scan_rows_per_region = 32;
  config.temperatures = {50.0, 80.0};
  config.use_thermal_rig = true;
  const CampaignResult result = RunCampaign(config);
  ASSERT_FALSE(result.records.empty());
  std::set<int> temps;
  for (const SeriesRecord& record : result.records) {
    temps.insert(static_cast<int>(record.temperature));
  }
  EXPECT_EQ(temps, (std::set<int>{50, 80}));
}

TEST(CampaignTest, HbmDeviceDisablesOnDieEcc) {
  // The campaign must not silently measure through HBM2 on-die ECC
  // (§3.1); it disables the mode register before profiling.
  CampaignConfig config;
  config.devices = {"Chip2"};
  config.rows_per_device = 3;
  config.measurements = 15;
  config.scan_rows_per_region = 32;
  const CampaignResult result = RunCampaign(config);
  EXPECT_FALSE(result.records.empty());
}

}  // namespace
}  // namespace vrddram::core
