#include "core/security_eval.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/campaign.h"

namespace vrddram::core {
namespace {

struct SecurityRig {
  SecurityRig() {
    device = vrd::BuildDevice("M1", 2025);
    engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
    const auto rows = SelectVulnerableRows(
        *device, *engine, 0, 1, 64, dram::DataPattern::kCheckered0,
        device->timing().tRAS);
    victim = rows.front();
  }
  std::unique_ptr<dram::Device> device;
  vrd::TrapFaultEngine* engine = nullptr;
  dram::RowAddr victim = 0;
};

TEST(SecurityEvalTest, TinyThresholdIsAlwaysSecure) {
  SecurityRig rig;
  const SecurityResult result = EvaluateThreshold(
      *rig.device, *rig.engine, rig.victim, /*threshold=*/4,
      /*episodes=*/200, units::kMillisecond);
  EXPECT_TRUE(result.Secure());
  EXPECT_FALSE(result.first_breach.has_value());
  EXPECT_EQ(result.episodes, 200u);
}

TEST(SecurityEvalTest, HugeThresholdBreachesImmediately) {
  SecurityRig rig;
  const SecurityResult result = EvaluateThreshold(
      *rig.device, *rig.engine, rig.victim, /*threshold=*/10000000,
      /*episodes=*/50, units::kMillisecond);
  EXPECT_FALSE(result.Secure());
  ASSERT_TRUE(result.first_breach.has_value());
  EXPECT_EQ(*result.first_breach, 0u);
  EXPECT_DOUBLE_EQ(result.BreachRate(), 1.0);
}

TEST(SecurityEvalTest, LargerMarginsBreachNoMoreOften) {
  SecurityRig rig;
  const std::vector<double> margins = {0.0, 0.25, 0.50};
  const auto results = EvaluateGuardbands(
      *rig.device, *rig.engine, rig.victim,
      /*profile_measurements=*/5, margins, /*episodes=*/500);
  ASSERT_EQ(results.size(), 3u);
  // Thresholds shrink with margin...
  EXPECT_GT(results[0].configured_threshold,
            results[1].configured_threshold);
  EXPECT_GT(results[1].configured_threshold,
            results[2].configured_threshold);
  // ...and breach rates are non-increasing.
  EXPECT_GE(results[0].BreachRate() + 1e-12, results[1].BreachRate());
  EXPECT_GE(results[1].BreachRate() + 1e-12, results[2].BreachRate());
}

TEST(SecurityEvalTest, InvalidArgumentsThrow) {
  SecurityRig rig;
  EXPECT_THROW(EvaluateThreshold(*rig.device, *rig.engine, rig.victim,
                                 0, 10, 1000),
               FatalError);
  EXPECT_THROW(EvaluateThreshold(*rig.device, *rig.engine, rig.victim,
                                 100, 0, 1000),
               FatalError);
  EXPECT_THROW(EvaluateGuardbands(*rig.device, *rig.engine, rig.victim,
                                  5, {}, 10),
               FatalError);
  EXPECT_THROW(EvaluateGuardbands(*rig.device, *rig.engine, rig.victim,
                                  5, {1.5}, 10),
               FatalError);
}

}  // namespace
}  // namespace vrddram::core
