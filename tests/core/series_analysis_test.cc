#include "core/series_analysis.h"
#include "core/rdt_profiler.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace vrddram::core {
namespace {

TEST(SeriesAnalysisTest, CraftedSeriesMetrics) {
  // 10 measurements; minimum 100 first appears at index 4, twice.
  const std::vector<std::int64_t> series = {200, 150, 150, 200, 100,
                                            150, 100, 200, 150, 200};
  const SeriesAnalysis a = AnalyzeSeries(series);
  EXPECT_EQ(a.measurements, 10u);
  EXPECT_EQ(a.valid, 10u);
  EXPECT_EQ(a.min_rdt, 100);
  EXPECT_EQ(a.max_rdt, 200);
  EXPECT_DOUBLE_EQ(a.max_over_min, 2.0);
  EXPECT_EQ(a.first_min_index, 4u);
  EXPECT_EQ(a.min_multiplicity, 2u);
  EXPECT_EQ(a.unique_values, 3u);
  EXPECT_DOUBLE_EQ(a.mean, 160.0);
  EXPECT_GT(a.cv, 0.0);
  EXPECT_DOUBLE_EQ(a.box.min, 100.0);
  EXPECT_DOUBLE_EQ(a.box.max, 200.0);
}

TEST(SeriesAnalysisTest, SentinelsExcludedFromValues) {
  std::vector<std::int64_t> series(20, 500);
  series[3] = kNoFlip;
  series[7] = kNoFlip;
  series[11] = 400;
  const SeriesAnalysis a = AnalyzeSeries(series);
  EXPECT_EQ(a.measurements, 20u);
  EXPECT_EQ(a.valid, 18u);
  EXPECT_EQ(a.min_rdt, 400);
  EXPECT_EQ(a.unique_values, 2u);
}

TEST(SeriesAnalysisTest, FirstMinIndexCountsFullSeries) {
  // The sentinel at index 0 still consumed a measurement slot.
  const std::vector<std::int64_t> series = {kNoFlip, 300, 200, 300,
                                            200,     300, 300, 300,
                                            300,     300};
  const SeriesAnalysis a = AnalyzeSeries(series);
  EXPECT_EQ(a.first_min_index, 2u);
}

TEST(SeriesAnalysisTest, ConstantSeries) {
  const std::vector<std::int64_t> series(50, 1000);
  const SeriesAnalysis a = AnalyzeSeries(series);
  EXPECT_DOUBLE_EQ(a.max_over_min, 1.0);
  EXPECT_EQ(a.unique_values, 1u);
  EXPECT_DOUBLE_EQ(a.cv, 0.0);
  EXPECT_DOUBLE_EQ(a.immediate_change_fraction, 0.0);
  EXPECT_DOUBLE_EQ(a.normal_fit.p_value, 1.0);
  EXPECT_EQ(a.run_lengths.LongestRun(), 50u);
}

TEST(SeriesAnalysisTest, AlternatingSeriesChangesEveryMeasurement) {
  std::vector<std::int64_t> series;
  for (int i = 0; i < 100; ++i) {
    series.push_back(i % 2 == 0 ? 100 : 110);
  }
  const SeriesAnalysis a = AnalyzeSeries(series);
  EXPECT_DOUBLE_EQ(a.immediate_change_fraction, 1.0);
  // Perfectly alternating series is strongly anticorrelated at lag 1.
  EXPECT_LT(a.acf[1], -0.9);
  EXPECT_GT(a.acf_significant_fraction, 0.5);
}

TEST(SeriesAnalysisTest, TooFewValidMeasurementsThrow) {
  const std::vector<std::int64_t> series = {kNoFlip, kNoFlip, 100};
  EXPECT_THROW(AnalyzeSeries(series), FatalError);
}

}  // namespace
}  // namespace vrddram::core
