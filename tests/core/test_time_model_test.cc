#include "core/test_time_model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vrddram::core {
namespace {

TEST(TestTimeModelTest, SingleMeasurementTimeDominatedByHammers) {
  const TestTimeModel model;
  const Tick t_ras = model.timing().tRAS;
  const TestCost at_1k = model.MeasurementCost(1000, t_ras);
  const TestCost at_10k = model.MeasurementCost(10000, t_ras);
  EXPECT_GT(at_1k.seconds, 0.0);
  // 10x the hammers ~ close to 10x the hammer phase.
  EXPECT_GT(at_10k.seconds, 5 * at_1k.seconds);
  EXPECT_LT(at_10k.seconds, 11 * at_1k.seconds);
}

TEST(TestTimeModelTest, HammerPhaseArithmetic) {
  const TestTimeModel model;
  const Tick t_ras = model.timing().tRAS;
  const TestCost a = model.MeasurementCost(1000, t_ras);
  const TestCost b = model.MeasurementCost(2000, t_ras);
  // Difference is exactly 1000 extra hammers: 2*(tAggOn + tRP) each.
  EXPECT_NEAR(b.seconds - a.seconds,
              units::ToSeconds(1000 * 2 * (t_ras + model.timing().tRP)),
              1e-12);
}

TEST(TestTimeModelTest, RowPressMeasurementsAreFarSlower) {
  const TestTimeModel model;
  const TestCost hammer =
      model.MeasurementCost(1000, model.timing().tRAS);
  const TestCost press =
      model.MeasurementCost(1000, units::FromUs(7.8));
  // 7.8 us per activation vs ~46 ns: two orders of magnitude.
  EXPECT_GT(press.seconds, 50 * hammer.seconds);
}

TEST(TestTimeModelTest, MultiBankAmortizesPerRowCost) {
  const TestTimeModel model;
  const Tick t_ras = model.timing().tRAS;
  const TestCost one = model.MeasurementCost(1000, t_ras, 1);
  const TestCost sixteen = model.MeasurementCost(1000, t_ras, 16);
  // 16 banks tested "simultaneously" cost far less than 16x one bank.
  EXPECT_LT(sixteen.seconds, 8 * one.seconds);
  EXPECT_GT(sixteen.seconds, one.seconds);
  // Energy grows with the number of banks doing work, but far
  // sublinearly: the background draw is shared and tFAW caps the
  // activation concurrency at ~4 banks' worth.
  EXPECT_GT(sixteen.energy, 2 * one.energy);
  EXPECT_LT(sixteen.energy, 16 * one.energy);
}

TEST(TestTimeModelTest, AppendixAHeadlineNumbers) {
  // Appendix A: 1K RDT measurements for all rows of an entire chip
  // (32 banks in parallel, 128K rows per bank, hammer count 1K,
  // tAggOn = tRAS) takes ~15 hours; 100K measurements ~61 days.
  const TestTimeModel model;
  const Tick t_ras = model.timing().tRAS;
  const TestCost c1k =
      model.CampaignCost(1u << 17, 1000, 1000, t_ras, 32);
  const double hours = c1k.seconds / 3600.0;
  EXPECT_GT(hours, 5.0);
  EXPECT_LT(hours, 40.0);

  const TestCost c100k =
      model.CampaignCost(1u << 17, 100000, 1000, t_ras, 32);
  const double days = c100k.seconds / 86400.0;
  EXPECT_GT(days, 20.0);
  EXPECT_LT(days, 150.0);
  // Energy in the megajoule range for the 100K campaign.
  EXPECT_GT(c100k.energy, 1e6);
  EXPECT_LT(c100k.energy, 1e8);
}

TEST(TestTimeModelTest, RowPressCampaignTakesMonths) {
  // Appendix A: RowPress testing (tAggOn = 7.8 us) for 1K measurements
  // of a full chip takes ~48 days.
  const TestTimeModel model;
  const TestCost cost =
      model.CampaignCost(1u << 17, 1000, 1000, units::FromUs(7.8), 32);
  const double days = cost.seconds / 86400.0;
  EXPECT_GT(days, 10.0);
  EXPECT_LT(days, 200.0);
}

TEST(TestTimeModelTest, CampaignScalesLinearly) {
  const TestTimeModel model;
  const Tick t_ras = model.timing().tRAS;
  const TestCost one_row = model.CampaignCost(1, 100, 1000, t_ras);
  const TestCost ten_rows = model.CampaignCost(10, 100, 1000, t_ras);
  EXPECT_NEAR(ten_rows.seconds, 10.0 * one_row.seconds,
              one_row.seconds * 0.01);
  EXPECT_NEAR(ten_rows.energy, 10.0 * one_row.energy,
              one_row.energy * 0.01);
}

TEST(TestTimeModelTest, CommandTableStructure) {
  const TestTimeModel model;
  // Table 4 (single bank): 3 init groups of 4 rows + 4 hammer rows +
  // 3 readback rows = 19 rows.
  const TextTable single = model.CommandTable(1000, 1);
  EXPECT_EQ(single.NumRows(), 19u);
  const TextTable multi = model.CommandTable(1000, 16);
  EXPECT_EQ(multi.NumRows(), 19u);
}

TEST(TestTimeModelTest, InvalidArgumentsThrow) {
  const TestTimeModel model;
  EXPECT_THROW(model.MeasurementCost(1000, model.timing().tRAS, 0),
               FatalError);
  EXPECT_THROW(model.MeasurementCost(1000, units::FromNs(10.0)),
               FatalError);
}

}  // namespace
}  // namespace vrddram::core
