#include "core/csv_export.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>

#include "common/error.h"

namespace vrddram::core {
namespace {

/// A stream whose buffer refuses every byte — the "disk full" /
/// closed-pipe case the writers must report instead of truncating.
class FailingStreambuf : public std::streambuf {
 protected:
  int overflow(int) override { return traits_type::eof(); }
};

CampaignResult TinyResult() {
  CampaignResult result;
  SeriesRecord record;
  record.device = "M1";
  record.mfr = vrd::Manufacturer::kMfrM;
  record.density_gbit = 16;
  record.die_rev = 'F';
  record.row = 42;
  record.pattern = dram::DataPattern::kCheckered0;
  record.t_on = TOnChoice::kMinTras;
  record.temperature = 50.0;
  record.rdt_guess = 5000;
  record.series = {5000, 4950, -1, 5050, 5000, 4900, 5000, 5000,
                   4950, 5000};
  result.records.push_back(record);
  return result;
}

TEST(CsvExportTest, SeriesLongFormat) {
  std::ostringstream os;
  WriteSeriesCsv(os, TinyResult());
  const std::string csv = os.str();
  // Header + 10 measurements.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 11);
  EXPECT_NE(csv.find("device,row,pattern"), std::string::npos);
  EXPECT_NE(csv.find("M1,42,Checkered0,min-tRAS,50,0,5000"),
            std::string::npos);
  // The no-flip sentinel survives as -1.
  EXPECT_NE(csv.find(",2,-1"), std::string::npos);
}

TEST(CsvExportTest, SummaryFormat) {
  std::ostringstream os;
  WriteSummaryCsv(os, TinyResult());
  const std::string csv = os.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  // Metadata and key analysis columns present.
  EXPECT_NE(csv.find("M1,Mfr. M,16,F,42,Checkered0,min-tRAS,50,5000,10,9"),
            std::string::npos);
  EXPECT_NE(csv.find(",4900,5050,"), std::string::npos);
}

TEST(CsvExportTest, ShardStatusColumnReflectsRetries) {
  CampaignResult result = TinyResult();
  ShardStatus status;
  status.device = "M1";
  status.temperature = 50.0;
  status.state = ShardState::kRetried;
  status.attempts = 2;
  result.shards.push_back(status);

  std::ostringstream series_os;
  WriteSeriesCsv(series_os, result);
  const std::string series_csv = series_os.str();
  EXPECT_NE(series_csv.find("shard_status"), std::string::npos);
  EXPECT_NE(series_csv.find(",retried-1"), std::string::npos);

  std::ostringstream summary_os;
  WriteSummaryCsv(summary_os, result);
  EXPECT_NE(summary_os.str().find(",retried-1"), std::string::npos);

  // Without a matching shard entry the column defaults to ok.
  result.shards.clear();
  std::ostringstream plain_os;
  WriteSeriesCsv(plain_os, result);
  EXPECT_NE(plain_os.str().find(",ok"), std::string::npos);
}

TEST(CsvExportTest, StreamFailureIsFatalNotSilent) {
  FailingStreambuf broken;
  std::ostream series_os(&broken);
  EXPECT_THROW(WriteSeriesCsv(series_os, TinyResult()), FatalError);
  std::ostream summary_os(&broken);
  EXPECT_THROW(WriteSummaryCsv(summary_os, TinyResult()), FatalError);
}

TEST(CsvExportTest, EmptyCampaignOnlyHeaders) {
  std::ostringstream os;
  WriteSeriesCsv(os, CampaignResult{});
  const std::string series_csv = os.str();
  EXPECT_EQ(std::count(series_csv.begin(), series_csv.end(), '\n'), 1);
  std::ostringstream os2;
  WriteSummaryCsv(os2, CampaignResult{});
  const std::string summary_csv = os2.str();
  EXPECT_EQ(std::count(summary_csv.begin(), summary_csv.end(), '\n'),
            1);
}

}  // namespace
}  // namespace vrddram::core
