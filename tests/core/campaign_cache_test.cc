/**
 * Content-addressed campaign cache tests: a warm lookup returns the
 * exact records a fresh run produces (at any worker count), disk
 * entries reuse the checkpoint grammar, and incompatible entries —
 * wrong format version or foreign config hash — refuse to load with a
 * FatalError naming the offending file for both `--resume` and cache
 * lookups.
 */
#include "core/campaign_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "core/campaign.h"
#include "core/campaign_checkpoint.h"

namespace vrddram::core {
namespace {

CampaignConfig TinyConfig() {
  CampaignConfig config;
  config.devices = {"M1", "S2"};
  config.rows_per_device = 2;
  config.measurements = 10;
  config.temperatures = {50.0, 80.0};
  config.scan_rows_per_region = 32;
  config.threads = 1;
  return config;
}

std::string TempCacheDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) /
       ("vrddram_cache_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectResultsIdentical(const CampaignResult& expected,
                            const CampaignResult& actual,
                            const std::string& context) {
  ASSERT_EQ(expected.records.size(), actual.records.size()) << context;
  for (std::size_t i = 0; i < expected.records.size(); ++i) {
    const SeriesRecord& a = expected.records[i];
    const SeriesRecord& b = actual.records[i];
    EXPECT_EQ(a.device, b.device) << context << " record " << i;
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.pattern, b.pattern);
    EXPECT_EQ(a.t_on, b.t_on);
    EXPECT_EQ(a.temperature, b.temperature);
    EXPECT_EQ(a.rdt_guess, b.rdt_guess);
    ASSERT_EQ(a.series, b.series) << context << " record " << i;
  }
  ASSERT_EQ(expected.shards.size(), actual.shards.size()) << context;
  for (std::size_t i = 0; i < expected.shards.size(); ++i) {
    EXPECT_EQ(expected.shards[i].device, actual.shards[i].device);
    EXPECT_EQ(expected.shards[i].temperature,
              actual.shards[i].temperature);
    EXPECT_EQ(expected.shards[i].state, actual.shards[i].state);
  }
}

TEST(CampaignCacheTest, MemoryOnlyCacheRoundTrips) {
  CampaignCache cache;  // no directory: in-process memo only
  const CampaignConfig config = TinyConfig();
  EXPECT_FALSE(cache.Lookup(config).has_value());

  const CampaignResult fresh = RunCampaign(config);
  EXPECT_TRUE(cache.Store(config, fresh));

  const auto cached = cache.Lookup(config);
  ASSERT_TRUE(cached.has_value());
  ExpectResultsIdentical(fresh, *cached, "memory cache");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
}

TEST(CampaignCacheTest, DiskEntrySurvivesANewCacheInstance) {
  const std::string dir = TempCacheDir("disk");
  const CampaignConfig config = TinyConfig();
  CampaignResult fresh;
  {
    CampaignCache cache(dir);
    fresh = RunCampaign(config);
    ASSERT_TRUE(cache.Store(config, fresh));
    ASSERT_TRUE(std::filesystem::exists(cache.EntryPath(config)));
  }
  CampaignCache reopened(dir);
  const auto cached = reopened.Lookup(config);
  ASSERT_TRUE(cached.has_value());
  ExpectResultsIdentical(fresh, *cached, "disk cache");
  for (const ShardStatus& shard : cached->shards) {
    EXPECT_TRUE(shard.from_checkpoint);
  }
  std::filesystem::remove_all(dir);
}

TEST(CampaignCacheTest, RunCampaignCachedHitMatchesFreshAtAnyThreads) {
  const std::string dir = TempCacheDir("threads");
  CampaignConfig cold = TinyConfig();
  cold.threads = 1;
  CampaignConfig warm = TinyConfig();
  warm.threads = 8;  // execution knob: same cache key, same bytes

  CampaignCache cache(dir);
  std::ostringstream telemetry;
  const CampaignResult first =
      RunCampaignCached(cold, &cache, &telemetry);
  const CampaignResult second =
      RunCampaignCached(warm, &cache, &telemetry);
  ExpectResultsIdentical(first, second, "threads 1 vs 8");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_NE(telemetry.str().find("campaign-cache: miss"),
            std::string::npos);
  EXPECT_NE(telemetry.str().find("campaign-cache: hit"),
            std::string::npos);

  // A cache-less call is exactly a fresh run.
  const CampaignResult plain = RunCampaignCached(cold, nullptr);
  ExpectResultsIdentical(plain, first, "no cache vs cold");
  std::filesystem::remove_all(dir);
}

TEST(CampaignCacheTest, DifferentConfigsUseDifferentEntries) {
  CampaignCache cache;
  const CampaignConfig config = TinyConfig();
  CampaignConfig other = TinyConfig();
  other.measurements += 1;
  EXPECT_NE(CampaignCache("d").EntryPath(config),
            CampaignCache("d").EntryPath(other));
  ASSERT_TRUE(cache.Store(config, RunCampaign(config)));
  EXPECT_FALSE(cache.Lookup(other).has_value());
}

TEST(CampaignCacheTest, RefusesToStoreQuarantinedCampaigns) {
  CampaignCache cache;
  const CampaignConfig config = TinyConfig();
  CampaignResult partial = RunCampaign(config);
  partial.shards.back().state = ShardState::kQuarantined;
  EXPECT_FALSE(cache.Store(config, partial));
  EXPECT_FALSE(cache.Lookup(config).has_value());
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(CampaignCacheTest, PartialEntryIsAMissNotAnError) {
  const std::string dir = TempCacheDir("partial");
  const CampaignConfig config = TinyConfig();
  CampaignCache cache(dir);
  const CampaignResult fresh = RunCampaign(config);
  ASSERT_TRUE(cache.Store(config, fresh));

  // Truncate the entry to fewer shards than the campaign defines —
  // as an interrupted checkpoint would be. A fresh cache must treat
  // that as a miss, not serve half a campaign.
  CampaignCheckpoint checkpoint;
  ASSERT_TRUE(LoadCheckpoint(cache.EntryPath(config), &checkpoint));
  checkpoint.shards.pop_back();
  SaveCheckpoint(cache.EntryPath(config), checkpoint);

  CampaignCache reopened(dir);
  EXPECT_FALSE(reopened.Lookup(config).has_value());
  std::filesystem::remove_all(dir);
}

TEST(CampaignCacheTest, LookupRejectsForeignConfigHashNamingTheFile) {
  const std::string dir = TempCacheDir("foreign");
  const CampaignConfig config = TinyConfig();
  CampaignCache cache(dir);
  ASSERT_TRUE(cache.Store(config, RunCampaign(config)));

  // Masquerade the entry as belonging to a different configuration by
  // copying it over that configuration's entry path.
  CampaignConfig other = TinyConfig();
  other.measurements += 1;
  const std::string other_path = cache.EntryPath(other);
  std::filesystem::copy_file(cache.EntryPath(config), other_path);

  CampaignCache reopened(dir);
  try {
    reopened.Lookup(other);
    FAIL() << "expected FatalError for a foreign cache entry";
  } catch (const FatalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(other_path), std::string::npos) << what;
    EXPECT_NE(what.find("does not match"), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

TEST(CampaignCacheTest, LookupRejectsVersionMismatchNamingTheFile) {
  const std::string dir = TempCacheDir("version");
  const CampaignConfig config = TinyConfig();
  CampaignCache cache(dir);
  const std::string path = cache.EntryPath(config);
  std::filesystem::create_directories(dir);
  {
    std::ofstream file(path, std::ios::trunc);
    file << "vrddram-campaign-checkpoint 999\n"
         << "config 0000000000000000\nshards 0\nend\n";
  }
  try {
    cache.Lookup(config);
    FAIL() << "expected FatalError for a future format version";
  } catch (const FatalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("version"), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

TEST(CampaignCacheTest, ResumeRejectionsNameTheCheckpointFile) {
  // The same two rejection paths, exercised through --resume.
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) /
       "vrddram_cache_resume.ckpt")
          .string();
  std::filesystem::remove(path);

  CampaignConfig first = TinyConfig();
  first.checkpoint_path = path;
  RunCampaign(first);

  CampaignConfig different = TinyConfig();
  different.measurements += 5;
  different.checkpoint_path = path;
  different.resume = true;
  try {
    RunCampaign(different);
    FAIL() << "expected FatalError for a config-hash mismatch";
  } catch (const FatalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("does not match"), std::string::npos) << what;
  }

  {
    std::ofstream file(path, std::ios::trunc);
    file << "vrddram-campaign-checkpoint 999\n"
         << "config 0000000000000000\nshards 0\nend\n";
  }
  CampaignConfig stale = TinyConfig();
  stale.checkpoint_path = path;
  stale.resume = true;
  try {
    RunCampaign(stale);
    FAIL() << "expected FatalError for a format-version mismatch";
  } catch (const FatalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("version"), std::string::npos) << what;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vrddram::core
