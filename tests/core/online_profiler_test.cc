#include "core/online_profiler.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/campaign.h"
#include "vrd/chip_catalog.h"

namespace vrddram::core {
namespace {

struct OnlineRig {
  OnlineRig() {
    device = vrd::BuildDevice("H3", 2025);
    auto* engine = dynamic_cast<vrd::TrapFaultEngine*>(&device->model());
    const auto rows = SelectVulnerableRows(
        *device, *engine, 0, 1, 64, dram::DataPattern::kCheckered0,
        device->timing().tRAS);
    victim = rows.front();
  }
  std::unique_ptr<dram::Device> device;
  dram::RowAddr victim = 0;
};

TEST(OnlineProfilerTest, NoThresholdBeforeFirstFlip) {
  OnlineRig rig;
  OnlineRdtProfiler online(*rig.device, rig.victim);
  EXPECT_FALSE(online.RecommendedThreshold().has_value());
  EXPECT_FALSE(online.observed_min().has_value());
}

TEST(OnlineProfilerTest, RunningMinimumOnlyTightens) {
  OnlineRig rig;
  OnlineRdtProfiler online(*rig.device, rig.victim);
  std::optional<std::uint64_t> previous;
  for (int window = 0; window < 40; ++window) {
    online.RunMaintenanceWindow();
    rig.device->Sleep(units::kSecond);
    const auto current = online.observed_min();
    if (previous && current) {
      EXPECT_LE(*current, *previous);
    }
    if (current) {
      previous = current;
    }
  }
  ASSERT_TRUE(previous.has_value());
  EXPECT_EQ(online.windows_run(), 40u);
  EXPECT_GE(online.discoveries(), 1u);
}

TEST(OnlineProfilerTest, ThresholdBelowObservedMinByGuardband) {
  OnlineRig rig;
  OnlineRdtProfiler online(*rig.device, rig.victim);
  for (int window = 0; window < 20; ++window) {
    online.RunMaintenanceWindow();
  }
  const auto min = online.observed_min();
  const auto threshold = online.RecommendedThreshold();
  ASSERT_TRUE(min.has_value());
  ASSERT_TRUE(threshold.has_value());
  EXPECT_LT(*threshold, *min);
  const double implied =
      1.0 - static_cast<double>(*threshold) /
                static_cast<double>(*min);
  EXPECT_NEAR(implied, online.guardband(), 0.02);
}

TEST(OnlineProfilerTest, GuardbandStaysWithinBounds) {
  OnlineRig rig;
  OnlineProfilerConfig config;
  config.min_guardband = 0.15;
  config.max_guardband = 0.40;
  OnlineRdtProfiler online(*rig.device, rig.victim, config);
  for (int window = 0; window < 100; ++window) {
    online.RunMaintenanceWindow();
    EXPECT_GE(online.guardband(), config.min_guardband - 1e-12);
    EXPECT_LE(online.guardband(), config.max_guardband + 1e-12);
  }
}

TEST(OnlineProfilerTest, InvalidConfigsThrow) {
  OnlineRig rig;
  OnlineProfilerConfig no_measurements;
  no_measurements.measurements_per_window = 0;
  EXPECT_THROW(OnlineRdtProfiler(*rig.device, rig.victim,
                                 no_measurements),
               FatalError);
  OnlineProfilerConfig inverted;
  inverted.min_guardband = 0.5;
  inverted.max_guardband = 0.1;
  EXPECT_THROW(OnlineRdtProfiler(*rig.device, rig.victim, inverted),
               FatalError);
}

}  // namespace
}  // namespace vrddram::core
