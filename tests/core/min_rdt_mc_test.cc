#include "core/min_rdt_mc.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace vrddram::core {
namespace {

TEST(MinRdtMcTest, DefaultsMatchPaperProcedure) {
  const MinRdtSettings settings;
  EXPECT_EQ(settings.sample_sizes,
            (std::vector<std::size_t>{1, 3, 5, 10, 50, 500}));
  EXPECT_EQ(settings.iterations, 10000u);
  EXPECT_EQ(settings.margins.size(), 5u);
}

TEST(MinRdtMcTest, SentinelsIgnored) {
  std::vector<std::int64_t> series(100, 1000);
  series[0] = -1;
  MinRdtSettings settings;
  settings.sample_sizes = {1};
  settings.iterations = 1000;
  Rng rng(5);
  const RowMinRdtResult result =
      AnalyzeRowSeries(series, settings, rng);
  ASSERT_EQ(result.per_n.size(), 1u);
  EXPECT_DOUBLE_EQ(result.per_n[0].prob_find_min, 1.0);
}

TEST(MinRdtMcTest, ProbabilityGrowsWithN) {
  std::vector<std::int64_t> series;
  for (int i = 0; i < 1000; ++i) {
    series.push_back(2000 + (i * 13) % 500);
  }
  MinRdtSettings settings;
  settings.iterations = 5000;
  Rng rng(6);
  const RowMinRdtResult result =
      AnalyzeRowSeries(series, settings, rng);
  for (std::size_t i = 1; i < result.per_n.size(); ++i) {
    EXPECT_GE(result.per_n[i].prob_find_min + 0.02,
              result.per_n[i - 1].prob_find_min);
  }
  // Expected normalized min decreases toward 1 with more samples.
  EXPECT_GE(result.per_n.front().expected_norm_min,
            result.per_n.back().expected_norm_min);
  EXPECT_GE(result.per_n.back().expected_norm_min, 1.0);
}

TEST(MinRdtMcTest, MarginsWidenTheTarget) {
  std::vector<std::int64_t> series;
  for (int i = 0; i < 200; ++i) {
    series.push_back(1000 + i * 5);  // 1000..1995
  }
  MinRdtSettings settings;
  settings.sample_sizes = {1};
  settings.iterations = 20000;
  Rng rng(7);
  const RowMinRdtResult result =
      AnalyzeRowSeries(series, settings, rng);
  const auto& margins = result.per_n[0].prob_within_margin;
  ASSERT_EQ(margins.size(), 5u);
  for (std::size_t i = 1; i < margins.size(); ++i) {
    EXPECT_GE(margins[i], margins[i - 1]);
  }
}

TEST(MinRdtMcTest, AllSentinelsThrow) {
  const std::vector<std::int64_t> series(10, -1);
  MinRdtSettings settings;
  Rng rng(8);
  EXPECT_THROW(AnalyzeRowSeries(series, settings, rng), FatalError);
}

}  // namespace
}  // namespace vrddram::core
