/**
 * vrdlint self-tests: each rule family is pinned against a fixture
 * file with known violations (positive cases) and allowlisted or
 * clean variants (negative cases). The fixtures live in
 * tests/vrdlint/fixtures/ and are excluded from the `vrdlint_tree`
 * gate via tools/vrdlint/vrdlint.conf.
 */
#include "vrdlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using vrdlint::Config;
using vrdlint::Diagnostic;

std::filesystem::path FixtureDir() { return VRDLINT_FIXTURE_DIR; }

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixtureDir() / name);
  EXPECT_TRUE(in) << "missing fixture: " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// "line: rule" for every diagnostic, in emission order — the shape
/// the per-rule expectations below pin exactly.
std::vector<std::string> Locations(const std::vector<Diagnostic>& found) {
  std::vector<std::string> out;
  out.reserve(found.size());
  for (const Diagnostic& d : found) {
    out.push_back(std::to_string(d.line) + ": " + d.rule);
  }
  return out;
}

std::vector<Diagnostic> LintFixture(const std::string& name,
                                    const Config& config = Config()) {
  return vrdlint::LintSource(name, ReadFixture(name), config);
}

TEST(VrdlintBannedApi, FlagsEveryBannedCallAndHonorsWallClockAllow) {
  const std::vector<Diagnostic> found = LintFixture("banned_api.cc");
  // Lines 11 and 13 read clocks under allow(wall-clock) (trailing and
  // standalone-comment forms) and must NOT appear here.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{
                "18: banned-api",  // std::random_device
                "19: banned-api",  // srand
                "19: banned-api",  // time
                "20: banned-api",  // rand
                "21: banned-api",  // system_clock::now
            }));
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found[0].ToString(),
            "banned_api.cc:18: banned-api: std::random_device is "
            "nondeterministic; construct vrddram::Rng from a seed "
            "expression");
}

TEST(VrdlintUnorderedIteration, FlagsRawRangeForOnly) {
  const std::vector<Diagnostic> found =
      LintFixture("unordered_iteration.cc");
  // The SortedByKey() launder (line 18) and the annotated loop
  // (line 28) are legal; only the raw range-for fires.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{"10: unordered-iteration"}));
}

TEST(VrdlintRngDiscipline, FlagsNonSeedConstructionAndMemberInit) {
  const std::vector<Diagnostic> found =
      LintFixture("rng_construction.cc");
  // Literal, *seed*-named, and MixSeed constructions pass; the
  // annotated one (line 23) passes; the positional-arithmetic local
  // (line 16) and member initializer (line 30) fire.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{"16: rng-discipline",
                                      "30: rng-discipline"}));
}

TEST(VrdlintRngDiscipline, FlagsSharedRngInDispatchLambda) {
  const std::vector<Diagnostic> found = LintFixture("rng_lambda.cc");
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{"12: rng-discipline"}));
  ASSERT_FALSE(found.empty());
  EXPECT_NE(found[0].message.find("captured Rng 'rng'"),
            std::string::npos);
}

TEST(VrdlintRngDiscipline, PreForkedStreamsLintClean) {
  EXPECT_TRUE(LintFixture("rng_lambda_ok.cc").empty());
}

TEST(VrdlintCatchAllSwallow, FlagsSwallowingHandlersOnly) {
  const std::vector<Diagnostic> found = LintFixture("catch_all.cc");
  // The rethrow (line 26), typed conversion (line 34),
  // current_exception capture (line 42), typed handler (line 50) and
  // annotated handler (line 57) are all legal; only the two handlers
  // that silently swallow fire.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{"10: catch-all-swallow",
                                      "18: catch-all-swallow"}));
  ASSERT_FALSE(found.empty());
  EXPECT_NE(found[0].message.find("swallows the exception"),
            std::string::npos);
}

TEST(VrdlintCampaignDiscipline, FlagsDirectCallsUnderBenchOnly) {
  const std::string text = ReadFixture("bench/campaign_discipline.cc");
  const std::vector<Diagnostic> found = vrdlint::LintSource(
      "bench/campaign_discipline.cc", text, Config());
  // RunCampaignCached (line 19), the annotated call (line 22), and the
  // function-pointer mention (line 24) are all legal; only the two
  // direct calls fire.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{"9: campaign-discipline",
                                      "14: campaign-discipline"}));
  ASSERT_FALSE(found.empty());
  EXPECT_NE(found[0].message.find("RunCampaignCached"),
            std::string::npos);
}

TEST(VrdlintCampaignDiscipline, OnlyAppliesToTheBenchLayer) {
  const std::string text = ReadFixture("bench/campaign_discipline.cc");
  // The same source outside bench/ is executor plumbing, where calling
  // RunCampaign is the whole point.
  EXPECT_TRUE(
      vrdlint::LintSource("src/core/campaign_cache.cc", text, Config())
          .empty());
  // Conf-level exemption, as vrdlint.conf grants the throughput
  // microbenchmark.
  Config config;
  config.allow_paths["campaign-discipline"] = {"bench/perf_throughput"};
  EXPECT_TRUE(
      vrdlint::LintSource("bench/perf_throughput.cc", text, config)
          .empty());
}

TEST(VrdlintKernelAllocation, FlagsGrowthAndHeapInKernelPathsOnly) {
  Config config;
  config.kernel_paths = {"kernel_allocation"};
  const std::vector<Diagnostic> found =
      LintFixture("kernel_allocation.cc", config);
  // The reserve-paired push_back (line 15) and the annotated
  // emplace_back (line 20) are legal; the bare new, make_unique,
  // unreserved push_back, and resize fire.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{
                "8: kernel-allocation",
                "9: kernel-allocation",
                "11: kernel-allocation",
                "17: kernel-allocation",
            }));
  ASSERT_EQ(found.size(), 4u);
  EXPECT_NE(found[2].message.find("'grown.push_back' with no earlier "
                                  "'grown.reserve(...)'"),
            std::string::npos);
  // The same source outside the configured kernel paths is
  // unconstrained: the rule is opt-in per file.
  EXPECT_TRUE(LintFixture("kernel_allocation.cc").empty());
}

TEST(VrdlintKernelAllocation, KernelPathConfigKeyDesignatesFiles) {
  Config config;
  std::string error;
  ASSERT_TRUE(vrdlint::ParseConfigText(
      "[kernel-allocation]\nkernel-path = src/vrd/trap_engine.cc\n",
      &config, &error))
      << error;
  EXPECT_EQ(config.kernel_paths,
            (std::vector<std::string>{"src/vrd/trap_engine.cc"}));
  const std::string source =
      "void Hot(std::vector<int>& v) {\n"
      "  v.push_back(1);\n"
      "}\n";
  EXPECT_EQ(
      Locations(vrdlint::LintSource("src/vrd/trap_engine.cc", source,
                                    config)),
      (std::vector<std::string>{"2: kernel-allocation"}));
  EXPECT_TRUE(
      vrdlint::LintSource("src/core/campaign.cc", source, config).empty());
}

TEST(VrdlintHeaderHygiene, FlagsMissingGuardAndUsingNamespace) {
  EXPECT_EQ(Locations(LintFixture("header_bad.h")),
            (std::vector<std::string>{"1: header-hygiene",
                                      "5: header-hygiene"}));
  EXPECT_TRUE(LintFixture("header_ok.h").empty());
}

TEST(VrdlintTree, PairedHeaderRevealsUnorderedMembers) {
  // paired.cc iterates a member whose unordered declaration lives in
  // paired.h: invisible to the single-file scan, caught by the tree
  // scan's header pairing.
  Config config;
  config.scan_dirs = {"paired"};
  EXPECT_TRUE(
      vrdlint::LintSource("paired/paired.cc",
                          ReadFixture("paired/paired.cc"), config)
          .empty());
  const std::vector<Diagnostic> found =
      vrdlint::LintTree(FixtureDir().string(), config);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].file, "paired/paired.cc");
  EXPECT_EQ(found[0].line, 8u);
  EXPECT_EQ(found[0].rule, "unordered-iteration");
}

TEST(VrdlintTree, ExcludeSkipsPaths) {
  Config config;
  config.scan_dirs = {"paired"};
  config.exclude_paths = {"paired.cc"};
  EXPECT_TRUE(vrdlint::LintTree(FixtureDir().string(), config).empty());
  const std::vector<std::string> files =
      vrdlint::CollectFiles(FixtureDir().string(), config);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], "paired/paired.h");
}

TEST(VrdlintConfig, AllowPathSuppressesRuleByPathFragment) {
  Config config;
  config.allow_paths["banned-api"] = {"banned_api"};
  EXPECT_TRUE(LintFixture("banned_api.cc", config).empty());
  // Other rules are unaffected by a banned-api allow-path.
  EXPECT_FALSE(LintFixture("rng_lambda.cc", config).empty());
}

TEST(VrdlintConfig, ParsesSectionsKeysAndComments) {
  Config config;
  std::string error;
  const std::string text =
      "# comment\n"
      "scan = src\n"
      "scan = tools\n"
      "exclude = fixtures\n"
      "\n"
      "[banned-api]\n"
      "allow-path = bench/legacy\n"
      "[rng-discipline]\n"
      "seed-call = DeriveSeed\n"
      "[unordered-iteration]\n"
      "ordering-call = StableOrder\n";
  ASSERT_TRUE(vrdlint::ParseConfigText(text, &config, &error)) << error;
  EXPECT_EQ(config.scan_dirs,
            (std::vector<std::string>{"src", "tools"}));
  EXPECT_EQ(config.exclude_paths,
            (std::vector<std::string>{"fixtures"}));
  EXPECT_EQ(config.allow_paths.at("banned-api"),
            (std::vector<std::string>{"bench/legacy"}));
  // Additions extend the built-in defaults.
  EXPECT_NE(std::find(config.seed_calls.begin(), config.seed_calls.end(),
                      "DeriveSeed"),
            config.seed_calls.end());
  EXPECT_NE(std::find(config.seed_calls.begin(), config.seed_calls.end(),
                      "MixSeed"),
            config.seed_calls.end());
  EXPECT_NE(std::find(config.ordering_calls.begin(),
                      config.ordering_calls.end(), "StableOrder"),
            config.ordering_calls.end());
}

TEST(VrdlintConfig, RejectsMalformedInput) {
  Config config;
  std::string error;
  EXPECT_FALSE(vrdlint::ParseConfigText("bogus\n", &config, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(
      vrdlint::ParseConfigText("mystery = value\n", &config, &error));
  EXPECT_FALSE(vrdlint::ParseConfigText("[banned-api\n", &config, &error));
  EXPECT_FALSE(vrdlint::ParseConfigText(
      "[banned-api]\nseed-call = X\n", &config, &error));
}

TEST(VrdlintConfig, CustomSeedCallExtendsDiscipline) {
  Config config;
  std::string error;
  ASSERT_TRUE(vrdlint::ParseConfigText(
      "[rng-discipline]\nseed-call = DeriveStream\n", &config, &error))
      << error;
  const std::string source =
      "void f() {\n"
      "  Rng a(DeriveStream(device, row));\n"
      "  Rng b(device + row);\n"
      "}\n";
  const std::vector<Diagnostic> found =
      vrdlint::LintSource("custom.cc", source, config);
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{"3: rng-discipline"}));
}

}  // namespace
