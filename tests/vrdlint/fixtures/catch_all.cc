// catch-all-swallow fixture: catch-all handlers that swallow the
// exception fire; handlers that rethrow, capture, convert to a typed
// vrddram error, catch a typed error, or are annotated stay clean.
void Work();
void Cleanup();

void SwallowsEllipsis() {
  try {
    Work();
  } catch (...) {
    Cleanup();
  }
}

void SwallowsStdException() {
  try {
    Work();
  } catch (const std::exception& e) {
    Cleanup();
  }
}

void Rethrows() {
  try {
    Work();
  } catch (...) {
    Cleanup();
    throw;
  }
}

void ConvertsToTyped() {
  try {
    Work();
  } catch (const std::exception& e) {
    throw vrddram::FatalError("wrapped");
  }
}

void CapturesPointer() {
  try {
    Work();
  } catch (...) {
    saved = std::current_exception();
  }
}

void TypedHandlerIsNotCatchAll() {
  try {
    Work();
  } catch (const vrddram::TransientError& e) {
    Cleanup();
  }
}

void Annotated() {
  try {
    Work();
  } catch (...) {  // vrdlint: allow(catch-all)
    Cleanup();
  }
}
