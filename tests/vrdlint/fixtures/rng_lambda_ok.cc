// vrdlint fixture: rng-discipline dispatch-lambda negative — streams
// are pre-forked in canonical order before dispatch, the DESIGN.md §6
// pattern. Must lint clean. NOT compiled.
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

void Good(vrddram::ThreadPool& pool, vrddram::Rng& rng,
          std::vector<double>* out) {
  std::vector<vrddram::Rng> streams;
  streams.reserve(out->size());
  for (std::size_t i = 0; i < out->size(); ++i) {
    streams.push_back(rng.Fork("fixture/chunk=" + std::to_string(i)));
  }
  pool.ParallelFor(out->size(), [&](std::size_t i) {
    (*out)[i] = streams[i].NextDouble();
  });
}
