// vrdlint fixture: unordered-iteration positive, laundered, and
// annotated cases. NOT compiled; scanned by vrdlint_test.
#include <unordered_map>
#include <unordered_set>

#include "common/sorted.h"

int CountBad(const std::unordered_map<int, int>& histogram) {
  int total = 0;
  for (const auto& [key, value] : histogram) {
    total += key + value;
  }
  return total;
}

int CountSorted(const std::unordered_map<int, int>& histogram) {
  int total = 0;
  for (const auto& [key, value] : vrddram::SortedByKey(histogram)) {
    total += key + value;
  }
  return total;
}

int CountAnnotated(const std::unordered_set<int>& seen) {
  int total = 0;
  // Pure commutative accumulation, order cannot leak:
  // vrdlint: allow(unordered-iteration)
  for (const int key : seen) {
    total += key;
  }
  return total;
}
