// Fixture for the campaign-discipline rule: direct RunCampaign calls
// under bench/ fire; the cached wrapper, non-call mentions, and
// annotated calls do not.
#include "core/campaign.h"

namespace vrddram::bench {

void Bad(const core::CampaignConfig& config) {
  const auto direct = core::RunCampaign(config);
  (void)direct;
}

void AlsoBad(const core::CampaignConfig& config) {
  auto result = RunCampaign(config);
  (void)result;
}

void Legal(const core::CampaignConfig& config) {
  auto cached = core::RunCampaignCached(config, nullptr);
  (void)cached;
  // vrdlint: allow(campaign-discipline)
  auto excused = core::RunCampaign(config);
  (void)excused;
  auto fn = &core::RunCampaign;
  (void)fn;
}

}  // namespace vrddram::bench
