// rng-flow fixture: symbol-aware RNG dataflow violations and their
// legal counterparts. The paired shard_math.h declares the cross-file
// callee. NOT compiled.
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "shard_math.h"

namespace fixture {

// (a) explicit by-reference capture of the shared stream.
void CaptureByRef(vrddram::ThreadPool& pool, vrddram::Rng& rng,
                  std::vector<double>* out) {
  pool.ParallelFor(out->size(), [&rng, out](std::size_t i) {
    (*out)[i] = rng.NextDouble();
  });
}

// (b) the shared stream crosses a function boundary into per-shard
// code; the callee lives in the paired header.
void BoundaryCall(vrddram::ThreadPool& pool, vrddram::Rng& rng,
                  std::vector<double>* out) {
  pool.ParallelFor(4, [&](std::size_t shard) {
    (void)shard;
    FillShard(out, rng);
  });
}

// (c) re-seeded from an expression not rooted in a seed-call.
void ReseedFromIndex(vrddram::Rng& rng, std::size_t i) {
  rng.Reseed(i * 1337);
}

// Seed-rooted re-seed: legal.
void ReseedFromMix(vrddram::Rng& rng, std::uint64_t seed) {
  rng.Reseed(MixSeed(seed, 7));
}

// Pre-forked per-shard streams: the dispatch is excused.
void Forked(vrddram::ThreadPool& pool, vrddram::Rng& rng,
            std::vector<double>* out) {
  auto streams = rng.Fork(4);
  pool.ParallelFor(4, [&](std::size_t shard) {
    FillShard(out, streams[shard]);
  });
}

}  // namespace fixture
