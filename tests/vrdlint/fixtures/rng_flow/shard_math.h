// rng-flow fixture header: declares the per-shard helpers the paired
// rng_flow.cc calls across a function boundary, so the rule has to
// resolve the callee signature through the tree-wide symbol index.
// NOT compiled.
#ifndef VRDLINT_FIXTURE_RNG_FLOW_SHARD_MATH_H
#define VRDLINT_FIXTURE_RNG_FLOW_SHARD_MATH_H

#include <vector>

#include "common/rng.h"

namespace fixture {

// Non-const Rng&: a call site inside a dispatch lambda that passes a
// shared stream here advances it in pool order.
void FillShard(std::vector<double>* out, vrddram::Rng& rng);

// Const ref is read-only and never flagged.
double ReadShard(const vrddram::Rng& rng);

}  // namespace fixture

#endif  // VRDLINT_FIXTURE_RNG_FLOW_SHARD_MATH_H
