// float-determinism fixture: FMA-contractable shapes (the file is a
// configured float-path) and cross-task float accumulation. NOT
// compiled.
#include <vector>

#include "common/thread_pool.h"

namespace fixture {

double MulAdd(double a, double b, double c) {
  return a * b + c;  // contractable: multiply and add at one depth
}

double CompoundMul(double acc, double w, double x) {
  acc += w * x;  // contractable compound accumulation
  return acc;
}

double Split(double a, double b, double c) {
  const double prod = a * b;  // legal: product in a named temporary
  return prod + c;
}

double ParenDepth(double a, double b, double c) {
  return a * (b + c);  // legal: the add rounds at a deeper depth
}

int IntegerMulAdd(int p, int q, int r) {
  return p * q + r;  // legal: no float operand, contraction is exact
}

void Accumulate(vrddram::ThreadPool& pool, std::vector<double>& xs,
                double& total) {
  pool.ParallelFor(xs.size(), [&](std::size_t i) {
    total += xs[i];  // accumulation order depends on the schedule
  });
}

void LocalAccumulate(vrddram::ThreadPool& pool,
                     std::vector<double>& xs) {
  pool.ParallelFor(xs.size(), [&](std::size_t i) {
    double local = 0.0;
    local += xs[i];  // legal: per-task local accumulator
    (void)local;
  });
}

// vrdlint: allow(float-determinism) -- reference path, never compared
double Allowed(double a, double b, double c) { return a * b + c; }

}  // namespace fixture
