// kernel-allocation fixture: scope-aware reserve pairing. The
// constructor reserves *below* the method that grows, which the old
// file-order heuristic flagged as unreserved growth; the scope-aware
// rule resolves the reserve to a different function scope and excuses
// it. Same-scope reserves must still precede the growth textually.
// NOT compiled.
#include <vector>

namespace fixture {

class Shard {
 public:
  void Push(double value) {
    samples_.push_back(value);  // legal: reserved in the constructor
  }

  Shard() { samples_.reserve(1024); }

  void Grow() {
    scratch_.push_back(0.0);  // violation: reserve comes after, in scope
    scratch_.reserve(8);
  }

 private:
  std::vector<double> samples_;
  std::vector<double> scratch_;
};

}  // namespace fixture
