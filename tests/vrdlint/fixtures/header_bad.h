// vrdlint fixture: header-hygiene positives — no include guard, and a
// file-scope using-directive. NOT compiled.
#include <string>

using namespace std;

inline string Name() { return "bad"; }
