// kernel-allocation fixture: heap allocation and container growth in
// a kernel-path file. Violations: the `new` (line 8), make_unique
// (line 9), push_back without reserve (line 11), and resize (line 17).
#include <memory>
#include <vector>

void KernelStep(std::vector<double>& decay, std::vector<int>& out) {
  double* scratch = new double[8];
  auto owned = std::make_unique<int>(4);
  std::vector<int> grown;
  grown.push_back(1);

  std::vector<int> sized;
  sized.reserve(4);
  sized.push_back(2);  // reserve-paired: legal

  decay.resize(8);

  // vrdlint: allow(kernel-allocation) -- memo growth, not steady state
  out.emplace_back(3);
  (void)scratch;
  (void)owned;
}
