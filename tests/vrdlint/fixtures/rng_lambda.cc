// vrdlint fixture: rng-discipline dispatch-lambda positive. The
// captured stream is shared across workers with no Fork in scope, so
// scheduling order would leak into the numbers. NOT compiled.
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

void Bad(vrddram::ThreadPool& pool, vrddram::Rng& rng,
         std::vector<double>* out) {
  pool.ParallelFor(out->size(), [&](std::size_t i) {
    (*out)[i] = rng.NextDouble();
  });
}
