// vrdlint fixture: banned-api positives plus allowlisted negatives.
// NOT compiled; scanned by vrdlint_test. Expected diagnostics are
// pinned by line number there — keep edits append-only.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double Telemetry() {
  const auto ok =
      std::chrono::steady_clock::now();  // vrdlint: allow(wall-clock)
  // vrdlint: allow(wall-clock)
  const auto also_ok = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(ok - also_ok).count();
}

int Bad() {
  std::random_device entropy;
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  const int draw = std::rand();
  const auto stamp = std::chrono::system_clock::now();
  return draw + static_cast<int>(entropy()) +
         static_cast<int>(stamp.time_since_epoch().count());
}
