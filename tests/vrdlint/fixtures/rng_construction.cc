// vrdlint fixture: rng-discipline construction and member-initializer
// cases. NOT compiled; scanned by vrdlint_test.
#include "common/rng.h"

using vrddram::Rng;

Rng FromLiteral() { return Rng(0x5eed1234ull); }

Rng FromSeed(std::uint64_t campaign_seed) { return Rng(campaign_seed); }

Rng FromDerivation(std::uint64_t base, int row) {
  return Rng(vrddram::MixSeed(base, static_cast<std::uint64_t>(row)));
}

Rng Bad(int row, int bank) {
  Rng stream(row * 631 + bank);
  return stream;
}

Rng Annotated(int row) {
  // Derivation audited by hand against EXPERIMENTS.md:
  // vrdlint: allow(rng-discipline)
  Rng stream(row + 17);
  return stream;
}

class Sampler {
 public:
  explicit Sampler(std::uint64_t seed) : rng_(seed) {}
  Sampler(int a, int b) : rng_(a * 100 + b) {}

 private:
  Rng rng_;
};
