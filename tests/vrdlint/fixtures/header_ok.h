// vrdlint fixture: header-hygiene negative — guarded, no
// using-directives. Must lint clean. NOT compiled.
#ifndef VRDDRAM_TESTS_VRDLINT_FIXTURES_HEADER_OK_H
#define VRDDRAM_TESTS_VRDLINT_FIXTURES_HEADER_OK_H

#include <string>

inline std::string Name() { return "ok"; }

#endif  // VRDDRAM_TESTS_VRDLINT_FIXTURES_HEADER_OK_H
