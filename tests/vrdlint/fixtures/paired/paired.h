// vrdlint fixture: header half of the paired-header case — the
// unordered member is declared here, iterated in paired.cc. NOT
// compiled.
#ifndef VRDDRAM_TESTS_VRDLINT_FIXTURES_PAIRED_PAIRED_H
#define VRDDRAM_TESTS_VRDLINT_FIXTURES_PAIRED_PAIRED_H

#include <cstdint>
#include <unordered_map>

class Tracker {
 public:
  std::uint64_t Total() const;

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> counters_;
};

#endif  // VRDDRAM_TESTS_VRDLINT_FIXTURES_PAIRED_PAIRED_H
