// vrdlint fixture: .cc half of the paired-header case — range-for
// over a member whose unordered declaration lives in paired.h, which
// only the tree-level scan can see. NOT compiled.
#include "paired.h"

std::uint64_t Tracker::Total() const {
  std::uint64_t total = 0;
  for (const auto& [row, count] : counters_) {
    total += count;
  }
  return total;
}
